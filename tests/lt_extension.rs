//! Integration test for the linear-threshold extension: the adaptive
//! feedback loop run manually under LT semantics, cross-validated against
//! the IC machinery where the two models provably coincide.

use adaptive_tpm::diffusion::lt::{lt_mc_spread, lt_observe, normalize_lt_weights, LtRealization};
use adaptive_tpm::diffusion::{exact_spread, mc_spread};
use adaptive_tpm::graph::gen::Dataset;
use adaptive_tpm::graph::{GraphBuilder, GraphView, ResidualGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// On in-degree-1 graphs, IC and LT have identical spread distributions
/// (each node has a single potential activator in both formulations), so the
/// two engines must agree.
#[test]
fn ic_and_lt_agree_on_indegree_one_graphs() {
    // A directed tree: 0 -> {1, 2}, 1 -> {3, 4}, 2 -> {5}.
    let mut b = GraphBuilder::new(6);
    b.add_edge(0, 1, 0.7).unwrap();
    b.add_edge(0, 2, 0.4).unwrap();
    b.add_edge(1, 3, 0.5).unwrap();
    b.add_edge(1, 4, 0.9).unwrap();
    b.add_edge(2, 5, 0.6).unwrap();
    let g = b.build();
    let ic = exact_spread(&&g, &[0]);
    let lt = lt_mc_spread(&&g, &[0], 120_000, 3);
    assert!(
        (ic - lt).abs() < 0.02,
        "IC exact {ic} vs LT Monte-Carlo {lt}"
    );
}

#[test]
fn lt_spread_exceeds_ic_on_shared_wic_weights() {
    // On WIC weights LT pools incoming weight (thresholds) while IC flips
    // independent coins per edge; LT spread dominates on typical graphs.
    let g = Dataset::NetHept.generate(0.03, 5);
    let seeds: Vec<u32> = (0..5).collect();
    let mut rng = StdRng::seed_from_u64(1);
    let ic = mc_spread(&&g, &seeds, 15_000, &mut rng);
    let lt = lt_mc_spread(&&g, &seeds, 15_000, 1);
    assert!(lt >= ic * 0.95, "LT {lt} unexpectedly far below IC {ic}");
}

#[test]
fn adaptive_lt_loop_ledger_is_consistent() {
    let g = normalize_lt_weights(&Dataset::Epinions.generate(0.01, 7));
    let world = LtRealization::new(42);
    let mut residual = ResidualGraph::new(&g);
    let mut total = 0usize;
    let mut all: Vec<u32> = Vec::new();
    for s in 0..20u32 {
        if !residual.is_alive(s) {
            continue;
        }
        let cascade = lt_observe(&residual, &world, &[s]);
        total += cascade.len();
        all.extend_from_slice(&cascade);
        residual.remove_all(cascade.iter().copied());
    }
    // Ledger: activations and removals must match, with no duplicates.
    assert_eq!(total, g.num_nodes() - residual.num_alive());
    let mut sorted = all.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), all.len(), "no node activated twice");
}

#[test]
fn lt_sequential_observation_equals_joint() {
    // Same soundness property the IC session relies on, under LT.
    let g = normalize_lt_weights(&Dataset::NetHept.generate(0.02, 9));
    for seed in 0..10u64 {
        let world = LtRealization::new(seed);
        let joint: std::collections::HashSet<u32> =
            lt_observe(&&g, &world, &[0, 1, 2]).into_iter().collect();

        let mut residual = ResidualGraph::new(&g);
        let mut seq: std::collections::HashSet<u32> = Default::default();
        for s in [0u32, 1, 2] {
            if !residual.is_alive(s) {
                continue;
            }
            let c = lt_observe(&residual, &world, &[s]);
            residual.remove_all(c.iter().copied());
            seq.extend(c);
        }
        assert_eq!(joint, seq, "world {seed}");
    }
}
