//! End-to-end pipeline tests: dataset preset → workload construction →
//! every policy → evaluation, at miniature scale so they stay fast in debug
//! builds.

use adaptive_tpm::core::policies::{Addatp, Ars, Baseline, Hatp, Hntp, Ndg, Nsg, Rs};
use adaptive_tpm::core::runner::{evaluate_adaptive, evaluate_nonadaptive};
use adaptive_tpm::core::setup::{
    calibrated_instance, predefined_instance, CalibrationConfig, TargetSelector,
};
use adaptive_tpm::core::{CostSplit, TpmInstance};
use adaptive_tpm::graph::gen::Dataset;

fn small_instance(split: CostSplit) -> TpmInstance {
    let graph = Dataset::NetHept.generate(0.02, 5); // ~300 nodes
    calibrated_instance(
        graph,
        6,
        split,
        CalibrationConfig {
            lb_theta: 8_000,
            seed: 5,
            threads: 2,
            ..Default::default()
        },
    )
}

#[test]
fn full_pipeline_all_policies_produce_finite_profits() {
    let inst = small_instance(CostSplit::Uniform);
    let worlds: Vec<u64> = (0..5).collect();

    let mut hatp = Hatp {
        seed: 1,
        threads: 2,
        ..Default::default()
    };
    let mut addatp = Addatp {
        seed: 1,
        threads: 2,
        max_theta: 1 << 16,
        ..Default::default()
    };
    let mut ars = Ars::default();
    let adaptive = [
        evaluate_adaptive(&inst, &mut hatp, &worlds),
        evaluate_adaptive(&inst, &mut addatp, &worlds),
        evaluate_adaptive(&inst, &mut ars, &worlds),
    ];
    let mut hntp = Hntp::default();
    let mut nsg = Nsg::new(20_000, 1, 2);
    let mut ndg = Ndg::new(20_000, 1, 2);
    let mut rs = Rs::default();
    let mut base = Baseline;
    let nonadaptive = [
        evaluate_nonadaptive(&inst, &mut hntp, &worlds),
        evaluate_nonadaptive(&inst, &mut nsg, &worlds),
        evaluate_nonadaptive(&inst, &mut ndg, &worlds),
        evaluate_nonadaptive(&inst, &mut rs, &worlds),
        evaluate_nonadaptive(&inst, &mut base, &worlds),
    ];
    for s in adaptive.iter().chain(&nonadaptive) {
        assert_eq!(s.profits.len(), 5, "{}", s.algorithm);
        for p in &s.profits {
            assert!(p.is_finite(), "{}: non-finite profit", s.algorithm);
            // No policy can lose more than c(T) or win more than n.
            assert!(*p >= -inst.total_cost() - 1e-9, "{}: {p}", s.algorithm);
            assert!(
                *p <= inst.graph().num_nodes() as f64,
                "{}: {p}",
                s.algorithm
            );
        }
    }
}

#[test]
fn informed_policies_beat_the_baseline_on_average() {
    // The entire point of TPM: selecting a subset of T beats seeding all of
    // T (profits of informed algorithms >= Baseline, Fig. 2's main message).
    let inst = small_instance(CostSplit::DegreeProportional);
    let worlds: Vec<u64> = (0..5).collect();

    let mut hatp = Hatp {
        seed: 3,
        threads: 2,
        ..Default::default()
    };
    let hatp_sum = evaluate_adaptive(&inst, &mut hatp, &worlds);
    let mut ndg = Ndg::new(20_000, 3, 2);
    let ndg_sum = evaluate_nonadaptive(&inst, &mut ndg, &worlds);
    let base_sum = evaluate_nonadaptive(&inst, &mut Baseline, &worlds);

    assert!(
        hatp_sum.mean_profit() >= base_sum.mean_profit() - 1e-9,
        "HATP {} vs Baseline {}",
        hatp_sum.mean_profit(),
        base_sum.mean_profit()
    );
    assert!(
        ndg_sum.mean_profit() >= base_sum.mean_profit() - 1e-9,
        "NDG {} vs Baseline {}",
        ndg_sum.mean_profit(),
        base_sum.mean_profit()
    );
}

#[test]
fn adaptive_hatp_at_least_matches_its_nonadaptive_tailoring() {
    // Fig. 2/3's second message: HATP >= HNTP (adaptivity helps). On a small
    // instance the gap can be thin and the per-world variance large, so
    // average over enough worlds and compare with a small tolerance.
    let inst = small_instance(CostSplit::Uniform);
    let worlds: Vec<u64> = (0..16).collect();
    let mut hatp = Hatp {
        seed: 7,
        threads: 2,
        ..Default::default()
    };
    let a = evaluate_adaptive(&inst, &mut hatp, &worlds);
    let mut hntp = Hntp::new(Hatp {
        seed: 7,
        threads: 2,
        ..Default::default()
    });
    let na = evaluate_nonadaptive(&inst, &mut hntp, &worlds);
    assert!(
        a.mean_profit() >= na.mean_profit() - 0.05 * na.mean_profit().abs(),
        "HATP {} should not lose to HNTP {}",
        a.mean_profit(),
        na.mean_profit()
    );
}

#[test]
fn predefined_cost_pipeline_works_with_both_selectors() {
    let graph = Dataset::NetHept.generate(0.03, 9);
    for selector in [TargetSelector::Ndg, TargetSelector::Nsg] {
        let inst = predefined_instance(
            graph.clone(),
            1.0, // λ scaled to the miniature graph
            CostSplit::Uniform,
            selector,
            10_000,
            9,
            2,
            None,
        );
        // The derived target set may be empty if nothing is profitable at
        // this λ; both outcomes must be handled gracefully.
        if inst.k() == 0 {
            continue;
        }
        let worlds: Vec<u64> = (0..3).collect();
        let mut hatp = Hatp {
            seed: 2,
            threads: 2,
            ..Default::default()
        };
        let s = evaluate_adaptive(&inst, &mut hatp, &worlds);
        assert!(s.mean_profit().is_finite());
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let inst = small_instance(CostSplit::Uniform);
        let worlds: Vec<u64> = (0..3).collect();
        let mut hatp = Hatp {
            seed: 11,
            threads: 3,
            ..Default::default()
        };
        evaluate_adaptive(&inst, &mut hatp, &worlds).profits
    };
    assert_eq!(run(), run());
}
