//! Cross-validation of the noise-model algorithms against the oracle model:
//! with generous sampling, ADDATP and HATP must make the same decisions ADG
//! makes with an exact oracle, and their per-world profits must coincide.

use adaptive_tpm::core::oracle::{ExactOracle, McOracle, RisOracle, SpreadOracle};
use adaptive_tpm::core::policies::{Addatp, Adg, Hatp};
use adaptive_tpm::core::runner::evaluate_adaptive;
use adaptive_tpm::core::TpmInstance;
use adaptive_tpm::graph::{GraphBuilder, ResidualGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random instance with *comfortable margins*: costs are pushed away from
/// the decision boundary so any estimator with moderate accuracy lands on
/// the oracle decision. Margins are enforced by construction: cost is either
/// 40% or 250% of the node's exact singleton spread.
fn clear_margin_instance(seed: u64) -> TpmInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(5..9);
    let mut b = GraphBuilder::new(n);
    let m = rng.gen_range(3..10);
    for _ in 0..m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            b.add_edge(u, v, rng.gen_range(0.2..0.9)).unwrap();
        }
    }
    let g = b.build();
    let k = 3.min(n);
    let target: Vec<u32> = (0..k as u32).collect();
    let costs: Vec<f64> = target
        .iter()
        .map(|&u| {
            let spread = adaptive_tpm::diffusion::exact_spread(&&g, &[u]);
            if rng.gen_bool(0.5) {
                spread * 0.4
            } else {
                spread * 2.5
            }
        })
        .collect();
    TpmInstance::new(g, target, &costs)
}

#[test]
fn addatp_and_hatp_replicate_adg_given_margins() {
    // Multiplicative margins do not rule out *absolutely* borderline nodes
    // (a node with spread 1.3 and cost 0.5 has profit < 1, inside the C2
    // stopping bar n_i·ζ_i ≤ η = 1), so the algorithms are allowed to decide
    // such nodes either way at a bounded loss of ~2η each. The contract
    // verified here is the actual guarantee: decisions match the exact
    // oracle except on rare borderline flips, and every flip costs at most
    // the C2 loss bound.
    let worlds: Vec<u64> = (0..6).collect();
    let mut comparisons = 0usize;
    let mut flips = 0usize;
    for seed in 0..12u64 {
        let inst = clear_margin_instance(seed);
        let exact = evaluate_adaptive(&inst, &mut Adg::new(ExactOracle), &worlds);
        let mut addatp = Addatp {
            seed,
            ..Default::default()
        };
        let add = evaluate_adaptive(&inst, &mut addatp, &worlds);
        let mut hatp = Hatp {
            seed,
            ..Default::default()
        };
        let hat = evaluate_adaptive(&inst, &mut hatp, &worlds);
        for (name, noisy) in [("ADDATP", &add.profits), ("HATP", &hat.profits)] {
            for (w, (e, p)) in exact.profits.iter().zip(noisy).enumerate() {
                comparisons += 1;
                if (e - p).abs() > 1e-9 {
                    flips += 1;
                    assert!(
                        (e - p).abs() <= 2.0 + 1e-9,
                        "seed {seed} world {w}: {name} lost {} > C2 bound",
                        (e - p).abs()
                    );
                }
            }
        }
    }
    assert!(
        flips * 10 <= comparisons,
        "borderline flips should be rare: {flips}/{comparisons}"
    );
}

#[test]
fn mc_and_ris_oracles_reproduce_adg_decisions() {
    let worlds: Vec<u64> = (0..4).collect();
    for seed in 20..26u64 {
        let inst = clear_margin_instance(seed);
        let exact = evaluate_adaptive(&inst, &mut Adg::new(ExactOracle), &worlds);
        let mc = evaluate_adaptive(&inst, &mut Adg::new(McOracle::new(8000, seed)), &worlds);
        let ris = evaluate_adaptive(&inst, &mut Adg::new(RisOracle::new(8000, seed, 2)), &worlds);
        assert_eq!(exact.profits, mc.profits, "seed {seed}: MC oracle diverged");
        assert_eq!(
            exact.profits, ris.profits,
            "seed {seed}: RIS oracle diverged"
        );
    }
}

#[test]
fn oracle_estimates_agree_within_tolerance_on_residual_graphs() {
    let inst = clear_margin_instance(77);
    let mut view = ResidualGraph::new(inst.graph());
    view.remove(0);
    let set = [1u32, 2];
    let mut exact = ExactOracle;
    let truth = exact.spread(&view, &set);
    let mut mc = McOracle::new(60_000, 3);
    let mut ris = RisOracle::new(60_000, 3, 2);
    assert!((mc.spread(&view, &set) - truth).abs() < 0.05 * truth.max(1.0));
    assert!((ris.spread(&view, &set) - truth).abs() < 0.05 * truth.max(1.0));
}

#[test]
fn hatp_work_scales_sublinearly_vs_addatp_with_borderline_nodes() {
    // The §IV-A complexity claim at miniature scale: put one borderline node
    // on progressively larger graphs; ADDATP's sampling grows ~n², HATP ~n.
    let mut prev_ratio = 0.0f64;
    for &n in &[200usize, 800] {
        let b = GraphBuilder::new(n);
        let inst = TpmInstance::new(b.build(), vec![0], &[1.0]);
        let mut hatp = Hatp {
            seed: 1,
            ..Default::default()
        };
        let h = evaluate_adaptive(&inst, &mut hatp, &[1]);
        let mut addatp = Addatp {
            seed: 1,
            ..Default::default()
        };
        let a = evaluate_adaptive(&inst, &mut addatp, &[1]);
        let ratio = a.sampling_work as f64 / h.sampling_work.max(1) as f64;
        assert!(
            ratio > prev_ratio,
            "ADDATP/HATP work ratio should grow with n: {ratio} after {prev_ratio}"
        );
        prev_ratio = ratio;
    }
    assert!(
        prev_ratio > 10.0,
        "at n=800 the gap should be large: {prev_ratio}"
    );
}
