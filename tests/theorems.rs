//! Machine checks of the paper's theory on exhaustively-solved instances.
//!
//! Theorem 1 (`Λ(ADG) ≥ Λ(π_opt)/3`), the Lemma 1 invariant
//! (`ρ_f + ρ_r ≥ 0`), and the adaptivity gap (`Λ(π_opt) ≥ max_S ρ(S)`)
//! are verified against brute-forced optima over randomized tiny instances.

use adaptive_tpm::core::oracle::{ExactOracle, SpreadOracle};
use adaptive_tpm::core::policies::Adg;
use adaptive_tpm::core::theory::{
    concat_seed_sets, exact_policy_value, intersect_seed_sets, optimal_adaptive_value,
    optimal_nonadaptive_value,
};
use adaptive_tpm::core::TpmInstance;
use adaptive_tpm::graph::{GraphBuilder, ResidualGraph};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random instance: <= 5 nodes, <= 9 edges, 2-3 targets, costs near the
/// interesting range (comparable to singleton spreads).
///
/// The paper's guarantees require `ρ(T) ≥ 0` (§II-B); random costs are
/// rescaled to respect that precondition while staying close to the
/// decision boundary.
fn random_tiny_instance(seed: u64) -> TpmInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(3..6);
    let mut b = GraphBuilder::new(n);
    let m = rng.gen_range(2..10);
    for _ in 0..m {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            b.add_edge(u, v, rng.gen_range(0.1..0.95)).unwrap();
        }
    }
    let g = b.build();
    let k = rng.gen_range(2..4usize).min(n);
    let mut target: Vec<u32> = (0..n as u32).collect();
    // Deterministic shuffle.
    for i in (1..target.len()).rev() {
        target.swap(i, rng.gen_range(0..=i));
    }
    target.truncate(k);
    let mut costs: Vec<f64> = (0..k).map(|_| rng.gen_range(0.3..2.5)).collect();
    // Enforce the nonnegative-target-profit assumption: c(T) <= E[I(T)].
    let spread_t = adaptive_tpm::diffusion::exact_spread(&&g, &target);
    let total: f64 = costs.iter().sum();
    if total > spread_t {
        let shrink = spread_t / total;
        for c in &mut costs {
            *c *= shrink;
        }
    }
    TpmInstance::new(g, target, &costs)
}

#[test]
fn theorem_1_adg_is_a_third_approximation() {
    let mut checked = 0;
    for seed in 0..60u64 {
        let inst = random_tiny_instance(seed);
        let opt = optimal_adaptive_value(&inst);
        let adg = exact_policy_value(&inst, &mut Adg::new(ExactOracle));
        assert!(
            adg >= opt / 3.0 - 1e-9,
            "seed {seed}: Lambda(ADG) = {adg} < OPT/3 = {}",
            opt / 3.0
        );
        assert!(
            adg <= opt + 1e-9,
            "seed {seed}: ADG {adg} exceeds OPT {opt}"
        );
        checked += 1;
    }
    assert_eq!(checked, 60);
}

#[test]
fn adaptivity_gap_is_nonnegative_everywhere() {
    for seed in 0..60u64 {
        let inst = random_tiny_instance(seed);
        let non = optimal_nonadaptive_value(&inst);
        let ada = optimal_adaptive_value(&inst);
        assert!(
            ada >= non - 1e-9,
            "seed {seed}: adaptive OPT {ada} below nonadaptive OPT {non}"
        );
    }
}

#[test]
fn lemma_1_front_plus_rear_profit_is_nonnegative() {
    // For any residual graph, any S ⊆ T' ∖ {u}: ρ_f + ρ_r =
    // E[I(u | S)] − E[I(u | T' ∖ {u})] ≥ 0 by submodularity of spread.
    let mut oracle = ExactOracle;
    for seed in 100..140u64 {
        let inst = random_tiny_instance(seed);
        let target = inst.target().to_vec();
        if target.len() < 2 {
            continue;
        }
        let mut view = ResidualGraph::new(inst.graph());
        // Also exercise a residual state.
        if seed % 2 == 0 {
            view.remove(target[target.len() - 1]);
        }
        let u = target[0];
        if !view.is_alive_test(u) {
            continue;
        }
        let rest: Vec<u32> = target[1..].to_vec();
        let rho_f = oracle.marginal(&view, u, &[]) - inst.cost(u);
        let rho_r = inst.cost(u) - oracle.marginal(&view, u, &rest);
        assert!(
            rho_f + rho_r >= -1e-9,
            "seed {seed}: rho_f {rho_f} + rho_r {rho_r} < 0"
        );
    }
}

// ResidualGraph::is_alive needs the GraphView trait in scope; the helper
// keeps the test body tidy.
trait AliveExt {
    fn is_alive_test(&self, u: u32) -> bool;
}
impl AliveExt for ResidualGraph<'_> {
    fn is_alive_test(&self, u: u32) -> bool {
        use adaptive_tpm::graph::GraphView;
        self.is_alive(u)
    }
}

#[test]
fn policy_combinators_match_definitions() {
    // S(π ⊕ π') = S(π) ∪ S(π'), S(π ⊗ π') = S(π) ∩ S(π') — Definitions 5/6.
    let a = vec![1u32, 2, 3];
    let b = vec![3u32, 4];
    assert_eq!(concat_seed_sets(&a, &b), vec![1, 2, 3, 4]);
    assert_eq!(intersect_seed_sets(&a, &b), vec![3]);
    // π ⊗ π = π and π ⊕ π = π.
    assert_eq!(concat_seed_sets(&a, &a), a);
    assert_eq!(intersect_seed_sets(&a, &a), a);
}

#[test]
fn theorem_2_style_bound_holds_for_addatp_on_tiny_instances() {
    // ADDATP's guarantee is Λ ≥ (Λ(π_opt) − (2k+2))/3; on tiny instances the
    // slack term dominates, so the bound is trivially satisfied — the
    // meaningful check is that ADDATP never does something *worse than the
    // bound* even with its noisy estimates.
    use adaptive_tpm::core::policies::Addatp;
    for seed in 0..10u64 {
        let inst = random_tiny_instance(seed);
        let k = inst.k() as f64;
        let opt = optimal_adaptive_value(&inst);
        let mut policy = Addatp {
            seed,
            max_theta: 1 << 14,
            ..Default::default()
        };
        let val = exact_policy_value(&inst, &mut policy);
        let floor = (opt - (2.0 * k + 2.0)) / 3.0;
        assert!(
            val >= floor - 1e-9,
            "seed {seed}: ADDATP {val} below Theorem 2 floor {floor}"
        );
    }
}
