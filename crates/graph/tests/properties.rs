//! Property-based tests for the graph substrate.

use std::collections::HashSet;

use atpm_graph::{GraphBuilder, GraphView, ResidualGraph};
use proptest::prelude::*;

/// Arbitrary edge lists over a small node universe.
fn edge_list_strategy(max_n: u32) -> impl Strategy<Value = (u32, Vec<(u32, u32, f32)>)> {
    (2..max_n).prop_flat_map(move |n| {
        let edges = proptest::collection::vec((0..n, 0..n, 0.01f32..=1.0f32), 0..60);
        (Just(n), edges)
    })
}

proptest! {
    /// CSR invariants hold for every input: degrees sum to m, forward and
    /// reverse adjacency describe the same edge multiset, edge ids round-trip.
    #[test]
    fn csr_invariants((n, edges) in edge_list_strategy(24)) {
        let mut b = GraphBuilder::new(n as usize);
        for &(u, v, p) in &edges {
            b.add_edge(u, v, p).unwrap();
        }
        let g = b.build();

        let out_sum: usize = (0..n).map(|u| g.out_degree(u)).sum();
        let in_sum: usize = (0..n).map(|u| g.in_degree(u)).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());

        // Forward edge set == reverse edge set.
        let fwd: HashSet<(u32, u32)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        let mut rev = HashSet::new();
        for v in 0..n {
            let (sources, _, ids) = g.in_slice(v);
            for (i, &u) in sources.iter().enumerate() {
                rev.insert((u, v));
                prop_assert_eq!(g.edge_source(ids[i]), u);
                prop_assert_eq!(g.edge_target(ids[i]), v);
            }
        }
        prop_assert_eq!(fwd, rev);

        // No self loops survive, no duplicate (u, v) pairs survive.
        prop_assert!(g.edges().all(|(u, v, _)| u != v));
        let pairs: Vec<(u32, u32)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        let dedup: HashSet<_> = pairs.iter().copied().collect();
        prop_assert_eq!(pairs.len(), dedup.len());
    }

    /// Building from any permutation of the edge list yields the same graph.
    #[test]
    fn build_is_order_independent((n, mut edges) in edge_list_strategy(16), seed in 0u64..1000) {
        let mut b1 = GraphBuilder::new(n as usize);
        for &(u, v, p) in &edges {
            b1.add_edge(u, v, p).unwrap();
        }
        let g1 = b1.build();

        // Deterministic shuffle driven by `seed`.
        let len = edges.len();
        if len > 1 {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            for i in (1..len).rev() {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                edges.swap(i, (state % (i as u64 + 1)) as usize);
            }
        }
        let mut b2 = GraphBuilder::new(n as usize);
        for &(u, v, p) in &edges {
            b2.add_edge(u, v, p).unwrap();
        }
        let g2 = b2.build();
        prop_assert_eq!(g1.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());
    }

    /// Text and binary IO round-trip arbitrary graphs exactly.
    #[test]
    fn io_round_trips((n, edges) in edge_list_strategy(16)) {
        let mut b = GraphBuilder::new(n as usize);
        for &(u, v, p) in &edges {
            b.add_edge(u, v, p).unwrap();
        }
        let g = b.build();

        let mut bin = Vec::new();
        atpm_graph::io::write_binary(&g, &mut bin).unwrap();
        let g2 = atpm_graph::io::read_binary(&bin[..]).unwrap();
        prop_assert_eq!(g.edges().collect::<Vec<_>>(), g2.edges().collect::<Vec<_>>());

        let mut txt = Vec::new();
        atpm_graph::io::write_edge_list(&g, &mut txt).unwrap();
        let g3 = atpm_graph::io::read_edge_list(&txt[..], Some(n as usize), 0.5, false).unwrap();
        prop_assert_eq!(g.num_edges(), g3.num_edges());
        for ((u1, v1, p1), (u2, v2, p2)) in g.edges().zip(g3.edges()) {
            prop_assert_eq!((u1, v1), (u2, v2));
            prop_assert!((p1 - p2).abs() < 1e-6);
        }
    }

    /// Residual views: alive count equals n minus distinct removals, and the
    /// alive iterator agrees with `is_alive` point queries.
    #[test]
    fn residual_view_consistency(
        (n, edges) in edge_list_strategy(32),
        removals in proptest::collection::vec(0u32..32, 0..40),
    ) {
        let mut b = GraphBuilder::new(n as usize);
        for &(u, v, p) in &edges {
            b.add_edge(u, v, p).unwrap();
        }
        let g = b.build();
        let mut r = ResidualGraph::new(&g);
        let mut removed: HashSet<u32> = HashSet::new();
        for &u in removals.iter().filter(|&&u| u < n) {
            r.remove(u);
            removed.insert(u);
        }
        prop_assert_eq!(r.num_alive(), n as usize - removed.len());
        let alive: HashSet<u32> = r.alive_nodes().collect();
        prop_assert_eq!(alive.len(), r.num_alive());
        for u in 0..n {
            prop_assert_eq!(alive.contains(&u), r.is_alive(u));
            prop_assert_eq!(removed.contains(&u), !r.is_alive(u));
        }
    }
}
