//! Graph (de)serialization: SNAP-style text edge lists and a fast
//! little-endian binary format.
//!
//! The text format is line-oriented: `src dst [prob]`, `#`-prefixed comments,
//! whitespace-separated. When the probability column is omitted the caller's
//! [`WeightingScheme`](crate::WeightingScheme) is expected to assign weights
//! after loading (pass any placeholder scheme-dependent value at build time).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::GraphError;
use crate::{Graph, GraphBuilder, Node};

const MAGIC: &[u8; 8] = b"ATPMGRF1";

/// Parses a text edge list from `reader`.
///
/// * `n` is inferred as `max node id + 1` unless `num_nodes` is given.
/// * `default_prob` is used for two-column lines.
/// * `undirected` inserts both arcs per line.
pub fn read_edge_list<R: Read>(
    reader: R,
    num_nodes: Option<usize>,
    default_prob: f32,
    undirected: bool,
) -> Result<Graph, GraphError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(Node, Node, f32)> = Vec::new();
    let mut max_node: u64 = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse_node = |tok: Option<&str>, what: &str| -> Result<u64, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: format!("missing {what}"),
            })?
            .parse::<u64>()
            .map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad {what}: {e}"),
            })
        };
        let src = parse_node(it.next(), "source")?;
        let dst = parse_node(it.next(), "destination")?;
        let prob = match it.next() {
            Some(tok) => tok.parse::<f32>().map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad probability: {e}"),
            })?,
            None => default_prob,
        };
        if src > u32::MAX as u64 || dst > u32::MAX as u64 {
            return Err(GraphError::Parse {
                line: lineno + 1,
                message: "node id exceeds u32".into(),
            });
        }
        max_node = max_node.max(src).max(dst);
        edges.push((src as Node, dst as Node, prob));
    }
    let n = num_nodes.unwrap_or(if edges.is_empty() {
        0
    } else {
        max_node as usize + 1
    });
    let mut b = GraphBuilder::with_capacity(n, edges.len() * if undirected { 2 } else { 1 });
    for (src, dst, p) in edges {
        if undirected {
            b.add_undirected(src, dst, p)?;
        } else {
            b.add_edge(src, dst, p)?;
        }
    }
    b.try_build()
}

/// Loads a text edge list from a file path. See [`read_edge_list`].
pub fn load_edge_list<P: AsRef<Path>>(
    path: P,
    num_nodes: Option<usize>,
    default_prob: f32,
    undirected: bool,
) -> Result<Graph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file, num_nodes, default_prob, undirected)
}

/// Writes `g` as a text edge list (`src dst prob` per line).
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# atpm edge list: n={} m={}",
        g.num_nodes(),
        g.num_edges()
    )?;
    for (u, v, p) in g.edges() {
        writeln!(w, "{u} {v} {p}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes `g` in the versioned binary format (magic, n, m, then the forward
/// edge array). Little-endian throughout.
pub fn write_binary<W: Write>(g: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&(g.num_nodes() as u64).to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    for (u, v, p) in g.edges() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
        w.write_all(&p.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a graph previously written by [`write_binary`].
pub fn read_binary<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|_| GraphError::Format("file too short for magic".into()))?;
    if &magic != MAGIC {
        return Err(GraphError::Format(format!(
            "bad magic {:?}; expected {:?}",
            magic, MAGIC
        )));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)
        .map_err(|_| GraphError::Format("missing node count".into()))?;
    let n = u64::from_le_bytes(buf8) as usize;
    r.read_exact(&mut buf8)
        .map_err(|_| GraphError::Format("missing edge count".into()))?;
    let m = u64::from_le_bytes(buf8) as usize;
    let mut b = GraphBuilder::with_capacity(n, m);
    let mut rec = [0u8; 12];
    for i in 0..m {
        r.read_exact(&mut rec)
            .map_err(|_| GraphError::Format(format!("truncated at edge {i} of {m}")))?;
        let src = u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes"));
        let dst = u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes"));
        let p = f32::from_le_bytes(rec[8..12].try_into().expect("4 bytes"));
        b.add_edge(src, dst, p)?;
    }
    b.try_build()
}

/// Convenience: save to / load from a file path in binary format.
pub fn save_binary<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), GraphError> {
    write_binary(g, std::fs::File::create(path)?)
}

/// See [`save_binary`].
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> Graph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.25).unwrap();
        b.add_edge(4, 0, 1.0).unwrap();
        b.build()
    }

    fn edges_of(g: &Graph) -> Vec<(u32, u32, f32)> {
        g.edges().collect()
    }

    #[test]
    fn text_round_trip() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], Some(5), 0.1, false).unwrap();
        assert_eq!(edges_of(&g), edges_of(&g2));
    }

    #[test]
    fn binary_round_trip() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g.num_nodes(), g2.num_nodes());
        assert_eq!(edges_of(&g), edges_of(&g2));
    }

    #[test]
    fn text_parses_comments_defaults_and_infers_n() {
        let text = "# comment\n\n0 1\n1 2 0.9\n";
        let g = read_edge_list(text.as_bytes(), None, 0.33, false).unwrap();
        assert_eq!(g.num_nodes(), 3);
        let e = edges_of(&g);
        assert_eq!(e[0], (0, 1, 0.33));
        assert_eq!(e[1], (1, 2, 0.9));
    }

    #[test]
    fn text_undirected_doubles_edges() {
        let g = read_edge_list("0 1 0.5\n".as_bytes(), None, 0.5, true).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn text_reports_parse_errors_with_line_numbers() {
        let err = read_edge_list("0 1 0.5\nxyz 2\n".as_bytes(), None, 0.5, false).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected Parse error, got {other}"),
        }
    }

    #[test]
    fn binary_rejects_bad_magic_and_truncation() {
        assert!(matches!(
            read_binary(&b"NOTMAGIC"[..]),
            Err(GraphError::Format(_))
        ));
        let g = sample_graph();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_binary(&buf[..]), Err(GraphError::Format(_))));
    }
}
