//! Graph (de)serialization: SNAP-style text edge lists and a fast
//! little-endian binary format.
//!
//! The text format is line-oriented: `src dst [prob]`, `#`-prefixed comments,
//! whitespace-separated. When the probability column is omitted the caller's
//! [`WeightingScheme`](crate::WeightingScheme) is expected to assign weights
//! after loading (pass any placeholder scheme-dependent value at build time).

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::GraphError;
use crate::{Graph, GraphBuilder, Node};

const MAGIC: &[u8; 8] = b"ATPMGRF1";

/// Parses a text edge list from `reader`.
///
/// * `n` is inferred as `max node id + 1` unless `num_nodes` is given.
/// * `default_prob` is used for two-column lines.
/// * `undirected` inserts both arcs per line.
pub fn read_edge_list<R: Read>(
    reader: R,
    num_nodes: Option<usize>,
    default_prob: f32,
    undirected: bool,
) -> Result<Graph, GraphError> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(Node, Node, f32)> = Vec::new();
    let mut max_node: u64 = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse_node = |tok: Option<&str>, what: &str| -> Result<u64, GraphError> {
            tok.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: format!("missing {what}"),
            })?
            .parse::<u64>()
            .map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad {what}: {e}"),
            })
        };
        let src = parse_node(it.next(), "source")?;
        let dst = parse_node(it.next(), "destination")?;
        let prob = match it.next() {
            Some(tok) => tok.parse::<f32>().map_err(|e| GraphError::Parse {
                line: lineno + 1,
                message: format!("bad probability: {e}"),
            })?,
            None => default_prob,
        };
        if src > u32::MAX as u64 || dst > u32::MAX as u64 {
            return Err(GraphError::Parse {
                line: lineno + 1,
                message: "node id exceeds u32".into(),
            });
        }
        max_node = max_node.max(src).max(dst);
        edges.push((src as Node, dst as Node, prob));
    }
    let n = num_nodes.unwrap_or(if edges.is_empty() {
        0
    } else {
        max_node as usize + 1
    });
    let mut b = GraphBuilder::with_capacity(n, edges.len() * if undirected { 2 } else { 1 });
    for (src, dst, p) in edges {
        if undirected {
            b.add_undirected(src, dst, p)?;
        } else {
            b.add_edge(src, dst, p)?;
        }
    }
    b.try_build()
}

/// Loads a text edge list from a file path. See [`read_edge_list`].
pub fn load_edge_list<P: AsRef<Path>>(
    path: P,
    num_nodes: Option<usize>,
    default_prob: f32,
    undirected: bool,
) -> Result<Graph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file, num_nodes, default_prob, undirected)
}

/// Writes `g` as a text edge list (`src dst prob` per line).
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# atpm edge list: n={} m={}",
        g.num_nodes(),
        g.num_edges()
    )?;
    for (u, v, p) in g.edges() {
        writeln!(w, "{u} {v} {p}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes `g` in the versioned binary format (magic, n, m, then the forward
/// edge array). Little-endian throughout.
pub fn write_binary<W: Write>(g: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    w.write_all(&(g.num_nodes() as u64).to_le_bytes())?;
    w.write_all(&(g.num_edges() as u64).to_le_bytes())?;
    for (u, v, p) in g.edges() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
        w.write_all(&p.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Node ids are `u32`, so a header claiming more nodes than `u32::MAX + 1`
/// cannot describe an addressable graph — reject it before allocating.
const MAX_BINARY_NODES: u64 = u32::MAX as u64 + 1;

/// Pre-reservation cap for the declared edge count: a corrupt or hostile
/// header may claim up to `u64::MAX` edges, and reserving that up front
/// would abort the process before the truncation check ever runs. Beyond
/// this cap the builder grows on demand and a lying header fails with a
/// clean `truncated` error instead.
const MAX_EDGE_PREALLOC: usize = 1 << 24;

/// Reads a graph previously written by [`write_binary`].
///
/// Every failure mode of an untrusted input — short file, bad magic,
/// truncated edge array, node ids outside the declared range, header counts
/// beyond what the format can address — is reported as a [`GraphError`];
/// this path never panics or aborts on malformed bytes (pinned by the
/// `binary_*` tests below).
pub fn read_binary<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)
        .map_err(|_| GraphError::Format("file too short for magic".into()))?;
    if &magic != MAGIC {
        return Err(GraphError::Format(format!(
            "bad magic {:?}; expected {:?}",
            magic, MAGIC
        )));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)
        .map_err(|_| GraphError::Format("missing node count".into()))?;
    let n = u64::from_le_bytes(buf8);
    if n > MAX_BINARY_NODES {
        return Err(GraphError::Format(format!(
            "node count {n} exceeds the u32 id space"
        )));
    }
    let n = n as usize;
    r.read_exact(&mut buf8)
        .map_err(|_| GraphError::Format("missing edge count".into()))?;
    let m64 = u64::from_le_bytes(buf8);
    let m = usize::try_from(m64)
        .map_err(|_| GraphError::Format(format!("edge count {m64} exceeds this platform")))?;
    let mut b = GraphBuilder::with_capacity(n, m.min(MAX_EDGE_PREALLOC));
    let mut rec = [0u8; 12];
    for i in 0..m {
        r.read_exact(&mut rec)
            .map_err(|_| GraphError::Format(format!("truncated at edge {i} of {m}")))?;
        let src = u32::from_le_bytes(rec[0..4].try_into().expect("4 bytes"));
        let dst = u32::from_le_bytes(rec[4..8].try_into().expect("4 bytes"));
        let p = f32::from_le_bytes(rec[8..12].try_into().expect("4 bytes"));
        b.add_edge(src, dst, p)?;
    }
    b.try_build()
}

/// Loads a graph from `path`, sniffing the format: files starting with the
/// `ATPMGRF1` magic are read as [`read_binary`], everything else as a text
/// edge list (`n` inferred, `default_prob` for two-column lines, directed).
pub fn load_auto<P: AsRef<Path>>(path: P, default_prob: f32) -> Result<Graph, GraphError> {
    let mut file = BufReader::new(std::fs::File::open(path)?);
    let head = file.fill_buf()?;
    if head.starts_with(MAGIC) {
        read_binary(file)
    } else {
        read_edge_list(file, None, default_prob, false)
    }
}

/// Convenience: save to / load from a file path in binary format.
pub fn save_binary<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), GraphError> {
    write_binary(g, std::fs::File::create(path)?)
}

/// See [`save_binary`].
pub fn load_binary<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> Graph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.25).unwrap();
        b.add_edge(4, 0, 1.0).unwrap();
        b.build()
    }

    fn edges_of(g: &Graph) -> Vec<(u32, u32, f32)> {
        g.edges().collect()
    }

    #[test]
    fn text_round_trip() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], Some(5), 0.1, false).unwrap();
        assert_eq!(edges_of(&g), edges_of(&g2));
    }

    #[test]
    fn binary_round_trip() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g.num_nodes(), g2.num_nodes());
        assert_eq!(edges_of(&g), edges_of(&g2));
    }

    #[test]
    fn text_parses_comments_defaults_and_infers_n() {
        let text = "# comment\n\n0 1\n1 2 0.9\n";
        let g = read_edge_list(text.as_bytes(), None, 0.33, false).unwrap();
        assert_eq!(g.num_nodes(), 3);
        let e = edges_of(&g);
        assert_eq!(e[0], (0, 1, 0.33));
        assert_eq!(e[1], (1, 2, 0.9));
    }

    #[test]
    fn text_undirected_doubles_edges() {
        let g = read_edge_list("0 1 0.5\n".as_bytes(), None, 0.5, true).unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn text_reports_parse_errors_with_line_numbers() {
        let err = read_edge_list("0 1 0.5\nxyz 2\n".as_bytes(), None, 0.5, false).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected Parse error, got {other}"),
        }
    }

    /// Hand-assembles a binary file with the given header and edge records.
    fn raw_binary(n: u64, m: u64, edges: &[(u32, u32, f32)]) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&n.to_le_bytes());
        buf.extend_from_slice(&m.to_le_bytes());
        for &(u, v, p) in edges {
            buf.extend_from_slice(&u.to_le_bytes());
            buf.extend_from_slice(&v.to_le_bytes());
            buf.extend_from_slice(&p.to_le_bytes());
        }
        buf
    }

    #[test]
    fn binary_rejects_node_id_overflowing_declared_count() {
        // Header says 2 nodes; an edge references node 5. Must surface as a
        // GraphError (NodeOutOfRange via the builder), not a panic.
        let buf = raw_binary(2, 1, &[(0, 5, 0.5)]);
        assert!(matches!(
            read_binary(&buf[..]),
            Err(GraphError::NodeOutOfRange { node: 5, .. })
        ));
    }

    #[test]
    fn binary_rejects_node_count_beyond_u32_id_space() {
        let buf = raw_binary(1u64 << 40, 0, &[]);
        assert!(matches!(read_binary(&buf[..]), Err(GraphError::Format(_))));
    }

    #[test]
    fn binary_hostile_edge_count_fails_clean_instead_of_aborting() {
        // A header claiming 2^60 edges must not pre-allocate 2^60 records;
        // it reads what is there and reports truncation.
        let buf = raw_binary(3, 1u64 << 60, &[(0, 1, 0.5)]);
        match read_binary(&buf[..]) {
            Err(GraphError::Format(msg)) => assert!(msg.contains("truncated"), "{msg}"),
            other => panic!("expected truncation error, got {other:?}"),
        }
    }

    #[test]
    fn binary_rejects_missing_header_fields() {
        // Magic only: node count missing.
        assert!(matches!(
            read_binary(&MAGIC[..]),
            Err(GraphError::Format(_))
        ));
        // Magic + node count, edge count missing.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&3u64.to_le_bytes());
        assert!(matches!(read_binary(&buf[..]), Err(GraphError::Format(_))));
    }

    #[test]
    fn binary_rejects_invalid_probability_records() {
        let buf = raw_binary(2, 1, &[(0, 1, 7.5)]);
        assert!(matches!(
            read_binary(&buf[..]),
            Err(GraphError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn load_auto_sniffs_binary_and_text() {
        let g = sample_graph();
        let dir = std::env::temp_dir();
        let bin_path = dir.join("atpm_io_test_auto.bin");
        let txt_path = dir.join("atpm_io_test_auto.txt");
        save_binary(&g, &bin_path).unwrap();
        write_edge_list(&g, std::fs::File::create(&txt_path).unwrap()).unwrap();
        let from_bin = load_auto(&bin_path, 0.1).unwrap();
        let from_txt = load_auto(&txt_path, 0.1).unwrap();
        assert_eq!(edges_of(&g), edges_of(&from_bin));
        assert_eq!(edges_of(&g), edges_of(&from_txt));
        let _ = std::fs::remove_file(bin_path);
        let _ = std::fs::remove_file(txt_path);
    }

    #[test]
    fn binary_rejects_bad_magic_and_truncation() {
        assert!(matches!(
            read_binary(&b"NOTMAGIC"[..]),
            Err(GraphError::Format(_))
        ));
        let g = sample_graph();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(read_binary(&buf[..]), Err(GraphError::Format(_))));
    }
}
