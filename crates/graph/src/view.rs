//! Graph views: the [`GraphView`] trait and the alive-masked [`ResidualGraph`].
//!
//! The adaptive algorithms of the paper repeatedly shrink the graph: after a
//! seed `u_i` is selected and its cascade `A(u_i)` observed, all activated
//! nodes are removed, producing the residual graph `G_{i+1}` (paper §II-B).
//! Copying a multi-million-edge CSR per iteration would dominate the runtime,
//! so removal is represented as a bitmask *view* over the immutable base graph
//! instead: `remove` is O(1) per node and all traversals simply skip dead
//! endpoints.

use rand::Rng;

use crate::{Graph, Node};

/// Read access to a (possibly residual) probabilistic graph.
///
/// Implemented by [`Graph`] itself (everything alive) and [`ResidualGraph`]
/// (alive bitmask). Diffusion, RR-set sampling and all policies are generic
/// over this trait, so the same code path serves the original and every
/// residual graph.
pub trait GraphView {
    /// The immutable base graph that node/edge ids refer to.
    fn base(&self) -> &Graph;

    /// Total node count of the *base* graph (`n`). Alive or not, node ids
    /// always range over `0..num_nodes()`.
    fn num_nodes(&self) -> usize {
        self.base().num_nodes()
    }

    /// Number of alive nodes (`n_i` in the paper).
    fn num_alive(&self) -> usize;

    /// Whether `u` is still present in this view.
    fn is_alive(&self, u: Node) -> bool;

    /// Out-neighbours of `u` in the base graph: `(targets, probs, edge-id range)`.
    /// Callers must filter targets through [`is_alive`](Self::is_alive).
    #[inline]
    fn out_slice(&self, u: Node) -> (&[Node], &[f32], std::ops::Range<u32>) {
        self.base().out_slice(u)
    }

    /// In-neighbours of `v` in the base graph: `(sources, probs, edge ids)`.
    /// Callers must filter sources through [`is_alive`](Self::is_alive).
    #[inline]
    fn in_slice(&self, v: Node) -> (&[Node], &[f32], &[crate::Edge]) {
        self.base().in_slice(v)
    }

    /// Samples a node uniformly from the alive set, or `None` if empty.
    fn sample_alive<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Node>;

    /// The raw alive-bitmask words backing [`is_alive`](Self::is_alive), or
    /// `None` when every node is alive. Lets [`SampleView`] test liveness
    /// with one shift-and-mask instead of a per-edge virtual call.
    fn alive_words(&self) -> Option<&[u64]> {
        None
    }

    /// Freezes this view into the flat [`SampleView`] the RIS hot loops run
    /// on: base-graph CSR slices, baked thresholds, and the alive bitmask,
    /// with no generics left between the sampler and the arrays. O(1).
    fn sample_view(&self) -> SampleView<'_> {
        SampleView {
            base: self.base(),
            alive: self.alive_words(),
        }
    }
}

/// A frozen, `Copy` sampling view over a [`GraphView`]: the base graph's
/// CSR arrays (probabilities pre-baked to `u32` thresholds at graph build
/// time) plus the optional alive bitmask of a residual view.
///
/// This is what the reverse-BFS inner loop actually traverses — building it
/// per sample is free (two pointers), and it keeps the hot loop monomorphic
/// over a single concrete type whatever view the caller holds.
#[derive(Clone, Copy)]
pub struct SampleView<'g> {
    base: &'g Graph,
    alive: Option<&'g [u64]>,
}

/// Hints the CPU to pull the cache line of `p` toward L1. Free on
/// architectures without a stable hint. Safe: a prefetch has no
/// architectural effect, any address is permitted.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p as *const i8)
    }
    #[cfg(target_arch = "aarch64")]
    unsafe {
        core::arch::asm!("prfm pldl1keep, [{0}]", in(reg) p, options(nostack, preserves_flags))
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

impl<'g> SampleView<'g> {
    /// The base graph whose CSR arrays (and baked thresholds) back this view.
    #[inline]
    pub fn base(&self) -> &'g Graph {
        self.base
    }

    /// Whether `u` survives the alive mask (always true for a full view).
    #[inline]
    pub fn is_alive(&self, u: Node) -> bool {
        match self.alive {
            None => true,
            Some(words) => words[u as usize / WORD_BITS] >> (u as usize % WORD_BITS) & 1 != 0,
        }
    }

    /// The packed sampling record of `v` unpacked as `(lo, hi, thr, inv)` —
    /// one 16-byte read (plus the adjacent sentinel/neighbor record for the
    /// span end).
    #[inline]
    pub fn in_meta(&self, v: Node) -> (usize, usize, u32, f64) {
        let (meta, _, _) = self.base.sampling_arrays();
        let m = &meta[v as usize];
        (
            m.lo as usize,
            meta[v as usize + 1].lo as usize,
            m.thr,
            m.inv,
        )
    }

    /// In-edge sources of the span `lo..hi` (from [`in_meta`](Self::in_meta)).
    #[inline]
    pub fn sources(&self, lo: usize, hi: usize) -> &'g [Node] {
        let (_, sources, _) = self.base.sampling_arrays();
        &sources[lo..hi]
    }

    /// Per-edge thresholds of the span `lo..hi` (mixed neighborhoods only).
    #[inline]
    pub fn thresholds(&self, lo: usize, hi: usize) -> &'g [u32] {
        let (_, _, thresholds) = self.base.sampling_arrays();
        &thresholds[lo..hi]
    }

    /// Prefetches `v`'s sampling record — call when `v` joins the BFS
    /// frontier so the record is resident by the time `v` is dequeued.
    #[inline]
    pub fn prefetch_meta(&self, v: Node) {
        let (meta, _, _) = self.base.sampling_arrays();
        prefetch_read(&meta[v as usize]);
    }

    /// Prefetches the head of a node's in-edge span (the hardware streamer
    /// follows for long neighborhoods). Call one frontier member ahead.
    #[inline]
    pub fn prefetch_span(&self, lo: usize, hi: usize) {
        let (_, sources, _) = self.base.sampling_arrays();
        // First two lines (32 sources) cover the common short neighborhood.
        if lo < hi {
            prefetch_read(&sources[lo]);
            if hi - lo > 16 {
                prefetch_read(&sources[lo + 16]);
            }
        }
    }

    // ---- forward face -----------------------------------------------------
    // The out-side mirror of the accessors above: forward cascades (the MC
    // spread oracle, world scoring, server-simulated observations) run on
    // the same packed-record machinery the reverse samplers do, just over
    // the out CSR. Slot `i` of the out arrays is forward edge id `i`, so a
    // span `lo..hi` also hands the caller its edge ids for free.

    /// The packed *out*-side sampling record of `u` unpacked as
    /// `(lo, hi, thr, inv)` — one 16-byte read plus the adjacent record
    /// for the span end.
    #[inline]
    pub fn out_meta(&self, u: Node) -> (usize, usize, u32, f64) {
        let (meta, _, _) = self.base.sampling_arrays_out();
        let m = &meta[u as usize];
        (
            m.lo as usize,
            meta[u as usize + 1].lo as usize,
            m.thr,
            m.inv,
        )
    }

    /// Out-edge targets of the span `lo..hi` (from [`out_meta`](Self::out_meta)).
    #[inline]
    pub fn targets(&self, lo: usize, hi: usize) -> &'g [Node] {
        let (_, targets, _) = self.base.sampling_arrays_out();
        &targets[lo..hi]
    }

    /// Per-edge out thresholds of the span `lo..hi`; slot `i` is the coin
    /// of forward edge id `lo + i`.
    #[inline]
    pub fn out_thresholds(&self, lo: usize, hi: usize) -> &'g [u32] {
        let (_, _, thresholds) = self.base.sampling_arrays_out();
        &thresholds[lo..hi]
    }

    /// Prefetches `u`'s out-side sampling record — call when `u` joins the
    /// cascade frontier so the record is resident by dequeue time.
    #[inline]
    pub fn prefetch_out_meta(&self, u: Node) {
        let (meta, _, _) = self.base.sampling_arrays_out();
        prefetch_read(&meta[u as usize]);
    }

    /// Prefetches the head of a node's out-edge span. Call one frontier
    /// member ahead.
    #[inline]
    pub fn prefetch_out_span(&self, lo: usize, hi: usize) {
        let (_, targets, _) = self.base.sampling_arrays_out();
        if lo < hi {
            prefetch_read(&targets[lo]);
            if hi - lo > 16 {
                prefetch_read(&targets[lo + 16]);
            }
        }
    }
}

impl GraphView for Graph {
    #[inline]
    fn base(&self) -> &Graph {
        self
    }

    #[inline]
    fn num_alive(&self) -> usize {
        self.num_nodes()
    }

    #[inline]
    fn is_alive(&self, _u: Node) -> bool {
        true
    }

    fn sample_alive<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Node> {
        let n = self.num_nodes();
        if n == 0 {
            None
        } else {
            Some(uniform_index(rng, n))
        }
    }
}

impl<T: GraphView> GraphView for &T {
    #[inline]
    fn base(&self) -> &Graph {
        (**self).base()
    }
    #[inline]
    fn num_alive(&self) -> usize {
        (**self).num_alive()
    }
    #[inline]
    fn is_alive(&self, u: Node) -> bool {
        (**self).is_alive(u)
    }
    #[inline]
    fn sample_alive<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Node> {
        (**self).sample_alive(rng)
    }
    #[inline]
    fn alive_words(&self) -> Option<&[u64]> {
        (**self).alive_words()
    }
}

/// Word size of the alive bitmask.
const WORD_BITS: usize = 64;

/// Near-uniform index draw by multiply-shift: maps one 64-bit draw onto
/// `0..n` without the per-call modulo of exact rejection sampling. The bias
/// is at most `n / 2^64` per index (< 2^-40 for any graph this crate can
/// hold) — orders of magnitude below the `2^-32` coin-quantization floor
/// the samplers already document.
#[inline]
fn uniform_index<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Node {
    (((rng.gen::<u64>() as u128) * (n as u128)) >> 64) as Node
}

/// When fewer than this fraction of nodes remain alive, uniform sampling
/// switches from rejection to an explicit alive list (rebuilt lazily).
const REJECTION_MIN_FRACTION: f64 = 1.0 / 64.0;

/// A view of a base [`Graph`] from which some nodes have been removed.
///
/// This is the `G_i` of the paper: the residual graph after activated nodes
/// have been deleted. Removal is monotone — nodes never come back (call
/// [`reset`](ResidualGraph::reset) to start a new realization).
pub struct ResidualGraph<'g> {
    base: &'g Graph,
    alive: Vec<u64>,
    n_alive: usize,
    /// Lazily materialized list of alive nodes, used for uniform sampling once
    /// the alive fraction is too small for rejection sampling. Invalidated
    /// (cleared) by every removal. A mutex (not `RefCell`) so residual views
    /// can be shared across sampler threads.
    alive_list: std::sync::Mutex<Vec<Node>>,
}

impl<'g> ResidualGraph<'g> {
    /// A view with every node alive.
    pub fn new(base: &'g Graph) -> Self {
        let n = base.num_nodes();
        let words = n.div_ceil(WORD_BITS);
        let mut alive = vec![!0u64; words];
        // Clear the tail bits beyond n so popcounts stay exact.
        if !n.is_multiple_of(WORD_BITS) && words > 0 {
            alive[words - 1] = (1u64 << (n % WORD_BITS)) - 1;
        }
        ResidualGraph {
            base,
            alive,
            n_alive: n,
            alive_list: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Removes `u` from the view. Idempotent.
    pub fn remove(&mut self, u: Node) {
        let (w, b) = (u as usize / WORD_BITS, u as usize % WORD_BITS);
        let mask = 1u64 << b;
        if self.alive[w] & mask != 0 {
            self.alive[w] &= !mask;
            self.n_alive -= 1;
            self.alive_list.lock().expect("alive list poisoned").clear();
        }
    }

    /// Removes every node yielded by `nodes`.
    pub fn remove_all<I: IntoIterator<Item = Node>>(&mut self, nodes: I) {
        for u in nodes {
            self.remove(u);
        }
    }

    /// Restores every node (start of a fresh realization).
    pub fn reset(&mut self) {
        let n = self.base.num_nodes();
        for w in self.alive.iter_mut() {
            *w = !0;
        }
        let words = self.alive.len();
        if !n.is_multiple_of(WORD_BITS) && words > 0 {
            self.alive[words - 1] = (1u64 << (n % WORD_BITS)) - 1;
        }
        self.n_alive = n;
        self.alive_list.lock().expect("alive list poisoned").clear();
    }

    /// Decomposes the view into its owned parts `(alive bitmask words,
    /// alive count)`, detaching it from the base graph. Together with
    /// [`from_parts`](ResidualGraph::from_parts) this lets long-lived
    /// services suspend a residual view into owned storage between requests
    /// and re-attach it to the (separately owned) base graph later, without
    /// self-referential structs or re-allocation.
    pub fn into_parts(self) -> (Vec<u64>, usize) {
        (self.alive, self.n_alive)
    }

    /// Reconstructs a view from parts produced by
    /// [`into_parts`](ResidualGraph::into_parts) against the same base graph
    /// (or any graph with the same node count).
    ///
    /// Panics if the word count does not match `base` or if `n_alive`
    /// disagrees with the bitmask's popcount.
    pub fn from_parts(base: &'g Graph, alive: Vec<u64>, n_alive: usize) -> Self {
        let n = base.num_nodes();
        assert_eq!(
            alive.len(),
            n.div_ceil(WORD_BITS),
            "alive bitmask sized for a different graph"
        );
        let pop: usize = alive.iter().map(|w| w.count_ones() as usize).sum();
        assert_eq!(pop, n_alive, "n_alive disagrees with bitmask popcount");
        ResidualGraph {
            base,
            alive,
            n_alive,
            alive_list: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Iterates alive nodes in increasing id order.
    pub fn alive_nodes(&self) -> impl Iterator<Item = Node> + '_ {
        self.alive.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some((w * WORD_BITS) as Node + b)
                }
            })
        })
    }
}

impl GraphView for ResidualGraph<'_> {
    #[inline]
    fn base(&self) -> &Graph {
        self.base
    }

    #[inline]
    fn num_alive(&self) -> usize {
        self.n_alive
    }

    #[inline]
    fn is_alive(&self, u: Node) -> bool {
        let (w, b) = (u as usize / WORD_BITS, u as usize % WORD_BITS);
        self.alive[w] & (1u64 << b) != 0
    }

    #[inline]
    fn alive_words(&self) -> Option<&[u64]> {
        Some(&self.alive)
    }

    fn sample_alive<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<Node> {
        let n = self.base.num_nodes();
        if self.n_alive == 0 {
            return None;
        }
        let frac = self.n_alive as f64 / n as f64;
        if frac >= REJECTION_MIN_FRACTION {
            // Rejection sampling: uniform over alive nodes (up to the
            // multiply-shift base draw's < 2^-40 bias), expected
            // 1/frac < 64 draws.
            loop {
                let u = uniform_index(rng, n);
                if self.is_alive(u) {
                    return Some(u);
                }
            }
        }
        // Sparse regime: materialize (and cache) the alive list.
        let mut list = self.alive_list.lock().expect("alive list poisoned");
        if list.is_empty() {
            list.extend(self.alive_nodes());
        }
        debug_assert_eq!(list.len(), self.n_alive);
        let i = uniform_index(rng, list.len()) as usize;
        Some(list[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i as Node, (i + 1) as Node, 0.5).unwrap();
        }
        b.build()
    }

    #[test]
    fn fresh_view_has_everything_alive() {
        let g = line_graph(130); // crosses two bitmask words
        let r = ResidualGraph::new(&g);
        assert_eq!(r.num_alive(), 130);
        assert!((0..130).all(|u| r.is_alive(u)));
        assert_eq!(r.alive_nodes().count(), 130);
    }

    #[test]
    fn remove_is_idempotent_and_counts() {
        let g = line_graph(10);
        let mut r = ResidualGraph::new(&g);
        r.remove(3);
        r.remove(3);
        r.remove(7);
        assert_eq!(r.num_alive(), 8);
        assert!(!r.is_alive(3));
        assert!(!r.is_alive(7));
        assert!(r.is_alive(0));
        let alive: Vec<Node> = r.alive_nodes().collect();
        assert_eq!(alive, vec![0, 1, 2, 4, 5, 6, 8, 9]);
    }

    #[test]
    fn reset_restores_all() {
        let g = line_graph(70);
        let mut r = ResidualGraph::new(&g);
        r.remove_all(0..35);
        assert_eq!(r.num_alive(), 35);
        r.reset();
        assert_eq!(r.num_alive(), 70);
        assert_eq!(r.alive_nodes().count(), 70);
    }

    #[test]
    fn parts_round_trip_preserves_the_view() {
        let g = line_graph(130);
        let mut r = ResidualGraph::new(&g);
        r.remove_all([0, 64, 129]);
        let (words, n_alive) = r.into_parts();
        let r2 = ResidualGraph::from_parts(&g, words, n_alive);
        assert_eq!(r2.num_alive(), 127);
        assert!(!r2.is_alive(0) && !r2.is_alive(64) && !r2.is_alive(129));
        assert!(r2.is_alive(1));
    }

    #[test]
    #[should_panic(expected = "popcount")]
    fn from_parts_rejects_inconsistent_count() {
        let g = line_graph(10);
        let r = ResidualGraph::new(&g);
        let (words, _) = r.into_parts();
        let _ = ResidualGraph::from_parts(&g, words, 3);
    }

    #[test]
    fn sample_alive_only_returns_alive_nodes() {
        let g = line_graph(64);
        let mut r = ResidualGraph::new(&g);
        r.remove_all((0..64).filter(|u| u % 2 == 0));
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let u = r.sample_alive(&mut rng).unwrap();
            assert!(u % 2 == 1, "sampled dead node {u}");
        }
    }

    #[test]
    fn sample_alive_sparse_regime_uses_list() {
        let g = line_graph(1000);
        let mut r = ResidualGraph::new(&g);
        // Keep only 5 alive: fraction 0.005 < 1/64 forces the list path.
        r.remove_all((0..1000).filter(|u| !matches!(u, 11 | 222 | 333 | 444 | 999)));
        assert_eq!(r.num_alive(), 5);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            seen.insert(r.sample_alive(&mut rng).unwrap());
        }
        let mut seen: Vec<_> = seen.into_iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![11, 222, 333, 444, 999]);
    }

    #[test]
    fn sample_alive_empty_returns_none() {
        let g = line_graph(4);
        let mut r = ResidualGraph::new(&g);
        r.remove_all(0..4);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(r.sample_alive(&mut rng).is_none());
    }

    #[test]
    fn sample_view_forward_face_mirrors_out_slices() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(0, 2, 0.25).unwrap();
        b.add_edge(1, 3, 1.0).unwrap();
        b.add_edge(3, 4, 0.75).unwrap();
        let g = b.build();
        let sv = g.sample_view();
        for u in 0..5u32 {
            let (targets, _, range) = g.out_slice(u);
            let (lo, hi, _, _) = sv.out_meta(u);
            assert_eq!(lo, range.start as usize, "node {u}");
            assert_eq!(hi, range.end as usize, "node {u}");
            assert_eq!(sv.targets(lo, hi), targets, "node {u}");
            assert_eq!(sv.out_thresholds(lo, hi), g.out_thresholds(u));
            // Slot i of the span is forward edge id lo + i.
            for (i, &t) in sv.out_thresholds(lo, hi).iter().enumerate() {
                assert_eq!(t, g.edge_threshold((lo + i) as u32));
            }
        }
    }

    #[test]
    fn sample_view_mirrors_the_alive_mask() {
        let g = line_graph(130);
        let full = g.sample_view();
        assert!((0..130).all(|u| full.is_alive(u)));
        assert!(std::ptr::eq(full.base(), &g));

        let mut r = ResidualGraph::new(&g);
        r.remove_all([0, 64, 129]);
        let sv = r.sample_view();
        for u in 0..130u32 {
            assert_eq!(sv.is_alive(u), r.is_alive(u), "node {u}");
        }
    }

    #[test]
    fn sample_alive_is_roughly_uniform() {
        let g = line_graph(8);
        let mut r = ResidualGraph::new(&g);
        r.remove(0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 8];
        let draws = 70_000;
        for _ in 0..draws {
            counts[r.sample_alive(&mut rng).unwrap() as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        let expected = draws as f64 / 7.0;
        for &c in &counts[1..] {
            assert!(
                (c as f64 - expected).abs() < expected * 0.1,
                "count {c} too far from uniform expectation {expected}"
            );
        }
    }
}
