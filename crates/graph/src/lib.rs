//! # atpm-graph
//!
//! Probabilistic social-graph substrate for the adaptive target profit
//! maximization (TPM) stack.
//!
//! A *probabilistic social graph* is a directed graph `G = (V, E)` where each
//! edge `⟨u, v⟩` carries an activation probability `p(u, v) ∈ (0, 1]` under the
//! independent cascade (IC) model. This crate provides:
//!
//! * [`Graph`] — an immutable compressed-sparse-row (CSR) representation with
//!   both forward (out-edge) and reverse (in-edge) adjacency, built once via
//!   [`GraphBuilder`]. Every build also bakes the *integer sampling view*:
//!   per-edge `u32` coin thresholds ([`quantize_prob`]) in both CSR
//!   directions and packed per-node [`SampleMeta`] records (span start,
//!   uniform threshold, geometric-skip constant) on both sides — the
//!   in-side drives the RIS samplers, the out-side forward cascades, all
//!   through [`SampleView`];
//! * [`ResidualGraph`] — a cheap *view* over a base graph with an alive-node
//!   bitmask, used by the adaptive algorithms to remove activated nodes after
//!   each observation without copying the graph;
//! * [`GraphView`] — the trait both of the above implement, so diffusion and
//!   sampling code is written once;
//! * [`gen`] — synthetic graph generators (Erdős–Rényi, preferential
//!   attachment, directed power-law configuration model, Watts–Strogatz) and
//!   the four dataset presets from Table II of the paper;
//! * [`weights`] — edge-weighting schemes (weighted cascade `p = 1/indeg(v)`,
//!   constant, trivalency);
//! * [`io`] — plain-text edge-list and versioned binary formats;
//! * [`stats`] — degree statistics used to report Table II.
//!
//! ## Quick example
//!
//! ```
//! use atpm_graph::{GraphBuilder, GraphView};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1, 0.5).unwrap();
//! b.add_edge(1, 2, 0.5).unwrap();
//! b.add_edge(2, 3, 1.0).unwrap();
//! let g = b.build();
//! assert_eq!(g.num_nodes(), 4);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.out_degree(1), 1);
//! assert_eq!(g.in_degree(2), 1);
//! ```

pub mod builder;
pub mod components;
pub mod csr;
pub mod error;
pub mod gen;
pub mod io;
pub mod stats;
pub mod view;
pub mod weights;

pub use builder::GraphBuilder;
pub use csr::{
    quantize_prob, quantize_prob_f64, threshold_accept, threshold_prob, Graph, SampleMeta,
};
pub use error::GraphError;
pub use stats::GraphStats;
pub use view::{GraphView, ResidualGraph, SampleView};
pub use weights::WeightingScheme;

/// Node identifier. Nodes are dense indices `0..n`.
///
/// A plain `u32` keeps the hot diffusion/sampling loops free of wrapper
/// overhead; graphs are limited to `2^32 - 1` nodes, far above the largest
/// dataset in the paper (LiveJournal, 4.85M nodes).
pub type Node = u32;

/// Edge identifier: the position of a directed edge in the forward CSR
/// (`0..m`). Realizations flip one deterministic coin per [`Edge`], so the
/// same possible world is observed consistently from both endpoints.
pub type Edge = u32;
