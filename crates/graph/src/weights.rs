//! Edge-weighting schemes for probabilistic social graphs.
//!
//! The paper (§VI-A) follows the common convention in the influence
//! maximization literature and sets `p(⟨u, v⟩) = 1 / indeg(v)` — the
//! *weighted cascade* (WIC) model. The constant and trivalency schemes are
//! also provided because they are standard alternatives and are exercised in
//! tests and ablations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Graph;

/// How to assign the IC activation probability of each edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightingScheme {
    /// Weighted cascade: `p(u, v) = 1 / indeg(v)` (the paper's setting).
    WeightedCascade,
    /// Every edge gets the same probability.
    Constant(f32),
    /// Trivalency: each edge draws uniformly from `{0.1, 0.01, 0.001}`,
    /// seeded for reproducibility.
    Trivalency {
        /// RNG seed so the assignment is deterministic.
        seed: u64,
    },
}

impl WeightingScheme {
    /// Returns a copy of `g` reweighted under this scheme. Degrees (and hence
    /// WIC probabilities) are taken from `g` itself.
    pub fn apply(self, g: &Graph) -> Graph {
        match self {
            WeightingScheme::WeightedCascade => g.map_probs(|_, v, _| {
                let d = g.in_degree(v).max(1);
                1.0 / d as f32
            }),
            WeightingScheme::Constant(p) => {
                assert!(p > 0.0 && p <= 1.0, "constant probability must be in (0,1]");
                g.map_probs(|_, _, _| p)
            }
            WeightingScheme::Trivalency { seed } => {
                const LEVELS: [f32; 3] = [0.1, 0.01, 0.001];
                let mut rng = StdRng::seed_from_u64(seed);
                g.map_probs(|_, _, _| LEVELS[rng.gen_range(0..3usize)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn star_into_center() -> Graph {
        // 4 spokes all pointing at node 0.
        let mut b = GraphBuilder::new(5);
        for u in 1..5 {
            b.add_edge(u, 0, 0.9).unwrap();
        }
        b.build()
    }

    #[test]
    fn weighted_cascade_uses_in_degree() {
        let g = WeightingScheme::WeightedCascade.apply(&star_into_center());
        let (_, probs, _) = g.in_slice(0);
        assert_eq!(probs.len(), 4);
        for &p in probs {
            assert!(
                (p - 0.25).abs() < 1e-6,
                "indeg 4 should give p = 1/4, got {p}"
            );
        }
    }

    #[test]
    fn weighted_cascade_caps_at_one() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.5).unwrap();
        let g = WeightingScheme::WeightedCascade.apply(&b.build());
        let (_, probs, _) = g.in_slice(1);
        assert_eq!(probs, &[1.0]);
    }

    #[test]
    fn constant_sets_every_edge() {
        let g = WeightingScheme::Constant(0.05).apply(&star_into_center());
        for (_, _, p) in g.edges() {
            assert_eq!(p, 0.05);
        }
    }

    #[test]
    #[should_panic(expected = "constant probability")]
    fn constant_rejects_zero() {
        let _ = WeightingScheme::Constant(0.0).apply(&star_into_center());
    }

    #[test]
    fn trivalency_is_deterministic_and_valid() {
        let base = star_into_center();
        let g1 = WeightingScheme::Trivalency { seed: 7 }.apply(&base);
        let g2 = WeightingScheme::Trivalency { seed: 7 }.apply(&base);
        let p1: Vec<f32> = g1.edges().map(|(_, _, p)| p).collect();
        let p2: Vec<f32> = g2.edges().map(|(_, _, p)| p).collect();
        assert_eq!(p1, p2);
        for p in p1 {
            assert!([0.1, 0.01, 0.001].contains(&p));
        }
    }
}
