//! Connected-component utilities and induced subgraphs.
//!
//! Used by dataset tooling (the SNAP datasets are usually reduced to their
//! largest weakly-connected component before experiments) and by tests that
//! need structurally-controlled inputs.

use crate::{Graph, GraphBuilder, Node};

/// Weakly-connected component labelling: edges are treated as undirected.
/// Returns one label per node (labels are component-minimum node ids) and the
/// number of components.
pub fn weakly_connected_components(g: &Graph) -> (Vec<Node>, usize) {
    let n = g.num_nodes();
    let mut label: Vec<Node> = vec![Node::MAX; n];
    let mut queue: Vec<Node> = Vec::new();
    let mut components = 0usize;
    for start in 0..n as Node {
        if label[start as usize] != Node::MAX {
            continue;
        }
        components += 1;
        label[start as usize] = start;
        queue.clear();
        queue.push(start);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            let (out, _, _) = g.out_slice(u);
            let (inc, _, _) = g.in_slice(u);
            for &v in out.iter().chain(inc) {
                if label[v as usize] == Node::MAX {
                    label[v as usize] = start;
                    queue.push(v);
                }
            }
        }
    }
    (label, components)
}

/// Extracts the subgraph induced by `keep` (a sorted-or-not list of node
/// ids). Nodes are re-labelled densely in the order given; returns the
/// subgraph and the old→new id mapping (dense vector, `Node::MAX` for
/// dropped nodes).
pub fn induced_subgraph(g: &Graph, keep: &[Node]) -> (Graph, Vec<Node>) {
    let n = g.num_nodes();
    let mut remap: Vec<Node> = vec![Node::MAX; n];
    for (new_id, &u) in keep.iter().enumerate() {
        assert!((u as usize) < n, "node {u} out of range");
        assert!(
            remap[u as usize] == Node::MAX,
            "duplicate node {u} in keep list"
        );
        remap[u as usize] = new_id as Node;
    }
    let mut b = GraphBuilder::new(keep.len());
    for &u in keep {
        let (targets, probs, _) = g.out_slice(u);
        for (i, &v) in targets.iter().enumerate() {
            let nv = remap[v as usize];
            if nv != Node::MAX {
                b.add_edge(remap[u as usize], nv, probs[i])
                    .expect("remapped endpoints are in range");
            }
        }
    }
    (b.build(), remap)
}

/// Restricts `g` to its largest weakly-connected component. Returns the
/// subgraph and the old→new mapping.
pub fn largest_wcc(g: &Graph) -> (Graph, Vec<Node>) {
    let (labels, _) = weakly_connected_components(g);
    let mut counts: std::collections::HashMap<Node, usize> = std::collections::HashMap::new();
    for &l in &labels {
        *counts.entry(l).or_insert(0) += 1;
    }
    let best = counts
        .into_iter()
        .max_by_key(|&(l, c)| (c, std::cmp::Reverse(l)))
        .map(|(l, _)| l)
        .unwrap_or(0);
    let keep: Vec<Node> = (0..g.num_nodes() as Node)
        .filter(|&u| labels[u as usize] == best)
        .collect();
    induced_subgraph(g, &keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two components: a directed triangle {0,1,2} and an edge {3,4}; 5 isolated.
    fn two_islands() -> Graph {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(2, 0, 0.5).unwrap();
        b.add_edge(3, 4, 0.5).unwrap();
        b.build()
    }

    #[test]
    fn wcc_labels_and_counts() {
        let g = two_islands();
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[1], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[5], labels[0]);
        assert_ne!(labels[5], labels[3]);
    }

    #[test]
    fn wcc_ignores_edge_direction() {
        // 0 -> 1 <- 2: all weakly connected despite no directed path 0 -> 2.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(2, 1, 0.5).unwrap();
        let (_, count) = weakly_connected_components(&b.build());
        assert_eq!(count, 1);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = two_islands();
        let (sub, remap) = induced_subgraph(&g, &[0, 1, 3]);
        assert_eq!(sub.num_nodes(), 3);
        // Only 0 -> 1 survives (1 -> 2 and 2 -> 0 lose an endpoint; 3 -> 4 too).
        assert_eq!(sub.num_edges(), 1);
        let e: Vec<_> = sub.edges().collect();
        assert_eq!(e[0], (remap[0], remap[1], 0.5));
        assert_eq!(remap[2], Node::MAX);
    }

    #[test]
    fn largest_wcc_picks_the_triangle() {
        let g = two_islands();
        let (sub, remap) = largest_wcc(&g);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_ne!(remap[0], Node::MAX);
        assert_eq!(remap[3], Node::MAX);
        assert_eq!(remap[5], Node::MAX);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g = GraphBuilder::new(0).build();
        let (_, count) = weakly_connected_components(&g);
        assert_eq!(count, 0);
        let g = GraphBuilder::new(1).build();
        let (labels, count) = weakly_connected_components(&g);
        assert_eq!(count, 1);
        assert_eq!(labels, vec![0]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn induced_subgraph_rejects_duplicates() {
        let g = two_islands();
        let _ = induced_subgraph(&g, &[0, 0]);
    }
}
