//! Mutable edge accumulator that produces an immutable CSR [`Graph`].

use crate::error::GraphError;
use crate::{Graph, Node};

/// Accumulates edges and assembles the dual-CSR [`Graph`].
///
/// * self-loops are rejected at insertion time (the IC model never uses them);
/// * duplicate directed edges are merged at [`build`](GraphBuilder::build)
///   time by *noisy-or*: `p = 1 − Π(1 − p_i)`, which is the IC-correct way to
///   collapse parallel activation attempts;
/// * insertion order is irrelevant — the builder sorts edges into canonical
///   `(src, dst)` order, so two builders fed the same multiset of edges
///   produce byte-identical graphs.
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(Node, Node, f32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph over nodes `0..n`.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder and pre-reserves space for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of nodes this builder was created with.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of edges added so far (before dedup).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the directed edge `src -> dst` with activation probability `prob`.
    ///
    /// Self-loops are silently dropped (they can never change a cascade).
    /// Returns an error if either endpoint is out of range or `prob ∉ (0, 1]`.
    pub fn add_edge(&mut self, src: Node, dst: Node, prob: f32) -> Result<(), GraphError> {
        if src as usize >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: src as u64,
                num_nodes: self.n as u64,
            });
        }
        if dst as usize >= self.n {
            return Err(GraphError::NodeOutOfRange {
                node: dst as u64,
                num_nodes: self.n as u64,
            });
        }
        if !(prob > 0.0 && prob <= 1.0) {
            return Err(GraphError::InvalidProbability {
                src: src as u64,
                dst: dst as u64,
                prob: prob as f64,
            });
        }
        if src == dst {
            return Ok(());
        }
        self.edges.push((src, dst, prob));
        Ok(())
    }

    /// Adds both directions of an undirected edge with the same probability.
    /// Used for collaboration networks (NetHEPT, DBLP) which the paper treats
    /// as bidirectional influence.
    pub fn add_undirected(&mut self, a: Node, b: Node, prob: f32) -> Result<(), GraphError> {
        self.add_edge(a, b, prob)?;
        self.add_edge(b, a, prob)
    }

    /// Sorts, merges duplicates, and assembles the immutable CSR graph.
    pub fn build(self) -> Graph {
        self.try_build()
            .expect("edge count validated on insertion; u32 overflow is the only failure")
    }

    /// Like [`build`](Self::build) but surfaces the (pathological) failure of
    /// exceeding the `u32` edge-id space instead of panicking.
    pub fn try_build(mut self) -> Result<Graph, GraphError> {
        let n = self.n;
        // Canonical order + noisy-or merge of duplicates. Probabilities are
        // part of the sort key (positive f32s order like their bit patterns)
        // so duplicate merging is float-exact regardless of insertion order.
        self.edges
            .sort_unstable_by_key(|e| (e.0, e.1, e.2.to_bits()));
        let mut merged: Vec<(Node, Node, f32)> = Vec::with_capacity(self.edges.len());
        for (src, dst, p) in self.edges {
            match merged.last_mut() {
                Some(last) if last.0 == src && last.1 == dst => {
                    // 1 - (1-p1)(1-p2): probability that at least one of the
                    // parallel activation attempts succeeds.
                    last.2 = 1.0 - (1.0 - last.2) * (1.0 - p);
                }
                _ => merged.push((src, dst, p)),
            }
        }
        let m = merged.len();
        if m > u32::MAX as usize {
            return Err(GraphError::TooManyEdges { edges: m as u64 });
        }

        // Forward CSR (edges are already sorted by src).
        let mut out_offsets = vec![0u64; n + 1];
        for &(src, _, _) in &merged {
            out_offsets[src as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = Vec::with_capacity(m);
        let mut out_probs = Vec::with_capacity(m);
        for &(_, dst, p) in &merged {
            out_targets.push(dst);
            out_probs.push(p);
        }

        // Reverse CSR, carrying forward edge ids.
        let mut in_offsets = vec![0u64; n + 1];
        for &(_, dst, _) in &merged {
            in_offsets[dst as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor: Vec<u64> = in_offsets[..n].to_vec();
        let mut in_sources = vec![0 as Node; m];
        let mut in_probs = vec![0f32; m];
        let mut in_edge_ids = vec![0u32; m];
        for (e, &(src, dst, p)) in merged.iter().enumerate() {
            let slot = cursor[dst as usize] as usize;
            cursor[dst as usize] += 1;
            in_sources[slot] = src;
            in_probs[slot] = p;
            in_edge_ids[slot] = e as u32;
        }

        Ok(Graph::from_parts(
            n,
            out_offsets.into_boxed_slice(),
            out_targets.into_boxed_slice(),
            out_probs.into_boxed_slice(),
            in_offsets.into_boxed_slice(),
            in_sources.into_boxed_slice(),
            in_probs.into_boxed_slice(),
            in_edge_ids.into_boxed_slice(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range_nodes() {
        let mut b = GraphBuilder::new(3);
        assert!(matches!(
            b.add_edge(0, 3, 0.5),
            Err(GraphError::NodeOutOfRange { node: 3, .. })
        ));
        assert!(matches!(
            b.add_edge(7, 0, 0.5),
            Err(GraphError::NodeOutOfRange { node: 7, .. })
        ));
    }

    #[test]
    fn rejects_bad_probabilities() {
        let mut b = GraphBuilder::new(3);
        for p in [0.0f32, -0.1, 1.5, f32::NAN, f32::INFINITY] {
            assert!(
                matches!(
                    b.add_edge(0, 1, p),
                    Err(GraphError::InvalidProbability { .. })
                ),
                "p = {p} should be rejected"
            );
        }
        assert!(b.add_edge(0, 1, 1.0).is_ok());
        assert!(b.add_edge(0, 1, f32::MIN_POSITIVE).is_ok());
    }

    #[test]
    fn drops_self_loops() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 0.9).unwrap();
        b.add_edge(0, 1, 0.9).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn merges_duplicates_with_noisy_or() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(0, 1, 0.5).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        let (_, probs, _) = g.out_slice(0);
        assert!(
            (probs[0] - 0.75).abs() < 1e-6,
            "noisy-or of two 0.5s is 0.75"
        );
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let edges = [(0u32, 1u32, 0.3f32), (2, 0, 0.7), (1, 2, 0.9), (0, 2, 0.4)];
        let mut b1 = GraphBuilder::new(3);
        for &(u, v, p) in &edges {
            b1.add_edge(u, v, p).unwrap();
        }
        let mut b2 = GraphBuilder::new(3);
        for &(u, v, p) in edges.iter().rev() {
            b2.add_edge(u, v, p).unwrap();
        }
        let g1 = b1.build();
        let g2 = b2.build();
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn undirected_adds_both_arcs() {
        let mut b = GraphBuilder::new(2);
        b.add_undirected(0, 1, 0.5).unwrap();
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_degree(1), 1);
    }
}
