//! Immutable CSR graph storage with forward and reverse adjacency.

use crate::{Edge, Node};

/// An immutable probabilistic directed graph in compressed-sparse-row form.
///
/// Both the forward (out-edge) and reverse (in-edge) adjacency are stored so
/// that forward cascades (out-edges) and reverse-reachability sampling
/// (in-edges) are both cache-friendly linear scans.
///
/// Every directed edge has a stable id: its position in the forward CSR. The
/// reverse CSR carries the same ids (`in_edge_ids`) so a *realization* — a
/// deterministic coin per edge id — is observed consistently no matter which
/// direction the edge is traversed from.
#[derive(Clone)]
pub struct Graph {
    n: usize,
    // Forward CSR.
    out_offsets: Box<[u64]>,
    out_targets: Box<[Node]>,
    out_probs: Box<[f32]>,
    // Reverse CSR.
    in_offsets: Box<[u64]>,
    in_sources: Box<[Node]>,
    in_probs: Box<[f32]>,
    in_edge_ids: Box<[Edge]>,
}

impl Graph {
    /// Assembles a graph from pre-validated CSR parts. Internal; use
    /// [`crate::GraphBuilder`] instead.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        n: usize,
        out_offsets: Box<[u64]>,
        out_targets: Box<[Node]>,
        out_probs: Box<[f32]>,
        in_offsets: Box<[u64]>,
        in_sources: Box<[Node]>,
        in_probs: Box<[f32]>,
        in_edge_ids: Box<[Edge]>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), n + 1);
        debug_assert_eq!(in_offsets.len(), n + 1);
        debug_assert_eq!(out_targets.len(), out_probs.len());
        debug_assert_eq!(in_sources.len(), in_probs.len());
        debug_assert_eq!(in_sources.len(), in_edge_ids.len());
        debug_assert_eq!(out_targets.len(), in_sources.len());
        Graph {
            n,
            out_offsets,
            out_targets,
            out_probs,
            in_offsets,
            in_sources,
            in_probs,
            in_edge_ids,
        }
    }

    /// Number of nodes `n = |V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of directed edges `m = |E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: Node) -> usize {
        let u = u as usize;
        (self.out_offsets[u + 1] - self.out_offsets[u]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: Node) -> usize {
        let v = v as usize;
        (self.in_offsets[v + 1] - self.in_offsets[v]) as usize
    }

    /// Out-neighbours of `u` with probabilities and edge ids.
    ///
    /// Edge ids for out-edges of `u` are contiguous: `out_range(u)`.
    #[inline]
    pub fn out_slice(&self, u: Node) -> (&[Node], &[f32], std::ops::Range<u32>) {
        let u = u as usize;
        let lo = self.out_offsets[u] as usize;
        let hi = self.out_offsets[u + 1] as usize;
        (
            &self.out_targets[lo..hi],
            &self.out_probs[lo..hi],
            lo as u32..hi as u32,
        )
    }

    /// In-neighbours of `v` with probabilities and (forward) edge ids.
    #[inline]
    pub fn in_slice(&self, v: Node) -> (&[Node], &[f32], &[Edge]) {
        let v = v as usize;
        let lo = self.in_offsets[v] as usize;
        let hi = self.in_offsets[v + 1] as usize;
        (
            &self.in_sources[lo..hi],
            &self.in_probs[lo..hi],
            &self.in_edge_ids[lo..hi],
        )
    }

    /// Probability of edge `e` (by forward edge id).
    #[inline]
    pub fn edge_prob(&self, e: Edge) -> f32 {
        self.out_probs[e as usize]
    }

    /// Target node of edge `e` (by forward edge id).
    #[inline]
    pub fn edge_target(&self, e: Edge) -> Node {
        self.out_targets[e as usize]
    }

    /// Source node of edge `e`, recovered by binary search on the offset
    /// array. O(log n); intended for tests and diagnostics, not hot loops.
    pub fn edge_source(&self, e: Edge) -> Node {
        let e = e as u64;
        debug_assert!((e as usize) < self.num_edges());
        // partition_point returns the first u with out_offsets[u] > e; the
        // source is that index minus one.
        let idx = self.out_offsets.partition_point(|&off| off <= e);
        (idx - 1) as Node
    }

    /// Iterates all edges as `(src, dst, prob)` in edge-id order.
    pub fn edges(&self) -> impl Iterator<Item = (Node, Node, f32)> + '_ {
        (0..self.n as Node).flat_map(move |u| {
            let (targets, probs, _) = self.out_slice(u);
            targets
                .iter()
                .zip(probs.iter())
                .map(move |(&v, &p)| (u, v, p))
        })
    }

    /// Sum of all out-degrees divided by n; equals `m / n`.
    pub fn avg_out_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.n as f64
        }
    }

    /// Returns a copy of this graph with every edge probability replaced by
    /// the output of `f(src, dst, old_prob)`. Both CSR directions are kept
    /// consistent. Used by the weighting schemes and by LT normalization.
    pub fn map_probs(&self, mut f: impl FnMut(Node, Node, f32) -> f32) -> Graph {
        let mut g = self.clone();
        // Rebuild forward probs in edge-id order.
        let mut out_probs = g.out_probs.to_vec();
        for u in 0..self.n as Node {
            let (targets, _, range) = self.out_slice(u);
            for (i, &v) in targets.iter().enumerate() {
                let e = range.start as usize + i;
                out_probs[e] = f(u, v, out_probs[e]);
            }
        }
        // Mirror into the reverse CSR via edge ids.
        let mut in_probs = g.in_probs.to_vec();
        for (slot, &e) in self.in_edge_ids.iter().enumerate() {
            in_probs[slot] = out_probs[e as usize];
        }
        g.out_probs = out_probs.into_boxed_slice();
        g.in_probs = in_probs.into_boxed_slice();
        g
    }

    /// Approximate heap footprint in bytes (diagnostics only).
    pub fn heap_bytes(&self) -> usize {
        let m = self.num_edges();
        (self.n + 1) * 8 * 2 // two offset arrays
            + m * (4 + 4)    // out targets + probs
            + m * (4 + 4 + 4) // in sources + probs + edge ids
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.num_nodes())
            .field("m", &self.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn diamond() -> crate::Graph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(0, 2, 0.25).unwrap();
        b.add_edge(1, 3, 1.0).unwrap();
        b.add_edge(2, 3, 0.75).unwrap();
        b.build()
    }

    #[test]
    fn degrees_and_counts() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.in_degree(0), 0);
        assert!((g.avg_out_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn forward_and_reverse_agree_via_edge_ids() {
        let g = diamond();
        for v in 0..4u32 {
            let (sources, probs, ids) = g.in_slice(v);
            for i in 0..sources.len() {
                let e = ids[i];
                assert_eq!(g.edge_target(e), v);
                assert_eq!(g.edge_source(e), sources[i]);
                assert_eq!(g.edge_prob(e), probs[i]);
            }
        }
    }

    #[test]
    fn edge_source_binary_search_covers_all_edges() {
        let g = diamond();
        let mut listed: Vec<(u32, u32)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        listed.sort_unstable();
        let mut via_ids: Vec<(u32, u32)> = (0..g.num_edges() as u32)
            .map(|e| (g.edge_source(e), g.edge_target(e)))
            .collect();
        via_ids.sort_unstable();
        assert_eq!(listed, via_ids);
    }

    #[test]
    fn map_probs_updates_both_directions() {
        let g = diamond();
        let g2 = g.map_probs(|_, _, p| p / 2.0);
        for v in 0..4u32 {
            let (_, probs, ids) = g2.in_slice(v);
            for i in 0..probs.len() {
                assert_eq!(probs[i], g2.edge_prob(ids[i]));
                assert_eq!(probs[i], g.edge_prob(ids[i]) / 2.0);
            }
        }
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_out_degree(), 0.0);
    }
}
