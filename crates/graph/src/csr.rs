//! Immutable CSR graph storage with forward and reverse adjacency.

use crate::{Edge, Node};

/// Fixed-point scale of the integer coin: a `u32` draw is compared against a
/// threshold on the `[0, 2^32)` lattice.
const PROB_SCALE: f64 = 4_294_967_296.0; // 2^32

/// Quantizes an activation probability to the `u32` threshold the samplers
/// compare raw 32-bit draws against (accept iff [`threshold_accept`]).
///
/// The encoding reserves `u32::MAX` for "certain": `p = 1.0` edges must fire
/// on *every* draw, and no pure `r < t` compare over `u32` can express that
/// (the all-ones threshold would still lose to `r = u32::MAX` once every
/// 2^32 draws). Probabilities within `2^-32` of 1 saturate to the same
/// encoding. `p = 0.0` maps to threshold 0, which never accepts. Everything
/// else rounds to the nearest lattice point, so the acceptance probability
/// [`threshold_prob`] differs from `p` by at most `2^-33` per edge — over a
/// reverse-BFS that touches `E` edges the total estimator bias is bounded by
/// `2^-32·|E|`, far below the sampling noise of any realistic `θ`.
#[inline]
pub fn quantize_prob(p: f32) -> u32 {
    quantize_prob_f64(p as f64)
}

/// [`quantize_prob`] over a full-precision probability — used for derived
/// quantities like the whole-span rejection probability `(1-q)^indeg`,
/// where a round-trip through `f32` would cost ~2^-25 of precision (and
/// could saturate a near-1 value to the reserved "certain" encoding).
#[inline]
pub fn quantize_prob_f64(p: f64) -> u32 {
    if p >= 1.0 {
        return u32::MAX;
    }
    if p <= 0.0 {
        return 0;
    }
    let t = (p * PROB_SCALE).round();
    if t >= u32::MAX as f64 {
        u32::MAX
    } else {
        t as u32
    }
}

/// The exact acceptance probability a baked threshold encodes.
#[inline]
pub fn threshold_prob(t: u32) -> f64 {
    if t == u32::MAX {
        1.0
    } else {
        t as f64 / PROB_SCALE
    }
}

/// The integer coin flip: whether a raw 32-bit draw accepts an edge with
/// baked threshold `t`. One unsigned compare (plus the certain-edge test
/// the optimizer folds into it) — no int→float conversion in the hot loop.
#[inline]
pub fn threshold_accept(draw: u32, t: u32) -> bool {
    draw < t || t == u32::MAX
}

/// Geometric-skip eligibility: a neighborhood (in- or out-) earns the skip
/// fast path when every edge shares one threshold (the weighted-cascade
/// `1/indeg` case on the in-side, any constant-weight model on the
/// out-side), acceptance is rare enough that skipping beats flipping
/// (`q ≤ 1/4`), and the neighborhood is long enough to amortize the `ln`
/// per accepted edge (`degree ≥ 8`).
const SKIP_MIN_DEGREE: usize = 8;
const SKIP_MAX_PROB: f64 = 0.25;

/// One record of the packed per-node sampling metadata array: everything
/// a BFS inner loop needs about a node's neighborhood (in-edges for the
/// reverse samplers, out-edges for forward cascades) in a single 16-byte
/// read (the span start, the shared threshold of a uniform neighborhood,
/// and the geometric-skip constant). The span *end* is the next record's
/// `lo` — the array holds `n + 1` records with a sentinel at the end — so
/// adjacent records land on the same or neighboring cache line and one
/// prefetch covers both.
#[derive(Clone, Copy, Debug)]
#[repr(C)]
pub struct SampleMeta {
    /// Start of the node's edge span (edge slots fit `u32`: the builder
    /// rejects graphs beyond `u32::MAX` edges).
    pub lo: u32,
    /// Dual-purpose integer field, disambiguated by `inv`:
    ///
    /// * skip-eligible (`inv` finite): the quantized probability
    ///   `(1 − q)^degree` that the *whole span rejects* — one integer
    ///   compare retires the common no-accept case without touching `ln`;
    /// * otherwise: the shared threshold when every edge of the span
    ///   carries the same one, else 0. (A uniform all-zero neighborhood
    ///   also reads 0 and correctly never accepts through the per-edge
    ///   path.)
    pub thr: u32,
    /// `1 / ln(1 - q)` — finite and strictly negative — when the
    /// neighborhood qualifies for the geometric skip, NaN otherwise.
    /// Stored in full `f64` so the skip distribution inherits only the
    /// `ln` rounding error (≈1 ulp), keeping the documented `2^-32` bias
    /// bound intact.
    pub inv: f64,
}

/// Per-node skip constant: `1 / ln(1 - q)` (finite and negative) for
/// skip-eligible uniform in-neighborhoods, NaN otherwise.
fn skip_inv(thresholds: &[u32]) -> f64 {
    if thresholds.len() < SKIP_MIN_DEGREE {
        return f64::NAN;
    }
    let t = thresholds[0];
    if t == 0 || thresholds.iter().any(|&x| x != t) {
        return f64::NAN;
    }
    let q = threshold_prob(t);
    if q > SKIP_MAX_PROB {
        return f64::NAN;
    }
    1.0 / (1.0 - q).ln()
}

/// The shared threshold of a uniform neighborhood, or 0 for mixed ones.
fn uniform_thr(thresholds: &[u32]) -> u32 {
    match thresholds.first() {
        Some(&t) if thresholds.iter().all(|&x| x == t) => t,
        _ => 0,
    }
}

/// Bakes the packed per-node [`SampleMeta`] array for one CSR direction
/// (`n + 1` records, sentinel last). `offsets` is the direction's offset
/// array, `thresholds` its per-edge quantized coins — the in-side feeds
/// the reverse samplers, the out-side forward cascades; the two share
/// every constant and derived quantity (`skip_inv`, `uniform_thr`, the
/// whole-span rejection probability) by construction.
fn bake_meta(offsets: &[u64], thresholds: &[u32]) -> Box<[SampleMeta]> {
    let n = offsets.len() - 1;
    (0..=n)
        .map(|v| {
            if v == n {
                // Sentinel: its `lo` closes node n-1's span.
                return SampleMeta {
                    lo: offsets[n] as u32,
                    thr: 0,
                    inv: f64::NAN,
                };
            }
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            let span = &thresholds[lo..hi];
            let inv = skip_inv(span);
            let thr = if inv < 0.0 {
                let q = threshold_prob(span[0]);
                quantize_prob_f64((1.0 - q).powi(span.len() as i32))
            } else {
                uniform_thr(span)
            };
            SampleMeta {
                lo: lo as u32,
                thr,
                inv,
            }
        })
        .collect()
}

/// An immutable probabilistic directed graph in compressed-sparse-row form.
///
/// Both the forward (out-edge) and reverse (in-edge) adjacency are stored so
/// that forward cascades (out-edges) and reverse-reachability sampling
/// (in-edges) are both cache-friendly linear scans.
///
/// Every directed edge has a stable id: its position in the forward CSR. The
/// reverse CSR carries the same ids (`in_edge_ids`) so a *realization* — a
/// deterministic coin per edge id — is observed consistently no matter which
/// direction the edge is traversed from.
#[derive(Clone)]
pub struct Graph {
    n: usize,
    // Forward CSR.
    out_offsets: Box<[u64]>,
    out_targets: Box<[Node]>,
    out_probs: Box<[f32]>,
    // Reverse CSR.
    in_offsets: Box<[u64]>,
    in_sources: Box<[Node]>,
    in_probs: Box<[f32]>,
    in_edge_ids: Box<[Edge]>,
    // Baked sampling view: integer coin thresholds parallel to each CSR
    // direction, plus the packed per-node metadata records (span start,
    // uniform threshold, geometric-skip constant; `n + 1` entries each,
    // see [`SampleMeta`]) — the in-side for reverse-reachability sampling,
    // the out-side for forward cascades. Derived from the probabilities at
    // build time, rebuilt by `map_probs`.
    out_thresholds: Box<[u32]>,
    in_thresholds: Box<[u32]>,
    in_meta: Box<[SampleMeta]>,
    out_meta: Box<[SampleMeta]>,
}

impl Graph {
    /// Assembles a graph from pre-validated CSR parts. Internal; use
    /// [`crate::GraphBuilder`] instead.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        n: usize,
        out_offsets: Box<[u64]>,
        out_targets: Box<[Node]>,
        out_probs: Box<[f32]>,
        in_offsets: Box<[u64]>,
        in_sources: Box<[Node]>,
        in_probs: Box<[f32]>,
        in_edge_ids: Box<[Edge]>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), n + 1);
        debug_assert_eq!(in_offsets.len(), n + 1);
        debug_assert_eq!(out_targets.len(), out_probs.len());
        debug_assert_eq!(in_sources.len(), in_probs.len());
        debug_assert_eq!(in_sources.len(), in_edge_ids.len());
        debug_assert_eq!(out_targets.len(), in_sources.len());
        let out_thresholds: Box<[u32]> = out_probs.iter().map(|&p| quantize_prob(p)).collect();
        let in_thresholds: Box<[u32]> = in_probs.iter().map(|&p| quantize_prob(p)).collect();
        let in_meta = bake_meta(&in_offsets, &in_thresholds);
        let out_meta = bake_meta(&out_offsets, &out_thresholds);
        Graph {
            n,
            out_offsets,
            out_targets,
            out_probs,
            in_offsets,
            in_sources,
            in_probs,
            in_edge_ids,
            out_thresholds,
            in_thresholds,
            in_meta,
            out_meta,
        }
    }

    /// Number of nodes `n = |V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of directed edges `m = |E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: Node) -> usize {
        let u = u as usize;
        (self.out_offsets[u + 1] - self.out_offsets[u]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: Node) -> usize {
        let v = v as usize;
        (self.in_offsets[v + 1] - self.in_offsets[v]) as usize
    }

    /// Out-neighbours of `u` with probabilities and edge ids.
    ///
    /// Edge ids for out-edges of `u` are contiguous: `out_range(u)`.
    #[inline]
    pub fn out_slice(&self, u: Node) -> (&[Node], &[f32], std::ops::Range<u32>) {
        let u = u as usize;
        let lo = self.out_offsets[u] as usize;
        let hi = self.out_offsets[u + 1] as usize;
        (
            &self.out_targets[lo..hi],
            &self.out_probs[lo..hi],
            lo as u32..hi as u32,
        )
    }

    /// In-neighbours of `v` with probabilities and (forward) edge ids.
    #[inline]
    pub fn in_slice(&self, v: Node) -> (&[Node], &[f32], &[Edge]) {
        let v = v as usize;
        let lo = self.in_offsets[v] as usize;
        let hi = self.in_offsets[v + 1] as usize;
        (
            &self.in_sources[lo..hi],
            &self.in_probs[lo..hi],
            &self.in_edge_ids[lo..hi],
        )
    }

    /// Baked integer thresholds of `v`'s in-edges, parallel to the sources
    /// slice of [`in_slice`](Self::in_slice).
    #[inline]
    pub fn in_thresholds(&self, v: Node) -> &[u32] {
        let v = v as usize;
        &self.in_thresholds[self.in_offsets[v] as usize..self.in_offsets[v + 1] as usize]
    }

    /// Baked integer thresholds of `u`'s out-edges, parallel to the targets
    /// slice of [`out_slice`](Self::out_slice).
    #[inline]
    pub fn out_thresholds(&self, u: Node) -> &[u32] {
        let u = u as usize;
        &self.out_thresholds[self.out_offsets[u] as usize..self.out_offsets[u + 1] as usize]
    }

    /// Geometric-skip constant of `v`'s in-neighborhood: `1 / ln(1 − q)`
    /// (finite, strictly negative) when the neighborhood is uniform and
    /// skip-eligible, NaN otherwise. See [`quantize_prob`] for the lattice.
    #[inline]
    pub fn in_skip_inv(&self, v: Node) -> f64 {
        self.in_meta[v as usize].inv
    }

    /// The packed sampling record of `v` (see [`SampleMeta`]); index `n` is
    /// the sentinel closing the last span.
    #[inline]
    pub fn in_meta(&self, v: Node) -> &SampleMeta {
        &self.in_meta[v as usize]
    }

    /// Geometric-skip constant of `u`'s *out*-neighborhood — the forward
    /// mirror of [`in_skip_inv`](Self::in_skip_inv): finite and strictly
    /// negative when every out-edge of `u` shares one sub-`1/4` threshold
    /// over at least 8 edges (every node under a constant-weight model),
    /// NaN otherwise.
    #[inline]
    pub fn out_skip_inv(&self, u: Node) -> f64 {
        self.out_meta[u as usize].inv
    }

    /// The packed *out*-side sampling record of `u` (see [`SampleMeta`]);
    /// index `n` is the sentinel closing the last span. Forward cascades
    /// run on these the way reverse sampling runs on
    /// [`in_meta`](Self::in_meta).
    #[inline]
    pub fn out_meta(&self, u: Node) -> &SampleMeta {
        &self.out_meta[u as usize]
    }

    /// Raw slices backing the reverse-sampling hot loop: `(meta, sources,
    /// thresholds)`. The meta array has `n + 1` records.
    #[inline]
    pub(crate) fn sampling_arrays(&self) -> (&[SampleMeta], &[Node], &[u32]) {
        (&self.in_meta, &self.in_sources, &self.in_thresholds)
    }

    /// Raw slices backing the forward-cascade hot loop: `(meta, targets,
    /// thresholds)`. The meta array has `n + 1` records; the edge id of
    /// slot `i` is `i` itself (forward edge ids are CSR positions).
    #[inline]
    pub(crate) fn sampling_arrays_out(&self) -> (&[SampleMeta], &[Node], &[u32]) {
        (&self.out_meta, &self.out_targets, &self.out_thresholds)
    }

    /// Probability of edge `e` (by forward edge id).
    #[inline]
    pub fn edge_prob(&self, e: Edge) -> f32 {
        self.out_probs[e as usize]
    }

    /// Baked integer threshold of edge `e` (by forward edge id) — the exact
    /// coin forward cascades and reverse sampling share.
    #[inline]
    pub fn edge_threshold(&self, e: Edge) -> u32 {
        self.out_thresholds[e as usize]
    }

    /// Target node of edge `e` (by forward edge id).
    #[inline]
    pub fn edge_target(&self, e: Edge) -> Node {
        self.out_targets[e as usize]
    }

    /// Source node of edge `e`, recovered by binary search on the offset
    /// array. O(log n); intended for tests and diagnostics, not hot loops.
    pub fn edge_source(&self, e: Edge) -> Node {
        let e = e as u64;
        debug_assert!((e as usize) < self.num_edges());
        // partition_point returns the first u with out_offsets[u] > e; the
        // source is that index minus one.
        let idx = self.out_offsets.partition_point(|&off| off <= e);
        (idx - 1) as Node
    }

    /// Iterates all edges as `(src, dst, prob)` in edge-id order.
    pub fn edges(&self) -> impl Iterator<Item = (Node, Node, f32)> + '_ {
        (0..self.n as Node).flat_map(move |u| {
            let (targets, probs, _) = self.out_slice(u);
            targets
                .iter()
                .zip(probs.iter())
                .map(move |(&v, &p)| (u, v, p))
        })
    }

    /// Sum of all out-degrees divided by n; equals `m / n`.
    pub fn avg_out_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.n as f64
        }
    }

    /// Returns a copy of this graph with every edge probability replaced by
    /// the output of `f(src, dst, old_prob)`. Both CSR directions are kept
    /// consistent. Used by the weighting schemes and by LT normalization.
    pub fn map_probs(&self, mut f: impl FnMut(Node, Node, f32) -> f32) -> Graph {
        // Rebuild forward probs in edge-id order.
        let mut out_probs = self.out_probs.to_vec();
        for u in 0..self.n as Node {
            let (targets, _, range) = self.out_slice(u);
            for (i, &v) in targets.iter().enumerate() {
                let e = range.start as usize + i;
                out_probs[e] = f(u, v, out_probs[e]);
            }
        }
        // Mirror into the reverse CSR via edge ids.
        let mut in_probs = vec![0f32; self.in_probs.len()];
        for (slot, &e) in self.in_edge_ids.iter().enumerate() {
            in_probs[slot] = out_probs[e as usize];
        }
        // Reassemble through `from_parts` so the baked thresholds and skip
        // constants are rebuilt for the new probabilities; only the
        // structural arrays it consumes are cloned (the derived threshold
        // and metadata arrays would be recomputed and thrown away).
        Graph::from_parts(
            self.n,
            self.out_offsets.clone(),
            self.out_targets.clone(),
            out_probs.into_boxed_slice(),
            self.in_offsets.clone(),
            self.in_sources.clone(),
            in_probs.into_boxed_slice(),
            self.in_edge_ids.clone(),
        )
    }

    /// Approximate heap footprint in bytes (diagnostics only).
    pub fn heap_bytes(&self) -> usize {
        let m = self.num_edges();
        (self.n + 1) * 8 * 2 // two offset arrays
            + m * (4 + 4 + 4) // out targets + probs + thresholds
            + m * (4 + 4 + 4 + 4) // in sources + probs + edge ids + thresholds
            + (self.n + 1) * 2 * std::mem::size_of::<SampleMeta>() // packed sampling records, both directions
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.num_nodes())
            .field("m", &self.num_edges())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    fn diamond() -> crate::Graph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(0, 2, 0.25).unwrap();
        b.add_edge(1, 3, 1.0).unwrap();
        b.add_edge(2, 3, 0.75).unwrap();
        b.build()
    }

    #[test]
    fn degrees_and_counts() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.in_degree(3), 2);
        assert_eq!(g.in_degree(0), 0);
        assert!((g.avg_out_degree() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn forward_and_reverse_agree_via_edge_ids() {
        let g = diamond();
        for v in 0..4u32 {
            let (sources, probs, ids) = g.in_slice(v);
            for i in 0..sources.len() {
                let e = ids[i];
                assert_eq!(g.edge_target(e), v);
                assert_eq!(g.edge_source(e), sources[i]);
                assert_eq!(g.edge_prob(e), probs[i]);
            }
        }
    }

    #[test]
    fn edge_source_binary_search_covers_all_edges() {
        let g = diamond();
        let mut listed: Vec<(u32, u32)> = g.edges().map(|(u, v, _)| (u, v)).collect();
        listed.sort_unstable();
        let mut via_ids: Vec<(u32, u32)> = (0..g.num_edges() as u32)
            .map(|e| (g.edge_source(e), g.edge_target(e)))
            .collect();
        via_ids.sort_unstable();
        assert_eq!(listed, via_ids);
    }

    #[test]
    fn map_probs_updates_both_directions() {
        let g = diamond();
        let g2 = g.map_probs(|_, _, p| p / 2.0);
        for v in 0..4u32 {
            let (_, probs, ids) = g2.in_slice(v);
            for i in 0..probs.len() {
                assert_eq!(probs[i], g2.edge_prob(ids[i]));
                assert_eq!(probs[i], g.edge_prob(ids[i]) / 2.0);
            }
        }
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.avg_out_degree(), 0.0);
    }

    #[test]
    fn quantization_is_exact_at_the_endpoints() {
        use super::{quantize_prob, threshold_accept, threshold_prob};
        // p = 1.0 accepts every possible draw, including the all-ones one.
        let certain = quantize_prob(1.0);
        assert!(threshold_accept(0, certain));
        assert!(threshold_accept(u32::MAX, certain));
        assert_eq!(threshold_prob(certain), 1.0);
        // p = 0.0 accepts nothing, including the all-zeros draw.
        let never = quantize_prob(0.0);
        assert!(!threshold_accept(0, never));
        assert!(!threshold_accept(u32::MAX, never));
        assert_eq!(threshold_prob(never), 0.0);
    }

    #[test]
    fn quantization_error_is_below_two_to_minus_32() {
        use super::{quantize_prob, threshold_prob};
        for i in 1..1000u32 {
            let p = i as f32 / 1000.0;
            let q = threshold_prob(quantize_prob(p));
            assert!(
                (q - p as f64).abs() <= 1.0 / 4_294_967_296.0,
                "p {p}: quantized to {q}"
            );
        }
    }

    #[test]
    fn thresholds_mirror_probs_in_both_directions() {
        let g = diamond();
        for v in 0..4u32 {
            let (_, probs, ids) = g.in_slice(v);
            let thr = g.in_thresholds(v);
            assert_eq!(thr.len(), probs.len());
            for i in 0..probs.len() {
                assert_eq!(thr[i], super::quantize_prob(probs[i]));
                assert_eq!(thr[i], g.edge_threshold(ids[i]), "forward CSR agrees");
            }
        }
    }

    #[test]
    fn map_probs_rebakes_thresholds() {
        let g = diamond().map_probs(|_, _, p| p / 2.0);
        for v in 0..4u32 {
            let (_, probs, _) = g.in_slice(v);
            let thr = g.in_thresholds(v);
            for i in 0..probs.len() {
                assert_eq!(thr[i], super::quantize_prob(probs[i]));
            }
        }
    }

    #[test]
    fn skip_constant_only_for_uniform_low_prob_neighborhoods() {
        // 10 spokes into a hub at p = 0.1 each: uniform, eligible.
        let mut b = GraphBuilder::new(11);
        for u in 1..11 {
            b.add_edge(u, 0, 0.1).unwrap();
        }
        let g = b.build();
        let inv = g.in_skip_inv(0);
        assert!(
            inv < 0.0 && inv.is_finite(),
            "uniform indeg-10 hub must be skip-eligible, got {inv}"
        );
        let q = super::threshold_prob(super::quantize_prob(0.1));
        assert!((inv - 1.0 / (1.0 - q).ln()).abs() < 1e-12);
        // Spokes have empty in-neighborhoods: ineligible.
        assert!(g.in_skip_inv(1).is_nan());

        // Same shape at p = 0.9: too likely to be worth skipping.
        let mut b = GraphBuilder::new(11);
        for u in 1..11 {
            b.add_edge(u, 0, 0.9).unwrap();
        }
        assert!(b.build().in_skip_inv(0).is_nan());

        // Non-uniform neighborhood: ineligible.
        let mut b = GraphBuilder::new(11);
        for u in 1..11 {
            b.add_edge(u, 0, if u == 5 { 0.2 } else { 0.1 }).unwrap();
        }
        assert!(b.build().in_skip_inv(0).is_nan());

        // Too short, even if uniform.
        let mut b = GraphBuilder::new(5);
        for u in 1..5 {
            b.add_edge(u, 0, 0.1).unwrap();
        }
        assert!(b.build().in_skip_inv(0).is_nan());
    }

    #[test]
    fn out_meta_mirrors_the_forward_direction() {
        // A broadcaster with 10 uniform out-edges at p = 0.1: the *out*
        // side is skip-eligible, the in side of every sink is a single
        // edge (register-threshold path).
        let mut b = GraphBuilder::new(11);
        for v in 1..11 {
            b.add_edge(0, v, 0.1).unwrap();
        }
        let g = b.build();
        let inv = g.out_skip_inv(0);
        assert!(
            inv < 0.0 && inv.is_finite(),
            "uniform outdeg-10 broadcaster must be skip-eligible, got {inv}"
        );
        let q = super::threshold_prob(super::quantize_prob(0.1));
        assert!((inv - 1.0 / (1.0 - q).ln()).abs() < 1e-12);
        // The whole-span rejection probability rides in `thr`.
        let m = g.out_meta(0);
        assert_eq!(m.lo, 0);
        assert_eq!(m.thr, super::quantize_prob_f64((1.0 - q).powi(10)));
        // Sinks have no out-edges: ineligible, and the sentinel closes the
        // last span at m = |E|.
        assert!(g.out_skip_inv(5).is_nan());
        assert_eq!(g.out_meta(10).lo as usize, g.out_meta(0).lo as usize + 10);
        // In- and out-side records of the same graph are baked by the same
        // rule: a mirrored-edge graph agrees exactly.
        let mut b = GraphBuilder::new(11);
        for v in 1..11 {
            b.add_edge(v, 0, 0.1).unwrap();
        }
        let mirrored = b.build();
        assert_eq!(mirrored.in_meta(0).thr, g.out_meta(0).thr);
        assert_eq!(mirrored.in_skip_inv(0), g.out_skip_inv(0));
    }

    #[test]
    fn map_probs_rebakes_out_meta() {
        let mut b = GraphBuilder::new(11);
        for v in 1..11 {
            b.add_edge(0, v, 0.1).unwrap();
        }
        let g = b.build().map_probs(|_, _, _| 0.5);
        // p = 0.5 > 1/4: no longer skip-eligible, uniform threshold
        // instead.
        assert!(g.out_skip_inv(0).is_nan());
        assert_eq!(g.out_meta(0).thr, super::quantize_prob(0.5));
    }
}
