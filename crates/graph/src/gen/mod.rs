//! Synthetic graph generators.
//!
//! The paper evaluates on four SNAP datasets (Table II) that cannot be
//! shipped with this repository; [`presets`] provides deterministic synthetic
//! stand-ins matched on directedness, node/edge counts, average degree and
//! heavy-tailed degree skew (see DESIGN.md §3 for the substitution argument).
//! The individual generator families are public so tests and ablations can
//! build graphs with controlled structure:
//!
//! * [`erdos_renyi`] — uniform G(n, m), the "no skew" control;
//! * [`pref_attach`] — Barabási–Albert (undirected) for collaboration
//!   networks (NetHEPT, DBLP);
//! * [`power_law`] — Chung–Lu style fixed-expected-degree directed model for
//!   social/trust networks (Epinions, LiveJournal);
//! * [`small_world`] — Watts–Strogatz, used in tests.

pub mod erdos_renyi;
pub mod power_law;
pub mod pref_attach;
pub mod presets;
pub mod small_world;

pub use presets::Dataset;
