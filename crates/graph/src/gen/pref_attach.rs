//! Barabási–Albert preferential attachment (undirected).
//!
//! Collaboration networks such as NetHEPT and DBLP grow by new papers linking
//! authors to established ones, which BA models directly: each arriving node
//! attaches to existing nodes with probability proportional to their degree,
//! yielding the heavy-tailed degree distribution the paper's datasets exhibit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Graph, GraphBuilder, Node};

/// Generates an undirected Barabási–Albert graph.
///
/// * `n` — number of nodes;
/// * `mean_attach` — average number of edges each arriving node creates; may
///   be fractional (each arrival flips a coin between `floor` and `ceil`), so
///   the expected undirected edge count is `≈ n · mean_attach`;
/// * `seed` — RNG seed.
///
/// Probabilities are 1.0 placeholders; apply a
/// [`crate::WeightingScheme`] afterwards.
pub fn barabasi_albert(n: usize, mean_attach: f64, seed: u64) -> Graph {
    assert!(n >= 2, "BA needs at least 2 nodes");
    assert!(mean_attach > 0.0, "mean_attach must be positive");
    let mut rng = StdRng::seed_from_u64(seed);

    // `endpoints` holds one entry per edge endpoint, so uniform sampling from
    // it is exactly degree-proportional sampling.
    let expected_edges = (n as f64 * mean_attach) as usize + 2;
    let mut endpoints: Vec<Node> = Vec::with_capacity(expected_edges * 2);
    let mut edges: Vec<(Node, Node)> = Vec::with_capacity(expected_edges);

    // Seed with a single edge between nodes 0 and 1.
    edges.push((0, 1));
    endpoints.push(0);
    endpoints.push(1);

    let floor = mean_attach.floor() as usize;
    let frac = mean_attach - mean_attach.floor();

    for u in 2..n as Node {
        let k = floor + usize::from(rng.gen_bool(frac));
        let k = k.max(1).min(u as usize); // can't attach to more nodes than exist
        let mut picked = Vec::with_capacity(k);
        let mut guard = 0;
        while picked.len() < k && guard < 50 * k {
            guard += 1;
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if t != u && !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            edges.push((u, t));
        }
        // Update endpoint multiset after all of u's picks (standard BA step).
        for &t in &picked {
            endpoints.push(u);
            endpoints.push(t);
        }
    }

    let mut b = GraphBuilder::with_capacity(n, edges.len() * 2);
    for (u, v) in edges {
        b.add_undirected(u, v, 1.0)
            .expect("endpoints < n by construction");
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeHistogram;

    #[test]
    fn node_and_edge_counts_track_parameters() {
        let g = barabasi_albert(2000, 2.0, 7);
        assert_eq!(g.num_nodes(), 2000);
        // ~2 undirected edges per arrival -> ~4 arcs per node.
        let avg = g.avg_out_degree();
        assert!((3.2..=4.8).contains(&avg), "avg degree {avg} not near 4");
    }

    #[test]
    fn fractional_attachment_interpolates() {
        let g = barabasi_albert(4000, 1.5, 9);
        let avg = g.avg_out_degree();
        assert!((2.4..=3.6).contains(&avg), "avg degree {avg} not near 3");
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let n = 5000;
        let ba = barabasi_albert(n, 2.0, 11);
        let er = super::super::erdos_renyi::gnm_undirected(n, ba.num_edges() / 2, 11);
        let ba_share = DegreeHistogram::top1pct_edge_share(&ba);
        let er_share = DegreeHistogram::top1pct_edge_share(&er);
        assert!(
            ba_share > er_share * 2.0,
            "BA top-1% share {ba_share:.3} should dwarf ER's {er_share:.3}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let g1 = barabasi_albert(500, 2.0, 3);
        let g2 = barabasi_albert(500, 2.0, 3);
        assert_eq!(
            g1.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
    }
}
