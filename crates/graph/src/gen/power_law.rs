//! Chung–Lu style directed graphs with power-law expected degrees.
//!
//! Social/trust networks (Epinions, LiveJournal) are directed with
//! heavy-tailed in- *and* out-degree distributions. This generator draws a
//! Pareto weight per node for each direction and samples edges with
//! probability proportional to `w_out(u) · w_in(v)` — the fixed
//! expected-degree (Chung–Lu) model, which reproduces the target average
//! degree exactly and a power-law tail with exponent `≈ 1 + 1/α`.

use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Graph, GraphBuilder, Node};

/// Parameters for the directed power-law generator.
#[derive(Debug, Clone, Copy)]
pub struct PowerLawConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Target number of directed edges (achieved within a few percent; exact
    /// when deduplication is feasible).
    pub edges: usize,
    /// Pareto shape for out-degree weights; smaller = heavier tail.
    /// Degree tail exponent is roughly `1 + 1/alpha_out`.
    pub alpha_out: f64,
    /// Pareto shape for in-degree weights.
    pub alpha_in: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PowerLawConfig {
    fn default() -> Self {
        PowerLawConfig {
            nodes: 1000,
            edges: 5000,
            alpha_out: 1.3,
            alpha_in: 1.1,
            seed: 0,
        }
    }
}

/// Above this edge count the generator stops deduplicating (the builder's
/// noisy-or merge absorbs the few-percent duplicate rate instead), keeping
/// memory linear in the output.
const DEDUP_LIMIT: usize = 10_000_000;

/// Draws Pareto(1, alpha) weights, capped so no single node can own more than
/// `sqrt(n)` times the average weight (prevents degenerate hubs on small n).
fn pareto_weights(n: usize, alpha: f64, rng: &mut StdRng) -> Vec<f64> {
    let cap = (n as f64).sqrt().max(8.0);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0f64..1.0);
            ((1.0 - u).powf(-1.0 / alpha)).min(cap)
        })
        .collect()
}

/// Generates the directed power-law graph described by `cfg`. Probabilities
/// are 1.0 placeholders; apply a [`crate::WeightingScheme`] afterwards.
pub fn directed_power_law(cfg: PowerLawConfig) -> Graph {
    let PowerLawConfig {
        nodes: n,
        edges: m,
        alpha_out,
        alpha_in,
        seed,
    } = cfg;
    assert!(n >= 2, "need at least 2 nodes");
    assert!(alpha_out > 0.0 && alpha_in > 0.0, "alpha must be positive");
    let mut rng = StdRng::seed_from_u64(seed);

    let w_out = pareto_weights(n, alpha_out, &mut rng);
    let w_in = pareto_weights(n, alpha_in, &mut rng);
    let src_dist = WeightedIndex::new(&w_out).expect("positive weights");
    let dst_dist = WeightedIndex::new(&w_in).expect("positive weights");

    let mut b = GraphBuilder::with_capacity(n, m);
    if m <= DEDUP_LIMIT {
        let mut seen = std::collections::HashSet::with_capacity(m * 2);
        let mut attempts = 0usize;
        let max_attempts = m.saturating_mul(50).max(1000);
        while seen.len() < m && attempts < max_attempts {
            attempts += 1;
            let u = src_dist.sample(&mut rng) as Node;
            let v = dst_dist.sample(&mut rng) as Node;
            if u == v {
                continue;
            }
            if seen.insert((u as u64) << 32 | v as u64) {
                b.add_edge(u, v, 1.0).expect("validated endpoints");
            }
        }
    } else {
        // Large graphs: accept a small duplicate rate, merged by the builder.
        for _ in 0..m {
            let u = src_dist.sample(&mut rng) as Node;
            let v = dst_dist.sample(&mut rng) as Node;
            if u != v {
                b.add_edge(u, v, 1.0).expect("validated endpoints");
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeHistogram;

    #[test]
    fn hits_target_counts() {
        let g = directed_power_law(PowerLawConfig {
            nodes: 2000,
            edges: 12000,
            seed: 5,
            ..Default::default()
        });
        assert_eq!(g.num_nodes(), 2000);
        assert_eq!(g.num_edges(), 12000);
    }

    #[test]
    fn tail_is_heavier_than_uniform() {
        let g = directed_power_law(PowerLawConfig {
            nodes: 3000,
            edges: 15000,
            seed: 1,
            ..Default::default()
        });
        let er = super::super::erdos_renyi::gnm_directed(3000, 15000, 1);
        let pl_share = DegreeHistogram::top1pct_edge_share(&g);
        let er_share = DegreeHistogram::top1pct_edge_share(&er);
        assert!(
            pl_share > er_share * 2.0,
            "power-law top-1% share {pl_share:.3} vs ER {er_share:.3}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = PowerLawConfig {
            nodes: 500,
            edges: 2000,
            seed: 9,
            ..Default::default()
        };
        let g1 = directed_power_law(cfg);
        let g2 = directed_power_law(cfg);
        assert_eq!(
            g1.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn no_self_loops() {
        let g = directed_power_law(PowerLawConfig {
            nodes: 300,
            edges: 2500,
            seed: 2,
            ..Default::default()
        });
        assert!(g.edges().all(|(u, v, _)| u != v));
    }
}
