//! Dataset presets mirroring Table II of the paper.
//!
//! The SNAP datasets themselves cannot be redistributed or fetched offline;
//! each preset deterministically generates a synthetic stand-in matched on
//! directedness, node count, edge count and average degree, with
//! heavy-tailed degree skew (BA for the collaboration networks, Chung–Lu
//! power-law for the social/trust networks). See DESIGN.md §3 for why this
//! substitution preserves the paper's comparisons.
//!
//! | Dataset     | n     | m     | Type       | Avg. deg |
//! |-------------|-------|-------|------------|----------|
//! | NetHEPT     | 15.2K | 31.4K | undirected | 4.18     |
//! | Epinions    | 132K  | 841K  | directed   | 13.4     |
//! | DBLP        | 655K  | 1.99M | undirected | 6.08     |
//! | LiveJournal | 4.85M | 69.0M | directed   | 28.5     |
//!
//! (`m` counts *directed arcs* for directed datasets and, following the
//! paper's table, arcs after symmetrization for the undirected ones; "Avg.
//! deg" is total degree `2m/n` for directed and `m/n` arcs for undirected.)

use super::power_law::{directed_power_law, PowerLawConfig};
use super::pref_attach::barabasi_albert;
use crate::{Graph, WeightingScheme};

/// The four evaluation datasets of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// "High Energy Physics-Theory" collaboration network (undirected).
    NetHept,
    /// Epinions who-trusts-whom network (directed).
    Epinions,
    /// DBLP co-authorship network (undirected).
    Dblp,
    /// LiveJournal friendship network (directed).
    LiveJournal,
}

impl Dataset {
    /// All four datasets in the paper's order.
    pub const ALL: [Dataset; 4] = [
        Dataset::NetHept,
        Dataset::Epinions,
        Dataset::Dblp,
        Dataset::LiveJournal,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::NetHept => "NetHEPT",
            Dataset::Epinions => "Epinions",
            Dataset::Dblp => "DBLP",
            Dataset::LiveJournal => "LiveJournal",
        }
    }

    /// Parses the (case-insensitive) dataset name.
    pub fn parse(s: &str) -> Option<Dataset> {
        match s.to_ascii_lowercase().as_str() {
            "nethept" => Some(Dataset::NetHept),
            "epinions" => Some(Dataset::Epinions),
            "dblp" => Some(Dataset::Dblp),
            "livejournal" | "lj" => Some(Dataset::LiveJournal),
            _ => None,
        }
    }

    /// Node count at scale 1.0 (Table II).
    pub fn paper_nodes(self) -> usize {
        match self {
            Dataset::NetHept => 15_200,
            Dataset::Epinions => 132_000,
            Dataset::Dblp => 655_000,
            Dataset::LiveJournal => 4_850_000,
        }
    }

    /// The `m` reported in Table II: undirected *edge* count for the
    /// collaboration networks, directed arc count for the social networks.
    pub fn paper_edges(self) -> usize {
        match self {
            Dataset::NetHept => 31_400,
            Dataset::Epinions => 841_000,
            Dataset::Dblp => 1_990_000,
            Dataset::LiveJournal => 69_000_000,
        }
    }

    /// Directed arcs at scale 1.0 — what the CSR actually stores (undirected
    /// datasets are symmetrized, doubling Table II's `m`). Consistent with
    /// Table II's average degrees: `4.18 ≈ 2·31.4K/15.2K`,
    /// `6.08 ≈ 2·1.99M/655K`.
    pub fn paper_arcs(self) -> usize {
        if self.directed() {
            self.paper_edges()
        } else {
            2 * self.paper_edges()
        }
    }

    /// Whether the original dataset is directed.
    pub fn directed(self) -> bool {
        matches!(self, Dataset::Epinions | Dataset::LiveJournal)
    }

    /// Average degree as reported in Table II.
    pub fn paper_avg_degree(self) -> f64 {
        match self {
            Dataset::NetHept => 4.18,
            Dataset::Epinions => 13.4,
            Dataset::Dblp => 6.08,
            Dataset::LiveJournal => 28.5,
        }
    }

    /// Default scale factor for laptop-runnable benches: NetHEPT is built at
    /// full size, the larger networks proportionally smaller. `--scale 1.0`
    /// reproduces Table II counts.
    pub fn default_scale(self) -> f64 {
        match self {
            Dataset::NetHept => 1.0,
            Dataset::Epinions => 0.2,
            Dataset::Dblp => 0.05,
            Dataset::LiveJournal => 0.01,
        }
    }

    /// Generates the synthetic stand-in at `scale ∈ (0, 1]` of the paper's
    /// node count (average degree preserved) and applies the paper's
    /// weighted-cascade probabilities `p(u,v) = 1/indeg(v)`.
    pub fn generate(self, scale: f64, seed: u64) -> Graph {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let n = ((self.paper_nodes() as f64 * scale) as usize).max(64);
        let arcs = ((self.paper_arcs() as f64 * scale) as usize).max(4 * n);
        let raw = match self {
            Dataset::NetHept | Dataset::Dblp => {
                // Undirected collaboration network: BA with mean attachment
                // chosen so 2 * n * mean == arcs.
                let mean_attach = arcs as f64 / (2.0 * n as f64);
                barabasi_albert(n, mean_attach, seed)
            }
            Dataset::Epinions => directed_power_law(PowerLawConfig {
                nodes: n,
                edges: arcs,
                alpha_out: 1.3,
                alpha_in: 1.0, // trust networks: very heavy in-degree tail
                seed,
            }),
            Dataset::LiveJournal => directed_power_law(PowerLawConfig {
                nodes: n,
                edges: arcs,
                alpha_out: 1.5,
                alpha_in: 1.4, // friendships: milder skew, higher density
                seed,
            }),
        };
        WeightingScheme::WeightedCascade.apply(&raw)
    }

    /// Generates at [`default_scale`](Self::default_scale).
    pub fn generate_default(self, seed: u64) -> Graph {
        self.generate(self.default_scale(), seed)
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::DegreeHistogram;
    use crate::GraphStats;

    #[test]
    fn parse_round_trips() {
        for d in Dataset::ALL {
            assert_eq!(Dataset::parse(d.name()), Some(d));
        }
        assert_eq!(Dataset::parse("lj"), Some(Dataset::LiveJournal));
        assert_eq!(Dataset::parse("unknown"), None);
    }

    #[test]
    fn nethept_small_scale_matches_shape() {
        let g = Dataset::NetHept.generate(0.2, 1);
        let s = GraphStats::compute(&g);
        // n ≈ 3040; avg total degree ≈ 4.18 (arcs/node since symmetrized).
        assert!((2900..=3200).contains(&s.nodes), "n = {}", s.nodes);
        assert!(
            (3.2..=5.2).contains(&s.avg_out_degree),
            "avg arc degree {} should be near 4.18",
            s.avg_out_degree
        );
    }

    #[test]
    fn epinions_preset_is_directed_and_skewed() {
        let g = Dataset::Epinions.generate(0.02, 2);
        let s = GraphStats::compute(&g);
        // Directed: adjacency not symmetric in general.
        let mut asymmetric = false;
        'outer: for (u, v, _) in g.edges() {
            let (back, _, _) = g.out_slice(v);
            if !back.contains(&u) {
                asymmetric = true;
                break 'outer;
            }
        }
        assert!(asymmetric, "directed preset should not be symmetric");
        assert!(
            DegreeHistogram::top1pct_edge_share(&g) > 0.05,
            "expected heavy tail"
        );
        // avg out-degree ≈ 841K/132K ≈ 6.4
        assert!(
            (4.5..=8.5).contains(&s.avg_out_degree),
            "{}",
            s.avg_out_degree
        );
    }

    #[test]
    fn weights_are_weighted_cascade() {
        let g = Dataset::NetHept.generate(0.05, 3);
        for v in 0..g.num_nodes() as u32 {
            let (_, probs, _) = g.in_slice(v);
            let d = probs.len();
            for &p in probs {
                assert!(
                    (p - 1.0 / d as f32).abs() < 1e-6,
                    "node {v} indeg {d}: prob {p}"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g1 = Dataset::Epinions.generate(0.01, 7);
        let g2 = Dataset::Epinions.generate(0.01, 7);
        assert_eq!(g1.num_edges(), g2.num_edges());
        assert_eq!(
            g1.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn rejects_zero_scale() {
        let _ = Dataset::Dblp.generate(0.0, 0);
    }
}
