//! Watts–Strogatz small-world graphs (undirected).
//!
//! Not used by any paper experiment directly, but a useful structured
//! counterpoint in tests and ablations: high clustering, low degree variance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Graph, GraphBuilder, Node};

/// Generates a Watts–Strogatz graph: a ring lattice where each node connects
/// to its `k` nearest neighbours on each side, with each edge rewired to a
/// uniform random endpoint with probability `beta`.
///
/// Probabilities are 1.0 placeholders; apply a
/// [`crate::WeightingScheme`] afterwards.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    assert!(n > 2 * k, "ring lattice needs n > 2k");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(n * k * 2);
    let mut edges: Vec<(Node, Node)> = Vec::with_capacity(n * k);
    let key = |a: Node, b: Node| ((a.min(b) as u64) << 32) | a.max(b) as u64;

    for u in 0..n as Node {
        for j in 1..=k as Node {
            let v = (u + j) % n as Node;
            let (mut a, mut b) = (u, v);
            if rng.gen_bool(beta) {
                // Rewire the far endpoint; retry on loops/duplicates.
                for _ in 0..32 {
                    let w = rng.gen_range(0..n as Node);
                    if w != a && !seen.contains(&key(a, w)) {
                        b = w;
                        break;
                    }
                }
            }
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            if seen.insert(key(a, b)) {
                edges.push((a, b));
            }
        }
    }

    let mut builder = GraphBuilder::with_capacity(n, edges.len() * 2);
    for (a, b) in edges {
        builder
            .add_undirected(a, b, 1.0)
            .expect("validated endpoints");
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_beta_is_a_ring_lattice() {
        let g = watts_strogatz(20, 2, 0.0, 1);
        assert_eq!(g.num_edges(), 20 * 2 * 2); // n*k undirected edges, 2 arcs each
        for u in 0..20u32 {
            assert_eq!(g.out_degree(u), 4, "every node has 2k neighbours");
        }
    }

    #[test]
    fn rewiring_preserves_edge_count_approximately() {
        let g = watts_strogatz(200, 3, 0.3, 2);
        let undirected = g.num_edges() / 2;
        assert!(
            (570..=600).contains(&undirected),
            "expected ~600 undirected edges, got {undirected}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let g1 = watts_strogatz(100, 2, 0.5, 5);
        let g2 = watts_strogatz(100, 2, 0.5, 5);
        assert_eq!(
            g1.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
    }
}
