//! Erdős–Rényi G(n, m) graphs: every edge slot equally likely.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Graph, GraphBuilder, Node};

/// Generates a directed G(n, m) graph: `m` distinct directed edges drawn
/// uniformly without self-loops. Edge probabilities are set to 1.0
/// placeholders; apply a [`crate::WeightingScheme`] afterwards.
///
/// Panics if `m` exceeds the number of possible edges `n(n-1)`.
pub fn gnm_directed(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 2 || m == 0, "need at least two nodes for any edge");
    let possible = n.saturating_mul(n.saturating_sub(1));
    assert!(
        m <= possible,
        "requested {m} edges but only {possible} possible"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_capacity(n, m);
    while seen.len() < m {
        let u = rng.gen_range(0..n as Node);
        let v = rng.gen_range(0..n as Node);
        if u == v {
            continue;
        }
        let key = (u as u64) << 32 | v as u64;
        if seen.insert(key) {
            b.add_edge(u, v, 1.0).expect("validated endpoints");
        }
    }
    b.build()
}

/// Generates an undirected G(n, m) graph (`m` undirected edges, stored as
/// `2m` arcs).
pub fn gnm_undirected(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 2 || m == 0, "need at least two nodes for any edge");
    let possible = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= possible,
        "requested {m} edges but only {possible} possible"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_capacity(n, 2 * m);
    while seen.len() < m {
        let u = rng.gen_range(0..n as Node);
        let v = rng.gen_range(0..n as Node);
        if u == v {
            continue;
        }
        let (lo, hi) = (u.min(v), u.max(v));
        let key = (lo as u64) << 32 | hi as u64;
        if seen.insert(key) {
            b.add_undirected(lo, hi, 1.0).expect("validated endpoints");
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_has_exact_edge_count() {
        let g = gnm_directed(50, 200, 1);
        assert_eq!(g.num_nodes(), 50);
        assert_eq!(g.num_edges(), 200);
    }

    #[test]
    fn undirected_stores_two_arcs_per_edge() {
        let g = gnm_undirected(50, 100, 2);
        assert_eq!(g.num_edges(), 200);
        // symmetric adjacency
        for (u, v, _) in g.edges() {
            let (targets, _, _) = g.out_slice(v);
            assert!(targets.contains(&u), "missing reverse arc {v}->{u}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g1 = gnm_directed(30, 60, 42);
        let g2 = gnm_directed(30, 60, 42);
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
        let g3 = gnm_directed(30, 60, 43);
        let e3: Vec<_> = g3.edges().collect();
        assert_ne!(e1, e3, "different seeds should differ");
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn rejects_impossible_density() {
        let _ = gnm_directed(3, 100, 0);
    }
}
