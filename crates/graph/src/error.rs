//! Error types for graph construction and IO.

use std::fmt;

/// Errors surfaced while building, validating, or (de)serializing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a node id `>= n`.
    NodeOutOfRange {
        /// Offending node id.
        node: u64,
        /// Number of nodes in the graph under construction.
        num_nodes: u64,
    },
    /// An edge probability was outside `(0, 1]` or not finite.
    InvalidProbability {
        /// Source of the offending edge.
        src: u64,
        /// Destination of the offending edge.
        dst: u64,
        /// The rejected probability value.
        prob: f64,
    },
    /// The graph exceeds the `u32` edge-id space.
    TooManyEdges {
        /// Attempted edge count.
        edges: u64,
    },
    /// A text edge-list line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
    /// A binary graph file had a bad magic number, version, or truncation.
    Format(String),
    /// Underlying IO failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node id {node} out of range (graph has {num_nodes} nodes)"
                )
            }
            GraphError::InvalidProbability { src, dst, prob } => {
                write!(
                    f,
                    "edge ({src} -> {dst}) has invalid probability {prob}; must be in (0, 1]"
                )
            }
            GraphError::TooManyEdges { edges } => {
                write!(
                    f,
                    "graph has {edges} edges which exceeds the u32 edge-id space"
                )
            }
            GraphError::Parse { line, message } => {
                write!(f, "edge list parse error at line {line}: {message}")
            }
            GraphError::Format(msg) => write!(f, "bad graph file: {msg}"),
            GraphError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange {
            node: 9,
            num_nodes: 4,
        };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4"));

        let e = GraphError::InvalidProbability {
            src: 1,
            dst: 2,
            prob: 1.5,
        };
        assert!(e.to_string().contains("1.5"));

        let e = GraphError::Parse {
            line: 7,
            message: "garbage".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_error_converts_and_chains() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
