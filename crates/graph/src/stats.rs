//! Degree statistics — used to report dataset details (Table II).

use crate::Graph;

/// Summary statistics of a graph, formatted like Table II of the paper.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Node count `n`.
    pub nodes: usize,
    /// Directed edge count `m` (an undirected dataset stores two arcs per edge).
    pub edges: usize,
    /// Average out-degree `m / n`.
    pub avg_out_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Number of nodes with no outgoing edges.
    pub sinks: usize,
    /// Number of nodes with no incoming edges.
    pub sources: usize,
}

impl GraphStats {
    /// Computes statistics with a single pass over the degree arrays.
    pub fn compute(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut max_out = 0usize;
        let mut max_in = 0usize;
        let mut sinks = 0usize;
        let mut sources = 0usize;
        for u in 0..n {
            let od = g.out_degree(u as u32);
            let id = g.in_degree(u as u32);
            max_out = max_out.max(od);
            max_in = max_in.max(id);
            if od == 0 {
                sinks += 1;
            }
            if id == 0 {
                sources += 1;
            }
        }
        GraphStats {
            nodes: n,
            edges: g.num_edges(),
            avg_out_degree: g.avg_out_degree(),
            max_out_degree: max_out,
            max_in_degree: max_in,
            sinks,
            sources,
        }
    }

    /// Renders counts in the paper's `15.2K` / `1.99M` style.
    pub fn human(count: usize) -> String {
        fn trimmed(s: String) -> String {
            s.trim_end_matches('0').trim_end_matches('.').to_string()
        }
        let c = count as f64;
        if c >= 1e6 {
            format!("{}M", trimmed(format!("{:.3}", c / 1e6)))
        } else if c >= 1e3 {
            format!("{}K", trimmed(format!("{:.1}", c / 1e3)))
        } else {
            format!("{count}")
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} avg_deg={:.2} max_out={} max_in={}",
            GraphStats::human(self.nodes),
            GraphStats::human(self.edges),
            self.avg_out_degree,
            self.max_out_degree,
            self.max_in_degree,
        )
    }
}

/// Out-degree histogram on a log-2 scale: `buckets[i]` counts nodes with
/// out-degree in `[2^i, 2^{i+1})`; `buckets[0]` additionally counts degree 0
/// and 1 separately via [`DegreeHistogram::zero`].
#[derive(Debug, Clone)]
pub struct DegreeHistogram {
    /// Nodes with out-degree exactly 0.
    pub zero: usize,
    /// Log-2 buckets for degree ≥ 1.
    pub buckets: Vec<usize>,
}

impl DegreeHistogram {
    /// Builds the histogram of out-degrees.
    pub fn out_degrees(g: &Graph) -> Self {
        let mut zero = 0usize;
        let mut buckets: Vec<usize> = Vec::new();
        for u in 0..g.num_nodes() {
            let d = g.out_degree(u as u32);
            if d == 0 {
                zero += 1;
                continue;
            }
            let b = (usize::BITS - 1 - d.leading_zeros()) as usize; // floor(log2 d)
            if buckets.len() <= b {
                buckets.resize(b + 1, 0);
            }
            buckets[b] += 1;
        }
        DegreeHistogram { zero, buckets }
    }

    /// A crude heavy-tail indicator: fraction of all edges owned by the top
    /// 1% highest-out-degree nodes. Power-law graphs score far higher than
    /// Erdős–Rényi graphs of the same density.
    pub fn top1pct_edge_share(g: &Graph) -> f64 {
        let n = g.num_nodes();
        if n == 0 || g.num_edges() == 0 {
            return 0.0;
        }
        let mut degs: Vec<usize> = (0..n).map(|u| g.out_degree(u as u32)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let top = (n / 100).max(1);
        let owned: usize = degs[..top].iter().sum();
        owned as f64 / g.num_edges() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn stats_on_small_graph() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(0, 2, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        let s = GraphStats::compute(&b.build());
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.max_in_degree, 2);
        assert_eq!(s.sinks, 2); // nodes 2 and 3
        assert_eq!(s.sources, 2); // nodes 0 and 3
        assert!((s.avg_out_degree - 0.75).abs() < 1e-12);
    }

    #[test]
    fn human_formatting_matches_paper_style() {
        assert_eq!(GraphStats::human(15_200), "15.2K");
        assert_eq!(GraphStats::human(132_000), "132K");
        assert_eq!(GraphStats::human(1_990_000), "1.99M");
        assert_eq!(GraphStats::human(69_000_000), "69M");
        assert_eq!(GraphStats::human(999), "999");
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut b = GraphBuilder::new(8);
        // degrees: node0 -> 1, node1 -> 2, node2 -> 4
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(1, 3, 0.5).unwrap();
        for t in 3..7 {
            b.add_edge(2, t, 0.5).unwrap();
        }
        let h = DegreeHistogram::out_degrees(&b.build());
        assert_eq!(h.zero, 5);
        assert_eq!(h.buckets[0], 1); // degree 1
        assert_eq!(h.buckets[1], 1); // degree 2..3
        assert_eq!(h.buckets[2], 1); // degree 4..7
    }
}
