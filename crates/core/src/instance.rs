//! The TPM problem instance: graph + target set + seeding costs.

use atpm_graph::{Graph, Node};

/// A target profit maximization instance (paper Definition 2's inputs).
///
/// Costs are stored per node (zero for non-targets), so `c(S)` is a plain
/// sum; the target set is kept in a fixed examination order — the order the
/// double-greedy family iterates in (the approximation guarantees hold for
/// any fixed order; we default to the order the target set was constructed
/// in, e.g. IMM pick order).
pub struct TpmInstance {
    graph: Graph,
    target: Vec<Node>,
    costs: Box<[f64]>,
}

impl TpmInstance {
    /// Builds an instance. `costs` holds one entry per *target* node,
    /// parallel to `target`.
    ///
    /// Panics on duplicate targets, out-of-range ids, or negative/non-finite
    /// costs — instances are built by trusted workload constructors.
    pub fn new(graph: Graph, target: Vec<Node>, target_costs: &[f64]) -> Self {
        assert_eq!(
            target.len(),
            target_costs.len(),
            "one cost per target node required"
        );
        let n = graph.num_nodes();
        let mut costs = vec![0.0f64; n].into_boxed_slice();
        let mut seen = vec![false; n];
        for (&u, &c) in target.iter().zip(target_costs) {
            assert!((u as usize) < n, "target node {u} out of range");
            assert!(!seen[u as usize], "duplicate target node {u}");
            assert!(
                c.is_finite() && c >= 0.0,
                "cost of {u} must be finite and >= 0, got {c}"
            );
            seen[u as usize] = true;
            costs[u as usize] = c;
        }
        TpmInstance {
            graph,
            target,
            costs,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Target nodes in examination order.
    pub fn target(&self) -> &[Node] {
        &self.target
    }

    /// `k = |T|`.
    pub fn k(&self) -> usize {
        self.target.len()
    }

    /// Seeding cost of node `u` (zero for non-targets).
    #[inline]
    pub fn cost(&self, u: Node) -> f64 {
        self.costs[u as usize]
    }

    /// `c(S) = Σ_{u ∈ S} c(u)`.
    pub fn cost_of(&self, set: &[Node]) -> f64 {
        set.iter().map(|&u| self.cost(u)).sum()
    }

    /// Total target cost `c(T)`.
    pub fn total_cost(&self) -> f64 {
        self.cost_of(&self.target)
    }

    /// Whether `u` is a target node.
    pub fn is_target(&self, u: Node) -> bool {
        self.costs[u as usize] > 0.0 || self.target.contains(&u)
    }

    /// Consumes the instance, returning the graph (used when re-targeting).
    pub fn into_graph(self) -> Graph {
        self.graph
    }
}

impl std::fmt::Debug for TpmInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TpmInstance")
            .field("n", &self.graph.num_nodes())
            .field("m", &self.graph.num_edges())
            .field("k", &self.k())
            .field("c(T)", &self.total_cost())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpm_graph::GraphBuilder;

    fn graph() -> Graph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 0.5).unwrap();
        b.build()
    }

    #[test]
    fn costs_are_indexed_by_node() {
        let inst = TpmInstance::new(graph(), vec![1, 3], &[1.5, 2.5]);
        assert_eq!(inst.cost(1), 1.5);
        assert_eq!(inst.cost(3), 2.5);
        assert_eq!(inst.cost(0), 0.0);
        assert_eq!(inst.cost_of(&[1, 3]), 4.0);
        assert_eq!(inst.total_cost(), 4.0);
        assert_eq!(inst.k(), 2);
        assert!(inst.is_target(1));
        assert!(!inst.is_target(0));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn rejects_duplicate_targets() {
        let _ = TpmInstance::new(graph(), vec![1, 1], &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_targets() {
        let _ = TpmInstance::new(graph(), vec![9], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative_costs() {
        let _ = TpmInstance::new(graph(), vec![1], &[-1.0]);
    }

    #[test]
    fn zero_cost_targets_are_still_targets() {
        let inst = TpmInstance::new(graph(), vec![2], &[0.0]);
        assert!(inst.is_target(2));
    }
}
