//! Spread oracles: the paper's "oracle model" made concrete.
//!
//! Under the oracle model (§III-B) the expected spread of any node set on the
//! current residual graph is available in O(1). Three oracles are provided:
//!
//! * [`ExactOracle`] — exact enumeration of all `2^m` worlds; the genuine
//!   oracle, limited to tiny graphs (theory tests);
//! * [`McOracle`] — Monte-Carlo with a fixed per-query sample budget;
//!   converges to the exact oracle, usable at moderate scale;
//! * [`RisOracle`] — RR-set sampling with a fixed batch size.

use atpm_diffusion::{exact_spread, mc_spread_batched_with_engine, CascadeEngine};
use atpm_graph::{Node, ResidualGraph};
use atpm_ris::sampler::generate_batch;
use atpm_ris::CoverageScratch;

/// Answers expected-spread queries on residual graphs.
pub trait SpreadOracle {
    /// `E[I_view(set)]`: expected spread of `set` on `view`. Dead members
    /// contribute nothing.
    fn spread(&mut self, view: &ResidualGraph<'_>, set: &[Node]) -> f64;

    /// Conditional marginal spread `E[I_view(u | S)] = E[I(S ∪ {u})] − E[I(S)]`.
    fn marginal(&mut self, view: &ResidualGraph<'_>, u: Node, s: &[Node]) -> f64 {
        if s.contains(&u) {
            return 0.0;
        }
        let mut with_u = Vec::with_capacity(s.len() + 1);
        with_u.extend_from_slice(s);
        with_u.push(u);
        self.spread(view, &with_u) - self.spread(view, s)
    }
}

/// Exact enumeration over every realization (`m ≤ 20`).
#[derive(Debug, Default, Clone, Copy)]
pub struct ExactOracle;

impl SpreadOracle for ExactOracle {
    fn spread(&mut self, view: &ResidualGraph<'_>, set: &[Node]) -> f64 {
        exact_spread(view, set)
    }
}

/// Monte-Carlo oracle: `samples` fresh cascades per query, drawn through
/// the batched coin-free driver (`atpm_diffusion::mc_spread_batched`):
/// integer-threshold coins on the forward `SampleView`, geometric skip on
/// uniform out-neighborhoods, buffered counter RNG — no per-query RNG
/// heap allocation, the cascade engine's warm buffers reused throughout.
///
/// Queries are deterministic: the counter stream is re-keyed per call from
/// the query seed counter, so repeated evaluation of the same session
/// replays identically.
pub struct McOracle {
    samples: usize,
    seed: u64,
    calls: u64,
    engine: CascadeEngine,
}

impl McOracle {
    /// Oracle answering with the mean of `samples` cascades.
    pub fn new(samples: usize, seed: u64) -> Self {
        assert!(samples > 0, "need at least one sample");
        McOracle {
            samples,
            seed,
            calls: 0,
            engine: CascadeEngine::new(),
        }
    }
}

impl SpreadOracle for McOracle {
    fn spread(&mut self, view: &ResidualGraph<'_>, set: &[Node]) -> f64 {
        self.calls += 1;
        let query_seed = self.seed ^ self.calls.wrapping_mul(0x9E3779B97F4A7C15);
        mc_spread_batched_with_engine(view, set, self.samples, query_seed, &mut self.engine)
    }
}

/// RIS oracle: one RR batch of `theta` sets per query.
///
/// Batches come from the coin-free `SampleView` pipeline
/// (`atpm_ris::generate_batch`): integer-threshold coins, geometric skip
/// on uniform in-neighborhoods, buffered counter RNG. The thresholds
/// quantize probabilities to the `2^-32` lattice (exact at 0 and 1), so a
/// query's estimate carries at most `2^-32` bias per traversed edge on top
/// of the `O(1/√θ)` sampling noise — unobservable at any practical `theta`.
pub struct RisOracle {
    theta: usize,
    seed: u64,
    threads: usize,
    calls: u64,
    /// Reused across queries: the coverage count is evaluated through the
    /// epoch-marked scratch instead of allocating per-set flags per call.
    scratch: CoverageScratch,
}

impl RisOracle {
    /// Oracle answering from `theta` RR sets per query.
    pub fn new(theta: usize, seed: u64, threads: usize) -> Self {
        assert!(theta > 0, "need at least one RR set");
        RisOracle {
            theta,
            seed,
            threads,
            calls: 0,
            scratch: CoverageScratch::with_theta(theta),
        }
    }
}

impl SpreadOracle for RisOracle {
    fn spread(&mut self, view: &ResidualGraph<'_>, set: &[Node]) -> f64 {
        self.calls += 1;
        let batch_seed = self.seed ^ self.calls.wrapping_mul(0xD6E8FEB86659FD93);
        let c = generate_batch(view, self.theta, batch_seed, self.threads);
        c.scale(c.cov_set_with(set, &mut self.scratch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpm_graph::GraphBuilder;

    fn chain() -> atpm_graph::Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.build()
    }

    #[test]
    fn exact_oracle_matches_closed_form() {
        let g = chain();
        let view = ResidualGraph::new(&g);
        let mut o = ExactOracle;
        assert!((o.spread(&view, &[0]) - 1.75).abs() < 1e-12);
        assert!((o.spread(&view, &[0, 2]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn exact_oracle_marginal() {
        let g = chain();
        let view = ResidualGraph::new(&g);
        let mut o = ExactOracle;
        // E[I(2 | {0})] = E[I({0,2})] - E[I({0})] = 2.5 - 1.75 = 0.75.
        assert!((o.marginal(&view, 2, &[0]) - 0.75).abs() < 1e-12);
        // Marginal of a member is zero.
        assert_eq!(o.marginal(&view, 0, &[0]), 0.0);
    }

    #[test]
    fn mc_oracle_converges_and_replays() {
        let g = chain();
        let view = ResidualGraph::new(&g);
        let mut o1 = McOracle::new(40_000, 3);
        let v1 = o1.spread(&view, &[0]);
        assert!((v1 - 1.75).abs() < 0.03, "{v1}");
        let mut o2 = McOracle::new(40_000, 3);
        assert_eq!(o2.spread(&view, &[0]), v1, "same seed, same call index");
    }

    #[test]
    fn ris_oracle_converges() {
        let g = chain();
        let view = ResidualGraph::new(&g);
        let mut o = RisOracle::new(60_000, 4, 2);
        let v = o.spread(&view, &[0]);
        assert!((v - 1.75).abs() < 0.04, "{v}");
    }

    #[test]
    fn oracles_respect_residual_views() {
        let g = chain();
        let mut view = ResidualGraph::new(&g);
        view.remove(1);
        let mut e = ExactOracle;
        let mut m = McOracle::new(5000, 5);
        assert_eq!(e.spread(&view, &[0]), 1.0);
        assert!((m.spread(&view, &[0]) - 1.0).abs() < 1e-9);
        // Dead seed.
        assert_eq!(e.spread(&view, &[1]), 0.0);
    }
}
