//! The adaptive feedback loop: one policy run against one possible world.
//!
//! A session owns the residual graph for a single realization. The policy
//! calls [`AdaptiveSession::select`] for each seed it commits; the session
//! observes the seed's cascade `A(u)` *in that realization* (paper §II-B),
//! removes the activated nodes from the residual graph and keeps the profit
//! ledger. Everything a policy may legally observe is exposed here — and
//! nothing more (no peeking at un-cascaded coins).
//!
//! Two service-friendly extensions support driving this loop over a network
//! protocol (the `atpm-serve` crate) instead of in-process:
//!
//! * [`AdaptiveSession::apply_observation`] decouples *deciding* a seed from
//!   *simulating* its cascade: the realized activation set can come from an
//!   external source (a real deployment, or a client-side simulator) and is
//!   applied to the residual state exactly the way [`select`] applies an
//!   internally simulated cascade — `select` is itself implemented on top of
//!   it, so the two paths cannot drift.
//! * [`AdaptiveSession::suspend`] / [`AdaptiveSession::resume`] move a
//!   session's entire mutable state into an owned, `'static`
//!   [`SessionState`] and back. A server keeps the suspended state in its
//!   session table between requests and re-attaches it to the shared
//!   [`TpmInstance`] for the duration of one request — no self-referential
//!   structs, no per-request allocation (the buffers are moved, not copied).
//!
//! [`select`]: AdaptiveSession::select

use atpm_diffusion::{CascadeEngine, HashedRealization, MaterializedRealization, Realization};
use atpm_graph::{Edge, Node, ResidualGraph};
use atpm_ris::NodeSet;

use crate::instance::TpmInstance;

/// The possible world a session runs against: hashed (O(1) memory, the
/// default) or materialized (explicit bits, used by exact enumeration in
/// `theory`).
pub enum SessionWorld {
    /// Lazy hash-derived world identified by a seed.
    Hashed(HashedRealization),
    /// Explicit per-edge liveness bits.
    Materialized(MaterializedRealization),
}

impl Realization for SessionWorld {
    #[inline]
    fn is_live(&self, e: Edge, prob: f32) -> bool {
        match self {
            SessionWorld::Hashed(r) => r.is_live(e, prob),
            SessionWorld::Materialized(r) => r.is_live(e, prob),
        }
    }

    // Forwarded explicitly so a wrapped world realizes the same quantized
    // coins as the bare realization (the trait default would detour through
    // the float rule).
    #[inline]
    fn is_live_q(&self, e: Edge, threshold: u32) -> bool {
        match self {
            SessionWorld::Hashed(r) => r.is_live_q(e, threshold),
            SessionWorld::Materialized(r) => r.is_live_q(e, threshold),
        }
    }
}

/// One adaptive run: realization + residual state + profit ledger.
pub struct AdaptiveSession<'a> {
    instance: &'a TpmInstance,
    realization: SessionWorld,
    residual: ResidualGraph<'a>,
    engine: CascadeEngine,
    activated: NodeSet,
    selected: Vec<Node>,
    total_activated: usize,
    /// Cumulative sampling effort reported by noise-model policies
    /// (RR sets generated); used by the runtime experiments.
    sampling_work: u64,
    /// Observation rounds applied so far — one per committed seed on the
    /// single-seed path, one per committed *batch* on the batched path.
    /// The adaptivity budget the low-adaptivity policies are spending.
    rounds: u64,
    /// Marginal-oracle evaluations reported by batch policies
    /// ([`add_oracle_queries`](Self::add_oracle_queries)), the query
    /// accounting of threshold-sampling selection.
    oracle_queries: u64,
}

impl<'a> AdaptiveSession<'a> {
    /// Opens a session on `instance` for the possible world `world_seed`.
    pub fn new(instance: &'a TpmInstance, world_seed: u64) -> Self {
        Self::with_world(
            instance,
            SessionWorld::Hashed(HashedRealization::new(world_seed)),
        )
    }

    /// Opens a session against an explicit world (exact enumeration, tests).
    pub fn with_world(instance: &'a TpmInstance, world: SessionWorld) -> Self {
        let n = instance.graph().num_nodes();
        AdaptiveSession {
            instance,
            realization: world,
            residual: ResidualGraph::new(instance.graph()),
            engine: CascadeEngine::new(),
            activated: NodeSet::new(n),
            selected: Vec::new(),
            total_activated: 0,
            sampling_work: 0,
            rounds: 0,
            oracle_queries: 0,
        }
    }

    /// The instance under evaluation.
    pub fn instance(&self) -> &TpmInstance {
        self.instance
    }

    /// The current residual graph `G_i`.
    pub fn residual(&self) -> &ResidualGraph<'a> {
        &self.residual
    }

    /// Whether `u` has been activated by an earlier selection (the
    /// `if u_i is activated` guard of Algorithms 2–4).
    pub fn is_activated(&self, u: Node) -> bool {
        self.activated.contains(u)
    }

    /// Commits `u` as a seed: observes `A(u)` in this session's realization,
    /// removes the activated nodes from the residual graph, and returns
    /// `A(u)` (including `u` itself, if it was still alive).
    ///
    /// Panics if `u` is not a target node or was already activated —
    /// policies must check [`is_activated`](Self::is_activated) first, as
    /// the paper's pseudocode does.
    pub fn select(&mut self, u: Node) -> Vec<Node> {
        self.select_batch(std::slice::from_ref(&u))
    }

    /// Commits a whole *batch* of seeds in one observation round: observes
    /// the joint cascade `A(S)` of all batch seeds in this session's
    /// realization, removes the activated nodes from the residual graph,
    /// and returns `A(S)` in discovery order. One call counts as **one**
    /// adaptivity round ([`rounds`](Self::rounds)) however many seeds the
    /// batch holds; `select_batch(&[u])` is exactly [`select`](Self::select)
    /// — there is only one commit path.
    ///
    /// Panics like [`select`](Self::select) on an empty batch, a duplicate
    /// batch member, a non-target seed, or an already-activated seed (batch
    /// members must be distinct and un-activated *at batch decision time* —
    /// a later member activated mid-cascade by an earlier one is fine, and
    /// is the low-adaptivity gap batching accepts).
    pub fn select_batch(&mut self, seeds: &[Node]) -> Vec<Node> {
        self.validate_batch(seeds);
        let cascade = self.engine.observe(&self.residual, &self.realization, seeds);
        self.apply_observations(seeds, &cascade);
        cascade
    }

    /// Commits `u` as a seed with an *externally observed* activation set
    /// instead of simulating the cascade against this session's realization.
    /// Returns the number of newly activated nodes.
    ///
    /// This is the network-protocol entry point: a service decides seeds with
    /// [`select`](Self::select)'s policy machinery but learns the realized
    /// cascade from the outside world. Already-activated nodes in `activated`
    /// are ignored (external reports may overlap), so the profit ledger stays
    /// consistent; when `activated` *is* a true cascade of the residual graph
    /// (as in [`select`](Self::select)) every node is new and the two paths
    /// update the state identically.
    ///
    /// Panics like [`select`](Self::select) on non-target or
    /// already-activated `u`, and on out-of-range activation ids — services
    /// must validate untrusted input first.
    pub fn apply_observation(&mut self, u: Node, activated: &[Node]) -> usize {
        self.apply_observations(std::slice::from_ref(&u), activated)
    }

    /// Commits a batch of seeds with an *externally observed* joint
    /// activation set — the batched form of
    /// [`apply_observation`](Self::apply_observation), and the network
    /// entry point of the `observe_batch` protocol route. Returns the
    /// number of newly activated nodes; one call counts as one adaptivity
    /// round.
    ///
    /// Panics like [`select_batch`](Self::select_batch) on invalid seeds
    /// and on out-of-range activation ids — services must validate
    /// untrusted input first.
    pub fn apply_observations(&mut self, seeds: &[Node], activated: &[Node]) -> usize {
        self.validate_batch(seeds);
        let n = self.instance.graph().num_nodes();
        let mut newly = 0usize;
        for &v in activated {
            assert!((v as usize) < n, "activated node {v} out of range");
            if !self.activated.contains(v) {
                self.activated.insert(v);
                self.residual.remove(v);
                newly += 1;
            }
        }
        self.total_activated += newly;
        self.selected.extend_from_slice(seeds);
        self.rounds += 1;
        newly
    }

    /// The batch-commit preconditions, checked *before* any state changes:
    /// non-empty, every seed a distinct target, none activated yet.
    fn validate_batch(&self, seeds: &[Node]) {
        assert!(!seeds.is_empty(), "policy committed an empty batch");
        for (i, &u) in seeds.iter().enumerate() {
            assert!(
                self.instance.is_target(u),
                "policy selected non-target node {u}"
            );
            assert!(
                !self.is_activated(u),
                "policy selected already-activated node {u}"
            );
            assert!(
                !seeds[..i].contains(&u),
                "policy selected duplicate node {u} in one batch"
            );
        }
    }

    /// Seeds committed so far, in selection order.
    pub fn selected(&self) -> &[Node] {
        &self.selected
    }

    /// Number of nodes activated so far (`I_φ(S)` for the current `S`).
    pub fn total_activated(&self) -> usize {
        self.total_activated
    }

    /// Realized profit so far: `I_φ(S) − c(S)`.
    pub fn profit(&self) -> f64 {
        self.total_activated as f64 - self.instance.cost_of(&self.selected)
    }

    /// Records RR-set generation effort (noise-model policies call this so
    /// experiments can report sampling volume alongside wall-clock time).
    pub fn add_sampling_work(&mut self, rr_sets: u64) {
        self.sampling_work += rr_sets;
    }

    /// Total RR sets reported via [`add_sampling_work`](Self::add_sampling_work).
    pub fn sampling_work(&self) -> u64 {
        self.sampling_work
    }

    /// Observation rounds applied so far (one per committed seed or batch).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Records marginal-oracle evaluations (batch policies call this so the
    /// threshold-sampling query accounting lands in ledgers).
    pub fn add_oracle_queries(&mut self, queries: u64) {
        self.oracle_queries += queries;
    }

    /// Total oracle queries reported via
    /// [`add_oracle_queries`](Self::add_oracle_queries).
    pub fn oracle_queries(&self) -> u64 {
        self.oracle_queries
    }

    /// The world seed this session runs against (0 for explicit worlds).
    pub fn world_seed(&self) -> u64 {
        match &self.realization {
            SessionWorld::Hashed(r) => r.seed(),
            SessionWorld::Materialized(_) => 0,
        }
    }

    /// Detaches the session from its instance, returning its entire mutable
    /// state as an owned [`SessionState`]. Buffers are moved, not copied.
    pub fn suspend(self) -> SessionState {
        let (alive_words, n_alive) = self.residual.into_parts();
        SessionState {
            realization: self.realization,
            alive_words,
            n_alive,
            engine: self.engine,
            activated: self.activated,
            selected: self.selected,
            total_activated: self.total_activated,
            sampling_work: self.sampling_work,
            rounds: self.rounds,
            oracle_queries: self.oracle_queries,
        }
    }

    /// Re-attaches a suspended state to `instance`, restoring the session
    /// exactly as [`suspend`](Self::suspend) left it. Panics if the state
    /// was suspended from a different-sized instance.
    pub fn resume(instance: &'a TpmInstance, state: SessionState) -> Self {
        let residual =
            ResidualGraph::from_parts(instance.graph(), state.alive_words, state.n_alive);
        AdaptiveSession {
            instance,
            realization: state.realization,
            residual,
            engine: state.engine,
            activated: state.activated,
            selected: state.selected,
            total_activated: state.total_activated,
            sampling_work: state.sampling_work,
            rounds: state.rounds,
            oracle_queries: state.oracle_queries,
        }
    }
}

/// A suspended [`AdaptiveSession`]: every mutable field in owned form, with
/// no borrow of the instance. Produced by [`AdaptiveSession::suspend`],
/// consumed by [`AdaptiveSession::resume`].
///
/// Read access to the ledger is provided directly so services can answer
/// status queries without re-attaching to the instance.
pub struct SessionState {
    realization: SessionWorld,
    alive_words: Vec<u64>,
    n_alive: usize,
    engine: CascadeEngine,
    activated: NodeSet,
    selected: Vec<Node>,
    total_activated: usize,
    sampling_work: u64,
    rounds: u64,
    oracle_queries: u64,
}

impl SessionState {
    /// Seeds committed so far, in selection order.
    pub fn selected(&self) -> &[Node] {
        &self.selected
    }

    /// Observation rounds applied before suspension.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Oracle queries reported by batch policies before suspension.
    pub fn oracle_queries(&self) -> u64 {
        self.oracle_queries
    }

    /// Number of nodes activated so far.
    pub fn total_activated(&self) -> usize {
        self.total_activated
    }

    /// Alive-node count of the suspended residual graph.
    pub fn num_alive(&self) -> usize {
        self.n_alive
    }

    /// Total RR sets reported by noise-model policies.
    pub fn sampling_work(&self) -> u64 {
        self.sampling_work
    }

    /// Whether `u` was activated before suspension.
    pub fn is_activated(&self, u: Node) -> bool {
        self.activated.contains(u)
    }

    /// Realized profit so far against `instance` (the instance the session
    /// was suspended from): `I_φ(S) − c(S)`.
    pub fn profit(&self, instance: &TpmInstance) -> f64 {
        self.total_activated as f64 - instance.cost_of(&self.selected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpm_graph::{GraphBuilder, GraphView};

    /// Deterministic graph: 0 -> 1 (p=1), 2 isolated. Targets {0, 2}.
    fn instance() -> TpmInstance {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        TpmInstance::new(b.build(), vec![0, 2], &[1.5, 0.25])
    }

    #[test]
    fn select_observes_and_removes() {
        let inst = instance();
        let mut s = AdaptiveSession::new(&inst, 7);
        let a = s.select(0);
        assert_eq!(a, vec![0, 1], "p=1 edge always fires");
        assert!(s.is_activated(0));
        assert!(s.is_activated(1));
        assert!(!s.is_activated(2));
        assert_eq!(s.residual().num_alive(), 1);
        assert_eq!(s.total_activated(), 2);
        assert!((s.profit() - (2.0 - 1.5)).abs() < 1e-12);
    }

    #[test]
    fn profit_accumulates_across_selections() {
        let inst = instance();
        let mut s = AdaptiveSession::new(&inst, 7);
        s.select(0);
        s.select(2);
        assert_eq!(s.selected(), &[0, 2]);
        assert_eq!(s.total_activated(), 3);
        assert!((s.profit() - (3.0 - 1.75)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-target")]
    fn select_rejects_non_targets() {
        let inst = instance();
        let mut s = AdaptiveSession::new(&inst, 7);
        s.select(1);
    }

    #[test]
    #[should_panic(expected = "already-activated")]
    fn select_rejects_activated_nodes() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0, 1], &[1.0, 1.0]);
        let mut s = AdaptiveSession::new(&inst, 1);
        s.select(0); // activates 1
        s.select(1);
    }

    #[test]
    fn same_world_seed_replays_identically() {
        // Probabilistic edge: same seed, same observation.
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.5).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0], &[0.5]);
        for seed in 0..20u64 {
            let mut s1 = AdaptiveSession::new(&inst, seed);
            let mut s2 = AdaptiveSession::new(&inst, seed);
            assert_eq!(s1.select(0), s2.select(0), "world {seed}");
        }
    }

    #[test]
    fn apply_observation_matches_select_on_true_cascades() {
        let inst = instance();
        let mut simulated = AdaptiveSession::new(&inst, 7);
        let cascade = simulated.select(0);
        // An "external" session fed the same observation lands in the same
        // state: residual, ledger, profit.
        let mut external = AdaptiveSession::new(&inst, 999); // world unused
        let newly = external.apply_observation(0, &cascade);
        assert_eq!(newly, cascade.len());
        assert_eq!(external.selected(), simulated.selected());
        assert_eq!(external.total_activated(), simulated.total_activated());
        assert_eq!(
            external.residual().num_alive(),
            simulated.residual().num_alive()
        );
        assert_eq!(external.profit().to_bits(), simulated.profit().to_bits());
    }

    #[test]
    fn apply_observation_ignores_already_activated_reports() {
        let inst = instance();
        let mut s = AdaptiveSession::new(&inst, 7);
        s.select(0); // activates {0, 1}
        let newly = s.apply_observation(2, &[2, 1, 0]);
        assert_eq!(newly, 1, "only node 2 is new");
        assert_eq!(s.total_activated(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn apply_observation_rejects_out_of_range_nodes() {
        let inst = instance();
        let mut s = AdaptiveSession::new(&inst, 7);
        s.apply_observation(0, &[99]);
    }

    #[test]
    fn suspend_resume_round_trips_mid_run() {
        let inst = instance();
        let mut s = AdaptiveSession::new(&inst, 7);
        s.select(0);
        s.add_sampling_work(42);
        let state = s.suspend();
        assert_eq!(state.selected(), &[0]);
        assert_eq!(state.total_activated(), 2);
        assert_eq!(state.num_alive(), 1);
        assert_eq!(state.sampling_work(), 42);
        assert!(state.is_activated(1));
        assert!((state.profit(&inst) - (2.0 - 1.5)).abs() < 1e-12);
        let mut s = AdaptiveSession::resume(&inst, state);
        s.select(2);
        assert_eq!(s.selected(), &[0, 2]);
        assert_eq!(s.total_activated(), 3);
        assert!((s.profit() - (3.0 - 1.75)).abs() < 1e-12);
    }

    #[test]
    fn suspended_world_replays_identically_after_resume() {
        // The realization travels with the state: a resumed session observes
        // the same coins a never-suspended one does.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0], &[0.5]);
        for seed in 0..10u64 {
            let mut direct = AdaptiveSession::new(&inst, seed);
            let a = direct.select(0);
            let fresh = AdaptiveSession::new(&inst, seed);
            let mut resumed = AdaptiveSession::resume(&inst, fresh.suspend());
            let b = resumed.select(0);
            assert_eq!(a, b, "world {seed}");
        }
    }

    #[test]
    fn sampling_work_ledger() {
        let inst = instance();
        let mut s = AdaptiveSession::new(&inst, 1);
        s.add_sampling_work(100);
        s.add_sampling_work(50);
        assert_eq!(s.sampling_work(), 150);
    }

    #[test]
    fn select_batch_of_one_is_bit_identical_to_select() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0, 2], &[0.5, 0.25]);
        for seed in 0..20u64 {
            let mut single = AdaptiveSession::new(&inst, seed);
            let a = single.select(0);
            let mut batched = AdaptiveSession::new(&inst, seed);
            let b = batched.select_batch(&[0]);
            assert_eq!(a, b, "world {seed}");
            assert_eq!(single.selected(), batched.selected());
            assert_eq!(single.rounds(), batched.rounds());
            assert_eq!(single.profit().to_bits(), batched.profit().to_bits());
        }
    }

    #[test]
    fn select_batch_observes_the_joint_cascade_in_one_round() {
        let inst = instance(); // 0 -> 1 (p=1), 2 isolated; targets {0, 2}
        let mut s = AdaptiveSession::new(&inst, 7);
        let cascade = s.select_batch(&[0, 2]);
        assert_eq!(cascade.len(), 3, "joint cascade covers both seeds");
        assert_eq!(s.selected(), &[0, 2]);
        assert_eq!(s.total_activated(), 3);
        assert_eq!(s.rounds(), 1, "a batch is one adaptivity round");
        assert!((s.profit() - (3.0 - 1.75)).abs() < 1e-12);
    }

    #[test]
    fn rounds_count_batches_not_seeds() {
        let inst = instance();
        let mut s = AdaptiveSession::new(&inst, 7);
        s.select(0);
        s.select(2);
        assert_eq!(s.rounds(), 2, "single-seed path: one round per seed");
    }

    #[test]
    fn apply_observations_matches_select_batch_on_true_cascades() {
        let inst = instance();
        let mut simulated = AdaptiveSession::new(&inst, 7);
        let cascade = simulated.select_batch(&[0, 2]);
        let mut external = AdaptiveSession::new(&inst, 999); // world unused
        let newly = external.apply_observations(&[0, 2], &cascade);
        assert_eq!(newly, cascade.len());
        assert_eq!(external.selected(), simulated.selected());
        assert_eq!(external.rounds(), simulated.rounds());
        assert_eq!(external.profit().to_bits(), simulated.profit().to_bits());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn select_batch_rejects_duplicate_members() {
        let inst = instance();
        let mut s = AdaptiveSession::new(&inst, 7);
        s.select_batch(&[0, 0]);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn select_batch_rejects_empty_batches() {
        let inst = instance();
        let mut s = AdaptiveSession::new(&inst, 7);
        s.select_batch(&[]);
    }

    #[test]
    #[should_panic(expected = "already-activated")]
    fn select_batch_rejects_previously_activated_members() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0, 1, 2], &[1.0, 1.0, 1.0]);
        let mut s = AdaptiveSession::new(&inst, 1);
        s.select(0); // activates 1
        s.select_batch(&[1, 2]);
    }

    #[test]
    fn round_and_query_accounting_survives_suspend_resume() {
        let inst = instance();
        let mut s = AdaptiveSession::new(&inst, 7);
        s.select_batch(&[0, 2]);
        s.add_oracle_queries(17);
        let state = s.suspend();
        assert_eq!(state.rounds(), 1);
        assert_eq!(state.oracle_queries(), 17);
        let s = AdaptiveSession::resume(&inst, state);
        assert_eq!(s.rounds(), 1);
        assert_eq!(s.oracle_queries(), 17);
    }
}
