//! The adaptive feedback loop: one policy run against one possible world.
//!
//! A session owns the residual graph for a single realization. The policy
//! calls [`AdaptiveSession::select`] for each seed it commits; the session
//! observes the seed's cascade `A(u)` *in that realization* (paper §II-B),
//! removes the activated nodes from the residual graph and keeps the profit
//! ledger. Everything a policy may legally observe is exposed here — and
//! nothing more (no peeking at un-cascaded coins).

use atpm_diffusion::{CascadeEngine, HashedRealization, MaterializedRealization, Realization};
use atpm_graph::{Edge, Node, ResidualGraph};
use atpm_ris::NodeSet;

use crate::instance::TpmInstance;

/// The possible world a session runs against: hashed (O(1) memory, the
/// default) or materialized (explicit bits, used by exact enumeration in
/// `theory`).
pub enum SessionWorld {
    /// Lazy hash-derived world identified by a seed.
    Hashed(HashedRealization),
    /// Explicit per-edge liveness bits.
    Materialized(MaterializedRealization),
}

impl Realization for SessionWorld {
    #[inline]
    fn is_live(&self, e: Edge, prob: f32) -> bool {
        match self {
            SessionWorld::Hashed(r) => r.is_live(e, prob),
            SessionWorld::Materialized(r) => r.is_live(e, prob),
        }
    }
}

/// One adaptive run: realization + residual state + profit ledger.
pub struct AdaptiveSession<'a> {
    instance: &'a TpmInstance,
    realization: SessionWorld,
    residual: ResidualGraph<'a>,
    engine: CascadeEngine,
    activated: NodeSet,
    selected: Vec<Node>,
    total_activated: usize,
    /// Cumulative sampling effort reported by noise-model policies
    /// (RR sets generated); used by the runtime experiments.
    sampling_work: u64,
}

impl<'a> AdaptiveSession<'a> {
    /// Opens a session on `instance` for the possible world `world_seed`.
    pub fn new(instance: &'a TpmInstance, world_seed: u64) -> Self {
        Self::with_world(
            instance,
            SessionWorld::Hashed(HashedRealization::new(world_seed)),
        )
    }

    /// Opens a session against an explicit world (exact enumeration, tests).
    pub fn with_world(instance: &'a TpmInstance, world: SessionWorld) -> Self {
        let n = instance.graph().num_nodes();
        AdaptiveSession {
            instance,
            realization: world,
            residual: ResidualGraph::new(instance.graph()),
            engine: CascadeEngine::new(),
            activated: NodeSet::new(n),
            selected: Vec::new(),
            total_activated: 0,
            sampling_work: 0,
        }
    }

    /// The instance under evaluation.
    pub fn instance(&self) -> &TpmInstance {
        self.instance
    }

    /// The current residual graph `G_i`.
    pub fn residual(&self) -> &ResidualGraph<'a> {
        &self.residual
    }

    /// Whether `u` has been activated by an earlier selection (the
    /// `if u_i is activated` guard of Algorithms 2–4).
    pub fn is_activated(&self, u: Node) -> bool {
        self.activated.contains(u)
    }

    /// Commits `u` as a seed: observes `A(u)` in this session's realization,
    /// removes the activated nodes from the residual graph, and returns
    /// `A(u)` (including `u` itself, if it was still alive).
    ///
    /// Panics if `u` is not a target node or was already activated —
    /// policies must check [`is_activated`](Self::is_activated) first, as
    /// the paper's pseudocode does.
    pub fn select(&mut self, u: Node) -> Vec<Node> {
        assert!(
            self.instance.is_target(u),
            "policy selected non-target node {u}"
        );
        assert!(
            !self.is_activated(u),
            "policy selected already-activated node {u}"
        );
        let cascade = self.engine.observe(&self.residual, &self.realization, &[u]);
        for &v in &cascade {
            self.activated.insert(v);
            self.residual.remove(v);
        }
        self.total_activated += cascade.len();
        self.selected.push(u);
        cascade
    }

    /// Seeds committed so far, in selection order.
    pub fn selected(&self) -> &[Node] {
        &self.selected
    }

    /// Number of nodes activated so far (`I_φ(S)` for the current `S`).
    pub fn total_activated(&self) -> usize {
        self.total_activated
    }

    /// Realized profit so far: `I_φ(S) − c(S)`.
    pub fn profit(&self) -> f64 {
        self.total_activated as f64 - self.instance.cost_of(&self.selected)
    }

    /// Records RR-set generation effort (noise-model policies call this so
    /// experiments can report sampling volume alongside wall-clock time).
    pub fn add_sampling_work(&mut self, rr_sets: u64) {
        self.sampling_work += rr_sets;
    }

    /// Total RR sets reported via [`add_sampling_work`](Self::add_sampling_work).
    pub fn sampling_work(&self) -> u64 {
        self.sampling_work
    }

    /// The world seed this session runs against (0 for explicit worlds).
    pub fn world_seed(&self) -> u64 {
        match &self.realization {
            SessionWorld::Hashed(r) => r.seed(),
            SessionWorld::Materialized(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpm_graph::{GraphBuilder, GraphView};

    /// Deterministic graph: 0 -> 1 (p=1), 2 isolated. Targets {0, 2}.
    fn instance() -> TpmInstance {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        TpmInstance::new(b.build(), vec![0, 2], &[1.5, 0.25])
    }

    #[test]
    fn select_observes_and_removes() {
        let inst = instance();
        let mut s = AdaptiveSession::new(&inst, 7);
        let a = s.select(0);
        assert_eq!(a, vec![0, 1], "p=1 edge always fires");
        assert!(s.is_activated(0));
        assert!(s.is_activated(1));
        assert!(!s.is_activated(2));
        assert_eq!(s.residual().num_alive(), 1);
        assert_eq!(s.total_activated(), 2);
        assert!((s.profit() - (2.0 - 1.5)).abs() < 1e-12);
    }

    #[test]
    fn profit_accumulates_across_selections() {
        let inst = instance();
        let mut s = AdaptiveSession::new(&inst, 7);
        s.select(0);
        s.select(2);
        assert_eq!(s.selected(), &[0, 2]);
        assert_eq!(s.total_activated(), 3);
        assert!((s.profit() - (3.0 - 1.75)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-target")]
    fn select_rejects_non_targets() {
        let inst = instance();
        let mut s = AdaptiveSession::new(&inst, 7);
        s.select(1);
    }

    #[test]
    #[should_panic(expected = "already-activated")]
    fn select_rejects_activated_nodes() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0, 1], &[1.0, 1.0]);
        let mut s = AdaptiveSession::new(&inst, 1);
        s.select(0); // activates 1
        s.select(1);
    }

    #[test]
    fn same_world_seed_replays_identically() {
        // Probabilistic edge: same seed, same observation.
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.5).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0], &[0.5]);
        for seed in 0..20u64 {
            let mut s1 = AdaptiveSession::new(&inst, seed);
            let mut s2 = AdaptiveSession::new(&inst, seed);
            assert_eq!(s1.select(0), s2.select(0), "world {seed}");
        }
    }

    #[test]
    fn sampling_work_ledger() {
        let inst = instance();
        let mut s = AdaptiveSession::new(&inst, 1);
        s.add_sampling_work(100);
        s.add_sampling_work(50);
        assert_eq!(s.sampling_work(), 150);
    }
}
