//! # atpm-core
//!
//! The paper's contribution: **adaptive target profit maximization** (TPM).
//!
//! Given a probabilistic social graph `G`, a target set `T ⊆ V` and seeding
//! costs `c(u)`, the profit of a seed set `S ⊆ T` is
//! `ρ(S) = E[I(S)] − c(S)` — submodular but non-monotone, so TPM is an
//! unconstrained submodular maximization. The *adaptive* variant selects
//! seeds one at a time, observing each seed's realized cascade and removing
//! activated nodes before the next decision (paper §II-B).
//!
//! ## Layout
//!
//! * [`instance`] — the problem instance (`graph + target + costs`);
//! * [`cost`] — the paper's cost models: spread-calibrated splits
//!   (degree-proportional / uniform / random, §VI-A) and predefined-λ
//!   assignments (§VI-D);
//! * [`setup`] — end-to-end workload constructors (IMM target selection,
//!   `E_l[I(T)]` calibration);
//! * [`oracle`] — spread oracles for the oracle model (exact enumeration,
//!   Monte-Carlo, RIS);
//! * [`session`] — the adaptive feedback loop: select a seed, observe its
//!   cascade in the current realization, shrink the residual graph; sessions
//!   suspend into owned [`SessionState`]s and accept external observations,
//!   so a network service can host them across requests;
//! * [`stepper`] — adaptive policies in resumable one-seed-at-a-time form
//!   ([`PolicyStepper`]), the inversion of control the serve layer drives;
//! * [`runner`] — evaluation over batches of realizations (the paper's
//!   20-world protocol) with profit and wall-clock accounting;
//! * [`policies`] — every algorithm of the paper:
//!   [`Adg`](policies::Adg) (§III-B, 1/3-approx oracle model),
//!   [`Addatp`](policies::Addatp) (§III-C, additive error; plus the
//!   dynamic-threshold variant of the §III-C discussion),
//!   [`Hatp`](policies::Hatp) (§IV, hybrid error),
//!   [`Hntp`](policies::Hntp) (nonadaptive HATP),
//!   [`Nsg`](policies::Nsg) / [`Ndg`](policies::Ndg) (nonadaptive
//!   simple/double greedy of \[26\]),
//!   [`Ars`](policies::Ars) / [`Rs`](policies::Rs) (random baselines of
//!   \[10\]) and [`Baseline`](policies::Baseline) (deploy all of `T`);
//! * [`theory`] — exact policy evaluation and a brute-force optimal adaptive
//!   policy on tiny instances, used to machine-check Theorem 1.

pub mod cost;
pub mod instance;
pub mod oracle;
pub mod policies;
pub mod runner;
pub mod session;
pub mod setup;
pub mod stepper;
pub mod theory;

pub use cost::CostSplit;
pub use instance::TpmInstance;
pub use oracle::{ExactOracle, McOracle, RisOracle, SpreadOracle};
pub use runner::{evaluate_adaptive, evaluate_nonadaptive, EvalSummary};
pub use session::{AdaptiveSession, SessionState};
pub use stepper::{run_stepper, run_stepper_batched, PolicyStepper};

/// Node id re-exported from the graph substrate.
pub type Node = atpm_graph::Node;

/// Adaptive policies drive an [`AdaptiveSession`]: they may inspect the
/// residual graph, must call [`AdaptiveSession::select`] for every seed they
/// commit, and return the selected set.
pub trait AdaptivePolicy {
    /// Display name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Runs the policy to completion against one realization.
    fn run(&mut self, session: &mut AdaptiveSession<'_>) -> Vec<Node>;
}

/// Nonadaptive policies commit to a seed set up front (one batch, no
/// feedback); the runner then scores that set against each realization.
pub trait NonadaptivePolicy {
    /// Display name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Selects the seed set on the original graph.
    fn select(&mut self, instance: &TpmInstance) -> Vec<Node>;
}
