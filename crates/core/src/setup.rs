//! Workload constructors: the paper's two procedures for building a TPM
//! instance from a raw graph (§VI-A, §VI-D).

use atpm_graph::{Graph, Node};
use atpm_im::{imm_select, spread_lower_bound, ImmConfig};

use crate::cost::{predefined_costs, split_total_cost, CostSplit};
use crate::instance::TpmInstance;
use crate::policies::{Ndg, Nsg};
use crate::NonadaptivePolicy;

/// Parameters of the spread-calibrated workload (first procedure of §VI-A).
#[derive(Debug, Clone, Copy)]
pub struct CalibrationConfig {
    /// IMM approximation slack for selecting the top-k target set.
    pub imm_eps: f64,
    /// RR sets used to lower-bound `E[I(T)]`.
    pub lb_theta: usize,
    /// Failure probability of the lower bound.
    pub lb_delta: f64,
    /// RNG seed.
    pub seed: u64,
    /// Sampler worker threads.
    pub threads: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            imm_eps: 0.5,
            lb_theta: 50_000,
            lb_delta: 0.01,
            seed: 0,
            threads: 1,
        }
    }
}

/// Builds the spread-calibrated instance: `T` = IMM top-k, costs split from
/// `c(T) = E_l[I(T)]` per the chosen scheme.
///
/// Calibrating the total cost to a *lower bound* of the target set's spread
/// keeps `ρ(T) ⪆ 0`, the nonnegativity assumption of Definition 2.
pub fn calibrated_instance(
    graph: Graph,
    k: usize,
    split: CostSplit,
    cfg: CalibrationConfig,
) -> TpmInstance {
    let imm = imm_select(
        &&graph,
        ImmConfig {
            k,
            eps: cfg.imm_eps,
            ell: 1.0,
            seed: cfg.seed,
            threads: cfg.threads,
        },
    );
    let target = imm.seeds;
    let el = spread_lower_bound(
        &&graph,
        &target,
        cfg.lb_theta,
        cfg.lb_delta,
        cfg.seed.wrapping_add(0x5151),
        cfg.threads,
    );
    let costs = split_total_cost(&graph, &target, split, el);
    TpmInstance::new(graph, target, &costs)
}

/// Which nonadaptive algorithm derives the target set in the predefined-cost
/// procedure (§VI-D uses both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetSelector {
    /// Nonadaptive double greedy.
    Ndg,
    /// Nonadaptive simple greedy.
    Nsg,
}

/// Builds the predefined-cost instance (§VI-D): every node gets a cost from
/// `λ = c(V)/n` *first*, then `T` is whatever the chosen nonadaptive
/// algorithm selects from those candidates under those costs.
///
/// Zero-cost nodes (out-degree-0 sinks under the degree-proportional split)
/// are excluded from the candidate universe: a free seed with spread ≥ 1 is
/// trivially "profitable" and would swamp `T` with degenerate picks that
/// teach nothing about seed *selection*.
///
/// `theta` is the RR batch size handed to the selector; `max_k` optionally
/// truncates the derived target set (in selection order) to keep downstream
/// adaptive runs affordable.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameterization
pub fn predefined_instance(
    graph: Graph,
    lambda: f64,
    split: CostSplit,
    selector: TargetSelector,
    theta: usize,
    seed: u64,
    threads: usize,
    max_k: Option<usize>,
) -> TpmInstance {
    let costs_all = predefined_costs(&graph, lambda, split);
    let candidates: Vec<Node> = (0..graph.num_nodes() as Node)
        .filter(|&u| costs_all[u as usize] > 0.0)
        .collect();
    let candidate_costs: Vec<f64> = candidates.iter().map(|&u| costs_all[u as usize]).collect();
    let scratch = TpmInstance::new(graph, candidates, &candidate_costs);
    let mut target = match selector {
        TargetSelector::Ndg => Ndg::new(theta, seed, threads).select(&scratch),
        TargetSelector::Nsg => Nsg::new(theta, seed, threads).select(&scratch),
    };
    if let Some(cap) = max_k {
        target.truncate(cap);
    }
    let target_costs: Vec<f64> = target.iter().map(|&u| scratch.cost(u)).collect();
    TpmInstance::new(scratch.into_graph(), target, &target_costs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpm_graph::gen::Dataset;
    use atpm_graph::GraphBuilder;

    fn tiny_social_graph() -> Graph {
        Dataset::NetHept.generate(0.02, 1) // ~300 nodes
    }

    #[test]
    fn calibrated_instance_has_k_targets_and_calibrated_cost() {
        let g = tiny_social_graph();
        let inst = calibrated_instance(
            g,
            5,
            CostSplit::Uniform,
            CalibrationConfig {
                lb_theta: 20_000,
                ..Default::default()
            },
        );
        assert_eq!(inst.k(), 5);
        // c(T) = E_l[I(T)] <= E[I(T)] <= n; and it must be positive.
        let total = inst.total_cost();
        assert!(total > 0.0);
        assert!(total <= inst.graph().num_nodes() as f64);
        // Uniform split: every target costs the same.
        let c0 = inst.cost(inst.target()[0]);
        for &u in inst.target() {
            assert!((inst.cost(u) - c0).abs() < 1e-9);
        }
    }

    #[test]
    fn calibrated_degree_split_scales_with_degree() {
        let g = tiny_social_graph();
        let inst = calibrated_instance(
            g,
            8,
            CostSplit::DegreeProportional,
            CalibrationConfig {
                lb_theta: 10_000,
                ..Default::default()
            },
        );
        // Costs ordered like degrees.
        let t = inst.target().to_vec();
        for w in t.windows(2) {
            let (a, b) = (w[0], w[1]);
            let da = inst.graph().out_degree(a) as f64;
            let db = inst.graph().out_degree(b) as f64;
            if da > db {
                assert!(inst.cost(a) >= inst.cost(b));
            }
        }
    }

    #[test]
    fn predefined_instance_selects_profitable_targets() {
        // Star hub: 0 -> 1..=9 (p=1). λ = 2 uniform: only the hub's spread
        // (10) beats its cost (2); everyone else spreads 1 < 2.
        let mut b = GraphBuilder::new(10);
        for v in 1..10 {
            b.add_edge(0, v, 1.0).unwrap();
        }
        let g = b.build();
        let inst = predefined_instance(
            g,
            2.0,
            CostSplit::Uniform,
            TargetSelector::Nsg,
            20_000,
            1,
            1,
            None,
        );
        assert_eq!(inst.target(), &[0]);
        assert!((inst.cost(0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn predefined_ndg_and_nsg_may_differ_but_both_work() {
        let g = tiny_social_graph();
        let a = predefined_instance(
            g.clone(),
            3.0,
            CostSplit::DegreeProportional,
            TargetSelector::Ndg,
            5_000,
            2,
            1,
            None,
        );
        let b = predefined_instance(
            g,
            3.0,
            CostSplit::DegreeProportional,
            TargetSelector::Nsg,
            5_000,
            2,
            1,
            None,
        );
        // Both must produce valid nonempty-or-empty instances without panicking.
        assert!(a.k() <= a.graph().num_nodes());
        assert!(b.k() <= b.graph().num_nodes());
    }
}
