//! Resumable adaptive policies: one committed seed — or one committed
//! *batch* — at a time.
//!
//! [`AdaptivePolicy::run`](crate::AdaptivePolicy::run) drives a whole
//! realization in one call, observing each cascade internally. A network
//! service cannot do that — it must *pause* after deciding a seed, hand the
//! seed to the outside world, and only continue once the realized activations
//! come back. [`PolicyStepper`] is that inversion of control: `next_seed`
//! examines candidates until the policy commits one (or finishes), without
//! applying it; the driver decides how the observation happens —
//! [`AdaptiveSession::select`] in-process, or
//! [`AdaptiveSession::apply_observation`] with externally reported
//! activations.
//!
//! [`next_batch`](PolicyStepper::next_batch) is the low-adaptivity form of
//! the same contract: up to `k` seeds decided in one round against **one**
//! residual state, observed together afterwards (adaptive greedy only needs
//! fresh observations between rounds, not between individual seeds). The
//! default implementation loops `next_seed` without intervening
//! observations, so every cursor-style stepper is batch-capable for free;
//! policies with native batch selection (`ThresholdBatch`) override it. At
//! `k = 1` a batched drive is byte-identical to the single-seed drive by
//! construction — `next_batch(session, 1)` is exactly one `next_seed` call.
//!
//! The adaptive policies (`Hatp`, `Ars`, `DeployAll`) implement their
//! `run` **on top of** their stepper via [`run_stepper`], so a stepped run
//! interleaved with external observations is byte-identical to the in-process
//! run by construction — there is only one decision path. The end-to-end
//! protocol test in `atpm-serve` pins this across the HTTP boundary.

use std::borrow::Cow;

use atpm_graph::Node;

use crate::session::AdaptiveSession;

/// An adaptive policy in resumable form. Implementations hold all iteration
/// state (candidate cursor, RNG, sampling salts) internally; the session
/// passed to [`next_seed`](PolicyStepper::next_seed) supplies everything a
/// policy may legally observe (residual graph, activation flags, costs).
pub trait PolicyStepper: Send {
    /// Display name of the policy (reported in ledgers and tables).
    fn name(&self) -> Cow<'static, str>;

    /// Decides the next seed to commit, **without** committing it. The
    /// driver must apply the seed (via [`AdaptiveSession::select`] or
    /// [`AdaptiveSession::apply_observation`]) before calling `next_seed`
    /// again. Returns `None` once every candidate has been examined.
    ///
    /// May record sampling effort on the session
    /// ([`AdaptiveSession::add_sampling_work`]) but must not mutate the
    /// residual state.
    fn next_seed(&mut self, session: &mut AdaptiveSession<'_>) -> Option<Node>;

    /// Decides the next *batch* of up to `k` distinct seeds against the
    /// current residual state, **without** committing any of them — the
    /// low-adaptivity round primitive. The driver must apply the whole
    /// batch (via [`AdaptiveSession::select_batch`] or
    /// [`AdaptiveSession::apply_observations`]) before calling again. An
    /// empty return means the policy is finished.
    ///
    /// The default loops [`next_seed`](Self::next_seed) with no
    /// observations in between: later seeds of the batch are decided
    /// against the same (stale) residual state as the first — exactly the
    /// bounded adaptivity gap batched seeding trades for round-trips.
    /// Cursor-style steppers (every in-tree policy) never re-propose a
    /// node, so the loop terminates; as a backstop against a stepper that
    /// would, a repeated proposal ends the batch early instead of looping.
    /// `next_batch(session, 1)` is exactly one `next_seed` call, so a
    /// `k = 1` batched drive is byte-identical to the single-seed drive.
    fn next_batch(&mut self, session: &mut AdaptiveSession<'_>, k: usize) -> Vec<Node> {
        let mut batch: Vec<Node> = Vec::new();
        while batch.len() < k {
            match self.next_seed(session) {
                Some(u) if !batch.contains(&u) => batch.push(u),
                _ => break,
            }
        }
        batch
    }
}

/// Drives a stepper to completion in-process: every committed seed is
/// observed against the session's own realization. This is the whole body of
/// the steppable policies' `AdaptivePolicy::run`.
pub fn run_stepper<S: PolicyStepper + ?Sized>(
    stepper: &mut S,
    session: &mut AdaptiveSession<'_>,
) -> Vec<Node> {
    while let Some(u) = stepper.next_seed(session) {
        session.select(u);
    }
    session.selected().to_vec()
}

/// Drives a stepper to completion in batched rounds of up to `k` seeds:
/// each round's batch is decided against one residual state, then observed
/// jointly via [`AdaptiveSession::select_batch`]. At `k = 1` this is
/// byte-identical to [`run_stepper`] (one `next_seed` per round, one
/// observation per seed).
pub fn run_stepper_batched<S: PolicyStepper + ?Sized>(
    stepper: &mut S,
    session: &mut AdaptiveSession<'_>,
    k: usize,
) -> Vec<Node> {
    assert!(k > 0, "batch size must be positive");
    loop {
        let batch = stepper.next_batch(session, k);
        if batch.is_empty() {
            break;
        }
        session.select_batch(&batch);
    }
    session.selected().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::TpmInstance;
    use atpm_graph::GraphBuilder;

    /// Stepper that proposes every not-yet-activated target in order.
    struct TakeAll {
        idx: usize,
    }

    impl PolicyStepper for TakeAll {
        fn name(&self) -> Cow<'static, str> {
            "TakeAll".into()
        }
        fn next_seed(&mut self, session: &mut AdaptiveSession<'_>) -> Option<Node> {
            let targets = session.instance().target();
            while self.idx < targets.len() {
                let u = targets[self.idx];
                self.idx += 1;
                if !session.is_activated(u) {
                    return Some(u);
                }
            }
            None
        }
    }

    #[test]
    fn run_stepper_commits_every_proposed_seed() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0, 1, 3], &[1.0, 1.0, 1.0]);
        let mut session = AdaptiveSession::new(&inst, 5);
        let selected = run_stepper(&mut TakeAll { idx: 0 }, &mut session);
        // 0 cascades to 1, so 1 is skipped; 3 is isolated and selected.
        assert_eq!(selected, vec![0, 3]);
        assert_eq!(session.total_activated(), 3);
    }

    #[test]
    fn stepped_and_external_drives_agree() {
        // Drive the same stepper twice: once in-process, once simulating the
        // serve protocol (observation computed by a twin session). The seed
        // sequences and ledgers must match exactly.
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0, 2, 4], &[0.5, 0.5, 0.5]);
        for world in 0..8u64 {
            let mut s1 = AdaptiveSession::new(&inst, world);
            let in_process = run_stepper(&mut TakeAll { idx: 0 }, &mut s1);

            let mut oracle = AdaptiveSession::new(&inst, world);
            let mut s2 = AdaptiveSession::new(&inst, 12345); // world unused
            let mut stepper = TakeAll { idx: 0 };
            while let Some(u) = stepper.next_seed(&mut s2) {
                let observed = oracle.select(u);
                s2.apply_observation(u, &observed);
            }
            assert_eq!(s2.selected(), &in_process[..], "world {world}");
            assert_eq!(s2.profit().to_bits(), s1.profit().to_bits());
        }
    }

    #[test]
    fn batch_of_one_is_byte_identical_to_single_seed_drive() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0, 2, 4], &[0.5, 0.5, 0.5]);
        for world in 0..8u64 {
            let mut s1 = AdaptiveSession::new(&inst, world);
            let single = run_stepper(&mut TakeAll { idx: 0 }, &mut s1);
            let mut s2 = AdaptiveSession::new(&inst, world);
            let batched = run_stepper_batched(&mut TakeAll { idx: 0 }, &mut s2, 1);
            assert_eq!(batched, single, "world {world}");
            assert_eq!(s2.profit().to_bits(), s1.profit().to_bits());
            assert_eq!(s2.rounds(), s1.rounds(), "world {world}");
        }
    }

    #[test]
    fn default_next_batch_loops_next_seed_without_observing() {
        // TakeAll on a deterministic chain: a batch of 3 is decided before
        // any cascade is observed, so node 1 (which node 0 activates) is
        // still proposed — the low-adaptivity gap, visible and intended.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0, 1, 3], &[1.0, 1.0, 1.0]);
        let mut session = AdaptiveSession::new(&inst, 5);
        let mut stepper = TakeAll { idx: 0 };
        let batch = stepper.next_batch(&mut session, 3);
        assert_eq!(batch, vec![0, 1, 3], "no observation between decisions");
        // Applied jointly, the cascade still counts every node once.
        let cascade = session.select_batch(&batch);
        assert_eq!(cascade.len(), 3, "seeds {{0, 1, 3}}; node 1 not doubled");
        assert_eq!(session.total_activated(), 3);
        assert_eq!(session.rounds(), 1, "one batch = one adaptivity round");
    }

    #[test]
    fn batched_run_finishes_in_fewer_rounds() {
        let mut b = GraphBuilder::new(8);
        b.add_edge(0, 4, 0.5).unwrap();
        let inst = TpmInstance::new(
            b.build(),
            vec![0, 1, 2, 3],
            &[1.0, 1.0, 1.0, 1.0],
        );
        let mut s1 = AdaptiveSession::new(&inst, 3);
        run_stepper(&mut TakeAll { idx: 0 }, &mut s1);
        let mut s2 = AdaptiveSession::new(&inst, 3);
        run_stepper_batched(&mut TakeAll { idx: 0 }, &mut s2, 4);
        assert_eq!(s1.selected(), s2.selected(), "independent targets");
        assert_eq!(s1.rounds(), 4);
        assert_eq!(s2.rounds(), 1);
    }
}
