//! ADG — adaptive double greedy under the oracle model (Algorithm 2).
//!
//! For each target node `u_i` (in examination order) on the residual graph
//! `G_i`:
//!
//! * front profit `ρ_f = Δ_{G_i}(u_i | S_{i−1}) = E[I_{G_i}(u_i | S_{i−1})] − c(u_i)`;
//! * rear profit  `ρ_r = −Δ_{G_i}(u_i | T_{i−1} ∖ {u_i}) = c(u_i) − E[I_{G_i}(u_i | T_{i−1} ∖ {u_i})]`.
//!
//! `u_i` is selected iff `ρ_f ≥ ρ_r` (keeping it gains at least as much as
//! abandoning it); on selection its realized cascade is observed and removed.
//! With an exact oracle ADG is a 1/3-approximation of the optimal adaptive
//! policy (Theorem 1) — machine-checked in `theory.rs` tests.
//!
//! Note that on `G_i` every node of `S_{i−1}` is already removed (it was
//! activated), so the front marginal reduces to the singleton spread
//! `E[I_{G_i}({u_i})]`; the rear marginal is a genuine conditional:
//! `E[I_{G_i}(T_{i−1})] − E[I_{G_i}(T_{i−1} ∖ {u_i})]`.

use atpm_graph::Node;

use crate::oracle::SpreadOracle;
use crate::session::AdaptiveSession;
use crate::AdaptivePolicy;

/// Adaptive double greedy over any [`SpreadOracle`].
pub struct Adg<O> {
    oracle: O,
}

impl<O: SpreadOracle> Adg<O> {
    /// ADG with the given spread oracle.
    pub fn new(oracle: O) -> Self {
        Adg { oracle }
    }

    /// The wrapped oracle (used by tests to inspect call counts).
    pub fn oracle_mut(&mut self) -> &mut O {
        &mut self.oracle
    }
}

impl<O: SpreadOracle> AdaptivePolicy for Adg<O> {
    fn name(&self) -> &'static str {
        "ADG"
    }

    fn run(&mut self, session: &mut AdaptiveSession<'_>) -> Vec<Node> {
        let target: Vec<Node> = session.instance().target().to_vec();
        // T_i, kept as an ordered list (k is small; removal is O(k)).
        let mut t_cur: Vec<Node> = target.clone();
        for &u in &target {
            if session.is_activated(u) {
                t_cur.retain(|&v| v != u);
                continue;
            }
            let c = session.instance().cost(u);
            let t_minus: Vec<Node> = t_cur.iter().copied().filter(|&v| v != u).collect();
            let view = session.residual();
            // Front: S_{i-1} is dead on G_i, so the conditional marginal is
            // the singleton spread.
            let rho_f = self.oracle.spread(view, &[u]) - c;
            // Rear: E[I(T_{i-1})] - E[I(T_{i-1} \ {u})].
            let marginal_t = self.oracle.spread(view, &t_cur) - self.oracle.spread(view, &t_minus);
            let rho_r = c - marginal_t;
            if rho_f >= rho_r {
                session.select(u);
            } else {
                t_cur = t_minus;
            }
        }
        session.selected().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::TpmInstance;
    use crate::oracle::ExactOracle;
    use crate::runner::evaluate_adaptive;
    use atpm_graph::GraphBuilder;

    /// Star hub 0 -> {1,2,3} with p = 1; node 4 isolated.
    /// Target {0, 4}: hub is worth selecting at cost 2; isolated node at
    /// cost 3 is not (spread 1 < cost).
    fn star_instance() -> TpmInstance {
        let mut b = GraphBuilder::new(5);
        for v in 1..=3 {
            b.add_edge(0, v, 1.0).unwrap();
        }
        TpmInstance::new(b.build(), vec![0, 4], &[2.0, 3.0])
    }

    #[test]
    fn selects_profitable_and_rejects_unprofitable() {
        let inst = star_instance();
        let mut policy = Adg::new(ExactOracle);
        let summary = evaluate_adaptive(&inst, &mut policy, &[1, 2, 3]);
        // Deterministic graph: spread of {0} is 4, cost 2 -> profit 2.
        for p in &summary.profits {
            assert!((p - 2.0).abs() < 1e-9, "profit {p}");
        }
        assert!(summary.seeds_per_run.iter().all(|&s| s == 1));
    }

    #[test]
    fn skips_activated_targets() {
        // 0 -> 1 with p = 1; both are targets. After selecting 0, node 1 is
        // activated and must be skipped (and never charged for).
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0, 1], &[0.5, 0.5]);
        let mut policy = Adg::new(ExactOracle);
        let summary = evaluate_adaptive(&inst, &mut policy, &[7]);
        assert_eq!(summary.seeds_per_run, vec![1]);
        assert!((summary.profits[0] - 1.5).abs() < 1e-9); // 2 activated - 0.5
    }

    #[test]
    fn front_vs_rear_uses_submodularity_correctly() {
        // Two nodes that overlap heavily: 0 -> 2, 1 -> 2 (p = 1).
        // T = {0, 1}, costs 1.2 each.
        // Examining 0: ρ_f = E[I(0)] - c = 2 - 1.2 = 0.8.
        //   ρ_r = c - (E[I({0,1})] - E[I({1})]) = 1.2 - (3 - 2) = 0.2.
        //   0.8 >= 0.2 -> select 0; observe {0, 2} removed.
        // Examining 1 on residual {1}: ρ_f = 1 - 1.2 = -0.2;
        //   ρ_r = 1.2 - (E[I({1})] - E[I({})]) = 1.2 - 1 = 0.2. Reject.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0, 1], &[1.2, 1.2]);
        let mut policy = Adg::new(ExactOracle);
        let summary = evaluate_adaptive(&inst, &mut policy, &[1]);
        assert_eq!(summary.seeds_per_run, vec![1], "only node 0 selected");
        assert!((summary.profits[0] - 0.8).abs() < 1e-9);
    }

    #[test]
    fn empty_target_set_selects_nothing() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.5).unwrap();
        let inst = TpmInstance::new(b.build(), vec![], &[]);
        let mut policy = Adg::new(ExactOracle);
        let summary = evaluate_adaptive(&inst, &mut policy, &[1, 2]);
        assert!(summary.profits.iter().all(|&p| p == 0.0));
    }

    #[test]
    fn adaptivity_beats_nonadaptive_on_papers_style_example() {
        // A probabilistic instance where observing the first cascade lets
        // ADG skip a now-worthless second seed. Graph: 0 -> 1 (p=0.9),
        // 1 -> 2 (p=0.9); T = {0, 1}, c = 1.0 each.
        // Nonadaptive best is {0} or {0,1}; adaptive selects 0, then selects
        // 1 only in the 10% of worlds where it wasn't activated.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.9).unwrap();
        b.add_edge(1, 2, 0.9).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0, 1], &[1.0, 1.0]);
        let mut policy = Adg::new(ExactOracle);
        let worlds: Vec<u64> = (0..200).collect();
        let summary = evaluate_adaptive(&inst, &mut policy, &worlds);
        // Expected adaptive profit:
        //  - world where 0->1 fires (p=.9): spread(0) realized >= 2; 1 is
        //    activated, skipped. Profit = I - 1.
        //  - otherwise ADG examines 1 on the residual.
        // The key assertion: ADG never pays for an already-activated node.
        for (i, &p) in summary.profits.iter().enumerate() {
            let seeds = summary.seeds_per_run[i];
            assert!(seeds <= 2);
            assert!(p >= -1.0 - 1e-9, "world {i}: profit {p}");
        }
        // On average, clearly positive.
        assert!(
            summary.mean_profit() > 0.5,
            "mean {}",
            summary.mean_profit()
        );
    }
}
