//! Baseline — deploy the entire target set (the dark-blue `×` line of
//! Figs. 2–3).
//!
//! The paper's "Baseline" is the estimated profit of `T` itself:
//! `ρ(T) = E[I(T)] − c(T)`. Every algorithm is supposed to beat it — TPM
//! degenerates to "just seed everyone you can reach" if it can't.
//!
//! [`DeployAll`] is its adaptive twin: examine targets in order and seed
//! every one the earlier cascades have not already activated. It pays for
//! strictly fewer seeds than [`Baseline`] on the same worlds, costs no
//! sampling at all, and serves as the cheap reference policy of the
//! `atpm-serve` protocol tests.

use std::borrow::Cow;

use atpm_graph::Node;

use crate::instance::TpmInstance;
use crate::session::AdaptiveSession;
use crate::stepper::{run_stepper, PolicyStepper};
use crate::{AdaptivePolicy, NonadaptivePolicy};

/// Selects the whole target set.
#[derive(Debug, Clone, Copy, Default)]
pub struct Baseline;

impl NonadaptivePolicy for Baseline {
    fn name(&self) -> &'static str {
        "Baseline"
    }

    fn select(&mut self, instance: &TpmInstance) -> Vec<Node> {
        instance.target().to_vec()
    }
}

/// Adaptive deploy-everything: seed every target that is still inactive when
/// its turn comes.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeployAll;

impl DeployAll {
    /// The resumable form of this policy (see [`crate::stepper`]).
    pub fn stepper(&self) -> DeployAllStepper {
        DeployAllStepper { idx: 0 }
    }
}

/// [`DeployAll`] in resumable, one-seed-at-a-time form.
pub struct DeployAllStepper {
    idx: usize,
}

impl PolicyStepper for DeployAllStepper {
    fn name(&self) -> Cow<'static, str> {
        "DeployAll".into()
    }

    fn next_seed(&mut self, session: &mut AdaptiveSession<'_>) -> Option<Node> {
        while self.idx < session.instance().target().len() {
            let u = session.instance().target()[self.idx];
            self.idx += 1;
            if !session.is_activated(u) {
                return Some(u);
            }
        }
        None
    }
}

impl AdaptivePolicy for DeployAll {
    fn name(&self) -> &'static str {
        "DeployAll"
    }

    fn run(&mut self, session: &mut AdaptiveSession<'_>) -> Vec<Node> {
        run_stepper(&mut self.stepper(), session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{evaluate_adaptive, evaluate_nonadaptive, standard_worlds};
    use atpm_graph::GraphBuilder;

    #[test]
    fn deploy_all_skips_activated_targets() {
        // 0 -> 1 deterministic: adaptively deploying pays for 0 and 2 only,
        // while the nonadaptive baseline pays for all three.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0, 1, 2], &[1.0, 1.0, 1.0]);
        let a = evaluate_adaptive(&inst, &mut DeployAll, &standard_worlds(1));
        for (profit, seeds) in a.profits.iter().zip(&a.seeds_per_run) {
            assert_eq!(*seeds, 2);
            assert!((profit - 1.0).abs() < 1e-9, "3 activated - 2 paid");
        }
        let b = evaluate_nonadaptive(&inst, &mut Baseline, &standard_worlds(1));
        for profit in &b.profits {
            assert!((profit - 0.0).abs() < 1e-9);
        }
    }

    #[test]
    fn baseline_profit_is_spread_minus_total_cost() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0, 2], &[1.0, 1.0]);
        let mut p = Baseline;
        let s = evaluate_nonadaptive(&inst, &mut p, &standard_worlds(1));
        // Deterministic: spread of {0,2} is 3, cost 2.
        for profit in &s.profits {
            assert!((profit - 1.0).abs() < 1e-9);
        }
    }
}
