//! Baseline — deploy the entire target set (the dark-blue `×` line of
//! Figs. 2–3).
//!
//! The paper's "Baseline" is the estimated profit of `T` itself:
//! `ρ(T) = E[I(T)] − c(T)`. Every algorithm is supposed to beat it — TPM
//! degenerates to "just seed everyone you can reach" if it can't.

use atpm_graph::Node;

use crate::instance::TpmInstance;
use crate::NonadaptivePolicy;

/// Selects the whole target set.
#[derive(Debug, Clone, Copy, Default)]
pub struct Baseline;

impl NonadaptivePolicy for Baseline {
    fn name(&self) -> &'static str {
        "Baseline"
    }

    fn select(&mut self, instance: &TpmInstance) -> Vec<Node> {
        instance.target().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{evaluate_nonadaptive, standard_worlds};
    use atpm_graph::GraphBuilder;

    #[test]
    fn baseline_profit_is_spread_minus_total_cost() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0, 2], &[1.0, 1.0]);
        let mut p = Baseline;
        let s = evaluate_nonadaptive(&inst, &mut p, &standard_worlds(1));
        // Deterministic: spread of {0,2} is 3, cost 2.
        for profit in &s.profits {
            assert!((profit - 1.0).abs() < 1e-9);
        }
    }
}
