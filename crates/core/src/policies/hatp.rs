//! HATP — adaptive double greedy with *hybrid* sampling error
//! (Algorithm 4, §IV).
//!
//! ADDATP's purely additive error needs `O(n_i²·ln n)` RR sets to resolve
//! nodes whose profit sits near the judgement bar. HATP bounds estimates with
//! a **hybrid** of relative error `ε_i` and additive error `ζ_i`
//! (Lemma 7): nodes with large marginal spread are certified by the relative
//! part, nodes with small marginal spread by the additive part, and an
//! adaptive schedule (lines 19–23) steers whichever part pays off.
//!
//! With `f̂`, `r̂` the spread estimates (`fest`, `rest` in the paper), the
//! hybrid confidence interval for the true front spread `μ_f` is
//! `[(f̂ − n_iζ_i)/(1+ε_i), (f̂ + n_iζ_i)/(1−ε_i)]` (and likewise for `μ_r`),
//! giving the stopping conditions
//!
//! ```text
//! C1': (f̂+r̂−2n_iζ_i)/(1+ε_i) ≥ 2c(u)   -- certified select
//!    ∨ (r̂−n_iζ_i)/(1+ε_i)   ≥ c(u)     -- rear profit certifiably ≤ 0
//!    ∨ (f̂+r̂+2n_iζ_i)/(1−ε_i) ≤ 2c(u)   -- certified reject
//!    ∨ (f̂+n_iζ_i)/(1−ε_i)   ≤ c(u)     -- front profit certifiably ≤ 0
//! C2': ε_i ≤ ε ∧ n_iζ_i ≤ 1            -- too close to matter
//! ```
//!
//! (the paper prints the final threshold `ε` inside `C1'`; we use the
//! current round's `ε_i`, which is what Lemma 7 actually certifies — see
//! DESIGN.md). The decision on stop is `f̂ + r̂ ≥ 2c(u)`; with the shared
//! batch `f̂ ≥ r̂` pointwise, this agrees with every certificate above.
//!
//! Guarantee (Theorem 4): expected profit
//! `≥ (Λ(π_opt) − 2(k + ε·c(T))/(1−ε) − 2)/3`. Expected time
//! `O(k·m·E[I(v°)]/ε · ln(n/ε))` (Theorem 5) — a factor `≈ ε·n` cheaper than
//! ADDATP.

use std::borrow::Cow;

use atpm_graph::{GraphView, Node};
use atpm_ris::bounds::hatp_theta;
use atpm_ris::stream::front_rear_counts_shared;
use atpm_ris::NodeSet;

use crate::session::AdaptiveSession;
use crate::stepper::{run_stepper, PolicyStepper};
use crate::AdaptivePolicy;

const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// Configuration of HATP.
#[derive(Debug, Clone)]
pub struct Hatp {
    /// Initial relative error `ε_0` (paper: 0.5).
    pub eps0: f64,
    /// Initial additive error scaled by alive nodes, `n_i·ζ_0` (paper: 64).
    pub initial_nzeta: f64,
    /// Relative-error threshold `ε` (paper: 0.05); also the `ε` of the
    /// Theorem 4 guarantee.
    pub eps_threshold: f64,
    /// RNG seed for the sampling rounds.
    pub seed: u64,
    /// Sampler worker threads.
    pub threads: usize,
    /// Per-round RR-set cap (see [`Addatp`](crate::policies::Addatp)); HATP's
    /// rounds are small enough that the default effectively never binds.
    pub max_theta: usize,
    /// Ablation switch: `false` replaces the adaptive ε/ζ schedule
    /// (lines 19–23) with a naive fixed `/√2` decay of both errors,
    /// isolating how much the paper's scheduling contributes.
    pub adaptive_schedule: bool,
}

impl Default for Hatp {
    fn default() -> Self {
        Hatp {
            eps0: 0.5,
            initial_nzeta: 64.0,
            eps_threshold: 0.05,
            seed: 0,
            threads: 1,
            max_theta: usize::MAX,
            adaptive_schedule: true,
        }
    }
}

impl Hatp {
    /// Examines one node: runs sampling rounds until a stopping condition
    /// fires, returns the keep/reject decision. Factored out so HNTP (the
    /// nonadaptive variant) can reuse it verbatim.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn decide_node<V: GraphView + Sync>(
        &self,
        view: &V,
        u: Node,
        cost: f64,
        front_cond: &NodeSet,
        rear_cond: &NodeSet,
        round_salt: &mut u64,
        work: &mut u64,
    ) -> bool {
        assert!(self.eps0 > 0.0 && self.eps0 < 1.0, "eps0 must be in (0,1)");
        assert!(
            self.eps_threshold > 0.0 && self.eps_threshold <= self.eps0,
            "threshold must be in (0, eps0]"
        );
        let ni = view.num_alive();
        if ni == 0 {
            return false;
        }
        let nif = ni as f64;
        let n = view.num_nodes() as f64;
        let eps_t = self.eps_threshold;
        let mut eps = self.eps0;
        let mut zeta = (self.initial_nzeta / nif).min(0.5);
        let mut delta = 1.0 / (n * n.max(2.0)); // δ_0 = 1/(kn) ≤ 1/n²-ish; see note below
                                                // The paper initializes δ_i = 1/(kn); using 1/n² is never looser for
                                                // k ≤ n and spares threading `k` through HNTP's reuse.
        loop {
            *round_salt = round_salt
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let theta = hatp_theta(eps, zeta, delta).min(self.max_theta);
            let counts = front_rear_counts_shared(
                view,
                u,
                front_cond,
                rear_cond,
                theta,
                *round_salt,
                self.threads,
            );
            *work += counts.theta as u64;
            if counts.theta == 0 {
                return false;
            }
            let tf = counts.theta as f64;
            let fest = nif * counts.cov_front as f64 / tf;
            let rest = nif * counts.cov_rear as f64 / tf;
            let nz = nif * zeta;
            let c1 = (fest + rest - 2.0 * nz) / (1.0 + eps) >= 2.0 * cost
                || (rest - nz) / (1.0 + eps) >= cost
                || (fest + rest + 2.0 * nz) / (1.0 - eps) <= 2.0 * cost
                || (fest + nz) / (1.0 - eps) <= cost;
            let c2 = eps <= eps_t && nz <= 1.0;
            let forced = theta >= self.max_theta;
            if c1 || c2 || forced {
                return fest + rest >= 2.0 * cost;
            }
            // Adaptive error schedule (Algorithm 4, lines 19–23).
            if !self.adaptive_schedule {
                // Ablation: naive fixed decay, still respecting the floors.
                if eps > eps_t {
                    eps /= SQRT_2;
                }
                if nz > 1.0 {
                    zeta /= SQRT_2;
                }
                delta /= 2.0;
                continue;
            }
            if eps <= eps_t && nz > 1.0 {
                zeta /= 2.0;
            } else if eps > eps_t && nz <= 1.0 {
                eps /= 2.0;
            } else if fest >= 10.0 * nz {
                // Marginal spread dwarfs the additive error: the relative
                // part is doing the work — sharpen it.
                eps /= 2.0;
            } else if fest <= nz {
                // Marginal spread below the additive error: sharpen ζ.
                zeta /= 2.0;
            } else {
                eps /= SQRT_2;
                zeta /= SQRT_2;
            }
            delta /= 2.0;
        }
    }
}

impl Hatp {
    /// The resumable form of this policy (see [`crate::stepper`]); `run`
    /// drives it in-process, the serve layer drives it over the protocol.
    pub fn stepper(&self) -> HatpStepper {
        HatpStepper {
            cfg: self.clone(),
            idx: 0,
            round_salt: self.seed,
            sets: None,
        }
    }
}

/// [`Hatp`] in resumable, one-seed-at-a-time form. All per-run state lives
/// here: the candidate cursor, the sampling salt chain, and the `T_rest`
/// conditioning set of Algorithm 4.
pub struct HatpStepper {
    cfg: Hatp,
    idx: usize,
    round_salt: u64,
    /// `(empty front condition, T_rest)`, lazily sized on the first call
    /// (the stepper does not know `n` until it sees a session).
    sets: Option<(NodeSet, NodeSet)>,
}

impl PolicyStepper for HatpStepper {
    fn name(&self) -> Cow<'static, str> {
        "HATP".into()
    }

    fn next_seed(&mut self, session: &mut AdaptiveSession<'_>) -> Option<Node> {
        let n = session.instance().graph().num_nodes();
        let (empty, t_rest) = self.sets.get_or_insert_with(|| {
            (
                NodeSet::new(n),
                NodeSet::from_iter(n, session.instance().target().iter().copied()),
            )
        });
        while self.idx < session.instance().target().len() {
            let u = session.instance().target()[self.idx];
            self.idx += 1;
            t_rest.remove(u);
            if session.is_activated(u) {
                continue;
            }
            let cost = session.instance().cost(u);
            let mut work = 0u64;
            let keep = self.cfg.decide_node(
                session.residual(),
                u,
                cost,
                empty,
                t_rest,
                &mut self.round_salt,
                &mut work,
            );
            session.add_sampling_work(work);
            if keep {
                t_rest.insert(u);
                return Some(u);
            }
        }
        None
    }
}

impl AdaptivePolicy for Hatp {
    fn name(&self) -> &'static str {
        "HATP"
    }

    fn run(&mut self, session: &mut AdaptiveSession<'_>) -> Vec<Node> {
        run_stepper(&mut self.stepper(), session)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::TpmInstance;
    use crate::oracle::ExactOracle;
    use crate::policies::{Addatp, Adg};
    use crate::runner::evaluate_adaptive;
    use atpm_graph::GraphBuilder;

    fn star_instance() -> TpmInstance {
        let mut b = GraphBuilder::new(5);
        for v in 1..=3 {
            b.add_edge(0, v, 1.0).unwrap();
        }
        TpmInstance::new(b.build(), vec![0, 4], &[2.0, 3.0])
    }

    #[test]
    fn clear_cut_decisions_match_adg() {
        let inst = star_instance();
        let worlds = [1u64, 2, 3];
        let mut hatp = Hatp {
            seed: 5,
            ..Default::default()
        };
        let noisy = evaluate_adaptive(&inst, &mut hatp, &worlds);
        let mut adg = Adg::new(ExactOracle);
        let exact = evaluate_adaptive(&inst, &mut adg, &worlds);
        assert_eq!(noisy.profits, exact.profits);
    }

    #[test]
    fn hatp_is_far_cheaper_than_addatp_on_borderline_nodes() {
        // A borderline node (isolated, spread 1) with cost exactly 1 on a
        // larger empty graph: ADDATP must push n_iζ_i down to 1 with
        // additive-only rounds; HATP's relative part certifies much earlier.
        let n = 2000;
        let b = GraphBuilder::new(n);
        let inst = TpmInstance::new(b.build(), vec![0], &[1.0]);
        let mut hatp = Hatp {
            seed: 2,
            ..Default::default()
        };
        let h = evaluate_adaptive(&inst, &mut hatp, &[1]);
        let mut addatp = Addatp {
            seed: 2,
            ..Default::default()
        };
        let a = evaluate_adaptive(&inst, &mut addatp, &[1]);
        assert!(
            h.sampling_work * 10 < a.sampling_work,
            "HATP {} vs ADDATP {}",
            h.sampling_work,
            a.sampling_work
        );
        // Both end with ~zero profit regardless of decision.
        assert!(h.profits[0].abs() < 1e-9);
        assert!(a.profits[0].abs() < 1e-9);
    }

    #[test]
    fn schedule_terminates_on_all_branches() {
        // Mixed instance: a strong hub (relative branch), a weak node
        // (additive branch) and a borderline node (C2).
        let mut b = GraphBuilder::new(50);
        for v in 1..=20 {
            b.add_edge(0, v, 1.0).unwrap();
        }
        b.add_edge(21, 22, 0.5).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0, 21, 30], &[5.0, 1.2, 1.0]);
        let mut hatp = Hatp {
            seed: 3,
            ..Default::default()
        };
        let s = evaluate_adaptive(&inst, &mut hatp, &[1, 2, 3, 4]);
        // Hub always selected: profit >= 21 - 5 - (other costs bounded by 2.2).
        for p in &s.profits {
            assert!(*p >= 21.0 - 5.0 - 2.2 - 1e-9, "profit {p}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = star_instance();
        let mut p1 = Hatp {
            seed: 7,
            ..Default::default()
        };
        let mut p2 = Hatp {
            seed: 7,
            ..Default::default()
        };
        let a = evaluate_adaptive(&inst, &mut p1, &[4, 5]);
        let b = evaluate_adaptive(&inst, &mut p2, &[4, 5]);
        assert_eq!(a.profits, b.profits);
        assert_eq!(a.sampling_work, b.sampling_work);
    }

    #[test]
    #[should_panic(expected = "eps0")]
    fn rejects_bad_eps0() {
        let b = GraphBuilder::new(2);
        let inst = TpmInstance::new(b.build(), vec![0], &[1.0]);
        let mut p = Hatp {
            eps0: 1.5,
            ..Default::default()
        };
        let _ = evaluate_adaptive(&inst, &mut p, &[1]);
    }
}
