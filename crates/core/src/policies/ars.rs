//! ARS / RS — (adaptive) random set baselines \[10\] (§VI-A).
//!
//! RS selects each candidate independently with probability 1/2 — Feige et
//! al.'s ¼-approximation for nonnegative unconstrained submodular
//! maximization. ARS is the paper's adaptive extension: examine targets in
//! order, skip the ones already activated, flip a fair coin for the rest and
//! observe/remove the cascade after every selection.

use std::borrow::Cow;

use atpm_graph::Node;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::instance::TpmInstance;
use crate::session::AdaptiveSession;
use crate::stepper::{run_stepper, PolicyStepper};
use crate::{AdaptivePolicy, NonadaptivePolicy};

/// Adaptive random set.
#[derive(Debug, Clone)]
pub struct Ars {
    /// Selection probability (the paper and \[10\] use 0.5).
    pub prob: f64,
    /// Base RNG seed; coins also mix in the session's world seed so each
    /// realization draws fresh coins.
    pub seed: u64,
}

impl Default for Ars {
    fn default() -> Self {
        Ars { prob: 0.5, seed: 0 }
    }
}

impl Ars {
    /// The resumable form of this policy (see [`crate::stepper`]).
    ///
    /// Coins mix in the session's world seed, so the RNG is created lazily
    /// on the first [`next_seed`](PolicyStepper::next_seed) call.
    pub fn stepper(&self) -> ArsStepper {
        assert!((0.0..=1.0).contains(&self.prob), "prob must be in [0,1]");
        ArsStepper {
            cfg: self.clone(),
            idx: 0,
            rng: None,
        }
    }
}

/// [`Ars`] in resumable, one-seed-at-a-time form.
pub struct ArsStepper {
    cfg: Ars,
    idx: usize,
    rng: Option<StdRng>,
}

impl PolicyStepper for ArsStepper {
    fn name(&self) -> Cow<'static, str> {
        "ARS".into()
    }

    fn next_seed(&mut self, session: &mut AdaptiveSession<'_>) -> Option<Node> {
        let world = session.world_seed();
        let rng = self.rng.get_or_insert_with(|| {
            StdRng::seed_from_u64(self.cfg.seed ^ world.wrapping_mul(0x9E3779B97F4A7C15))
        });
        while self.idx < session.instance().target().len() {
            let u = session.instance().target()[self.idx];
            self.idx += 1;
            if session.is_activated(u) {
                continue;
            }
            if rng.gen_bool(self.cfg.prob) {
                return Some(u);
            }
        }
        None
    }
}

impl AdaptivePolicy for Ars {
    fn name(&self) -> &'static str {
        "ARS"
    }

    fn run(&mut self, session: &mut AdaptiveSession<'_>) -> Vec<Node> {
        run_stepper(&mut self.stepper(), session)
    }
}

/// Nonadaptive random set.
#[derive(Debug, Clone)]
pub struct Rs {
    /// Selection probability (0.5 in \[10\]).
    pub prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Rs {
    fn default() -> Self {
        Rs { prob: 0.5, seed: 0 }
    }
}

impl NonadaptivePolicy for Rs {
    fn name(&self) -> &'static str {
        "RS"
    }

    fn select(&mut self, instance: &TpmInstance) -> Vec<Node> {
        assert!((0.0..=1.0).contains(&self.prob), "prob must be in [0,1]");
        let mut rng = StdRng::seed_from_u64(self.seed);
        instance
            .target()
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(self.prob))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{evaluate_adaptive, evaluate_nonadaptive, standard_worlds};
    use atpm_graph::GraphBuilder;

    fn instance() -> TpmInstance {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(2, 3, 1.0).unwrap();
        TpmInstance::new(b.build(), vec![0, 1, 2, 4], &[0.5; 4])
    }

    #[test]
    fn ars_skips_activated_nodes() {
        // Selecting 0 always activates 1; ARS must never select 1 afterwards.
        let inst = instance();
        let mut p = Ars::default();
        let s = evaluate_adaptive(&inst, &mut p, &standard_worlds(3));
        // Over 20 worlds with p=0.5, node 0 is selected ~10 times; whenever
        // it is, node 1 must have been skipped. We can't observe selections
        // directly here, but no run may pay for both 0 and 1:
        // profit would still be fine; instead check seed counts <= 3 when 0
        // selected... simplest sound check: selected set sizes <= 4 and
        // profits >= -c(T).
        for (profit, seeds) in s.profits.iter().zip(&s.seeds_per_run) {
            assert!(*seeds <= 4);
            assert!(*profit >= -2.0 - 1e-9);
        }
    }

    #[test]
    fn ars_coins_vary_across_worlds() {
        let inst = instance();
        let mut p = Ars::default();
        let s = evaluate_adaptive(&inst, &mut p, &standard_worlds(4));
        let distinct: std::collections::HashSet<usize> = s.seeds_per_run.iter().copied().collect();
        assert!(
            distinct.len() > 1,
            "different worlds should flip different coins"
        );
    }

    #[test]
    fn ars_prob_one_selects_every_unactivated_target() {
        let inst = instance();
        let mut p = Ars { prob: 1.0, seed: 0 };
        let s = evaluate_adaptive(&inst, &mut p, &[1]);
        // 0 selected -> 1 activated & skipped; 2 selected -> 3 activated
        // (not a target); 4 selected. So exactly 3 seeds.
        assert_eq!(s.seeds_per_run, vec![3]);
    }

    #[test]
    fn rs_is_deterministic_and_respects_prob() {
        let inst = instance();
        let mut p1 = Rs { prob: 0.5, seed: 7 };
        let mut p2 = Rs { prob: 0.5, seed: 7 };
        assert_eq!(p1.select(&inst), p2.select(&inst));
        let mut all = Rs { prob: 1.0, seed: 7 };
        assert_eq!(all.select(&inst), inst.target());
        let mut none = Rs { prob: 0.0, seed: 7 };
        assert!(none.select(&inst).is_empty());
    }

    #[test]
    fn rs_evaluation_runs() {
        let inst = instance();
        let mut p = Rs::default();
        let s = evaluate_nonadaptive(&inst, &mut p, &standard_worlds(5));
        assert_eq!(s.profits.len(), 20);
    }
}
