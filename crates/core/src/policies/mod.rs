//! Every algorithm evaluated in the paper.
//!
//! | Policy | Setting | Paper section |
//! |--------|---------|---------------|
//! | [`Adg`] | adaptive, oracle model | §III-B (Algorithm 2) |
//! | [`Addatp`] | adaptive, noise model, additive error | §III-C (Algorithm 3) |
//! | [`Hatp`] | adaptive, noise model, hybrid error | §IV (Algorithm 4) |
//! | [`Hntp`] | nonadaptive HATP | §VI-A |
//! | [`Nsg`] | nonadaptive simple greedy \[26\] | §VI-A |
//! | [`Ndg`] | nonadaptive double greedy \[26\] | §VI-A |
//! | [`Ars`] / [`Rs`] | (adaptive) random set \[10\] | §VI-A |
//! | [`Baseline`] | deploy the whole target set | §VI-B |
//! | [`ThresholdBatch`] | adaptive, low-adaptivity batch rounds | beyond the paper (arXiv:1910.13073-style) |

mod addatp;
mod adg;
mod ars;
mod baseline;
mod hatp;
mod hntp;
mod ndg;
mod nsg;
mod threshold_batch;

pub use addatp::Addatp;
pub use adg::Adg;
pub use ars::{Ars, ArsStepper, Rs};
pub use baseline::{Baseline, DeployAll, DeployAllStepper};
pub use hatp::{Hatp, HatpStepper};
pub use hntp::Hntp;
pub use ndg::Ndg;
pub use nsg::Nsg;
pub use threshold_batch::{ThresholdBatch, ThresholdBatchStepper};
