//! ThresholdBatch — genuinely low-adaptivity batched seeding via
//! threshold sampling (beyond the paper; arXiv:1910.13073-style rounds).
//!
//! The paper's adaptive greedy family commits one seed per observation.
//! Its guarantee, however, only needs fresh observations between *rounds*:
//! within a round, marginal estimates against one frozen residual state are
//! enough to select a whole batch whose members are each within a
//! `(1 − ε)`-factor threshold of the current best marginal profit. That is
//! the ICML'19 threshold-sampling / reduced-mean recipe: sweep a
//! geometrically decaying threshold `τ` over the candidate targets, admit
//! every candidate whose estimated marginal profit clears `τ`, and account
//! rounds and oracle queries explicitly so the adaptivity/quality trade is
//! measurable.
//!
//! Per [`next_batch`](crate::PolicyStepper::next_batch) round:
//!
//! 1. generate `θ` fresh RR sets over the *current* residual graph
//!    (deterministic in `(residual, seed, round, threads)` — the salt chain
//!    advances once per round, exactly like HATP's);
//! 2. initialize `τ` to the best singleton marginal profit
//!    `n_i·Cov(u)/θ − c(u)` over alive, un-activated targets (if no
//!    candidate is profitable the policy is done);
//! 3. sweep candidates in id order, admitting `u` into the batch when its
//!    *conditional* marginal profit `n_i·Cov(u | batch)/θ − c(u) ≥ τ`;
//!    decay `τ ← (1−ε)·τ` between sweeps until the batch holds `k` seeds
//!    or `τ` falls below `ε·τ₀/k` (every surviving candidate is then worth
//!    less than an `ε/k` fraction of the best, i.e. noise).
//!
//! Every marginal evaluation is one **oracle query**
//! ([`AdaptiveSession::add_oracle_queries`]); every generated RR set is
//! **sampling work**; every committed batch is one **round** (counted by
//! the session when the batch is applied). A full run therefore spends
//! `O(log₁₋ε(k/ε))` query sweeps per round and `⌈|S|/k⌉`-ish rounds,
//! against the single-seed policies' `|S|` rounds.

use std::borrow::Cow;

use atpm_graph::{GraphView, Node};
use atpm_ris::sampler::generate_batch;
use atpm_ris::NodeSet;

use crate::session::AdaptiveSession;
use crate::stepper::{run_stepper_batched, PolicyStepper};
use crate::AdaptivePolicy;

/// Configuration of the threshold-sampling batch policy.
#[derive(Debug, Clone)]
pub struct ThresholdBatch {
    /// Fresh RR sets generated per round.
    pub theta: usize,
    /// Threshold decay per sweep (`τ ← (1−ε)·τ`), in (0, 1).
    pub eps: f64,
    /// Batch size used by the in-process [`AdaptivePolicy::run`] drive; the
    /// serve protocol passes `k` per `next_batch` request instead.
    pub batch: usize,
    /// RNG seed for the per-round sampling chain.
    pub seed: u64,
    /// Sampler worker threads.
    pub threads: usize,
}

impl Default for ThresholdBatch {
    fn default() -> Self {
        ThresholdBatch {
            theta: 4_000,
            eps: 0.1,
            batch: 4,
            seed: 0,
            threads: 1,
        }
    }
}

impl ThresholdBatch {
    /// The resumable form of this policy (see [`crate::stepper`]).
    pub fn stepper(&self) -> ThresholdBatchStepper {
        assert!(self.theta > 0, "theta must be positive");
        assert!(
            self.eps > 0.0 && self.eps < 1.0,
            "eps must be in (0, 1), got {}",
            self.eps
        );
        assert!(self.batch > 0, "batch size must be positive");
        ThresholdBatchStepper {
            cfg: self.clone(),
            round_salt: self.seed,
            done: false,
        }
    }
}

/// [`ThresholdBatch`] in resumable form. Per-run state is just the round
/// salt chain (advanced once per sampling round, so protocol replays
/// re-derive identical RR batches) and the terminal flag.
pub struct ThresholdBatchStepper {
    cfg: ThresholdBatch,
    round_salt: u64,
    done: bool,
}

impl PolicyStepper for ThresholdBatchStepper {
    fn name(&self) -> Cow<'static, str> {
        "ThresholdBatch".into()
    }

    fn next_seed(&mut self, session: &mut AdaptiveSession<'_>) -> Option<Node> {
        // The single-seed drive is a batch round of size 1: same sampling,
        // same threshold sweep, one admitted seed.
        self.next_batch(session, 1).pop()
    }

    fn next_batch(&mut self, session: &mut AdaptiveSession<'_>, k: usize) -> Vec<Node> {
        if self.done || k == 0 {
            return Vec::new();
        }
        let view = session.residual();
        let n = session.instance().graph().num_nodes();
        let candidates: Vec<Node> = session
            .instance()
            .target()
            .iter()
            .copied()
            .filter(|&u| !session.is_activated(u))
            .collect();
        if view.num_alive() == 0 || candidates.is_empty() {
            self.done = true;
            return Vec::new();
        }

        // One fresh sample per round, salted like HATP's round chain.
        self.round_salt = self
            .round_salt
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let rr = generate_batch(view, self.cfg.theta, self.round_salt, self.cfg.threads);
        let mut queries = 0u64;

        // τ₀ = best singleton marginal profit; none profitable → finished.
        let cost = |u: Node| session.instance().cost(u);
        let mut tau0 = f64::NEG_INFINITY;
        for &u in &candidates {
            queries += 1;
            tau0 = tau0.max(rr.scale(rr.cov_node(u)) - cost(u));
        }
        if tau0 <= 0.0 {
            session.add_sampling_work(rr.len() as u64);
            session.add_oracle_queries(queries);
            self.done = true;
            return Vec::new();
        }

        // Decaying-threshold sweeps over conditional marginals.
        let mut batch: Vec<Node> = Vec::new();
        let mut in_batch = NodeSet::new(n);
        let floor = self.cfg.eps * tau0 / k as f64;
        let mut tau = tau0;
        while batch.len() < k && tau >= floor {
            for &u in &candidates {
                if batch.len() >= k || in_batch.contains(u) {
                    continue;
                }
                queries += 1;
                let gain = rr.scale(rr.cov_marginal(u, &in_batch)) - cost(u);
                if gain >= tau && gain > 0.0 {
                    in_batch.insert(u);
                    batch.push(u);
                }
            }
            tau *= 1.0 - self.cfg.eps;
        }
        session.add_sampling_work(rr.len() as u64);
        session.add_oracle_queries(queries);
        debug_assert!(!batch.is_empty(), "tau0 > 0 admits at least the argmax");
        batch
    }
}

impl AdaptivePolicy for ThresholdBatch {
    fn name(&self) -> &'static str {
        "ThresholdBatch"
    }

    fn run(&mut self, session: &mut AdaptiveSession<'_>) -> Vec<Node> {
        let batch = self.batch;
        run_stepper_batched(&mut self.stepper(), session, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::TpmInstance;
    use crate::runner::evaluate_adaptive;
    use atpm_graph::GraphBuilder;

    fn star_instance() -> TpmInstance {
        let mut b = GraphBuilder::new(5);
        for v in 1..=3 {
            b.add_edge(0, v, 1.0).unwrap();
        }
        TpmInstance::new(b.build(), vec![0, 4], &[2.0, 3.0])
    }

    #[test]
    fn keeps_profitable_and_rejects_unprofitable() {
        let inst = star_instance();
        let mut p = ThresholdBatch {
            seed: 3,
            ..Default::default()
        };
        let summary = evaluate_adaptive(&inst, &mut p, &[1, 2, 3]);
        // Hub: spread 4 at cost 2 → profit 2. Isolate: spread 1 at cost 3.
        for profit in &summary.profits {
            assert!((profit - 2.0).abs() < 1e-9, "profit {profit}");
        }
        assert!(summary.seeds_per_run.iter().all(|&s| s == 1));
    }

    #[test]
    fn one_round_selects_a_whole_batch() {
        // Four independent profitable hubs: one sampling round must admit
        // all of them (that's the point of batching).
        let mut b = GraphBuilder::new(12);
        for hub in 0..4u32 {
            b.add_edge(hub, 4 + 2 * hub, 1.0).unwrap();
            b.add_edge(hub, 5 + 2 * hub, 1.0).unwrap();
        }
        let inst = TpmInstance::new(b.build(), vec![0, 1, 2, 3], &[1.0, 1.0, 1.0, 1.0]);
        let mut session = AdaptiveSession::new(&inst, 9);
        let mut stepper = ThresholdBatch {
            seed: 5,
            ..Default::default()
        }
        .stepper();
        let batch = stepper.next_batch(&mut session, 4);
        assert_eq!(batch.len(), 4, "{batch:?}");
        session.select_batch(&batch);
        assert_eq!(session.rounds(), 1);
        assert!(session.oracle_queries() > 0, "query accounting recorded");
        assert!(session.sampling_work() > 0, "sampling accounting recorded");
        let rest = stepper.next_batch(&mut session, 4);
        assert!(rest.is_empty(), "everything activated after one round");
    }

    #[test]
    fn batch_respects_submodular_overlap() {
        // Two targets covering the same audience of 3 at cost 1.5: the
        // second conditional marginal (1 − 1.5 < 0) must not be admitted.
        let mut b = GraphBuilder::new(5);
        for v in 2..5 {
            b.add_edge(0, v, 1.0).unwrap();
            b.add_edge(1, v, 1.0).unwrap();
        }
        let inst = TpmInstance::new(b.build(), vec![0, 1], &[1.5, 1.5]);
        let mut session = AdaptiveSession::new(&inst, 2);
        let mut stepper = ThresholdBatch {
            theta: 8_000,
            seed: 4,
            ..Default::default()
        }
        .stepper();
        let batch = stepper.next_batch(&mut session, 2);
        assert_eq!(batch.len(), 1, "{batch:?}");
    }

    #[test]
    fn deterministic_given_seed_and_threads() {
        let inst = star_instance();
        for threads in [1usize, 3] {
            let mut p1 = ThresholdBatch {
                seed: 11,
                threads,
                ..Default::default()
            };
            let mut p2 = ThresholdBatch {
                seed: 11,
                threads,
                ..Default::default()
            };
            let a = evaluate_adaptive(&inst, &mut p1, &[4, 5]);
            let b = evaluate_adaptive(&inst, &mut p2, &[4, 5]);
            assert_eq!(a.profits, b.profits);
            assert_eq!(a.sampling_work, b.sampling_work);
        }
    }

    #[test]
    fn empty_target_set_selects_nothing() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.5).unwrap();
        let inst = TpmInstance::new(b.build(), vec![], &[]);
        let mut p = ThresholdBatch::default();
        let summary = evaluate_adaptive(&inst, &mut p, &[1, 2]);
        assert!(summary.profits.iter().all(|&p| p == 0.0));
    }

    #[test]
    #[should_panic(expected = "eps must be in")]
    fn rejects_bad_eps() {
        let _ = ThresholdBatch {
            eps: 1.0,
            ..Default::default()
        }
        .stepper();
    }
}
