//! ADDATP — adaptive double greedy with additive sampling error
//! (Algorithm 3, §III-C).
//!
//! ADDATP mirrors ADG but estimates the front/rear profits by reverse
//! influence sampling. Per examined node it runs rounds of increasing
//! precision: round `j` draws `θ = ln(8/δ_j)/(2ζ_j²)` RR sets (Hoeffding,
//! Lemma 4) and stops once either
//!
//! * `C1`: the estimates are separated enough to certify the comparison
//!   (`|ρ̃_f − ρ̃_r| ≥ 2n_iζ_i`, or one of them is certifiably negative), or
//! * `C2`: `n_iζ_i ≤ η` — the profits are too close to distinguish and the
//!   loss from guessing is at most ~2η (`η = 1` in the base algorithm).
//!
//! Otherwise `ζ ← ζ/√2`, `δ ← δ/2` and the round repeats with fresh samples.
//!
//! The **dynamic-threshold variant** (§III-C "Discussion") re-budgets `η`
//! from the profit accumulated so far, yielding an expected
//! `(1−ε)/3`-approximation: before examining `u_{i+1}` it sets
//! `η_{i+1} = (ε·ρ_i − 2Ση̃_j − 2)/2` whenever that budget is nonnegative
//! (and disables `C2` otherwise).
//!
//! Guarantee (Theorem 2): expected profit `≥ (Λ(π_opt) − (2k+2))/3`.
//! Expected time `O(k·m·n·E[I(v°)]·ln n)` (Theorem 3) — the `n²` per-node
//! sample blowup near `C2` is exactly the inefficiency HATP removes.

use atpm_graph::{GraphView, Node};
use atpm_ris::bounds::addatp_theta;
use atpm_ris::stream::front_rear_counts_shared;
use atpm_ris::NodeSet;

use crate::session::AdaptiveSession;
use crate::AdaptivePolicy;

const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// Configuration and state of ADDATP.
#[derive(Debug, Clone)]
pub struct Addatp {
    /// Initial additive error scaled by alive nodes: `n_i·ζ_0` (the paper's
    /// experiments use 64).
    pub initial_nzeta: f64,
    /// RNG seed for the sampling rounds.
    pub seed: u64,
    /// Sampler worker threads.
    pub threads: usize,
    /// Per-round RR-set cap. `usize::MAX` is the faithful algorithm; finite
    /// caps force a best-effort decision once a round would exceed the cap
    /// (the benches use this to keep ADDATP's `O(n²ζ⁻²)` tail affordable,
    /// mirroring how the paper could only run it on the smallest dataset).
    pub max_theta: usize,
    /// `Some(ε)` enables the dynamic-threshold variant with target
    /// approximation `(1−ε)/3`.
    pub dynamic_eps: Option<f64>,
}

impl Default for Addatp {
    fn default() -> Self {
        Addatp {
            initial_nzeta: 64.0,
            seed: 0,
            threads: 1,
            max_theta: usize::MAX,
            dynamic_eps: None,
        }
    }
}

impl AdaptivePolicy for Addatp {
    fn name(&self) -> &'static str {
        if self.dynamic_eps.is_some() {
            "ADDATP-dyn"
        } else {
            "ADDATP"
        }
    }

    fn run(&mut self, session: &mut AdaptiveSession<'_>) -> Vec<Node> {
        let target: Vec<Node> = session.instance().target().to_vec();
        let k = target.len();
        if k == 0 {
            return Vec::new();
        }
        let n = session.instance().graph().num_nodes();
        let empty = NodeSet::new(n);
        // `t_rest` tracks T_{i−1}; the examined node is removed up front so
        // the set passed to the sampler is T_{i−1} ∖ {u_i}.
        let mut t_rest = NodeSet::from_iter(n, target.iter().copied());
        let mut round_salt = self.seed;
        let mut eta_tilde_sum = 0.0f64; // Σ η̃_j of the dynamic variant

        for &u in &target {
            if session.is_activated(u) {
                t_rest.remove(u);
                continue;
            }
            t_rest.remove(u);
            let ni = session.residual().num_alive();
            debug_assert!(ni >= 1, "u alive implies n_i >= 1");
            let nif = ni as f64;
            let c = session.instance().cost(u);
            // ζ_0 ∈ [1/n_i, 1): start from n_i·ζ_0 = initial_nzeta.
            let mut zeta = (self.initial_nzeta / nif).min(0.5);
            let mut delta = 1.0 / (k as f64 * n as f64);
            // C2 threshold: fixed 1 in the base algorithm, re-budgeted from
            // accumulated profit in the dynamic variant.
            let eta = match self.dynamic_eps {
                None => 1.0,
                Some(eps) => {
                    let budget = eps * session.profit() - 2.0 * eta_tilde_sum - 2.0;
                    if budget >= 0.0 {
                        budget / 2.0
                    } else {
                        0.0
                    }
                }
            };

            let keep = loop {
                round_salt = round_salt.wrapping_mul(6364136223846793005).wrapping_add(1);
                let theta = addatp_theta(zeta, delta).min(self.max_theta);
                let counts = front_rear_counts_shared(
                    session.residual(),
                    u,
                    &empty,
                    &t_rest,
                    theta,
                    round_salt,
                    self.threads,
                );
                session.add_sampling_work(counts.theta as u64);
                if counts.theta == 0 {
                    break false;
                }
                let tf = counts.theta as f64;
                let rho_f = nif * counts.cov_front as f64 / tf - c;
                let rho_r = c - nif * counts.cov_rear as f64 / tf;
                let nz = nif * zeta;
                let c1 = (rho_f - rho_r).abs() >= 2.0 * nz || rho_f <= -nz || rho_r <= -nz;
                let c2 = nz <= eta;
                let forced = theta >= self.max_theta;
                if c1 || c2 || forced {
                    if c2 && !c1 {
                        eta_tilde_sum += eta;
                    }
                    break rho_f >= rho_r;
                }
                zeta /= SQRT_2;
                delta /= 2.0;
            };

            if keep {
                session.select(u);
                t_rest.insert(u); // selected nodes stay in T_i
            }
        }
        session.selected().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::TpmInstance;
    use crate::oracle::ExactOracle;
    use crate::policies::Adg;
    use crate::runner::evaluate_adaptive;
    use atpm_graph::GraphBuilder;

    /// Star hub 0 -> {1,2,3} (p=1) plus isolated 4; T = {0, 4}.
    fn star_instance() -> TpmInstance {
        let mut b = GraphBuilder::new(5);
        for v in 1..=3 {
            b.add_edge(0, v, 1.0).unwrap();
        }
        TpmInstance::new(b.build(), vec![0, 4], &[2.0, 3.0])
    }

    #[test]
    fn clear_cut_decisions_match_adg() {
        let inst = star_instance();
        let worlds = [1u64, 2, 3];
        let mut addatp = Addatp {
            seed: 5,
            ..Default::default()
        };
        let noisy = evaluate_adaptive(&inst, &mut addatp, &worlds);
        let mut adg = Adg::new(ExactOracle);
        let exact = evaluate_adaptive(&inst, &mut adg, &worlds);
        assert_eq!(noisy.profits, exact.profits, "margins are huge; must agree");
        assert!(noisy.sampling_work > 0);
    }

    #[test]
    fn skips_activated_nodes_and_keeps_ledger() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0, 1], &[0.1, 0.1]);
        let mut p = Addatp {
            seed: 1,
            ..Default::default()
        };
        let s = evaluate_adaptive(&inst, &mut p, &[3]);
        assert_eq!(s.seeds_per_run, vec![1]);
        assert!((s.profits[0] - 1.9).abs() < 1e-9);
    }

    #[test]
    fn c2_stops_borderline_nodes_without_explosion() {
        // A node whose profit is exactly on the judgement bar: spread 1,
        // cost 1 (isolated node). C2 (n_i ζ_i <= 1) must terminate sampling.
        let b = GraphBuilder::new(3);
        let inst = TpmInstance::new(b.build(), vec![0], &[1.0]);
        let mut p = Addatp {
            seed: 2,
            ..Default::default()
        };
        let s = evaluate_adaptive(&inst, &mut p, &[1]);
        // Whatever the decision, profit is 0 (spread 1 - cost 1 or nothing).
        assert!(s.profits[0].abs() < 1e-9);
        // Bounded sampling: zeta only needs to fall from 0.5 to 1/3, so the
        // round budget stays tiny.
        assert!(s.sampling_work < 2_000_000, "work {}", s.sampling_work);
    }

    #[test]
    fn max_theta_forces_decisions() {
        let inst = star_instance();
        let mut p = Addatp {
            seed: 3,
            max_theta: 64,
            ..Default::default()
        };
        let s = evaluate_adaptive(&inst, &mut p, &[1]);
        // 2 nodes examined, <= 64 sets each round, one round each.
        assert!(s.sampling_work <= 128, "work {}", s.sampling_work);
    }

    #[test]
    fn dynamic_variant_terminates_and_is_sane() {
        let inst = star_instance();
        let mut p = Addatp {
            seed: 4,
            dynamic_eps: Some(0.2),
            max_theta: 1 << 18,
            ..Default::default()
        };
        let s = evaluate_adaptive(&inst, &mut p, &[1, 2]);
        assert_eq!(p.name(), "ADDATP-dyn");
        // Hub is hugely profitable; it must still be selected.
        for (profit, seeds) in s.profits.iter().zip(&s.seeds_per_run) {
            assert!(*profit >= 2.0 - 1e-9, "profit {profit}");
            assert!(*seeds >= 1);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let inst = star_instance();
        let worlds = [9u64, 10];
        let mut p1 = Addatp {
            seed: 42,
            ..Default::default()
        };
        let mut p2 = Addatp {
            seed: 42,
            ..Default::default()
        };
        let a = evaluate_adaptive(&inst, &mut p1, &worlds);
        let b = evaluate_adaptive(&inst, &mut p2, &worlds);
        assert_eq!(a.profits, b.profits);
        assert_eq!(a.sampling_work, b.sampling_work);
    }
}
