//! Exact policy evaluation and brute-force optima on tiny instances.
//!
//! The paper's analysis (§III-B) reasons about the expected profit of a
//! policy over *all* realizations, `Λ(π) = Σ_φ ρ_φ(S_φ(π))·p(φ)`
//! (Definition 1), and compares against the optimal adaptive policy `π_opt`.
//! On graphs with few edges both quantities are exactly computable:
//!
//! * [`exact_policy_value`] enumerates every world and replays the policy
//!   against each one;
//! * [`optimal_adaptive_value`] brute-forces `Λ(π_opt)` by recursing over
//!   information states (a general policy may examine remaining targets in
//!   any order or stop early);
//! * [`optimal_nonadaptive_value`] maximizes `ρ(S)` over all `S ⊆ T`.
//!
//! These power the machine-check of Theorem 1 (`Λ(ADG) ≥ Λ(π_opt)/3`) and of
//! the adaptivity gap (`Λ(π_opt) ≥ max_S ρ(S)`) in the integration tests.
//!
//! The paper's policy-combinator notation (truncation `π_[i]`, concatenation
//! `π ⊕ π'`, intersection `π ⊗ π'`, Definitions 4–6) acts on *seed sets
//! under a fixed realization*: `S_φ(π ⊕ π') = S_φ(π) ∪ S_φ(π')` and
//! `S_φ(π ⊗ π') = S_φ(π) ∩ S_φ(π')`. [`concat_seed_sets`] /
//! [`intersect_seed_sets`] implement exactly that set algebra so tests can
//! replay the Lemma 2/3 bookkeeping.

use atpm_diffusion::spread::EXACT_SPREAD_MAX_EDGES;
use atpm_diffusion::{exact_spread, CascadeEngine, MaterializedRealization};
use atpm_graph::{Node, ResidualGraph};

use crate::instance::TpmInstance;
use crate::session::{AdaptiveSession, SessionWorld};
use crate::AdaptivePolicy;

/// Enumerates every realization `(edge mask, probability)` of the instance's
/// graph. Panics if `m >` [`EXACT_SPREAD_MAX_EDGES`].
pub fn enumerate_worlds(instance: &TpmInstance) -> Vec<(u64, f64)> {
    let g = instance.graph();
    let m = g.num_edges();
    assert!(
        m <= EXACT_SPREAD_MAX_EDGES,
        "world enumeration needs m <= {EXACT_SPREAD_MAX_EDGES}, got {m}"
    );
    let probs: Vec<f64> = (0..m as u32).map(|e| g.edge_prob(e) as f64).collect();
    let mut worlds = Vec::with_capacity(1 << m);
    for mask in 0u64..(1u64 << m) {
        let mut p = 1.0;
        for (e, &pe) in probs.iter().enumerate() {
            p *= if mask >> e & 1 == 1 { pe } else { 1.0 - pe };
        }
        if p > 0.0 {
            worlds.push((mask, p));
        }
    }
    worlds
}

/// Exactly computes `Λ(π)` (Definition 1) by replaying `policy` against
/// every possible world.
pub fn exact_policy_value<P: AdaptivePolicy>(instance: &TpmInstance, policy: &mut P) -> f64 {
    let m = instance.graph().num_edges();
    enumerate_worlds(instance)
        .into_iter()
        .map(|(mask, p)| {
            let world = SessionWorld::Materialized(MaterializedRealization::from_bits(m, &[mask]));
            let mut session = AdaptiveSession::with_world(instance, world);
            policy.run(&mut session);
            p * session.profit()
        })
        .sum()
}

/// `S_φ(π ⊕ π')` (Definition 5): the union of the two seed sets under the
/// same realization.
pub fn concat_seed_sets(a: &[Node], b: &[Node]) -> Vec<Node> {
    let mut out = a.to_vec();
    for &u in b {
        if !out.contains(&u) {
            out.push(u);
        }
    }
    out
}

/// `S_φ(π ⊗ π')` (Definition 6): the intersection of the two seed sets under
/// the same realization.
pub fn intersect_seed_sets(a: &[Node], b: &[Node]) -> Vec<Node> {
    a.iter().copied().filter(|u| b.contains(u)).collect()
}

/// Profit of a *fixed* seed set under a fixed world, on the full graph.
fn world_profit(instance: &TpmInstance, mask: u64, seeds: &[Node]) -> f64 {
    let m = instance.graph().num_edges();
    let world = MaterializedRealization::from_bits(m, &[mask]);
    let mut engine = CascadeEngine::new();
    let activated = engine.observe(&instance.graph(), &world, seeds);
    activated.len() as f64 - instance.cost_of(seeds)
}

/// Brute-force `Λ(π_opt)` over *all* adaptive policies (any examination
/// order, early stopping allowed).
///
/// The recursion explores information states: a state is the set of worlds
/// consistent with every observation so far (all sharing the same activated
/// set, so the residual graph is common). At each state the policy may stop,
/// or pick any remaining target node; picking partitions the worlds by the
/// observed cascade. Exponential — intended for `|T| ≤ 4`, `m ≤ 12`.
pub fn optimal_adaptive_value(instance: &TpmInstance) -> f64 {
    let worlds = enumerate_worlds(instance);
    let target: Vec<Node> = instance.target().to_vec();
    assert!(target.len() <= 4, "brute force limited to |T| <= 4");
    let m = instance.graph().num_edges();
    let g = instance.graph();
    let mut engine = CascadeEngine::new();

    // Total probability is 1; recursion carries absolute weights.
    fn recurse(
        instance: &TpmInstance,
        engine: &mut CascadeEngine,
        m: usize,
        worlds: &[(u64, f64)],
        dead: &[Node],
        remaining: &[Node],
    ) -> f64 {
        let mut best = 0.0f64; // stopping yields zero additional profit
        for (idx, &u) in remaining.iter().enumerate() {
            if dead.contains(&u) {
                continue;
            }
            // Partition worlds by the observed cascade A(u).
            let mut groups: std::collections::HashMap<Vec<Node>, Vec<(u64, f64)>> =
                std::collections::HashMap::new();
            for &(mask, p) in worlds {
                let world = MaterializedRealization::from_bits(m, &[mask]);
                let mut residual = ResidualGraph::new(instance.graph());
                residual.remove_all(dead.iter().copied());
                let mut cascade = engine.observe(&residual, &world, &[u]);
                cascade.sort_unstable();
                groups.entry(cascade).or_default().push((mask, p));
            }
            let weight: f64 = worlds.iter().map(|&(_, p)| p).sum();
            let mut value = -instance.cost(u) * weight;
            let mut rest = remaining.to_vec();
            rest.remove(idx);
            for (cascade, group) in groups {
                let gw: f64 = group.iter().map(|&(_, p)| p).sum();
                value += cascade.len() as f64 * gw;
                let mut new_dead = dead.to_vec();
                new_dead.extend_from_slice(&cascade);
                value += recurse(instance, engine, m, &group, &new_dead, &rest);
            }
            best = best.max(value);
        }
        best
    }

    let _ = (g, &mut engine); // engine reused through recursion below
    let mut engine = CascadeEngine::new();
    recurse(instance, &mut engine, m, &worlds, &[], &target)
}

/// Brute-force best nonadaptive profit `max_{S ⊆ T} ρ(S)` by exact spreads.
pub fn optimal_nonadaptive_value(instance: &TpmInstance) -> f64 {
    let target = instance.target();
    assert!(target.len() <= 16, "2^k subsets; keep k small");
    let mut best = 0.0f64; // empty set
    for mask in 1u32..(1 << target.len()) {
        let s: Vec<Node> = target
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, &u)| u)
            .collect();
        let spread = exact_spread(&instance.graph(), &s);
        best = best.max(spread - instance.cost_of(&s));
    }
    best
}

/// Exact expected profit of a fixed seed set: `ρ(S) = E[I(S)] − c(S)`.
pub fn exact_set_profit(instance: &TpmInstance, seeds: &[Node]) -> f64 {
    exact_spread(&instance.graph(), seeds) - instance.cost_of(seeds)
}

/// Sanity helper for tests: `Λ(π)` computed per-world must equal the
/// weighted sum of fixed-set profits of the *same* policy's per-world
/// selections (consistency of Definition 1 with our session accounting).
pub fn exact_policy_value_via_reruns<P: AdaptivePolicy>(
    instance: &TpmInstance,
    policy: &mut P,
) -> f64 {
    let m = instance.graph().num_edges();
    enumerate_worlds(instance)
        .into_iter()
        .map(|(mask, p)| {
            let world = SessionWorld::Materialized(MaterializedRealization::from_bits(m, &[mask]));
            let mut session = AdaptiveSession::with_world(instance, world);
            let seeds = policy.run(&mut session);
            p * world_profit(instance, mask, &seeds)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactOracle;
    use crate::policies::Adg;
    use atpm_graph::GraphBuilder;

    /// 0 -> 1 (p = 0.5); T = {0}, c = 1.2.
    fn coin_instance() -> TpmInstance {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.5).unwrap();
        TpmInstance::new(b.build(), vec![0], &[1.2])
    }

    #[test]
    fn enumerate_worlds_probabilities_sum_to_one() {
        let inst = coin_instance();
        let worlds = enumerate_worlds(&inst);
        let total: f64 = worlds.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(worlds.len(), 2);
    }

    #[test]
    fn optimal_values_on_the_coin_instance() {
        let inst = coin_instance();
        // Selecting 0: E[I] = 1.5, cost 1.2 -> 0.3. Not selecting: 0.
        let nonadaptive = optimal_nonadaptive_value(&inst);
        assert!((nonadaptive - 0.3).abs() < 1e-12);
        // One target: adaptivity can't help.
        let adaptive = optimal_adaptive_value(&inst);
        assert!((adaptive - 0.3).abs() < 1e-12);
    }

    #[test]
    fn adaptive_opt_strictly_beats_nonadaptive_when_feedback_matters() {
        // 0 -> 1 (p = 0.5); T = {0, 1}, costs 0.4 and 0.9.
        // Nonadaptive best: {0, 1}: E[I] = 2, c = 1.3 -> 0.7
        //   ({0}: 1.5 - 0.4 = 1.1!). So best nonadaptive = 1.1.
        // Adaptive: select 0; if 1 not activated (p=.5) selecting 1 adds
        // 1 - 0.9 = 0.1 > 0. Λ = 1.5 - 0.4 + 0.5·0.1 = 1.15 > 1.1.
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.5).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0, 1], &[0.4, 0.9]);
        let non = optimal_nonadaptive_value(&inst);
        let ada = optimal_adaptive_value(&inst);
        assert!((non - 1.1).abs() < 1e-12, "nonadaptive {non}");
        assert!((ada - 1.15).abs() < 1e-12, "adaptive {ada}");
    }

    #[test]
    fn exact_policy_value_agrees_with_rerun_accounting() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.7).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0, 2], &[0.8, 0.9]);
        let v1 = exact_policy_value(&inst, &mut Adg::new(ExactOracle));
        let v2 = exact_policy_value_via_reruns(&inst, &mut Adg::new(ExactOracle));
        assert!((v1 - v2).abs() < 1e-9, "{v1} vs {v2}");
    }

    #[test]
    fn theorem_1_holds_on_a_handcrafted_instance() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.6).unwrap();
        b.add_edge(0, 2, 0.4).unwrap();
        b.add_edge(3, 2, 0.5).unwrap();
        let inst = TpmInstance::new(b.build(), vec![0, 3], &[1.1, 0.7]);
        let adg = exact_policy_value(&inst, &mut Adg::new(ExactOracle));
        let opt = optimal_adaptive_value(&inst);
        assert!(
            adg >= opt / 3.0 - 1e-9,
            "ADG {adg} below OPT/3 = {}",
            opt / 3.0
        );
        assert!(adg <= opt + 1e-9, "ADG cannot beat OPT");
    }

    #[test]
    fn seed_set_combinators() {
        assert_eq!(concat_seed_sets(&[1, 2], &[2, 3]), vec![1, 2, 3]);
        assert_eq!(intersect_seed_sets(&[1, 2], &[2, 3]), vec![2]);
        assert!(intersect_seed_sets(&[], &[1]).is_empty());
    }
}
