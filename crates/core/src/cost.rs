//! Cost models: how seeding costs are assigned to users.
//!
//! The paper evaluates two procedures (§VI-A):
//!
//! 1. **Spread-calibrated** — pick `T` first (top-k by IMM), estimate a lower
//!    bound `E_l[I(T)]` of its spread, then split exactly that amount as the
//!    total cost `c(T)`. The split is degree-proportional, uniform, or
//!    random.
//! 2. **Predefined-λ** (§VI-D) — fix the cost of *every* node from
//!    `λ = c(V)/n` before choosing `T`; degree-proportional
//!    (`c(u) = λ·n·outdeg(u)/m`) or uniform (`c(u) = λ`).

use atpm_graph::{Graph, Node};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a total cost is divided among users.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostSplit {
    /// `c(u) ∝ outdeg(u)` — influential users are expensive (Fig. 2 setting).
    DegreeProportional,
    /// Every user costs the same (Fig. 3 setting).
    Uniform,
    /// iid uniform weights, normalized (Fig. 4(a) setting).
    Random {
        /// RNG seed for the weights.
        seed: u64,
    },
}

impl CostSplit {
    /// Display label used by the experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            CostSplit::DegreeProportional => "degree-proportional",
            CostSplit::Uniform => "uniform",
            CostSplit::Random { .. } => "random",
        }
    }
}

/// Splits `total` across `target` according to `split`, guaranteeing
/// `Σ c(u) == total` (up to float rounding).
///
/// Degree-proportional falls back to a uniform split when every target has
/// out-degree zero.
pub fn split_total_cost(g: &Graph, target: &[Node], split: CostSplit, total: f64) -> Vec<f64> {
    assert!(
        total >= 0.0 && total.is_finite(),
        "total cost must be finite, got {total}"
    );
    assert!(
        !target.is_empty(),
        "cannot split cost over an empty target set"
    );
    let weights: Vec<f64> = match split {
        CostSplit::DegreeProportional => {
            let degs: Vec<f64> = target.iter().map(|&u| g.out_degree(u) as f64).collect();
            if degs.iter().sum::<f64>() == 0.0 {
                vec![1.0; target.len()]
            } else {
                degs
            }
        }
        CostSplit::Uniform => vec![1.0; target.len()],
        CostSplit::Random { seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            // Offset from zero so no node ends up free.
            (0..target.len()).map(|_| 0.05 + rng.gen::<f64>()).collect()
        }
    };
    let sum: f64 = weights.iter().sum();
    weights.into_iter().map(|w| total * w / sum).collect()
}

/// Predefined per-node costs from the ratio `λ = c(V)/n` (§VI-D), over the
/// *whole* node set. Degree-proportional assigns `c(u) = λ·n·outdeg(u)/m`;
/// uniform and random behave as in [`split_total_cost`] with
/// `total = λ·n`.
pub fn predefined_costs(g: &Graph, lambda: f64, split: CostSplit) -> Vec<f64> {
    assert!(
        lambda > 0.0 && lambda.is_finite(),
        "lambda must be positive, got {lambda}"
    );
    let all: Vec<Node> = (0..g.num_nodes() as Node).collect();
    split_total_cost(g, &all, split, lambda * g.num_nodes() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpm_graph::GraphBuilder;

    fn graph() -> Graph {
        // out-degrees: 0 -> 2, 1 -> 1, 2 -> 1, 3 -> 0
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(0, 2, 0.5).unwrap();
        b.add_edge(1, 3, 0.5).unwrap();
        b.add_edge(2, 3, 0.5).unwrap();
        b.build()
    }

    #[test]
    fn degree_proportional_tracks_out_degree() {
        let g = graph();
        let c = split_total_cost(&g, &[0, 1, 3], CostSplit::DegreeProportional, 9.0);
        // weights 2, 1, 0 -> 6, 3, 0
        assert_eq!(c, vec![6.0, 3.0, 0.0]);
    }

    #[test]
    fn uniform_splits_evenly() {
        let g = graph();
        let c = split_total_cost(&g, &[0, 1, 2], CostSplit::Uniform, 6.0);
        assert_eq!(c, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn random_sums_to_total_and_is_seeded() {
        let g = graph();
        let c1 = split_total_cost(&g, &[0, 1, 2, 3], CostSplit::Random { seed: 5 }, 10.0);
        let c2 = split_total_cost(&g, &[0, 1, 2, 3], CostSplit::Random { seed: 5 }, 10.0);
        assert_eq!(c1, c2);
        assert!((c1.iter().sum::<f64>() - 10.0).abs() < 1e-9);
        assert!(c1.iter().all(|&x| x > 0.0));
        let c3 = split_total_cost(&g, &[0, 1, 2, 3], CostSplit::Random { seed: 6 }, 10.0);
        assert_ne!(c1, c3);
    }

    #[test]
    fn degree_proportional_falls_back_on_sinks() {
        let g = graph();
        // Node 3 is the only target and has out-degree 0.
        let c = split_total_cost(&g, &[3], CostSplit::DegreeProportional, 4.0);
        assert_eq!(c, vec![4.0]);
    }

    #[test]
    fn mass_is_conserved_for_every_split() {
        let g = graph();
        for split in [
            CostSplit::DegreeProportional,
            CostSplit::Uniform,
            CostSplit::Random { seed: 1 },
        ] {
            let c = split_total_cost(&g, &[0, 1, 2], split, 7.5);
            assert!(
                (c.iter().sum::<f64>() - 7.5).abs() < 1e-9,
                "{split:?} lost mass: {c:?}"
            );
        }
    }

    #[test]
    fn predefined_lambda_means_average_cost() {
        let g = graph();
        let c = predefined_costs(&g, 200.0, CostSplit::Uniform);
        assert_eq!(c.len(), 4);
        assert!(c.iter().all(|&x| (x - 200.0).abs() < 1e-9));

        let c = predefined_costs(&g, 200.0, CostSplit::DegreeProportional);
        // c(u) = λ·n·deg/m = 200·4·deg/4 = 200·deg
        assert_eq!(c, vec![400.0, 200.0, 200.0, 0.0]);
        assert!((c.iter().sum::<f64>() / 4.0 - 200.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty_target() {
        let g = graph();
        let _ = split_total_cost(&g, &[], CostSplit::Uniform, 1.0);
    }
}
