//! Property-based tests for the adaptive TPM core: session invariants,
//! cost-model conservation, and double-greedy structural properties.

use atpm_core::cost::{predefined_costs, split_total_cost, CostSplit};
use atpm_core::oracle::ExactOracle;
use atpm_core::policies::{Adg, Ars, Hatp, Ndg};
use atpm_core::runner::{evaluate_adaptive, evaluate_nonadaptive};
use atpm_core::{AdaptiveSession, NonadaptivePolicy, TpmInstance};
use atpm_graph::{GraphBuilder, GraphView};
use proptest::prelude::*;

/// Arbitrary tiny instance (m <= 10 edges so the exact oracle stays cheap),
/// with ρ(T) >= 0 enforced as the paper assumes.
fn arb_instance() -> impl Strategy<Value = TpmInstance> {
    (3usize..7)
        .prop_flat_map(|n| {
            let edges =
                proptest::collection::vec((0..n as u32, 0..n as u32, 0.1f32..0.9f32), 1..10);
            let k = 2usize..4;
            let costs = proptest::collection::vec(0.2f64..2.0, 3);
            (Just(n), edges, k, costs)
        })
        .prop_map(|(n, edges, k, costs)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, p) in edges {
                if u != v {
                    b.add_edge(u, v, p).unwrap();
                }
            }
            let g = b.build();
            let k = k.min(n);
            let target: Vec<u32> = (0..k as u32).collect();
            let mut costs: Vec<f64> = costs[..k].to_vec();
            let spread = atpm_diffusion::exact_spread(&&g, &target);
            let total: f64 = costs.iter().sum();
            if total > spread {
                let shrink = spread / total;
                costs.iter_mut().for_each(|c| *c *= shrink);
            }
            TpmInstance::new(g, target, &costs)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Session ledger invariants: activated set and residual graph are
    /// complements, profit equals activated − cost, selections are unique.
    #[test]
    fn session_ledger_invariants(inst in arb_instance(), world in 0u64..300) {
        let mut s = AdaptiveSession::new(&inst, world);
        let target = inst.target().to_vec();
        let n = inst.graph().num_nodes();
        for &u in &target {
            if !s.is_activated(u) {
                let cascade = s.select(u);
                prop_assert!(cascade.contains(&u));
            }
        }
        let alive = s.residual().num_alive();
        prop_assert_eq!(alive + s.total_activated(), n);
        let expected = s.total_activated() as f64 - inst.cost_of(s.selected());
        prop_assert!((s.profit() - expected).abs() < 1e-9);
        // Uniqueness of selections.
        let mut sel = s.selected().to_vec();
        sel.sort_unstable();
        sel.dedup();
        prop_assert_eq!(sel.len(), s.selected().len());
    }

    /// ADG's double greedy never selects a node whose exact front and rear
    /// profits are both negative, and per-world profits are bounded by
    /// [−c(T), n].
    #[test]
    fn adg_profit_bounds(inst in arb_instance()) {
        let worlds: Vec<u64> = (0..6).collect();
        let s = evaluate_adaptive(&inst, &mut Adg::new(ExactOracle), &worlds);
        for p in &s.profits {
            prop_assert!(*p >= -inst.total_cost() - 1e-9);
            prop_assert!(*p <= inst.graph().num_nodes() as f64 + 1e-9);
        }
    }

    /// The cost splits conserve total mass and produce nonnegative costs on
    /// arbitrary graphs and budgets.
    #[test]
    fn cost_splits_conserve_mass(
        inst in arb_instance(),
        total in 0.0f64..50.0,
        seed in 0u64..100,
    ) {
        let g = inst.graph();
        let target = inst.target();
        for split in [
            CostSplit::DegreeProportional,
            CostSplit::Uniform,
            CostSplit::Random { seed },
        ] {
            let costs = split_total_cost(g, target, split, total);
            prop_assert_eq!(costs.len(), target.len());
            prop_assert!(costs.iter().all(|c| *c >= 0.0));
            let sum: f64 = costs.iter().sum();
            prop_assert!((sum - total).abs() < 1e-6 * total.max(1.0));
        }
        // Predefined-λ: mean cost equals λ.
        let lam = 1.5;
        let costs = predefined_costs(g, lam, CostSplit::Uniform);
        let mean = costs.iter().sum::<f64>() / costs.len() as f64;
        prop_assert!((mean - lam).abs() < 1e-9);
    }

    /// ARS with probability 1 equals "select every examinable target":
    /// its profit matches the session where we select everything.
    #[test]
    fn ars_prob_one_is_take_all(inst in arb_instance(), world in 0u64..100) {
        let mut ars = Ars { prob: 1.0, seed: 0 };
        let s1 = evaluate_adaptive(&inst, &mut ars, &[world]);
        // Manual take-all.
        let mut session = AdaptiveSession::new(&inst, world);
        for &u in inst.target() {
            if !session.is_activated(u) {
                session.select(u);
            }
        }
        prop_assert!((s1.profits[0] - session.profit()).abs() < 1e-9);
    }

    /// NDG examined with an exact-scale batch still returns a subset of T in
    /// examination order.
    #[test]
    fn ndg_output_is_ordered_subset(inst in arb_instance()) {
        let mut ndg = Ndg::new(4000, 3, 2);
        let sel = ndg.select(&inst);
        let target = inst.target();
        // Subset.
        prop_assert!(sel.iter().all(|u| target.contains(u)));
        // Order preserved.
        let positions: Vec<usize> = sel
            .iter()
            .map(|u| target.iter().position(|t| t == u).unwrap())
            .collect();
        prop_assert!(positions.windows(2).all(|w| w[0] < w[1]));
    }

    /// HATP terminates and respects the same structural bounds under
    /// arbitrary (valid) parameterizations.
    #[test]
    fn hatp_parameter_robustness(
        inst in arb_instance(),
        eps0 in 0.2f64..0.9,
        nzeta in 2.0f64..128.0,
        thr_frac in 0.05f64..1.0,
    ) {
        let mut hatp = Hatp {
            eps0,
            initial_nzeta: nzeta,
            eps_threshold: (eps0 * thr_frac).max(0.02),
            seed: 9,
            threads: 1,
            ..Default::default()
        };
        let s = evaluate_adaptive(&inst, &mut hatp, &[1, 2]);
        for p in &s.profits {
            prop_assert!(p.is_finite());
            prop_assert!(*p >= -inst.total_cost() - 1e-9);
        }
    }
}

/// Non-proptest guard: evaluate_nonadaptive scores the same set every world.
#[test]
fn nonadaptive_seed_count_is_constant_across_worlds() {
    let mut b = GraphBuilder::new(4);
    b.add_edge(0, 1, 0.5).unwrap();
    let inst = TpmInstance::new(b.build(), vec![0, 2], &[0.3, 0.3]);
    let mut ndg = Ndg::new(2000, 1, 1);
    let s = evaluate_nonadaptive(&inst, &mut ndg, &[1, 2, 3, 4]);
    assert!(s.seeds_per_run.windows(2).all(|w| w[0] == w[1]));
}
