//! Property tests pinning the histogram's documented guarantees: bucket
//! monotonicity/contiguity, merge associativity, exact counts at bucket
//! boundaries, and the ≤ 6.25% relative quantile error bound against an
//! exact sorted oracle (see the bound derivation on `Histogram`).

use atpm_obs::{bucket_bounds, bucket_index, Histogram, BUCKETS};
use proptest::prelude::*;

/// The documented worst-case relative quantile error: half a bucket width
/// over the bucket's lower bound, 1/16.
const REL_ERR: f64 = 1.0 / 16.0;

/// Upper bound of the histogram's tracked range (2^42 ns).
const RANGE_END: u64 = 1 << 42;

fn hist_of(values: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

#[test]
fn bucket_bounds_are_monotone_and_contiguous() {
    let mut expect_lo = 0u64;
    for idx in 0..BUCKETS {
        let (lo, hi) = bucket_bounds(idx);
        assert_eq!(
            lo,
            expect_lo,
            "bucket {idx} does not start where {} ended",
            idx.max(1) - 1
        );
        assert!(hi > lo, "bucket {idx} is empty");
        expect_lo = hi;
    }
    assert_eq!(expect_lo, RANGE_END);
}

#[test]
fn every_boundary_value_lands_in_its_own_bucket() {
    // Exact counts at bucket boundaries: recording each bucket's lower
    // bound must produce exactly one count in exactly that bucket, and
    // `hi - 1` must stay in the same bucket (half-open ranges).
    for idx in 0..BUCKETS {
        let (lo, hi) = bucket_bounds(idx);
        assert_eq!(bucket_index(lo), idx, "lo of bucket {idx} misplaced");
        assert_eq!(bucket_index(hi - 1), idx, "hi-1 of bucket {idx} misplaced");
        if idx + 1 < BUCKETS {
            assert_eq!(bucket_index(hi), idx + 1, "hi of bucket {idx} misplaced");
        }
        let h = hist_of(&[lo]);
        assert_eq!(h.snapshot().buckets()[idx], 1);
        assert_eq!(h.count(), 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn recorded_values_fall_inside_their_bucket(v in 0u64..RANGE_END) {
        let idx = bucket_index(v);
        let (lo, hi) = bucket_bounds(idx);
        prop_assert!(lo <= v && v < hi, "v={} outside [{},{}) of bucket {}", v, lo, hi, idx);
    }

    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(0u64..RANGE_END, 0..40),
        b in proptest::collection::vec(0u64..RANGE_END, 0..40),
        c in proptest::collection::vec(0u64..RANGE_END, 0..40),
    ) {
        // (a ⊕ b) ⊕ c
        let left = hist_of(&a);
        left.merge_from(&hist_of(&b));
        left.merge_from(&hist_of(&c));
        // a ⊕ (b ⊕ c)
        let bc = hist_of(&b);
        bc.merge_from(&hist_of(&c));
        let right = hist_of(&a);
        right.merge_from(&bc);
        // c ⊕ b ⊕ a (commutativity)
        let rev = hist_of(&c);
        rev.merge_from(&hist_of(&b));
        rev.merge_from(&hist_of(&a));
        for h in [&right, &rev] {
            prop_assert_eq!(left.snapshot().buckets(), h.snapshot().buckets());
            prop_assert_eq!(left.count(), h.count());
            prop_assert_eq!(left.sum_ns(), h.sum_ns());
        }
    }

    #[test]
    fn quantiles_stay_within_documented_error_vs_sorted_oracle(
        mut values in proptest::collection::vec(8u64..RANGE_END, 1..200),
        q in 0.01f64..1.0,
    ) {
        let h = hist_of(&values);
        values.sort_unstable();
        // Exact oracle: the same nearest-rank definition the histogram uses.
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1] as f64;
        let est = h.quantile(q);
        let rel = (est - exact).abs() / exact;
        prop_assert!(
            rel <= REL_ERR + 1e-12,
            "q={} exact={} est={} rel_err={} > {}",
            q, exact, est, rel, REL_ERR
        );
    }

    #[test]
    fn sub_8ns_values_are_exact(values in proptest::collection::vec(0u64..8, 1..50), q in 0.01f64..1.0) {
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let h = hist_of(&values);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1] as f64;
        // Sub-8ns buckets are width 1; the midpoint is exact + 0.5.
        prop_assert!((h.quantile(q) - exact).abs() <= 0.5);
    }
}
