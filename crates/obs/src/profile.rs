//! Sampling-profiler storage, symbolization, and folded-stack rendering.
//!
//! This module owns everything about the in-tree CPU profiler that does
//! *not* need raw syscalls: the lock-free pre-allocated sample buffer the
//! SIGPROF handler writes into, the offline ELF symbolizer, the legacy
//! Rust demangler, and the flamegraph-compatible folded-stack renderer.
//! The signal/timer plumbing (`setitimer`, `rt_sigaction`, the frame
//! pointer walk) lives in `atpm-net::sys`, which already owns the raw
//! syscall layer; it calls [`record_sample`] from the handler.
//!
//! # Async-signal-safety
//!
//! [`record_sample`] is the only function a signal handler may call. It
//! performs no allocation, takes no locks, and touches nothing but static
//! atomics: a cursor reservation (`fetch_add`) claims a contiguous slice
//! of the flat buffer, the frame PCs are stored, and only then is the
//! record's length slot published with `Release`. Readers scan with
//! `Acquire` and stop at a zero length, so a half-written record (handler
//! preempted between reservation and publish) hides itself and everything
//! after it until it completes — never a torn read.
//!
//! # Buffer layout
//!
//! A flat `[AtomicUsize; 2^20]` (8 MiB of zeroed .bss) holding
//! back-to-back records `[len, pc0, pc1, ..]` with `pc0` the leaf. The
//! buffer is append-only until full: profiling windows are bounded
//! (`/debug/profile?seconds=N` clamps at 30 s; 99 Hz × 30 s × ≤65 words
//! ≈ 193 K words per window), and once the cursor passes the end new
//! samples are counted in [`dropped`] rather than wrapping — a ring would
//! let the writer overtake a reader mid-scan.

use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Deepest stack a single sample keeps; frames below are truncated.
pub const MAX_DEPTH: usize = 64;

/// Buffer capacity in words (`len` slots + PCs), not samples.
pub const CAP_WORDS: usize = 1 << 20;

static BUF: [AtomicUsize; CAP_WORDS] = [const { AtomicUsize::new(0) }; CAP_WORDS];
static CURSOR: AtomicUsize = AtomicUsize::new(0);
static SAMPLES: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Append one stack (leaf first) to the sample buffer.
///
/// Async-signal-safe: no alloc, no locks, bounded work. Called from the
/// SIGPROF handler in `atpm-net::sys`; also directly from tests.
pub fn record_sample(pcs: &[usize]) {
    let n = pcs.len().min(MAX_DEPTH);
    if n == 0 {
        return;
    }
    let start = CURSOR.fetch_add(n + 1, Ordering::Relaxed);
    if start.saturating_add(n + 1) > CAP_WORDS {
        // Buffer exhausted. The cursor stays past the end (no undo: a
        // concurrent reservation may already sit after ours); readers
        // clamp to CAP_WORDS.
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    for (i, &pc) in pcs[..n].iter().enumerate() {
        BUF[start + 1 + i].store(pc, Ordering::Relaxed);
    }
    // Publish: the non-zero length makes the record (and, transitively,
    // every record before it) visible to an Acquire scan.
    BUF[start].store(n, Ordering::Release);
    SAMPLES.fetch_add(1, Ordering::Relaxed);
}

/// Current buffer position; pass to [`collect_since`] to window a
/// profiling run (`/debug/profile` snapshots this, sleeps, then collects).
pub fn cursor() -> usize {
    CURSOR.load(Ordering::Relaxed).min(CAP_WORDS)
}

/// Total samples successfully recorded since process start.
pub fn samples() -> u64 {
    SAMPLES.load(Ordering::Relaxed)
}

/// Samples lost to buffer exhaustion since process start.
pub fn dropped() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Read every complete record in `[pos, cursor)`, leaf-first per stack.
///
/// Stops early at an unpublished record (a handler caught between
/// reservation and publish); the next window picks those up.
pub fn collect_since(pos: usize) -> Vec<Vec<usize>> {
    let end = cursor();
    let mut out = Vec::new();
    let mut i = pos.min(end);
    while i < end {
        let len = BUF[i].load(Ordering::Acquire);
        if len == 0 || len > MAX_DEPTH || i + 1 + len > end {
            break;
        }
        out.push(
            (0..len)
                .map(|j| BUF[i + 1 + j].load(Ordering::Relaxed))
                .collect(),
        );
        i += 1 + len;
    }
    out
}

// ---------------------------------------------------------------------------
// Offline symbolization: /proc/self/exe ELF symtab + /proc/self/maps bias.
// ---------------------------------------------------------------------------

struct Sym {
    addr: usize,
    size: usize,
    name: String,
}

/// Resolves sampled PCs to demangled function names against the running
/// executable's own symbol table. Built once per render, entirely offline
/// (never in the signal handler).
pub struct Symbolizer {
    /// FUNC symbols sorted by address, demangled.
    syms: Vec<Sym>,
    /// Runtime load address minus link-time vaddr (0 for non-PIE).
    bias: usize,
}

impl Symbolizer {
    /// Build from the current process: `/proc/self/exe` for the symbol
    /// table, `/proc/self/maps` for the load bias.
    pub fn from_self() -> io::Result<Symbolizer> {
        let elf = std::fs::read("/proc/self/exe")?;
        let maps = std::fs::read_to_string("/proc/self/maps")?;
        let exe = std::fs::read_link("/proc/self/exe")?;
        Symbolizer::build(&elf, &maps, &exe.to_string_lossy())
    }

    fn build(elf: &[u8], maps: &str, exe_path: &str) -> io::Result<Symbolizer> {
        let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
        let u16_at = |off: usize| -> Option<u64> {
            elf.get(off..off + 2)
                .map(|b| u16::from_le_bytes(b.try_into().unwrap()) as u64)
        };
        let u32_at = |off: usize| -> Option<u64> {
            elf.get(off..off + 4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()) as u64)
        };
        let u64_at = |off: usize| -> Option<u64> {
            elf.get(off..off + 8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        };
        if elf.len() < 64 || &elf[..4] != b"\x7fELF" || elf[4] != 2 || elf[5] != 1 {
            return Err(bad("not a little-endian ELF64 image"));
        }

        // Minimum PT_LOAD vaddr: what the lowest exe mapping corresponds to.
        let ph_off = u64_at(0x20).ok_or_else(|| bad("truncated header"))? as usize;
        let ph_entsize = u16_at(0x36).unwrap_or(56) as usize;
        let ph_num = u16_at(0x38).unwrap_or(0) as usize;
        let mut min_vaddr = u64::MAX;
        for i in 0..ph_num {
            let off = ph_off + i * ph_entsize;
            if u32_at(off) == Some(1) {
                // PT_LOAD
                min_vaddr = min_vaddr.min(u64_at(off + 16).ok_or_else(|| bad("truncated phdr"))?);
            }
        }
        if min_vaddr == u64::MAX {
            return Err(bad("no PT_LOAD segment"));
        }

        // Lowest mapping of the executable itself.
        let map_base = maps
            .lines()
            .filter(|line| line.rsplit(' ').next().is_some_and(|p| p == exe_path))
            .filter_map(|line| {
                let range = line.split_whitespace().next()?;
                usize::from_str_radix(range.split('-').next()?, 16).ok()
            })
            .min()
            .ok_or_else(|| bad("executable not found in /proc/self/maps"))?;
        let bias = map_base.wrapping_sub(min_vaddr as usize);

        // Section headers: prefer .symtab (type 2), fall back to .dynsym (11).
        let sh_off = u64_at(0x28).ok_or_else(|| bad("truncated header"))? as usize;
        let sh_entsize = u16_at(0x3a).unwrap_or(64) as usize;
        let sh_num = u16_at(0x3c).unwrap_or(0) as usize;
        let section = |i: usize| sh_off + i * sh_entsize;
        let mut symtab = None;
        for i in 0..sh_num {
            match u32_at(section(i) + 4) {
                Some(2) => symtab = Some(i), // SHT_SYMTAB always wins
                Some(11) if symtab.is_none() => symtab = Some(i),
                _ => {}
            }
            if u32_at(section(i) + 4) == Some(2) {
                break;
            }
        }
        let st = symtab.ok_or_else(|| bad("no .symtab or .dynsym"))?;
        let sym_off = u64_at(section(st) + 24).ok_or_else(|| bad("truncated shdr"))? as usize;
        let sym_size = u64_at(section(st) + 32).ok_or_else(|| bad("truncated shdr"))? as usize;
        let strtab = u32_at(section(st) + 40).ok_or_else(|| bad("truncated shdr"))? as usize;
        if strtab >= sh_num {
            return Err(bad("symtab string table index out of range"));
        }
        let str_off = u64_at(section(strtab) + 24).ok_or_else(|| bad("truncated shdr"))? as usize;
        let str_size = u64_at(section(strtab) + 32).ok_or_else(|| bad("truncated shdr"))? as usize;
        let strs = elf
            .get(str_off..str_off + str_size)
            .ok_or_else(|| bad("truncated strtab"))?;

        let mut syms = Vec::new();
        for off in (sym_off..sym_off + sym_size).step_by(24) {
            let Some(info) = elf.get(off + 4) else { break };
            if info & 0xf != 2 {
                continue; // not STT_FUNC
            }
            let addr = u64_at(off + 8).unwrap_or(0) as usize;
            if addr == 0 {
                continue;
            }
            let name_off = u32_at(off).unwrap_or(0) as usize;
            let name = strs
                .get(name_off..)
                .and_then(|tail| tail.split(|&b| b == 0).next())
                .map(|b| String::from_utf8_lossy(b).into_owned())
                .unwrap_or_default();
            if name.is_empty() {
                continue;
            }
            syms.push(Sym {
                addr,
                size: u64_at(off + 16).unwrap_or(0) as usize,
                name: demangle(&name),
            });
        }
        syms.sort_by_key(|s| s.addr);
        syms.dedup_by(|a, b| a.addr == b.addr);
        Ok(Symbolizer { syms, bias })
    }

    /// Resolve an absolute runtime PC to a function name, or `None` for
    /// addresses outside the executable's symbols (JIT, vdso, libc).
    pub fn resolve(&self, pc: usize) -> Option<&str> {
        let vaddr = pc.wrapping_sub(self.bias);
        let idx = self.syms.partition_point(|s| s.addr <= vaddr);
        let sym = &self.syms[idx.checked_sub(1)?];
        let end = if sym.size > 0 {
            sym.addr + sym.size
        } else {
            // Zero-size symbol (assembly stubs): accept up to the next
            // symbol, bounded so a stray PC far past the image misses.
            self.syms.get(idx).map_or(sym.addr + 4096, |next| next.addr)
        };
        (vaddr < end).then_some(sym.name.as_str())
    }
}

/// Demangle a legacy (`_ZN..E`) Rust symbol; passthrough for anything else.
///
/// Handles the length-prefixed path segments, the `$LT$`/`$GT$`-style
/// punctuation escapes, `..` → `::`, and drops the trailing `17h<hash>`
/// disambiguator plus any `.llvm.`/`.cold` suffix. No crates.io
/// `rustc-demangle` — this covers what the workspace's own symbols need.
pub fn demangle(sym: &str) -> String {
    let base = sym.split(".llvm.").next().unwrap_or(sym);
    let base = base.strip_suffix(".cold").unwrap_or(base);
    let Some(rest) = base.strip_prefix("_ZN").and_then(|r| r.strip_suffix('E')) else {
        return base.to_string();
    };
    let bytes = rest.as_bytes();
    let mut segs: Vec<&str> = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let mut len = 0usize;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            len = len * 10 + (bytes[i] - b'0') as usize;
            i += 1;
        }
        if i == start || len == 0 || i + len > bytes.len() {
            return base.to_string();
        }
        let seg = &rest[i..i + len];
        // Segments that cannot start with their first real character
        // (e.g. `$LT$...`) are prefixed with `_` in the mangling.
        segs.push(
            seg.strip_prefix('_')
                .filter(|_| seg.starts_with("_$"))
                .unwrap_or(seg),
        );
        i += len;
    }
    if segs.last().is_some_and(|s| {
        s.len() == 17 && s.starts_with('h') && s[1..].bytes().all(|b| b.is_ascii_hexdigit())
    }) {
        segs.pop();
    }
    let joined = segs.join("::");
    const ESCAPES: [(&str, &str); 12] = [
        ("$LT$", "<"),
        ("$GT$", ">"),
        ("$LP$", "("),
        ("$RP$", ")"),
        ("$C$", ","),
        ("$BP$", "*"),
        ("$RF$", "&"),
        ("$u20$", " "),
        ("$u27$", "'"),
        ("$u5b$", "["),
        ("$u5d$", "]"),
        ("$u7b$", "{"),
    ];
    let mut out = String::with_capacity(joined.len());
    let mut rest = joined.as_str();
    'outer: while !rest.is_empty() {
        if let Some(tail) = rest.strip_prefix("..") {
            out.push_str("::");
            rest = tail;
            continue;
        }
        if let Some(tail) = rest.strip_prefix("$u7d$") {
            out.push('}');
            rest = tail;
            continue;
        }
        for (pat, repl) in ESCAPES {
            if let Some(tail) = rest.strip_prefix(pat) {
                out.push_str(repl);
                rest = tail;
                continue 'outer;
            }
        }
        let mut chars = rest.chars();
        out.push(chars.next().unwrap());
        rest = chars.as_str();
    }
    out
}

// ---------------------------------------------------------------------------
// Folded-stack rendering.
// ---------------------------------------------------------------------------

/// Render stacks as folded lines — `root;mid;leaf count` — the input
/// format of flamegraph.pl and Speedscope. Deterministic (sorted by
/// stack). Return addresses (every frame but the leaf) are resolved at
/// `pc - 1` so a call as the last instruction of a function attributes to
/// the caller, not its successor.
pub fn fold(stacks: &[Vec<usize>], symbols: &Symbolizer) -> String {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for stack in stacks {
        let mut names: Vec<String> = stack
            .iter()
            .enumerate()
            .map(|(depth, &pc)| {
                let lookup = if depth == 0 { pc } else { pc.wrapping_sub(1) };
                symbols
                    .resolve(lookup)
                    .map(|name| name.replace([';', ' '], "_"))
                    .unwrap_or_else(|| format!("{pc:#x}"))
            })
            .collect();
        names.reverse(); // leaf-first in the buffer, root-first folded
        *counts.entry(names.join(";")).or_insert(0) += 1;
    }
    let mut out = String::new();
    for (stack, n) in counts {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&n.to_string());
        out.push('\n');
    }
    out
}

/// Symbolize and fold every sample recorded since `pos` (a [`cursor`]
/// snapshot); `pos = 0` folds everything since process start.
pub fn render_folded_since(pos: usize) -> io::Result<String> {
    let stacks = collect_since(pos);
    let symbols = Symbolizer::from_self()?;
    Ok(fold(&stacks, &symbols))
}

/// Per-function inclusive sample counts from folded text, heaviest first.
/// Each function counts once per stack (no double-counting recursion).
pub fn per_function_counts(folded: &str) -> Vec<(String, u64)> {
    let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
    for line in folded.lines() {
        let Some((stack, count)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(count) = count.parse::<u64>() else {
            continue;
        };
        let mut seen: Vec<&str> = Vec::new();
        for frame in stack.split(';') {
            if !seen.contains(&frame) {
                seen.push(frame);
                *totals.entry(frame).or_insert(0) += count;
            }
        }
    }
    let mut out: Vec<(String, u64)> = totals
        .into_iter()
        .map(|(f, n)| (f.to_string(), n))
        .collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_collect_round_trip_with_publish_protocol() {
        let pos = cursor();
        record_sample(&[0xaaa1, 0xaaa2, 0xaaa3]);
        record_sample(&[0xbbb1]);
        let stacks = collect_since(pos);
        // Other tests in this binary may interleave their own samples;
        // filter down to ours by the magic leaf PCs.
        let ours: Vec<&Vec<usize>> = stacks
            .iter()
            .filter(|s| s.first() == Some(&0xaaa1) || s.first() == Some(&0xbbb1))
            .collect();
        assert_eq!(ours.len(), 2);
        assert_eq!(ours[0], &vec![0xaaa1, 0xaaa2, 0xaaa3]);
        assert_eq!(ours[1], &vec![0xbbb1]);
    }

    #[test]
    fn oversized_samples_truncate_to_max_depth() {
        let pos = cursor();
        let deep: Vec<usize> = (1..=MAX_DEPTH + 10).collect();
        record_sample(&deep);
        let stacks = collect_since(pos);
        let ours = stacks.iter().find(|s| s.first() == Some(&1)).unwrap();
        assert_eq!(ours.len(), MAX_DEPTH);
        assert_eq!(*ours.last().unwrap(), MAX_DEPTH);
    }

    #[test]
    fn demangles_legacy_rust_symbols() {
        assert_eq!(
            demangle("_ZN8atpm_ris7sampler14generate_batch17h0123456789abcdefE"),
            "atpm_ris::sampler::generate_batch"
        );
        assert_eq!(
            demangle("_ZN63_$LT$alloc..vec..Vec$LT$T$GT$$u20$as$u20$core..clone..Clone$GT$5clone17hdeadbeefdeadbeefE"),
            "<alloc::vec::Vec<T> as core::clone::Clone>::clone"
        );
        // Non-Rust and already-plain names pass through.
        assert_eq!(demangle("memcpy"), "memcpy");
        assert_eq!(demangle("__atpm_sigrestorer"), "__atpm_sigrestorer");
        // Suffixes stripped even on passthrough.
        assert_eq!(
            demangle("_ZN4core3ops8function2Fn4call17haaaaaaaaaaaaaaaaE.llvm.123"),
            "core::ops::function::Fn::call"
        );
    }

    #[test]
    fn fold_is_root_first_deterministic_and_flamegraph_parsable() {
        // A tiny fake symbolizer: three functions at known vaddrs, no bias.
        let syms = Symbolizer {
            bias: 0,
            syms: vec![
                Sym {
                    addr: 0x1000,
                    size: 0x100,
                    name: "root".into(),
                },
                Sym {
                    addr: 0x2000,
                    size: 0x100,
                    name: "mid".into(),
                },
                Sym {
                    addr: 0x3000,
                    size: 0x100,
                    name: "leaf".into(),
                },
            ],
        };
        // Two identical stacks (leaf-first) and one shorter one.
        let stacks = vec![
            vec![0x3010, 0x2010, 0x1010],
            vec![0x3010, 0x2010, 0x1010],
            vec![0x2020, 0x1010],
        ];
        let folded = fold(&stacks, &syms);
        assert_eq!(folded, "root;mid 1\nroot;mid;leaf 2\n");
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').unwrap();
            assert!(!stack.is_empty());
            assert!(count.parse::<u64>().unwrap() > 0);
        }
        // Unresolved PCs render as hex; resolution of return addresses
        // happens at pc-1, so a PC exactly at a function start attributes
        // to the previous function when it is not the leaf.
        let folded = fold(&[vec![0x9999_0000, 0x1010]], &syms);
        assert_eq!(folded, "root;0x99990000 1\n");
    }

    #[test]
    fn per_function_counts_are_inclusive_without_double_counting() {
        let folded = "root;mid;leaf 2\nroot;mid 1\nroot;rec;rec 5\n";
        let counts = per_function_counts(folded);
        let get = |name: &str| counts.iter().find(|(f, _)| f == name).map(|(_, n)| *n);
        assert_eq!(get("root"), Some(8));
        assert_eq!(get("mid"), Some(3));
        assert_eq!(get("leaf"), Some(2));
        assert_eq!(get("rec"), Some(5), "recursion counts once per stack");
        assert_eq!(counts[0].0, "root", "heaviest first");
    }

    #[test]
    fn symbolizer_resolves_own_binary_symbols() {
        // The test binary itself is an ELF with a symtab; resolve a real
        // function address from it. `fn` pointers give us a stable PC.
        let symbols = Symbolizer::from_self().expect("symbolize /proc/self/exe");
        assert!(!symbols.syms.is_empty());
        let pc = demangle as fn(&str) -> String as usize;
        let name = symbols.resolve(pc).expect("resolve our own function");
        assert!(name.contains("demangle"), "resolved {name:?}");
    }
}
