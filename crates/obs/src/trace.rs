//! A lightweight span/tracing facade drainable into Chrome trace-event
//! JSON (loadable in `chrome://tracing` and Perfetto).
//!
//! The tracer is process-global and off by default. Disabled, every hook
//! is one relaxed atomic load — no clock read, no lock, no allocation —
//! so instrumentation can stay in the hot paths permanently (the bench
//! regression gate runs with tracing disabled and must not move). Enabled,
//! spans buffer into a bounded drop-oldest ring; [`Tracer::drain_json`]
//! serializes and clears it. Event names are `&'static str` so recording
//! allocates nothing until the ring itself grows; the optional per-event
//! request id ([`Tracer::record_with_id`]) is the one owned allocation,
//! paid only while tracing is on.
//!
//! The ring drops **oldest** events when full: a long-running traced
//! process keeps the most recent history, and the cumulative
//! [`Tracer::dropped_total`] count (exported as
//! `atpm_obs_trace_dropped_total`) tells a scrape how much was shed.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Default cap on buffered events; past it the oldest are evicted (and
/// counted). Tunable via [`Tracer::set_cap`].
pub const DEFAULT_EVENT_CAP: usize = 1 << 20;

struct Event {
    name: &'static str,
    cat: &'static str,
    tid: u64,
    ts_ns: u64,
    dur_ns: u64,
    /// Request id rendered as `"args":{"id":...}` when present.
    id: Option<Box<str>>,
}

/// The global trace collector. See the module docs.
pub struct Tracer {
    enabled: AtomicBool,
    t0: Instant,
    events: Mutex<VecDeque<Event>>,
    thread_names: Mutex<Vec<(u64, String)>>,
    cap: AtomicUsize,
    dropped: AtomicU64,
}

/// The process tracer (created on first use, disabled until
/// [`Tracer::set_enabled`]).
pub fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer {
        enabled: AtomicBool::new(false),
        t0: Instant::now(),
        events: Mutex::new(VecDeque::new()),
        thread_names: Mutex::new(Vec::new()),
        cap: AtomicUsize::new(DEFAULT_EVENT_CAP),
        dropped: AtomicU64::new(0),
    })
}

fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

impl Tracer {
    /// Whether spans are being collected. One relaxed load — this is the
    /// entire cost of every hook while tracing is off.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns collection on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Changes the ring capacity (minimum 1). Existing excess events are
    /// evicted (and counted) on the next record.
    pub fn set_cap(&self, cap: usize) {
        self.cap.store(cap.max(1), Ordering::Relaxed);
    }

    /// Events evicted from the ring since process start. Cumulative —
    /// draining does not reset it (it backs the monotone
    /// `atpm_obs_trace_dropped_total` counter).
    pub fn dropped_total(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Opens a span; its duration records when the guard drops. Returns an
    /// inert guard when disabled.
    pub fn span(&'static self, cat: &'static str, name: &'static str) -> Span {
        Span {
            live: self.enabled().then(|| (self, Instant::now(), cat, name)),
        }
    }

    /// Records a completed interval with an explicit start, for code that
    /// measured the interval itself (queue waits, stage timers). No-op
    /// when disabled.
    pub fn record(&self, cat: &'static str, name: &'static str, start: Instant, dur: Duration) {
        self.record_with_id(cat, name, start, dur, None);
    }

    /// [`Tracer::record`] carrying a request id, rendered into the
    /// event's `args` so a span in the trace viewer links back to the
    /// `X-Request-Id` a client saw.
    pub fn record_with_id(
        &self,
        cat: &'static str,
        name: &'static str,
        start: Instant,
        dur: Duration,
        id: Option<&str>,
    ) {
        if !self.enabled() {
            return;
        }
        let ts_ns = start
            .checked_duration_since(self.t0)
            .unwrap_or_default()
            .as_nanos() as u64;
        let cap = self.cap.load(Ordering::Relaxed).max(1);
        let mut events = self.events.lock().unwrap_or_else(|p| p.into_inner());
        while events.len() >= cap {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(Event {
            name,
            cat,
            tid: thread_id(),
            ts_ns,
            dur_ns: dur.as_nanos() as u64,
            id: id.map(Box::from),
        });
    }

    /// Labels the calling thread in the trace output.
    pub fn name_thread(&self, name: &str) {
        let tid = thread_id();
        let mut names = self.thread_names.lock().unwrap_or_else(|p| p.into_inner());
        names.retain(|(t, _)| *t != tid);
        names.push((tid, name.to_string()));
    }

    /// Number of buffered events (tests).
    pub fn pending(&self) -> usize {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Serializes and clears the buffer as Chrome trace-event JSON:
    /// one `"X"` (complete) event per span, `ts`/`dur` in microseconds,
    /// plus `"M"` metadata events naming threads. The output loads
    /// directly in Perfetto / `chrome://tracing`.
    pub fn drain_json(&self) -> String {
        let events = std::mem::take(&mut *self.events.lock().unwrap_or_else(|p| p.into_inner()));
        let names = self
            .thread_names
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        let mut out = String::with_capacity(events.len() * 96 + 256);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for (tid, name) in &names {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
            out.push_str(&tid.to_string());
            out.push_str(",\"args\":{\"name\":\"");
            escape_into(&mut out, name);
            out.push_str("\"}}");
        }
        for e in &events {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":\"");
            escape_into(&mut out, e.name);
            out.push_str("\",\"cat\":\"");
            escape_into(&mut out, e.cat);
            out.push_str("\",\"ph\":\"X\",\"pid\":1,\"tid\":");
            out.push_str(&e.tid.to_string());
            out.push_str(",\"ts\":");
            push_us(&mut out, e.ts_ns);
            out.push_str(",\"dur\":");
            push_us(&mut out, e.dur_ns);
            if let Some(id) = &e.id {
                out.push_str(",\"args\":{\"id\":\"");
                escape_into(&mut out, id);
                out.push_str("\"}");
            }
            out.push('}');
        }
        out.push_str("],\"displayTimeUnit\":\"ns\",\"otherData\":{\"dropped_events\":\"");
        out.push_str(&self.dropped_total().to_string());
        out.push_str("\"}}");
        out
    }
}

/// Nanoseconds as fractional microseconds (`123.456`).
fn push_us(out: &mut String, ns: u64) {
    out.push_str(&(ns / 1_000).to_string());
    out.push('.');
    let frac = ns % 1_000;
    out.push_str(&format!("{frac:03}"));
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// RAII span guard returned by [`Tracer::span`].
pub struct Span {
    live: Option<(&'static Tracer, Instant, &'static str, &'static str)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((tracer, start, cat, name)) = self.live.take() {
            tracer.record(cat, name, start, start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer is process-global; keep its tests serial.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_hooks_record_nothing() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let t = tracer();
        t.set_enabled(false);
        let before = t.pending();
        {
            let _s = t.span("test", "noop");
        }
        t.record("test", "noop", Instant::now(), Duration::from_micros(1));
        assert_eq!(t.pending(), before);
    }

    #[test]
    fn spans_drain_as_chrome_json_with_request_id_args() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let t = tracer();
        t.drain_json(); // reset any residue
        t.set_enabled(true);
        t.name_thread("tester");
        {
            let _s = t.span("cat", "work");
            std::thread::sleep(Duration::from_millis(1));
        }
        t.record_with_id(
            "net",
            "inflight",
            Instant::now(),
            Duration::from_micros(5),
            Some("req-00000000000000aa"),
        );
        t.set_enabled(false);
        let json = t.drain_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"work\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"thread_name\""));
        assert!(
            json.contains("\"args\":{\"id\":\"req-00000000000000aa\"}"),
            "request id must land in span args: {json}"
        );
        assert_eq!(t.pending(), 0, "drain must clear the buffer");
    }

    #[test]
    fn ring_caps_drop_oldest_and_count_cumulatively() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let t = tracer();
        t.drain_json();
        let dropped_before = t.dropped_total();
        t.set_cap(4);
        t.set_enabled(true);
        const NAMES: [&str; 6] = ["e0", "e1", "e2", "e3", "e4", "e5"];
        for name in NAMES {
            t.record("test", name, Instant::now(), Duration::from_micros(1));
        }
        t.set_enabled(false);
        assert_eq!(t.pending(), 4, "ring holds exactly the cap");
        assert_eq!(
            t.dropped_total() - dropped_before,
            2,
            "two oldest evicted and counted"
        );
        let json = t.drain_json();
        assert!(
            !json.contains("\"e0\"") && !json.contains("\"e1\""),
            "oldest gone: {json}"
        );
        assert!(json.contains("\"e5\""), "newest kept: {json}");
        assert_eq!(
            t.dropped_total(),
            dropped_before + 2,
            "drain must not reset the cumulative drop count"
        );
        t.set_cap(DEFAULT_EVENT_CAP);
    }
}
