//! A lightweight span/tracing facade drainable into Chrome trace-event
//! JSON (loadable in `chrome://tracing` and Perfetto).
//!
//! The tracer is process-global and off by default. Disabled, every hook
//! is one relaxed atomic load — no clock read, no lock, no allocation —
//! so instrumentation can stay in the hot paths permanently (the bench
//! regression gate runs with tracing disabled and must not move). Enabled,
//! spans buffer into a bounded in-memory vector; [`Tracer::drain_json`]
//! serializes and clears it. Event names are `&'static str` so recording
//! allocates nothing until the buffer itself grows.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Hard cap on buffered events; past it events are counted but dropped.
const EVENT_CAP: usize = 1 << 20;

struct Event {
    name: &'static str,
    cat: &'static str,
    tid: u64,
    ts_ns: u64,
    dur_ns: u64,
}

/// The global trace collector. See the module docs.
pub struct Tracer {
    enabled: AtomicBool,
    t0: Instant,
    events: Mutex<Vec<Event>>,
    thread_names: Mutex<Vec<(u64, String)>>,
    dropped: AtomicU64,
}

/// The process tracer (created on first use, disabled until
/// [`Tracer::set_enabled`]).
pub fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(|| Tracer {
        enabled: AtomicBool::new(false),
        t0: Instant::now(),
        events: Mutex::new(Vec::new()),
        thread_names: Mutex::new(Vec::new()),
        dropped: AtomicU64::new(0),
    })
}

fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

impl Tracer {
    /// Whether spans are being collected. One relaxed load — this is the
    /// entire cost of every hook while tracing is off.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns collection on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Opens a span; its duration records when the guard drops. Returns an
    /// inert guard when disabled.
    pub fn span(&'static self, cat: &'static str, name: &'static str) -> Span {
        Span {
            live: self.enabled().then(|| (self, Instant::now(), cat, name)),
        }
    }

    /// Records a completed interval with an explicit start, for code that
    /// measured the interval itself (queue waits, stage timers). No-op
    /// when disabled.
    pub fn record(&self, cat: &'static str, name: &'static str, start: Instant, dur: Duration) {
        if !self.enabled() {
            return;
        }
        let ts_ns = start
            .checked_duration_since(self.t0)
            .unwrap_or_default()
            .as_nanos() as u64;
        let mut events = self.events.lock().unwrap_or_else(|p| p.into_inner());
        if events.len() >= EVENT_CAP {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        events.push(Event {
            name,
            cat,
            tid: thread_id(),
            ts_ns,
            dur_ns: dur.as_nanos() as u64,
        });
    }

    /// Labels the calling thread in the trace output.
    pub fn name_thread(&self, name: &str) {
        let tid = thread_id();
        let mut names = self.thread_names.lock().unwrap_or_else(|p| p.into_inner());
        names.retain(|(t, _)| *t != tid);
        names.push((tid, name.to_string()));
    }

    /// Number of buffered events (tests).
    pub fn pending(&self) -> usize {
        self.events.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Serializes and clears the buffer as Chrome trace-event JSON:
    /// one `"X"` (complete) event per span, `ts`/`dur` in microseconds,
    /// plus `"M"` metadata events naming threads. The output loads
    /// directly in Perfetto / `chrome://tracing`.
    pub fn drain_json(&self) -> String {
        let events = std::mem::take(&mut *self.events.lock().unwrap_or_else(|p| p.into_inner()));
        let names = self
            .thread_names
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        let mut out = String::with_capacity(events.len() * 96 + 256);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        for (tid, name) in &names {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
            out.push_str(&tid.to_string());
            out.push_str(",\"args\":{\"name\":\"");
            escape_into(&mut out, name);
            out.push_str("\"}}");
        }
        for e in &events {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"name\":\"");
            escape_into(&mut out, e.name);
            out.push_str("\",\"cat\":\"");
            escape_into(&mut out, e.cat);
            out.push_str("\",\"ph\":\"X\",\"pid\":1,\"tid\":");
            out.push_str(&e.tid.to_string());
            out.push_str(",\"ts\":");
            push_us(&mut out, e.ts_ns);
            out.push_str(",\"dur\":");
            push_us(&mut out, e.dur_ns);
            out.push('}');
        }
        let dropped = self.dropped.swap(0, Ordering::Relaxed);
        out.push_str("],\"displayTimeUnit\":\"ns\",\"otherData\":{\"dropped_events\":\"");
        out.push_str(&dropped.to_string());
        out.push_str("\"}}");
        out
    }
}

/// Nanoseconds as fractional microseconds (`123.456`).
fn push_us(out: &mut String, ns: u64) {
    out.push_str(&(ns / 1_000).to_string());
    out.push('.');
    let frac = ns % 1_000;
    out.push_str(&format!("{frac:03}"));
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// RAII span guard returned by [`Tracer::span`].
pub struct Span {
    live: Option<(&'static Tracer, Instant, &'static str, &'static str)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((tracer, start, cat, name)) = self.live.take() {
            tracer.record(cat, name, start, start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tracer is process-global; keep its tests serial.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_hooks_record_nothing() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let t = tracer();
        t.set_enabled(false);
        let before = t.pending();
        {
            let _s = t.span("test", "noop");
        }
        t.record("test", "noop", Instant::now(), Duration::from_micros(1));
        assert_eq!(t.pending(), before);
    }

    #[test]
    fn spans_drain_as_chrome_json() {
        let _g = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        let t = tracer();
        t.drain_json(); // reset any residue
        t.set_enabled(true);
        t.name_thread("tester");
        {
            let _s = t.span("cat", "work");
            std::thread::sleep(Duration::from_millis(1));
        }
        t.set_enabled(false);
        let json = t.drain_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"work\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"thread_name\""));
        assert_eq!(t.pending(), 0, "drain must clear the buffer");
    }
}
