//! Lock-free metric primitives: [`Counter`], [`Gauge`], and a fixed-size
//! log-bucketed latency [`Histogram`].
//!
//! All three are plain atomics: the record path is wait-free, allocates
//! nothing, and never takes a lock, so the workspace's counting-allocator
//! discipline (steady-state request paths allocate zero bytes) extends to
//! instrumented code unchanged. Readers observe each scalar atomically but
//! not the set of scalars as a snapshot — a scrape racing a `record` may
//! see the bucket increment before the sum, which the Prometheus data
//! model tolerates (every individual series is still monotone).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sub-bucket resolution: 2^3 = 8 log-linear sub-buckets per octave.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Octaves above the exact linear region `[0, 8)`.
const OCTAVES: usize = 39;
/// Total bucket count. The last bucket's upper bound is 2^42 ns
/// (≈ 73 minutes); larger values clamp into it.
pub const BUCKETS: usize = SUB + OCTAVES * SUB;

/// A monotone event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (queue depths, flags, limits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Maps a nanosecond value to its bucket index.
///
/// Values below 8 get one bucket each (exact). From 8 up, each power-of-two
/// octave `[2^e, 2^(e+1))` splits into 8 equal sub-buckets, HdrHistogram
/// style: the bucket of `v` is derived from its exponent and the 3 bits
/// below the leading one — two shifts and a mask, no loops, no floats.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let e = 63 - v.leading_zeros() as usize;
    let group = e - SUB_BITS as usize + 1;
    let sub = ((v >> (e - SUB_BITS as usize)) & (SUB as u64 - 1)) as usize;
    ((group << SUB_BITS) + sub).min(BUCKETS - 1)
}

/// Half-open value range `[lo, hi)` covered by bucket `idx`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    assert!(idx < BUCKETS, "bucket index out of range");
    if idx < SUB {
        return (idx as u64, idx as u64 + 1);
    }
    let group = idx >> SUB_BITS;
    let sub = (idx & (SUB - 1)) as u64;
    let lo = (SUB as u64 + sub) << (group - 1);
    (lo, lo + (1u64 << (group - 1)))
}

/// A fixed-size log-bucketed latency histogram over `u64` nanoseconds.
///
/// # Quantile error bound
///
/// Buckets are exact (width 1 ns) below 8 ns and log-linear above: every
/// bucket `[lo, hi)` with `lo ≥ 8` has width `hi - lo = lo / (8 + s) ≤
/// lo / 8`. [`Histogram::quantile`] returns the midpoint of the bucket
/// containing the requested order statistic, so its estimate differs from
/// the exact sorted-oracle value `t` by at most half a bucket width:
/// **relative error ≤ 1/16 = 6.25%** for any `t` in `[8 ns, 2^42 ns)`,
/// and at most ±0.5 ns below 8 ns. Values ≥ 2^42 ns (≈ 73 minutes) clamp
/// into the last bucket and carry no bound. `tests/histogram_props.rs`
/// pins this bound against an exact sorted oracle.
///
/// # Concurrency
///
/// `record` is three relaxed `fetch_add`s — wait-free, zero allocation.
/// Histograms merge by element-wise addition, which is exactly associative
/// and commutative, so per-thread histograms can be folded in any order.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram. The bucket array lives inline (~2.6 KiB).
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value (nanoseconds). Wait-free, allocation-free.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration at nanosecond resolution.
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Folds `other`'s contents into `self` (element-wise atomic adds).
    pub fn merge_from(&self, other: &Histogram) {
        for (dst, src) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = src.load(Ordering::Relaxed);
            if n > 0 {
                dst.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket array.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Estimated `q`-quantile (`0 < q ≤ 1`) in nanoseconds; 0.0 when
    /// empty. See the type docs for the error bound.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }

    /// Starts a scope timer: the guard records the elapsed wall time into
    /// this histogram when dropped — including on early return and unwind,
    /// which is what makes it safer than a manual `record_duration` at the
    /// end of a fallible function.
    pub fn start_timer(self: &Arc<Self>) -> HistogramTimer {
        HistogramTimer {
            hist: self.clone(),
            t0: std::time::Instant::now(),
        }
    }
}

/// A drop guard from [`Histogram::start_timer`]: records the time between
/// construction and drop.
#[derive(Debug)]
pub struct HistogramTimer {
    hist: Arc<Histogram>,
    t0: std::time::Instant,
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        self.hist.record_duration(self.t0.elapsed());
    }
}

/// An owned, non-atomic histogram snapshot — what [`Histogram::snapshot`]
/// returns and what quantile math runs on.
#[derive(Clone)]
pub struct HistogramSnapshot {
    buckets: [u64; BUCKETS],
    sum: u64,
}

impl HistogramSnapshot {
    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of recorded values in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Estimated `q`-quantile (`0 < q ≤ 1`) in nanoseconds: the midpoint
    /// of the bucket holding the `⌈q·n⌉`-th smallest recorded value.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(idx);
                return (lo + hi) as f64 / 2.0;
            }
        }
        let (lo, hi) = bucket_bounds(BUCKETS - 1);
        (lo + hi) as f64 / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v + 1));
        }
    }

    #[test]
    fn bounds_are_contiguous_and_monotone() {
        let mut expect_lo = 0u64;
        for idx in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expect_lo, "gap or overlap at bucket {idx}");
            assert!(hi > lo);
            expect_lo = hi;
        }
        assert_eq!(expect_lo, 1 << 42, "ladder must top out at 2^42 ns");
    }

    #[test]
    fn index_and_bounds_agree() {
        for &v in &[
            0,
            1,
            7,
            8,
            9,
            15,
            16,
            17,
            100,
            1_000,
            123_456_789,
            (1 << 42) - 1,
        ] {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(
                lo <= v && v < hi,
                "v={v} not in [{lo},{hi}) of bucket {idx}"
            );
        }
        // Oversized values clamp into the last bucket.
        assert_eq!(bucket_index(1 << 42), BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn record_merge_quantile_roundtrip() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [5u64, 100, 100, 2_000, 50_000] {
            a.record(v);
        }
        b.record_duration(Duration::from_micros(3));
        b.merge_from(&a);
        assert_eq!(b.count(), 6);
        assert_eq!(b.sum_ns(), 5 + 100 + 100 + 2_000 + 50_000 + 3_000);
        // The median of {5, 100, 100, 2000, 3000, 50000} straddles 100's
        // bucket; the estimate must stay within the documented 6.25%.
        let est = b.quantile(0.5);
        assert!((est - 100.0).abs() / 100.0 <= 0.0625, "median est {est}");
        assert_eq!(Histogram::new().quantile(0.99), 0.0);
    }
}
