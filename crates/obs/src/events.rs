//! Bounded structured event log for request-scoped diagnostics.
//!
//! A fixed-capacity ring of [`EventRecord`]s — one per completed request
//! (or any other discrete occurrence a caller wants tied to a request id).
//! Oldest records are evicted first and counted in [`EventLog::dropped`],
//! so the log is always a recent-history tail: `GET /debug/events` renders
//! it, and the dropped counter is exported so a scrape can tell how much
//! history the window actually covers.
//!
//! Unlike the metrics registry this is per-instance state (each
//! `AppState` owns one), so at-rest servers stay byte-identical across
//! backends: an empty log renders as an empty tail on both.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// One structured record: what happened, for which request, with what
/// outcome. Field order in [`EventLog::render_tail`] is stable — scripts
/// may parse it.
#[derive(Clone, Debug)]
pub struct EventRecord {
    /// Wall-clock milliseconds since the Unix epoch at record time.
    pub ts_unix_ms: u64,
    /// Event category, e.g. `"http"`.
    pub kind: &'static str,
    /// Request id (`X-Request-Id`, supplied or generated).
    pub id: String,
    /// HTTP status (or 0 for non-HTTP events).
    pub status: u16,
    /// Duration of the work the event describes, in microseconds.
    pub dur_us: u64,
    /// Free-form detail, e.g. `"GET /metrics"`.
    pub detail: String,
}

/// Drop-oldest bounded event ring. All methods take one short mutex; the
/// record path allocates (two `String`s) — this is for request-rate
/// events, not signal handlers.
pub struct EventLog {
    ring: Mutex<VecDeque<EventRecord>>,
    cap: usize,
    dropped: AtomicU64,
}

impl EventLog {
    /// A log keeping at most `cap` records (minimum 1).
    pub fn with_cap(cap: usize) -> EventLog {
        EventLog {
            ring: Mutex::new(VecDeque::new()),
            cap: cap.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append a record, evicting the oldest when full.
    pub fn record(&self, kind: &'static str, id: &str, detail: &str, status: u16, dur: Duration) {
        let ts_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let record = EventRecord {
            ts_unix_ms,
            kind,
            id: id.to_string(),
            status,
            dur_us: dur.as_micros() as u64,
            detail: detail.to_string(),
        };
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        while ring.len() >= self.cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
    }

    /// Records evicted since construction (cumulative, never resets).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// True when no records are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The most recent `n` records, oldest of those first.
    pub fn tail(&self, n: usize) -> Vec<EventRecord> {
        let ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        let skip = ring.len().saturating_sub(n);
        ring.iter().skip(skip).cloned().collect()
    }

    /// Render the tail as one `key=value` line per record:
    ///
    /// ```text
    /// ts_ms=1719690000123 kind=http id=req-0000000000000000 status=200 dur_us=84 detail="GET /healthz"
    /// ```
    pub fn render_tail(&self, n: usize) -> String {
        let mut out = String::new();
        for r in self.tail(n) {
            let detail = r.detail.replace('"', "'");
            out.push_str(&format!(
                "ts_ms={} kind={} id={} status={} dur_us={} detail=\"{}\"\n",
                r.ts_unix_ms, r.kind, r.id, r.status, r.dur_us, detail
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_counts_cumulatively() {
        let log = EventLog::with_cap(3);
        for i in 0..5u16 {
            log.record(
                "http",
                &format!("req-{i}"),
                "GET /x",
                200 + i,
                Duration::from_micros(7),
            );
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 2);
        let tail = log.tail(10);
        assert_eq!(
            tail.iter().map(|r| r.id.as_str()).collect::<Vec<_>>(),
            ["req-2", "req-3", "req-4"],
            "oldest evicted first"
        );
        // Draining via tail() does not reset anything: dropped is
        // cumulative and the ring keeps its records.
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn render_tail_is_stable_key_value_lines() {
        let log = EventLog::with_cap(16);
        log.record(
            "http",
            "req-abc",
            "GET /metrics",
            200,
            Duration::from_micros(123),
        );
        log.record(
            "http",
            "req-def",
            "POST /\"quoted\"",
            503,
            Duration::from_micros(4),
        );
        let text = log.render_tail(1);
        assert_eq!(text.lines().count(), 1, "tail(1) keeps only the newest");
        let line = text.lines().next().unwrap();
        assert!(line.contains("kind=http"));
        assert!(line.contains("id=req-def"));
        assert!(line.contains("status=503"));
        assert!(line.contains("dur_us=4"));
        assert!(
            line.contains("detail=\"POST /'quoted'\""),
            "quotes sanitized: {line}"
        );
        assert!(line.starts_with("ts_ms="));
        let empty = EventLog::with_cap(4);
        assert_eq!(empty.render_tail(100), "");
        assert!(empty.is_empty());
    }
}
