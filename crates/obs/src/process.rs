//! Process self-metrics from `/proc/self`, std-only.
//!
//! Exposes the three standard Prometheus process families —
//! `process_resident_memory_bytes`, `process_cpu_seconds_total`,
//! `process_open_fds` — as render-time callbacks on a registry, read
//! fresh from `/proc/self/{statm,stat,fd}` at every scrape. Page size and
//! clock-tick rate come from `/proc/self/auxv` (`AT_PAGESZ`, `AT_CLKTCK`)
//! with the conventional Linux fallbacks when the auxv is unreadable.
//!
//! These values are wall-clock-dependent, so the serve tier's at-rest
//! byte-identity oracle strips `process_`-prefixed lines before comparing
//! scrapes (see `crates/serve/tests/metrics.rs`).

use crate::registry::Registry;

const AT_PAGESZ: u64 = 6;
const AT_CLKTCK: u64 = 17;

fn auxv_val(key: u64) -> Option<u64> {
    let raw = std::fs::read("/proc/self/auxv").ok()?;
    raw.chunks_exact(16).find_map(|pair| {
        let k = u64::from_ne_bytes(pair[..8].try_into().ok()?);
        (k == key).then(|| u64::from_ne_bytes(pair[8..].try_into().unwrap()))
    })
}

fn page_size() -> u64 {
    auxv_val(AT_PAGESZ).filter(|&v| v > 0).unwrap_or(4096)
}

fn clk_tck() -> u64 {
    auxv_val(AT_CLKTCK).filter(|&v| v > 0).unwrap_or(100)
}

/// Resident set size in bytes (`/proc/self/statm` field 2 × page size).
pub fn resident_memory_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/statm")
        .ok()
        .and_then(|s| s.split_whitespace().nth(1)?.parse::<u64>().ok())
        .map_or(0, |pages| pages * page_size())
}

/// Total user + system CPU time in whole seconds (`/proc/self/stat`
/// fields 14 + 15 ÷ `AT_CLKTCK`). Whole seconds because counter
/// callbacks are integral; sub-second resolution is the histogram
/// layer's job, not this gauge's.
pub fn cpu_seconds_total() -> u64 {
    let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else {
        return 0;
    };
    // The comm field (2) is parenthesized and may itself contain spaces
    // or parens; everything after the *last* ')' is safely
    // space-delimited, starting with field 3 (state).
    let Some(after_comm) = stat.rsplit_once(')').map(|(_, tail)| tail) else {
        return 0;
    };
    let mut fields = after_comm.split_whitespace();
    let utime: u64 = fields.nth(11).and_then(|f| f.parse().ok()).unwrap_or(0);
    let stime: u64 = fields.next().and_then(|f| f.parse().ok()).unwrap_or(0);
    (utime + stime) / clk_tck()
}

/// Number of open file descriptors (`/proc/self/fd` entry count, which
/// includes the descriptor used to read the directory itself).
pub fn open_fds() -> u64 {
    std::fs::read_dir("/proc/self/fd").map_or(0, |dir| dir.count() as u64)
}

/// Register the three process families on `registry` as render-time
/// callbacks. Idempotent: re-registration replaces the previous callback.
pub fn register(registry: &Registry) {
    registry.gauge_fn(
        "process_resident_memory_bytes",
        &[],
        "Resident set size in bytes, from /proc/self/statm.",
        || resident_memory_bytes() as i64,
    );
    registry.counter_fn(
        "process_cpu_seconds_total",
        &[],
        "Total user and system CPU time in whole seconds, from /proc/self/stat.",
        cpu_seconds_total,
    );
    registry.gauge_fn(
        "process_open_fds",
        &[],
        "Open file descriptors, from /proc/self/fd.",
        || open_fds() as i64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_readers_return_live_plausible_values() {
        // A running test binary has resident pages, some CPU time
        // (possibly < 1 s, so just non-negative via the type), and at
        // least stdin/stdout/stderr open.
        assert!(resident_memory_bytes() > 0);
        let _ = cpu_seconds_total();
        assert!(open_fds() >= 3);
        assert!(page_size() >= 512);
        assert!(clk_tck() > 0);
    }

    #[test]
    fn register_renders_all_three_families_and_is_idempotent() {
        let registry = Registry::new();
        register(&registry);
        register(&registry); // last-wins, no duplicate families
        let text = crate::render(&[&registry]);
        crate::lint(&text).unwrap();
        for family in [
            "process_resident_memory_bytes",
            "process_cpu_seconds_total",
            "process_open_fds",
        ] {
            assert_eq!(
                text.matches(&format!("# TYPE {family} ")).count(),
                1,
                "{family} must render exactly once:\n{text}"
            );
        }
    }
}
