//! atpm-obs: in-process observability for the adaptive-TPM stack.
//!
//! Std-only, zero crates.io dependencies, like the rest of the workspace.
//! Three pieces:
//!
//! * [`metrics`] — lock-free [`Counter`] / [`Gauge`] and a fixed-size
//!   log-bucketed latency [`Histogram`] (wait-free, allocation-free record
//!   path; ≤ 6.25% relative quantile error, documented on the type);
//! * [`registry`] — named/labeled registration with `Arc` handles, a
//!   process-global registry for library crates, and render-time callback
//!   metrics for state owned elsewhere;
//! * [`expo`] — deterministic Prometheus text exposition plus a parser and
//!   lint for scraping it back;
//! * [`trace`] — a runtime-gated span facade drained as Chrome trace-event
//!   JSON (Perfetto-loadable), one relaxed load per hook when disabled;
//! * [`profile`] — the sampling CPU profiler's storage/symbolization half:
//!   an async-signal-safe sample buffer, offline ELF symbolizer, and
//!   folded-stack (flamegraph) renderer. The SIGPROF/timer plumbing lives
//!   in `atpm-net::sys`, which owns the raw syscall layer;
//! * [`events`] — a bounded drop-oldest [`EventLog`] of per-request
//!   records behind `GET /debug/events`;
//! * [`process`] — `process_*` self-metrics from `/proc/self`.
//!
//! The serving tier renders its per-instance [`Registry`] merged with
//! [`global()`] at `GET /metrics`; atpm-loadgen scrapes that endpoint and
//! folds server-side histograms into `BENCH_serve.json`.

pub mod events;
pub mod expo;
pub mod metrics;
pub mod process;
pub mod profile;
pub mod registry;
pub mod trace;

pub use events::{EventLog, EventRecord};
pub use expo::{lint, render, Sample, Scrape, CONTENT_TYPE};
pub use metrics::{
    bucket_bounds, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, HistogramTimer,
    BUCKETS,
};
pub use registry::{global, Entry, Metric, Registry};
pub use trace::{tracer, Span, Tracer};

/// Register this crate's own runtime families on [`global()`]: the
/// `process_*` self-metrics plus the tracer's and profiler's cumulative
/// drop counters. Idempotent (callback registration is last-wins); the
/// serve tier calls it once per `ServeMetrics`.
pub fn register_runtime_metrics() {
    let g = global();
    process::register(g);
    g.counter_fn(
        "atpm_obs_trace_dropped_total",
        &[],
        "Span events evicted from the capped trace ring.",
        || tracer().dropped_total(),
    );
    g.counter_fn(
        "atpm_obs_profile_dropped_total",
        &[],
        "CPU profile samples lost to sample-buffer exhaustion.",
        profile::dropped,
    );
}
