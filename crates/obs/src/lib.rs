//! atpm-obs: in-process observability for the adaptive-TPM stack.
//!
//! Std-only, zero crates.io dependencies, like the rest of the workspace.
//! Three pieces:
//!
//! * [`metrics`] — lock-free [`Counter`] / [`Gauge`] and a fixed-size
//!   log-bucketed latency [`Histogram`] (wait-free, allocation-free record
//!   path; ≤ 6.25% relative quantile error, documented on the type);
//! * [`registry`] — named/labeled registration with `Arc` handles, a
//!   process-global registry for library crates, and render-time callback
//!   metrics for state owned elsewhere;
//! * [`expo`] — deterministic Prometheus text exposition plus a parser and
//!   lint for scraping it back;
//! * [`trace`] — a runtime-gated span facade drained as Chrome trace-event
//!   JSON (Perfetto-loadable), one relaxed load per hook when disabled.
//!
//! The serving tier renders its per-instance [`Registry`] merged with
//! [`global()`] at `GET /metrics`; atpm-loadgen scrapes that endpoint and
//! folds server-side histograms into `BENCH_serve.json`.

pub mod expo;
pub mod metrics;
pub mod registry;
pub mod trace;

pub use expo::{lint, render, Sample, Scrape, CONTENT_TYPE};
pub use metrics::{
    bucket_bounds, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS,
};
pub use registry::{global, Entry, Metric, Registry};
pub use trace::{tracer, Span, Tracer};
