//! Prometheus text exposition (version 0.0.4): deterministic rendering of
//! one or more [`Registry`] instances, and a parser for the same format so
//! scrapers (atpm-loadgen, the `/metrics` tests) can read it back without
//! an external client library.
//!
//! Rendering is deterministic by construction: entries sort by
//! `(name, labels)`, `# HELP` / `# TYPE` appear exactly once per family,
//! histogram bucket lines appear only for buckets that hold data (plus the
//! mandatory `+Inf`), and all numbers format through `Display` (fixed
//! notation, shortest round-trip). Two registries holding equal values
//! therefore render byte-identical bodies — the property the
//! pool-vs-epoll `/metrics` differential test pins.

use std::fmt::Write as _;
use std::sync::Arc;

use crate::metrics::{bucket_bounds, Histogram};
use crate::registry::{Entry, Metric, Registry};

/// Content-Type for the rendered exposition.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Renders `registries` merged into one exposition body. Families with the
/// same name across registries merge into one `HELP`/`TYPE` block.
pub fn render(registries: &[&Registry]) -> String {
    let mut entries: Vec<Arc<Entry>> = Vec::new();
    for reg in registries {
        entries.extend(reg.entries());
    }
    entries.sort_by(|a, b| (a.name, &a.labels).cmp(&(b.name, &b.labels)));

    let mut out = String::new();
    let mut prev_family: Option<&str> = None;
    for entry in &entries {
        if prev_family != Some(entry.name) {
            let _ = writeln!(out, "# HELP {} {}", entry.name, entry.help);
            let _ = writeln!(out, "# TYPE {} {}", entry.name, entry.metric.type_name());
            prev_family = Some(entry.name);
        }
        match &entry.metric {
            Metric::Counter(c) => {
                sample_line(
                    &mut out,
                    entry.name,
                    &entry.labels,
                    &[],
                    &c.get().to_string(),
                );
            }
            Metric::CounterFn(f) => {
                sample_line(&mut out, entry.name, &entry.labels, &[], &f().to_string());
            }
            Metric::Gauge(g) => {
                sample_line(
                    &mut out,
                    entry.name,
                    &entry.labels,
                    &[],
                    &g.get().to_string(),
                );
            }
            Metric::GaugeFn(f) => {
                sample_line(&mut out, entry.name, &entry.labels, &[], &f().to_string());
            }
            Metric::Histogram(h) => render_histogram(&mut out, entry, h),
        }
    }
    out
}

fn render_histogram(out: &mut String, entry: &Entry, h: &Histogram) {
    let snap = h.snapshot();
    let total = snap.count();
    let mut cumulative = 0u64;
    let bucket_name = format!("{}_bucket", entry.name);
    for (idx, &c) in snap.buckets().iter().enumerate() {
        if c == 0 {
            continue;
        }
        cumulative += c;
        let (_, hi) = bucket_bounds(idx);
        let le = (hi as f64 / 1e9).to_string();
        sample_line(
            out,
            &bucket_name,
            &entry.labels,
            &[("le", &le)],
            &cumulative.to_string(),
        );
    }
    sample_line(
        out,
        &bucket_name,
        &entry.labels,
        &[("le", "+Inf")],
        &total.to_string(),
    );
    let sum = (snap.sum_ns() as f64 / 1e9).to_string();
    sample_line(
        out,
        &format!("{}_sum", entry.name),
        &entry.labels,
        &[],
        &sum,
    );
    sample_line(
        out,
        &format!("{}_count", entry.name),
        &entry.labels,
        &[],
        &total.to_string(),
    );
}

fn sample_line(
    out: &mut String,
    name: &str,
    labels: &[(&'static str, String)],
    extra: &[(&str, &str)],
    value: &str,
) {
    out.push_str(name);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels
            .iter()
            .map(|(k, v)| (*k, v.as_str()))
            .chain(extra.iter().copied())
        {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            for ch in v.chars() {
                match ch {
                    '\\' => out.push_str("\\\\"),
                    '"' => out.push_str("\\\""),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Series name (`family`, `family_bucket`, `family_sum`, ...).
    pub name: String,
    /// Label pairs in source order, including `le` on bucket lines.
    pub labels: Vec<(String, String)>,
    /// Sample value (`+Inf` parses as `f64::INFINITY`).
    pub value: f64,
}

/// A parsed exposition body.
#[derive(Debug, Default)]
pub struct Scrape {
    /// All sample lines in source order.
    pub samples: Vec<Sample>,
    /// `(family, text)` for each `# HELP` line, in source order.
    pub helps: Vec<(String, String)>,
    /// `(family, type)` for each `# TYPE` line, in source order.
    pub types: Vec<(String, String)>,
}

impl Scrape {
    /// Parses an exposition body. Returns `Err` with the offending line on
    /// anything malformed.
    pub fn parse(text: &str) -> Result<Scrape, String> {
        let mut scrape = Scrape::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let (name, help) = rest.split_once(' ').unwrap_or((rest, ""));
                scrape.helps.push((name.to_string(), help.to_string()));
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let (name, ty) = rest
                    .split_once(' ')
                    .ok_or_else(|| format!("bad TYPE line: {line}"))?;
                scrape.types.push((name.to_string(), ty.to_string()));
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            scrape.samples.push(parse_sample(line)?);
        }
        Ok(scrape)
    }

    /// Value of the series `(name, labels)` with exact label match.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && s.labels
                        .iter()
                        .zip(labels.iter())
                        .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
            })
            .map(|s| s.value)
    }

    /// Estimated `q`-quantile in **seconds** of the scraped histogram
    /// `name` with label set `labels` (excluding `le`), reconstructed from
    /// its cumulative bucket lines. The estimate is the upper bound of the
    /// bucket holding the requested rank, so it is conservative: at most
    /// one bucket width (≤ 12.5% relative) above the true value. Returns
    /// `None` when the histogram is absent or empty, and `None` when all
    /// mass sits in the `+Inf` bucket (no finite upper bound exists —
    /// reporting 0.0 there would under-state an over-range latency).
    /// `q` outside `[0, 1]` clamps to the extreme ranks.
    pub fn histogram_quantile(&self, name: &str, labels: &[(&str, &str)], q: f64) -> Option<f64> {
        let bucket_name = format!("{name}_bucket");
        let mut buckets: Vec<(f64, f64)> = Vec::new();
        for s in &self.samples {
            if s.name != bucket_name {
                continue;
            }
            let mut le = None;
            let mut rest: Vec<(&str, &str)> = Vec::new();
            for (k, v) in &s.labels {
                if k == "le" {
                    le = Some(v.as_str());
                } else {
                    rest.push((k.as_str(), v.as_str()));
                }
            }
            let matches = rest.len() == labels.len()
                && rest
                    .iter()
                    .zip(labels.iter())
                    .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv);
            if !matches {
                continue;
            }
            let le = match le? {
                "+Inf" => f64::INFINITY,
                v => v.parse().ok()?,
            };
            buckets.push((le, s.value));
        }
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let total = buckets.last().map(|&(_, c)| c)?;
        if total <= 0.0 {
            return None;
        }
        let rank = (q * total).ceil().clamp(1.0, total);
        let mut best_finite = None;
        for &(le, cum) in &buckets {
            if le.is_finite() {
                best_finite = Some(le);
            }
            if cum >= rank {
                // Rank falls in +Inf: fall back to the largest finite
                // bound, or admit there is none.
                return if le.is_finite() {
                    Some(le)
                } else {
                    best_finite
                };
            }
        }
        best_finite
    }
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let bad = || format!("bad sample line: {line}");
    let (series, value) = line.rsplit_once(' ').ok_or_else(bad)?;
    let value = match value {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        v => v.parse().map_err(|_| bad())?,
    };
    let (name, labels) = match series.split_once('{') {
        None => (series.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').ok_or_else(bad)?;
            let mut labels = Vec::new();
            let mut chars = body.chars().peekable();
            while chars.peek().is_some() {
                let mut key = String::new();
                for c in chars.by_ref() {
                    if c == '=' {
                        break;
                    }
                    key.push(c);
                }
                if chars.next() != Some('"') {
                    return Err(bad());
                }
                let mut val = String::new();
                loop {
                    match chars.next().ok_or_else(bad)? {
                        '"' => break,
                        '\\' => match chars.next().ok_or_else(bad)? {
                            'n' => val.push('\n'),
                            c => val.push(c),
                        },
                        c => val.push(c),
                    }
                }
                if let Some(&',') = chars.peek() {
                    chars.next();
                }
                labels.push((key, val));
            }
            (name.to_string(), labels)
        }
    };
    Ok(Sample {
        name,
        labels,
        value,
    })
}

/// Exposition-format lint used by tests and the smoke harness: every
/// family has at most one `HELP` and one `TYPE` line, every `TYPE` names a
/// known type, and no sample line repeats an exact series. Returns the
/// first violation.
pub fn lint(text: &str) -> Result<(), String> {
    let scrape = Scrape::parse(text)?;
    for meta in [&scrape.helps, &scrape.types] {
        let mut seen = std::collections::HashSet::new();
        for (name, _) in meta {
            if !seen.insert(name.clone()) {
                return Err(format!("duplicate HELP/TYPE for family {name}"));
            }
        }
    }
    for (_, ty) in &scrape.types {
        if !matches!(ty.as_str(), "counter" | "gauge" | "histogram") {
            return Err(format!("unknown TYPE {ty}"));
        }
    }
    let mut seen = std::collections::HashSet::new();
    for s in &scrape.samples {
        let key = format!("{}|{:?}", s.name, s.labels);
        if !seen.insert(key) {
            return Err(format!("duplicate series {}", s.name));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn render_parse_roundtrip_and_lint() {
        let reg = Registry::new();
        reg.counter("a_total", "events").add(3);
        reg.gauge_with("b", &[("kind", "x")], "depth").set(-2);
        let h = reg.histogram("lat_seconds", "latency");
        h.record(100);
        h.record(2_000);
        let text = render(&[&reg]);
        lint(&text).expect("rendered exposition must pass its own lint");
        let scrape = Scrape::parse(&text).unwrap();
        assert_eq!(scrape.value("a_total", &[]), Some(3.0));
        assert_eq!(scrape.value("b", &[("kind", "x")]), Some(-2.0));
        assert_eq!(scrape.value("lat_seconds_count", &[]), Some(2.0));
        assert_eq!(
            scrape.value("lat_seconds_bucket", &[("le", "+Inf")]),
            Some(2.0)
        );
        let p50 = scrape.histogram_quantile("lat_seconds", &[], 0.5).unwrap();
        assert!((5e-8..2e-7).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn families_render_once_and_in_sorted_order() {
        let reg = Registry::new();
        reg.counter_with("f_total", &[("site", "b")], "f").inc();
        reg.counter_with("f_total", &[("site", "a")], "f").inc();
        reg.counter("e_total", "e");
        let text = render(&[&reg]);
        let helps: Vec<&str> = text.lines().filter(|l| l.starts_with("# HELP")).collect();
        assert_eq!(helps, ["# HELP e_total e", "# HELP f_total f"]);
        let a = text.find("site=\"a\"").unwrap();
        let b = text.find("site=\"b\"").unwrap();
        assert!(a < b, "series sort by labels inside a family");
        // Determinism: rendering twice is byte-identical.
        assert_eq!(text, render(&[&reg]));
    }

    #[test]
    fn empty_histograms_render_compact_and_identical() {
        let r1 = Registry::new();
        let r2 = Registry::new();
        r1.histogram("h_seconds", "h");
        r2.histogram("h_seconds", "h");
        assert_eq!(render(&[&r1]), render(&[&r2]));
        assert!(render(&[&r1]).contains("h_seconds_bucket{le=\"+Inf\"} 0"));
    }

    #[test]
    fn histogram_quantile_of_empty_or_absent_histogram_is_none() {
        let text = "\
# TYPE h_seconds histogram
h_seconds_bucket{le=\"0.5\"} 0
h_seconds_bucket{le=\"+Inf\"} 0
h_seconds_sum 0
h_seconds_count 0
";
        let scrape = Scrape::parse(text).unwrap();
        assert_eq!(scrape.histogram_quantile("h_seconds", &[], 0.5), None);
        assert_eq!(scrape.histogram_quantile("missing_seconds", &[], 0.5), None);
    }

    #[test]
    fn histogram_quantile_with_all_mass_in_inf_bucket_is_none() {
        // Every observation exceeded the largest finite bound: there is
        // no finite upper estimate, and 0.0 would be a lie.
        let text = "\
# TYPE h_seconds histogram
h_seconds_bucket{le=\"+Inf\"} 5
h_seconds_sum 50
h_seconds_count 5
";
        let scrape = Scrape::parse(text).unwrap();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(
                scrape.histogram_quantile("h_seconds", &[], q),
                None,
                "q={q}"
            );
        }
    }

    #[test]
    fn histogram_quantile_single_finite_bucket_answers_every_quantile() {
        let text = "\
# TYPE h_seconds histogram
h_seconds_bucket{le=\"0.25\"} 7
h_seconds_bucket{le=\"+Inf\"} 7
h_seconds_sum 1
h_seconds_count 7
";
        let scrape = Scrape::parse(text).unwrap();
        for q in [0.0, 0.01, 0.5, 0.999, 1.0] {
            assert_eq!(
                scrape.histogram_quantile("h_seconds", &[], q),
                Some(0.25),
                "q={q}"
            );
        }
    }

    #[test]
    fn histogram_quantile_clamps_extreme_quantiles_to_extreme_ranks() {
        let text = "\
# TYPE h_seconds histogram
h_seconds_bucket{le=\"0.1\"} 2
h_seconds_bucket{le=\"0.2\"} 3
h_seconds_bucket{le=\"0.4\"} 9
h_seconds_bucket{le=\"+Inf\"} 10
h_seconds_sum 3
h_seconds_count 10
";
        let scrape = Scrape::parse(text).unwrap();
        // q=0.0 clamps to rank 1 → first non-empty bucket; q=1.0 is rank
        // 10, which falls in +Inf → the largest finite bound. Values
        // outside [0, 1] clamp the same way instead of panicking.
        assert_eq!(scrape.histogram_quantile("h_seconds", &[], 0.0), Some(0.1));
        assert_eq!(scrape.histogram_quantile("h_seconds", &[], -3.0), Some(0.1));
        assert_eq!(scrape.histogram_quantile("h_seconds", &[], 1.0), Some(0.4));
        assert_eq!(scrape.histogram_quantile("h_seconds", &[], 7.5), Some(0.4));
        // Interior sanity: rank 5 (q=0.5) lands in the 0.4 bucket.
        assert_eq!(scrape.histogram_quantile("h_seconds", &[], 0.5), Some(0.4));
    }
}
