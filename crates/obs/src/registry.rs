//! The metrics registry: named, labeled handles over the primitives in
//! [`crate::metrics`].
//!
//! Registration is the cold path and takes a mutex; the handles it returns
//! are plain `Arc`s to the atomics, so recording never touches the
//! registry again. Registration is get-or-register: asking twice for the
//! same `(name, labels)` returns the same underlying metric, which lets
//! independent subsystems share a family without coordination.
//!
//! Besides owned metrics, a registry accepts *callback* entries
//! ([`Registry::counter_fn`] / [`Registry::gauge_fn`]) whose value is read
//! at render time. These mirror state that already has one source of truth
//! elsewhere (live session count, fault-injection tallies) so `/metrics`
//! can expose it without a shadow copy that could drift.

use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram};

/// The value half of a registered entry.
pub enum Metric {
    /// An owned monotone counter.
    Counter(Arc<Counter>),
    /// An owned gauge.
    Gauge(Arc<Gauge>),
    /// An owned histogram.
    Histogram(Arc<Histogram>),
    /// A counter whose value is computed at render time.
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    /// A gauge whose value is computed at render time.
    GaugeFn(Box<dyn Fn() -> i64 + Send + Sync>),
}

impl Metric {
    /// Prometheus `# TYPE` keyword for this metric.
    pub fn type_name(&self) -> &'static str {
        match self {
            Metric::Counter(_) | Metric::CounterFn(_) => "counter",
            Metric::Gauge(_) | Metric::GaugeFn(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// One registered metric: family name, label pairs, help text, value.
pub struct Entry {
    /// Family name, e.g. `atpm_http_requests_total`.
    pub name: &'static str,
    /// Label pairs in render order.
    pub labels: Vec<(&'static str, String)>,
    /// `# HELP` text (first registration of a family wins).
    pub help: &'static str,
    /// The metric itself.
    pub metric: Metric,
}

/// A set of metric families rendered together into one exposition.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Arc<Entry>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A point-in-time list of entries (for rendering).
    pub fn entries(&self) -> Vec<Arc<Entry>> {
        self.entries
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    fn get_or_insert<T, F, G>(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        help: &'static str,
        extract: F,
        build: G,
    ) -> Arc<T>
    where
        F: Fn(&Metric) -> Option<Arc<T>>,
        G: FnOnce() -> (Arc<T>, Metric),
    {
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(entry) = entries
            .iter()
            .find(|e| e.name == name && labels_eq(&e.labels, labels))
        {
            return extract(&entry.metric)
                .unwrap_or_else(|| panic!("metric {name} re-registered with a different type"));
        }
        let (handle, metric) = build();
        entries.push(Arc::new(Entry {
            name,
            labels: labels.iter().map(|&(k, v)| (k, v.to_string())).collect(),
            help,
            metric,
        }));
        handle
    }

    /// Registers (or fetches) an unlabeled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, &[], help)
    }

    /// Registers (or fetches) a labeled counter.
    pub fn counter_with(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        help: &'static str,
    ) -> Arc<Counter> {
        self.get_or_insert(
            name,
            labels,
            help,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::new());
                (c.clone(), Metric::Counter(c))
            },
        )
    }

    /// Registers (or fetches) an unlabeled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, &[], help)
    }

    /// Registers (or fetches) a labeled gauge.
    pub fn gauge_with(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        help: &'static str,
    ) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            labels,
            help,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::new());
                (g.clone(), Metric::Gauge(g))
            },
        )
    }

    /// Registers (or fetches) an unlabeled histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        self.histogram_with(name, &[], help)
    }

    /// Registers (or fetches) a labeled histogram.
    pub fn histogram_with(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        help: &'static str,
    ) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            labels,
            help,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || {
                let h = Arc::new(Histogram::new());
                (h.clone(), Metric::Histogram(h))
            },
        )
    }

    /// Registers a counter read from `f` at render time. Last registration
    /// of a `(name, labels)` pair wins; `f` must be monotone for the
    /// exposition to be Prometheus-correct.
    pub fn counter_fn(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        help: &'static str,
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.insert_fn(name, labels, help, Metric::CounterFn(Box::new(f)));
    }

    /// Registers a gauge read from `f` at render time.
    pub fn gauge_fn(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        help: &'static str,
        f: impl Fn() -> i64 + Send + Sync + 'static,
    ) {
        self.insert_fn(name, labels, help, Metric::GaugeFn(Box::new(f)));
    }

    fn insert_fn(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        help: &'static str,
        metric: Metric,
    ) {
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        entries.retain(|e| !(e.name == name && labels_eq(&e.labels, labels)));
        entries.push(Arc::new(Entry {
            name,
            labels: labels.iter().map(|&(k, v)| (k, v.to_string())).collect(),
            help,
            metric,
        }));
    }
}

fn labels_eq(have: &[(&'static str, String)], want: &[(&'static str, &str)]) -> bool {
    have.len() == want.len()
        && have
            .iter()
            .zip(want.iter())
            .all(|((hk, hv), (wk, wv))| hk == wk && hv == wv)
}

/// The process-global registry. Library crates with no registry to hand
/// (RIS sampling, diffusion) register their metrics here; servers render
/// it merged with their per-instance registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_per_name_and_labels() {
        let reg = Registry::new();
        let a = reg.counter("x_total", "x");
        let b = reg.counter("x_total", "x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same handle behind both registrations");
        let l1 = reg.counter_with("y_total", &[("site", "read")], "y");
        let l2 = reg.counter_with("y_total", &[("site", "write")], "y");
        l1.inc();
        assert_eq!(l2.get(), 0, "distinct label sets are distinct series");
        assert_eq!(reg.entries().len(), 3);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_conflicts_panic() {
        let reg = Registry::new();
        reg.counter("z", "z");
        reg.gauge("z", "z");
    }

    #[test]
    fn callback_entries_read_live_values() {
        let reg = Registry::new();
        let src = Arc::new(Counter::new());
        let rd = src.clone();
        reg.counter_fn("cb_total", &[], "cb", move || rd.get());
        src.add(7);
        let entries = reg.entries();
        match &entries[0].metric {
            Metric::CounterFn(f) => assert_eq!(f(), 7),
            _ => panic!("wrong kind"),
        }
    }
}
