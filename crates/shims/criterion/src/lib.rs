//! Offline shim for the subset of the `criterion` API this workspace uses.
//!
//! The build environment has no network access, so this in-tree crate
//! provides a small statistically honest bench harness with criterion's
//! surface: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Each benchmark is warmed up, then measured over batches until the
//! measurement budget is spent; the median, mean, and min per-iteration times
//! are reported on stdout and collected into a process-wide registry.
//! [`finalize`] (called by `criterion_main!`) writes every record as a JSON
//! array to `$ATPM_BENCH_JSON` when that variable is set — this is how the
//! repo's `BENCH_ris.json` perf trajectory is produced.
//!
//! Environment knobs:
//!
//! * `ATPM_BENCH_JSON=path` — write results as JSON to `path`;
//! * `ATPM_BENCH_QUICK=1` — 10x smaller time budget (CI smoke mode);
//! * `ATPM_BENCH_FILTER=substr` — run only benchmarks whose id contains
//!   `substr` (the harness also honors a trailing CLI filter argument, like
//!   `cargo bench -- substr`).

use std::fmt::Display;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Full benchmark id (`group/name/param` or `name`).
    pub id: String,
    /// Median time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Mean time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Fastest observed batch, nanoseconds per iteration.
    pub min_ns: f64,
    /// Total iterations measured.
    pub iterations: u64,
    /// Optional throughput denominator (elements or bytes per iteration).
    pub throughput: Option<Throughput>,
}

static RECORDS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

fn quick_mode() -> bool {
    std::env::var("ATPM_BENCH_QUICK").is_ok_and(|v| v != "0")
}

fn filter() -> Option<String> {
    if let Ok(f) = std::env::var("ATPM_BENCH_FILTER") {
        return Some(f);
    }
    // `cargo bench -- substr` passes harness flags plus the filter; take the
    // last non-flag argument.
    std::env::args().skip(1).rfind(|a| !a.starts_with('-'))
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier carrying a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only id (used when the group name already identifies the
    /// function).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Types accepted as benchmark ids.
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    batches_ns: Vec<f64>,
    iterations: u64,
    measure_budget: Duration,
    warmup_budget: Duration,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        let scale = if quick_mode() { 10 } else { 1 };
        // sample_size maps to the measurement budget the way criterion's
        // sample count scales total runtime (bounded so a single bench never
        // dominates the suite).
        let measure_ms = (20 * sample_size as u64).clamp(100, 2_000) / scale;
        let warmup_ms = (measure_ms / 4).max(5);
        Bencher {
            batches_ns: Vec::new(),
            iterations: 0,
            measure_budget: Duration::from_millis(measure_ms),
            warmup_budget: Duration::from_millis(warmup_ms),
        }
    }

    /// Runs `f` repeatedly, timing batches after a warm-up period.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also sizes the batch so each timed batch is ~1ms or more.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup_budget || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((1e-3 / per_iter.max(1e-9)) as u64).clamp(1, 1 << 22);

        let start = Instant::now();
        while start.elapsed() < self.measure_budget || self.batches_ns.is_empty() {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t0.elapsed().as_nanos() as f64 / batch as f64;
            self.batches_ns.push(ns);
            self.iterations += batch;
        }
    }

    fn record(mut self, id: String, throughput: Option<Throughput>) {
        if self.batches_ns.is_empty() {
            return; // closure never called iter()
        }
        self.batches_ns
            .sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = self.batches_ns[self.batches_ns.len() / 2];
        let mean = self.batches_ns.iter().sum::<f64>() / self.batches_ns.len() as f64;
        let min = self.batches_ns[0];
        let rec = BenchRecord {
            id,
            median_ns: median,
            mean_ns: mean,
            min_ns: min,
            iterations: self.iterations,
            throughput,
        };
        println!(
            "bench: {:<48} median {:>12}  mean {:>12}  ({} iters)",
            rec.id,
            format_ns(rec.median_ns),
            format_ns(rec.mean_ns),
            rec.iterations
        );
        RECORDS.lock().expect("bench registry poisoned").push(rec);
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if let Some(filt) = filter() {
        if !id.contains(&filt) {
            return;
        }
    }
    let mut b = Bencher::new(sample_size);
    f(&mut b);
    b.record(id, throughput);
}

/// Top-level benchmark registry and runner.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id.to_string(), self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 50,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the measurement effort (criterion's sample count knob).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<I: IntoBenchmarkId, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(full, self.sample_size, self.throughput, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Serializes all collected records as a JSON array (no external
/// serialization dependency; the schema is flat).
pub fn records_to_json() -> String {
    let records = RECORDS.lock().expect("bench registry poisoned");
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        let tp = match r.throughput {
            Some(Throughput::Elements(n)) => format!(
                ",\n    \"throughput\": {{ \"per_iteration\": {n}, \"unit\": \"elements\" }}"
            ),
            Some(Throughput::Bytes(n)) => {
                format!(",\n    \"throughput\": {{ \"per_iteration\": {n}, \"unit\": \"bytes\" }}")
            }
            None => String::new(),
        };
        let _ = write!(
            out,
            "  {{\n    \"id\": {:?},\n    \"median_ns\": {:.1},\n    \"mean_ns\": {:.1},\n    \"min_ns\": {:.1},\n    \"iterations\": {}{}\n  }}{}\n",
            r.id,
            r.median_ns,
            r.mean_ns,
            r.min_ns,
            r.iterations,
            tp,
            if i + 1 < records.len() { "," } else { "" }
        );
    }
    out.push(']');
    out.push('\n');
    out
}

/// Writes collected results to `$ATPM_BENCH_JSON` (if set). Called by
/// [`criterion_main!`] after all groups ran.
pub fn finalize() {
    if let Ok(path) = std::env::var("ATPM_BENCH_JSON") {
        let json = records_to_json();
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("criterion shim: failed to write {path}: {e}");
        } else {
            println!(
                "bench: wrote {} records to {path}",
                RECORDS.lock().unwrap().len()
            );
        }
    }
}

/// Declares a group-runner function calling each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running every group, then [`finalize`](crate::finalize).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_record_and_json_schema() {
        run_one(
            "unit/test_bench".into(),
            1,
            Some(Throughput::Elements(4)),
            |b| b.iter(|| black_box(2u64 + 2)),
        );
        let json = records_to_json();
        assert!(json.contains("\"unit/test_bench\""));
        assert!(json.contains("\"median_ns\""));
        assert!(json.contains("\"elements\""));
        let recs = RECORDS.lock().unwrap();
        let r = recs.iter().find(|r| r.id == "unit/test_bench").unwrap();
        assert!(r.median_ns > 0.0 && r.min_ns <= r.mean_ns * 1.01);
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).contains("µs"));
        assert!(format_ns(12_000_000.0).contains("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
