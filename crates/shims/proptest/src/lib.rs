//! Offline shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment has no network access, so this in-tree crate
//! provides the pieces the property tests consume: the [`Strategy`] trait
//! with `prop_map` / `prop_flat_map`, range and tuple strategies, [`Just`],
//! [`collection::vec`] / [`collection::btree_set`], the [`proptest!`] macro,
//! and the `prop_assert*` family.
//!
//! Differences from crates.io proptest, by design:
//!
//! * **no shrinking** — a failing case panics with the standard assert
//!   message; the generation is deterministic (seeded from the test name), so
//!   failures replay exactly under `cargo test`;
//! * `prop_assert!` panics instead of returning `Err`, so test bodies need no
//!   `Result` plumbing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration. Only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Smaller than crates.io's 256: no shrinking means a failure report
        // is cheap, and the suite runs in CI on every push.
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-test RNG: FNV-1a of the test name, overridable with
/// `PROPTEST_SEED` for replaying an alternative universe.
pub fn new_test_rng(test_name: &str) -> StdRng {
    let mut h = 0xCBF29CE484222325u64;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001B3);
    }
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(extra) = s.parse::<u64>() {
            h ^= extra.wrapping_mul(0x9E3779B97F4A7C15);
        }
    }
    StdRng::seed_from_u64(h)
}

/// A generator of arbitrary values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategies!((A.0)(A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3)(
    A.0, B.1, C.2, D.3, E.4
)(A.0, B.1, C.2, D.3, E.4, F.5));

/// Collection sizes: an exact count or a half-open range.
pub trait IntoSizeRange {
    /// Draws a size.
    fn draw_size(&self, rng: &mut StdRng) -> usize;
}

impl IntoSizeRange for usize {
    fn draw_size(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn draw_size(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn draw_size(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{IntoSizeRange, Strategy};
    use rand::rngs::StdRng;
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.size.draw_size(rng);
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `size`. If the element universe is smaller than the target the set
    /// saturates below it (bounded retries), mirroring proptest's behavior
    /// of not looping forever.
    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: IntoSizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: IntoSizeRange,
    {
        type Value = BTreeSet<S::Value>;

        fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.draw_size(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < 20 * (target + 1) {
                out.insert(self.element.gen_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests: each `pat in strategy` argument is generated
/// `config.cases` times and the body re-run per case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (
        @with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategies = ($($strat,)+);
                let mut rng = $crate::new_test_rng(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $crate::proptest!(@bind rng strategies ($($pat),+));
                    $body
                }
            }
        )*
    };
    (@bind $rng:ident $strats:ident ($p0:pat)) => {
        let $p0 = $crate::Strategy::gen_value(&$strats.0, &mut $rng);
    };
    (@bind $rng:ident $strats:ident ($p0:pat, $p1:pat)) => {
        let $p0 = $crate::Strategy::gen_value(&$strats.0, &mut $rng);
        let $p1 = $crate::Strategy::gen_value(&$strats.1, &mut $rng);
    };
    (@bind $rng:ident $strats:ident ($p0:pat, $p1:pat, $p2:pat)) => {
        let $p0 = $crate::Strategy::gen_value(&$strats.0, &mut $rng);
        let $p1 = $crate::Strategy::gen_value(&$strats.1, &mut $rng);
        let $p2 = $crate::Strategy::gen_value(&$strats.2, &mut $rng);
    };
    (@bind $rng:ident $strats:ident ($p0:pat, $p1:pat, $p2:pat, $p3:pat)) => {
        let $p0 = $crate::Strategy::gen_value(&$strats.0, &mut $rng);
        let $p1 = $crate::Strategy::gen_value(&$strats.1, &mut $rng);
        let $p2 = $crate::Strategy::gen_value(&$strats.2, &mut $rng);
        let $p3 = $crate::Strategy::gen_value(&$strats.3, &mut $rng);
    };
    (@bind $rng:ident $strats:ident ($p0:pat, $p1:pat, $p2:pat, $p3:pat, $p4:pat)) => {
        let $p0 = $crate::Strategy::gen_value(&$strats.0, &mut $rng);
        let $p1 = $crate::Strategy::gen_value(&$strats.1, &mut $rng);
        let $p2 = $crate::Strategy::gen_value(&$strats.2, &mut $rng);
        let $p3 = $crate::Strategy::gen_value(&$strats.3, &mut $rng);
        let $p4 = $crate::Strategy::gen_value(&$strats.4, &mut $rng);
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($args:tt)*) $body:block
        )*
    ) => {
        $crate::proptest!(
            @with_config ($crate::ProptestConfig::default())
            $(
                $(#[$meta])*
                fn $name($($args)*) $body
            )*
        );
    };
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::new_test_rng("ranges_and_maps");
        let s = (2usize..10).prop_map(|n| n * 2);
        for _ in 0..200 {
            let v = s.gen_value(&mut rng);
            assert!((4..20).contains(&v) && v % 2 == 0);
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = crate::new_test_rng("flat_map");
        let s = (3u32..6).prop_flat_map(|n| (Just(n), crate::collection::vec(0..n, 1..5)));
        for _ in 0..200 {
            let (n, v) = s.gen_value(&mut rng);
            assert!((3..6).contains(&n));
            assert!(!v.is_empty() && v.len() < 5);
            assert!(v.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn btree_set_respects_size_and_universe() {
        let mut rng = crate::new_test_rng("btree");
        let s = crate::collection::btree_set(0u32..3, 1..4);
        for _ in 0..100 {
            let set = s.gen_value(&mut rng);
            assert!(!set.is_empty() && set.len() <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, multiple args, assume, asserts.
        #[test]
        fn macro_roundtrip((a, mut b) in (0u32..5, 1u32..5), c in 0.0f64..1.0) {
            b += 1;
            prop_assume!(a != 4);
            prop_assert!(a < 4);
            prop_assert_eq!(b - 1, b - 1);
            prop_assert_ne!(b, 0);
            prop_assert!((0.0..1.0).contains(&c), "c = {}", c);
        }
    }
}
