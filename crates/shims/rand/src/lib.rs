//! Offline shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no network access, so instead of the crates.io
//! `rand` this small in-tree crate provides drop-in implementations of:
//!
//! * [`Rng`] with `gen`, `gen_bool` and `gen_range` (half-open and inclusive
//!   integer/float ranges);
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — xoshiro256++ seeded through SplitMix64 (not the
//!   crates.io ChaCha12, but the workspace only relies on determinism and
//!   statistical quality, never on a specific stream);
//! * [`distributions::WeightedIndex`] and [`distributions::Distribution`].
//!
//! Everything is deterministic per seed, which is what the experiment
//! reproducibility story depends on.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: one 64-bit output per call.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Uniform draw from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be drawn from a standard distribution.
pub trait Standard: Sized {
    /// Draws one value using `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer draw from `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection zone keeps the draw exactly uniform.
    let zone = bound.wrapping_neg() % bound;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let wide = (v as u128) * (bound as u128);
            ((wide >> 64) as u64, wide as u64)
        };
        if lo >= zone {
            return hi;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, width + 1) as $t)
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + <$t as Standard>::sample_standard(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + <$t as Standard>::sample_standard(rng) * (hi - lo)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// Seedable generators (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step, used to expand seeds into full generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Fast, passes BigCrush, and — unlike the crates.io `StdRng` — has a
    /// trivial dependency-free implementation. Streams differ from crates.io
    /// `rand`; nothing in the workspace pins specific stream values except
    /// its own golden tests.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Distribution sampling (only what the workspace uses).

    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value using `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error returned by [`WeightedIndex::new`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were supplied.
        NoItem,
        /// A weight was negative, NaN, or all weights were zero.
        InvalidWeight,
    }

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                WeightedError::NoItem => write!(f, "no weights provided"),
                WeightedError::InvalidWeight => write!(f, "invalid weight"),
            }
        }
    }

    impl std::error::Error for WeightedError {}

    /// Samples indices `0..weights.len()` proportionally to the weights.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Builds the sampler from nonnegative weights (at least one must be
        /// positive).
        pub fn new(weights: &[f64]) -> Result<Self, WeightedError> {
            if weights.is_empty() {
                return Err(WeightedError::NoItem);
            }
            let mut cumulative = Vec::with_capacity(weights.len());
            let mut total = 0.0f64;
            for &w in weights {
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if total <= 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let x = <f64 as super::Standard>::sample_standard(rng) * self.total;
            // First cumulative weight strictly above x; zero-weight entries
            // are never selected because their interval is empty.
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&x).expect("finite weights"))
            {
                Ok(i) => (i + 1).min(self.cumulative.len() - 1),
                Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds_and_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0u64;
        for _ in 0..60_000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            sum += u64::from(v);
        }
        let mean = sum as f64 / 60_000.0;
        assert!((mean - 14.5).abs() < 0.1, "mean {mean}");
        let f = rng.gen_range(-1.5f64..2.5);
        assert!((-1.5..2.5).contains(&f));
        let i = rng.gen_range(0..=3u32);
        assert!(i <= 3);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn weighted_index_is_proportional() {
        let w = vec![1.0, 0.0, 3.0];
        let d = WeightedIndex::new(&w).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 3];
        for _ in 0..80_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight never drawn");
        let frac0 = counts[0] as f64 / 80_000.0;
        assert!((frac0 - 0.25).abs() < 0.01, "frac0 {frac0}");
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert!(WeightedIndex::new(&[]).is_err());
        assert!(WeightedIndex::new(&[0.0, 0.0]).is_err());
        assert!(WeightedIndex::new(&[1.0, -0.5]).is_err());
    }

    #[test]
    fn unsized_rng_usage_compiles() {
        fn draw<R: super::RngCore + ?Sized>(rng: &mut R) -> f32 {
            rng.gen::<f32>()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
