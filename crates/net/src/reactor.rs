//! The readiness reactor: one thread, one epoll instance, thousands of
//! multiplexed connections.
//!
//! The reactor owns a nonblocking `TcpListener` plus every accepted
//! `TcpStream`, and drives each connection through a small state machine:
//!
//! ```text
//!   readable ──> read_buf ──> Driver::slice ──┬── Partial: wait for bytes
//!                                             ├── Frame: Driver::dispatch
//!                                             └── Fatal:  queue reply, close
//!   dispatch ──> busy (reads paused) ──> ReplyQueue::push (any thread)
//!        ──> waker ──> write_buf ──> flush, EPOLLOUT on short write
//!        ──> drained ──> parse next pipelined frame or resume reading
//! ```
//!
//! Exactly one frame per connection is in flight at a time: while `busy`
//! the reactor neither reads nor parses that connection (natural
//! backpressure, and it keeps pipelined requests sequentially ordered —
//! the same observable behavior as a blocking one-thread-per-connection
//! server). Responses are produced on *other* threads and land in the
//! shard's [`ReplyQueue`]; the queue's [`Waker`] pulls the reactor out of
//! `epoll_wait` to write them. A hashed [`TimerWheel`] drives periodic
//! driver ticks and optional per-connection idle deadlines.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use atpm_obs::trace::tracer;

use crate::buf::{read_nonblocking, ReadStatus, WriteBuf};
use crate::fault::{gate, Site};
use crate::metrics::NetMetrics;
use crate::poll::{Event, Interest, Poller};
use crate::timer::{TimerId, TimerWheel};
use crate::wake::Waker;

/// Opaque connection identity: slot plus generation, so a reply addressed
/// to a connection that died (and whose slot was recycled) is dropped
/// instead of corrupting the successor.
pub type ConnId = u64;

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_BASE: u64 = 2;
/// Timer tag reserved for the driver's periodic tick.
const TAG_TICK: u64 = u64::MAX;

fn conn_token(slot: u32, gen: u32) -> u64 {
    TOKEN_BASE + slot as u64 + ((gen as u64) << 32)
}

fn token_parts(token: u64) -> (u32, u32) {
    (
        ((token & 0xFFFF_FFFF) - TOKEN_BASE) as u32,
        (token >> 32) as u32,
    )
}

/// Verdict of [`Driver::slice`] over a connection's read buffer.
pub enum Sliced {
    /// No complete frame yet; `head_complete` reports whether the frame
    /// head (e.g. the HTTP header block) has fully arrived — it decides
    /// what a mid-frame EOF means.
    Partial {
        /// Frame head fully buffered, body still streaming.
        head_complete: bool,
    },
    /// The first `n` bytes of the buffer are one complete frame.
    Frame(usize),
    /// The peer sent something unusable: send these reply bytes and close.
    Fatal(Vec<u8>),
}

/// A finished response traveling back to the reactor, from any thread.
pub struct Reply {
    /// The connection the frame came from.
    pub conn: ConnId,
    /// Wire bytes to send.
    pub bytes: Vec<u8>,
    /// `false` closes the connection once the bytes are flushed.
    pub keep_alive: bool,
    /// Request id for diagnostics: when set, the reactor attaches it to
    /// the `inflight` span so a trace links back to the `X-Request-Id`
    /// the client saw. Workers only populate it while tracing is enabled
    /// (it is an allocation the hot path otherwise skips).
    pub id: Option<String>,
}

/// The completion side of a shard: worker threads push, the waker fires,
/// the reactor drains. One per reactor.
pub struct ReplyQueue {
    queue: Mutex<Vec<Reply>>,
    waker: Waker,
}

impl ReplyQueue {
    /// Queues a finished response and wakes the reactor.
    pub fn push(&self, reply: Reply) {
        self.queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(reply);
        self.waker.wake();
    }

    /// The shard's waker (also usable to interrupt the reactor for
    /// shutdown).
    pub fn waker(&self) -> &Waker {
        &self.waker
    }

    fn drain_into(&self, out: &mut Vec<Reply>) {
        out.append(&mut self.queue.lock().unwrap_or_else(|p| p.into_inner()));
    }
}

/// The protocol plugged into a reactor. `slice` runs on the reactor thread
/// and must be cheap (a scan, not a parse); `dispatch` hands the frame off
/// — to a worker pool, or inline for trivial protocols — and the response
/// comes back through the [`ReplyQueue`].
pub trait Driver: Send {
    /// Frame-cut the front of the read buffer.
    fn slice(&mut self, buf: &[u8]) -> Sliced;

    /// Process one complete frame; the reply lands in `replies` whenever
    /// it is ready.
    fn dispatch(&mut self, conn: ConnId, frame: Vec<u8>, replies: &Arc<ReplyQueue>);

    /// Parting reply for a peer that closed mid-frame (`None` = just
    /// close). An HTTP driver answers 400 for a half-sent head but stays
    /// silent for a half-sent body, matching blocking-server behavior.
    fn eof_reply(&mut self, head_complete: bool) -> Option<Vec<u8>> {
        let _ = head_complete;
        None
    }

    /// Period of the maintenance tick, if the driver wants one.
    fn tick_every_ms(&self) -> Option<u64> {
        None
    }

    /// Maintenance tick (session sweeps, stat flushes, ...).
    fn on_tick(&mut self, now_ms: u64) {
        let _ = now_ms;
    }
}

/// Reactor knobs.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Per-connection read-buffer cap; reads pause (backpressure) once
    /// buffered bytes reach it. Must exceed the protocol's largest frame or
    /// oversized frames can never complete.
    pub read_limit: usize,
    /// Pause reading while more than this many response bytes are queued.
    pub write_backpressure: usize,
    /// Timer wheel granularity, milliseconds.
    pub tick_ms: u64,
    /// Close connections idle longer than this (no reads, no writes).
    /// `None` keeps them forever, like a blocking server would.
    pub idle_timeout_ms: Option<u64>,
    /// Accept cap: connections beyond this are accepted and immediately
    /// dropped, shedding load instead of ballooning.
    pub max_conns: usize,
    /// Graceful-drain budget on stop: keep the loop alive (listener
    /// deregistered, no new accepts) up to this long while in-flight
    /// frames finish and queued reply bytes flush. `0` preserves the old
    /// semantics — exit immediately, dropping unflushed responses.
    pub drain_ms: u64,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            read_limit: 1 << 20,
            write_backpressure: 1 << 20,
            tick_ms: 50,
            idle_timeout_ms: None,
            max_conns: 65_536,
            drain_ms: 0,
        }
    }
}

/// End-of-run accounting, returned by [`Reactor::run`]. In a leak-free
/// shutdown every slot that ever existed is back on the free list and the
/// timer wheel holds nothing — the chaos suite asserts exactly that after
/// every fault schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReactorStats {
    /// Connections still open when the loop exited (their streams close
    /// with the reactor; nonzero is normal when clients are still
    /// connected at stop, but must be zero once all peers have hung up).
    pub live_conns: usize,
    /// Total connection slots ever allocated.
    pub slots: usize,
    /// Slots on the free list at exit.
    pub free_slots: usize,
    /// Timers still scheduled (and not cancelled) at exit.
    pub pending_timers: usize,
}

struct Conn {
    stream: TcpStream,
    gen: u32,
    read_buf: Vec<u8>,
    write: WriteBuf,
    /// A frame is dispatched and its reply not yet queued for write.
    busy: bool,
    /// Peer closed its write side; `read_buf` holds the final bytes.
    eof: bool,
    /// Close as soon as the write buffer drains.
    close_after_flush: bool,
    interest: Interest,
    last_activity_ms: u64,
    idle_timer: Option<TimerId>,
    /// Dispatch timestamp of the in-flight frame, kept only while tracing
    /// is enabled; closes the dispatch→reply span in `reply_ready`.
    dispatched_at: Option<Instant>,
}

/// One event loop. Construct with a bound listener, then [`run`](Self::run)
/// it on a dedicated thread.
pub struct Reactor {
    listener: TcpListener,
    poller: Poller,
    replies: Arc<ReplyQueue>,
    cfg: ReactorConfig,
    conns: Vec<Option<Conn>>,
    free: Vec<u32>,
    gens: Vec<u32>,
    wheel: TimerWheel,
    t0: Instant,
    live: usize,
    metrics: Option<Arc<NetMetrics>>,
}

impl Reactor {
    /// Wraps `listener` (switched to nonblocking; clones of one listener
    /// may back several reactors — registration is `EPOLLEXCLUSIVE`, so
    /// shards don't stampede on every connect).
    pub fn new(listener: TcpListener, cfg: ReactorConfig) -> io::Result<Reactor> {
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        let waker = Waker::new()?;
        poller.add(&listener, TOKEN_LISTENER, Interest::READ, true)?;
        poller.add(&waker, TOKEN_WAKER, Interest::READ, false)?;
        let wheel = TimerWheel::new(cfg.tick_ms, 256, 0);
        Ok(Reactor {
            listener,
            poller,
            replies: Arc::new(ReplyQueue {
                queue: Mutex::new(Vec::new()),
                waker,
            }),
            cfg,
            conns: Vec::new(),
            free: Vec::new(),
            gens: Vec::new(),
            wheel,
            t0: Instant::now(),
            live: 0,
            metrics: None,
        })
    }

    /// Attaches connection-plane counters (typically registered in the
    /// owning server's metrics registry). Without this the reactor runs
    /// uncounted — the chaos and unit harnesses don't care.
    pub fn with_metrics(mut self, metrics: Arc<NetMetrics>) -> Reactor {
        self.metrics = Some(metrics);
        self
    }

    /// The shard's completion queue — hand it to whoever produces replies.
    /// Its waker also interrupts [`run`](Self::run) so a raised stop flag
    /// is observed immediately.
    pub fn replies(&self) -> Arc<ReplyQueue> {
        self.replies.clone()
    }

    fn now_ms(&self) -> u64 {
        self.t0.elapsed().as_millis() as u64
    }

    /// Runs the event loop until `stop` is raised. Consumes the reactor;
    /// every owned connection closes on exit. Returns slot/timer
    /// accounting so harnesses can assert the shard leaked nothing.
    ///
    /// With no pending timer the reactor parks *indefinitely* — there is no
    /// polling heartbeat. Shutdown is therefore a two-step contract: raise
    /// `stop`, then fire the shard's waker
    /// ([`ReplyQueue::waker`](ReplyQueue::waker)) to pull the loop out of
    /// `epoll_wait`. [`ReplyQueue::push`] wakes as a side effect, so reply
    /// traffic can never stall the loop either.
    ///
    /// With a nonzero [`ReactorConfig::drain_ms`], a raised stop flag first
    /// deregisters the listener and keeps the loop running — up to the
    /// budget — until no connection has a dispatched frame awaiting its
    /// reply or unflushed response bytes, so accepted work is answered
    /// instead of dropped on the floor.
    pub fn run(mut self, mut driver: impl Driver, stop: &AtomicBool) -> ReactorStats {
        let mut events: Vec<Event> = Vec::new();
        let mut finished: Vec<Reply> = Vec::new();
        let mut fired: Vec<u64> = Vec::new();
        // Drain deadline (reactor-clock ms), set when stop is first seen.
        let mut drain_until: Option<u64> = None;
        if let Some(period) = driver.tick_every_ms() {
            self.wheel.schedule(self.now_ms() + period, TAG_TICK);
        }
        loop {
            if stop.load(Ordering::SeqCst) {
                if self.cfg.drain_ms == 0 {
                    break;
                }
                let deadline = *drain_until.get_or_insert_with(|| {
                    // Entering drain: no new connections, finish the rest.
                    let _ = self.poller.remove(&self.listener);
                    self.now_ms() + self.cfg.drain_ms
                });
                let in_flight = self
                    .conns
                    .iter()
                    .flatten()
                    .any(|c| c.busy || !c.write.is_empty());
                if !in_flight || self.now_ms() >= deadline {
                    break;
                }
            }
            let now = self.now_ms();
            let mut timeout = self
                .wheel
                .next_deadline()
                .map(|d| Duration::from_millis(d.saturating_sub(now)));
            if drain_until.is_some() {
                // Bounded naps while draining, so the deadline is honored
                // even if no event ever arrives.
                let cap = Duration::from_millis(25);
                timeout = Some(timeout.map_or(cap, |t| t.min(cap)));
            }
            if self.poller.wait(&mut events, timeout).is_err() {
                // A failing epoll instance is unrecoverable for this shard;
                // bail rather than spin.
                break;
            }
            let batch = std::mem::take(&mut events);
            for ev in &batch {
                match ev.token {
                    // A listener event already in flight when drain began
                    // must not admit new work.
                    TOKEN_LISTENER if drain_until.is_none() => self.accept_ready(),
                    TOKEN_LISTENER => {}
                    TOKEN_WAKER => self.replies.waker().drain(),
                    token => self.conn_ready(token, ev, &mut driver),
                }
            }
            events = batch;

            // Completions may have landed whether or not the waker event
            // made this batch; always drain.
            self.replies.drain_into(&mut finished);
            for reply in finished.drain(..) {
                self.reply_ready(reply, &mut driver);
            }

            let now = self.now_ms();
            fired.clear();
            self.wheel.advance(now, &mut fired);
            for tag in fired.drain(..) {
                if tag == TAG_TICK {
                    driver.on_tick(now);
                    if let Some(period) = driver.tick_every_ms() {
                        self.wheel.schedule(now + period, TAG_TICK);
                    }
                } else {
                    self.idle_deadline(tag, now);
                }
            }
        }
        ReactorStats {
            live_conns: self.live,
            slots: self.conns.len(),
            free_slots: self.free.len(),
            pending_timers: self.wheel.pending(),
        }
    }

    fn accept_ready(&mut self) {
        loop {
            // Fault gate first: an injected EMFILE/EINTR exercises the same
            // arms a real kernel error would.
            let accepted = match gate(Site::Accept) {
                Ok(_) => self.listener.accept().map(|(stream, _)| stream),
                Err(e) => Err(e),
            };
            match accepted {
                Ok(stream) => {
                    if self.live >= self.cfg.max_conns {
                        drop(stream); // shed
                        continue;
                    }
                    let _ = self.register(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Fd exhaustion (EMFILE=24 / ENFILE=23): the pending
                // connection keeps the level-triggered listener readable,
                // so returning immediately would spin this shard at 100%
                // CPU against the very workers that could free fds. Back
                // off briefly; the connection either gets accepted on a
                // later pass or times out client-side.
                Err(e) if e.raw_os_error() == Some(24) || e.raw_os_error() == Some(23) => {
                    std::thread::sleep(Duration::from_millis(25));
                    return;
                }
                // Other transient accept errors (ECONNABORTED, ...):
                // yield; level-triggered epoll re-arms us.
                Err(_) => return,
            }
        }
    }

    fn register(&mut self, stream: TcpStream) -> io::Result<()> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.conns.push(None);
                self.gens.push(0);
                (self.conns.len() - 1) as u32
            }
        };
        let gen = self.gens[slot as usize];
        let token = conn_token(slot, gen);
        if let Err(e) = self.poller.add(&stream, token, Interest::READ, false) {
            // The slot was claimed above but no Conn was installed; without
            // this push it would leak from both lists forever.
            self.free.push(slot);
            return Err(e);
        }
        let now = self.now_ms();
        let idle_timer = self
            .cfg
            .idle_timeout_ms
            .map(|t| self.wheel.schedule(now + t, token));
        self.conns[slot as usize] = Some(Conn {
            stream,
            gen,
            read_buf: Vec::new(),
            write: WriteBuf::new(),
            busy: false,
            eof: false,
            close_after_flush: false,
            interest: Interest::READ,
            last_activity_ms: now,
            idle_timer,
            dispatched_at: None,
        });
        self.live += 1;
        if let Some(m) = &self.metrics {
            m.accepts.inc();
        }
        Ok(())
    }

    fn lookup(&self, token: u64) -> Option<u32> {
        let (slot, gen) = token_parts(token);
        match self.conns.get(slot as usize)? {
            Some(conn) if conn.gen == gen => Some(slot),
            _ => None,
        }
    }

    fn close(&mut self, slot: u32) {
        if let Some(conn) = self.conns[slot as usize].take() {
            let _ = self.poller.remove(&conn.stream);
            if let Some(id) = conn.idle_timer {
                self.wheel.cancel(id);
            }
            self.gens[slot as usize] = self.gens[slot as usize].wrapping_add(1);
            self.free.push(slot);
            self.live -= 1;
            if let Some(m) = &self.metrics {
                m.conns_closed.inc();
            }
        }
    }

    fn conn_ready(&mut self, token: u64, ev: &Event, driver: &mut impl Driver) {
        let Some(slot) = self.lookup(token) else {
            return;
        };
        if ev.readable {
            self.read_ready(slot, driver);
        }
        // The read path may have closed the slot.
        if self.conns[slot as usize].is_some() && ev.writable {
            self.flush_and_rearm(slot, driver);
        }
    }

    fn read_ready(&mut self, slot: u32, driver: &mut impl Driver) {
        {
            let cfg_read_limit = self.cfg.read_limit;
            let now = self.now_ms();
            let conn = self.conns[slot as usize].as_mut().expect("live slot");
            conn.last_activity_ms = now;
            if conn.busy || conn.close_after_flush || conn.eof {
                // Not interested in bytes right now (level-triggered events
                // for a paused conn are possible until interest updates).
                return;
            }
            match read_nonblocking(&mut conn.stream, &mut conn.read_buf, cfg_read_limit) {
                Ok(ReadStatus::Eof) => conn.eof = true,
                Ok(ReadStatus::WouldBlock) | Ok(ReadStatus::LimitReached) => {}
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
        self.advance_conn(slot, driver);
    }

    /// Parses and dispatches as much as the connection's state allows, then
    /// flushes and recomputes interest.
    fn advance_conn(&mut self, slot: u32, driver: &mut impl Driver) {
        let replies = self.replies.clone();
        loop {
            let conn = self.conns[slot as usize].as_mut().expect("live slot");
            if conn.busy || conn.close_after_flush {
                break;
            }
            match driver.slice(&conn.read_buf) {
                Sliced::Frame(n) => {
                    let frame: Vec<u8> = conn.read_buf.drain(..n).collect();
                    conn.busy = true;
                    conn.dispatched_at = tracer().enabled().then(Instant::now);
                    let token = conn_token(slot, conn.gen);
                    if let Some(m) = &self.metrics {
                        m.dispatches.inc();
                    }
                    driver.dispatch(token, frame, &replies);
                }
                Sliced::Partial { head_complete } => {
                    if conn.eof {
                        if !conn.read_buf.is_empty() {
                            if let Some(reply) = driver.eof_reply(head_complete) {
                                conn.write.push(&reply);
                            }
                            conn.read_buf.clear();
                        }
                        conn.close_after_flush = true;
                    }
                    break;
                }
                Sliced::Fatal(reply) => {
                    conn.write.push(&reply);
                    conn.read_buf.clear();
                    conn.close_after_flush = true;
                }
            }
        }
        self.flush_and_rearm(slot, driver);
    }

    /// A worker finished a frame: queue the response and keep the
    /// connection's pipeline moving.
    fn reply_ready(&mut self, reply: Reply, driver: &mut impl Driver) {
        let Some(slot) = self.lookup(reply.conn) else {
            return; // connection died while the worker was busy
        };
        {
            let now = self.now_ms();
            let conn = self.conns[slot as usize].as_mut().expect("live slot");
            conn.busy = false;
            conn.last_activity_ms = now;
            if let Some(start) = conn.dispatched_at.take() {
                tracer().record_with_id(
                    "net",
                    "inflight",
                    start,
                    start.elapsed(),
                    reply.id.as_deref(),
                );
            }
            conn.write.push(&reply.bytes);
            if !reply.keep_alive {
                conn.close_after_flush = true;
                conn.read_buf.clear();
            }
        }
        self.advance_conn(slot, driver);
    }

    /// Flushes the write buffer and recomputes epoll interest; closes the
    /// connection when its story is over.
    fn flush_and_rearm(&mut self, slot: u32, _driver: &mut impl Driver) {
        let conn = self.conns[slot as usize].as_mut().expect("live slot");
        let drained = match conn.write.flush_to(&mut conn.stream) {
            Ok(d) => d,
            Err(_) => {
                self.close(slot);
                return;
            }
        };
        if drained && conn.close_after_flush {
            self.close(slot);
            return;
        }
        if drained && conn.eof && !conn.busy && conn.read_buf.is_empty() {
            // Peer is gone and nothing is owed: done.
            self.close(slot);
            return;
        }
        let desired = Interest {
            readable: !conn.busy
                && !conn.close_after_flush
                && !conn.eof
                && conn.write.pending() < self.cfg.write_backpressure
                && conn.read_buf.len() < self.cfg.read_limit,
            writable: !drained,
        };
        if desired != conn.interest {
            let token = conn_token(slot, conn.gen);
            if self.poller.modify(&conn.stream, token, desired).is_err() {
                self.close(slot);
                return;
            }
            let conn = self.conns[slot as usize].as_mut().expect("live slot");
            conn.interest = desired;
        }
    }

    /// An idle deadline fired for `tag` (= connection token). Closes truly
    /// idle connections; re-arms for ones that were active since.
    fn idle_deadline(&mut self, tag: u64, now: u64) {
        let Some(slot) = self.lookup(tag) else {
            return;
        };
        let timeout = match self.cfg.idle_timeout_ms {
            Some(t) => t,
            None => return,
        };
        let (idle_since, busy) = {
            let conn = self.conns[slot as usize].as_ref().expect("live slot");
            (conn.last_activity_ms, conn.busy)
        };
        if !busy && now.saturating_sub(idle_since) >= timeout {
            self.close(slot);
        } else {
            let id = self.wheel.schedule(idle_since + timeout, tag);
            let conn = self.conns[slot as usize].as_mut().expect("live slot");
            conn.idle_timer = Some(id);
        }
    }
}
