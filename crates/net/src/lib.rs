//! # atpm-net
//!
//! A std-only readiness reactor on raw Linux `epoll` — no crates.io
//! dependencies, no `libc` crate: the four syscalls the loop needs are
//! issued straight through the architecture's syscall instruction
//! ([`sys`]), and everything above them is safe Rust over
//! `std::os::fd`/`std::net` types.
//!
//! The crate exists to scale `atpm-serve` past one-connection-per-worker:
//! a blocking accept pool pins a thread per kept-alive client, so a
//! handful of idle campaign sessions starves everyone else, while one
//! reactor shard multiplexes thousands of mostly-idle connections and
//! hands complete frames to a small worker pool. Layers, bottom up:
//!
//! * [`sys`] — raw syscall shims (`epoll_create1`/`epoll_ctl`/
//!   `epoll_pwait`/`eventfd2`) with a stub fallback on unsupported targets;
//! * [`poll`] — [`poll::Poller`], a safe level-triggered epoll wrapper with
//!   token-tagged registrations;
//! * [`timer`] — [`timer::TimerWheel`], a hashed wheel over caller-supplied
//!   millisecond timestamps (mock-clock friendly);
//! * [`wake`] — [`wake::Waker`], an eventfd that lets any thread pull a
//!   parked reactor out of `epoll_wait`;
//! * [`buf`] — [`buf::WriteBuf`] with partial-write resumption, plus the
//!   nonblocking read helper;
//! * [`fault`] — deterministic syscall fault injection: a per-thread
//!   [`fault::SysPolicy`] gate on every IO edge (passthrough by default,
//!   a seeded [`fault::FaultPlan`] under test), with per-site injection
//!   tallies the `/metrics` exposition reads;
//! * [`metrics`] — [`metrics::NetMetrics`], connection-plane counters a
//!   server registers in its own `atpm_obs::Registry` and attaches via
//!   [`reactor::Reactor::with_metrics`];
//! * [`reactor`] — [`reactor::Reactor`]: accept loop, per-connection state
//!   machines (read → slice → dispatch → write, with backpressure), reply
//!   completion, timers. Protocols plug in via [`reactor::Driver`].

pub mod buf;
pub mod fault;
pub mod metrics;
pub mod poll;
pub mod reactor;
pub mod sys;
pub mod timer;
pub mod wake;

pub use buf::{read_nonblocking, ReadStatus, WriteBuf};
pub use fault::{FaultPlan, FaultTally, SysPolicy};
pub use metrics::NetMetrics;
pub use poll::{Event, Interest, Poller};
pub use reactor::{
    ConnId, Driver, Reactor, ReactorConfig, ReactorStats, Reply, ReplyQueue, Sliced,
};
pub use timer::{TimerId, TimerWheel};
pub use wake::Waker;

/// Whether the epoll shims work on this target (linux x86_64/aarch64).
/// When `false`, [`Reactor::new`] fails with `Unsupported` and servers
/// should fall back to blocking IO.
pub const fn supported() -> bool {
    sys::supported()
}
