//! [`Waker`]: the cross-thread wakeup primitive — an eventfd registered in
//! the reactor's poller, so worker threads finishing deferred responses can
//! pull a parked `epoll_wait` out of its nap.
//!
//! Eventfd beats the classic self-pipe: one fd instead of two, writes are a
//! single 8-byte counter add that never blocks (short of 2^64-1 pending
//! wakes), and draining is one read. The fd is shared by `Arc`, so any
//! number of worker threads hold cheap clones.

use std::io;
use std::os::fd::{AsFd, BorrowedFd, OwnedFd};
use std::sync::Arc;

use crate::sys;

/// A clonable handle that can wake one reactor from any thread.
#[derive(Clone)]
pub struct Waker {
    fd: Arc<OwnedFd>,
}

impl Waker {
    /// A fresh waker (its fd must be registered in the poller by the
    /// reactor that wants to be woken).
    pub fn new() -> io::Result<Waker> {
        Ok(Waker {
            fd: Arc::new(sys::eventfd()?),
        })
    }

    /// Wakes the reactor. Never blocks; a full counter (already signalled
    /// ~2^64 times) is already awake, so that error is ignored — but an
    /// `EINTR` before the counter add would silently lose the wakeup, so
    /// interrupted writes retry.
    pub fn wake(&self) {
        loop {
            match sys::write(self.fd.as_fd(), &1u64.to_ne_bytes()) {
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                _ => return,
            }
        }
    }

    /// Consumes all pending wakeups (called by the reactor when the waker's
    /// fd reports readable).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // One read zeroes an eventfd counter; loop anyway in case of a
        // racing wake between read and return — the extra read just hits
        // WouldBlock. An interrupted read has NOT drained, so it retries
        // rather than ending the loop with the counter still set.
        loop {
            match sys::read(self.fd.as_fd(), &mut buf) {
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }
}

impl AsFd for Waker {
    fn as_fd(&self) -> BorrowedFd<'_> {
        self.fd.as_fd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poll::{Interest, Poller};
    use std::time::Duration;

    #[test]
    fn wake_from_another_thread_unparks_a_poll() {
        let waker = Waker::new().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(&waker, 42, Interest::READ, false).unwrap();

        let remote = waker.clone();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
        });

        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        handle.join().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 42);

        // Drained: the level-triggered fd goes quiet.
        waker.drain();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        // Coalescing: many wakes, one drain.
        for _ in 0..100 {
            waker.wake();
        }
        poller
            .wait(&mut events, Some(Duration::from_secs(1)))
            .unwrap();
        assert_eq!(events.len(), 1);
        waker.drain();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }
}
