//! Deterministic syscall fault injection.
//!
//! Every IO edge the reactor touches — the raw shims in [`crate::sys`]
//! (epoll, eventfd) and the `std` TCP edges in [`crate::buf`] and the
//! accept loop — consults a per-thread [`SysPolicy`] before doing real
//! work. The default is passthrough: one thread-local `Option` check, no
//! allocation, no syscall; production never installs a policy. The chaos
//! suite installs a seeded [`FaultPlan`] on the reactor thread and replays
//! the exact failure modes the kernel can produce — `EINTR`, `EAGAIN`,
//! short reads/writes, `ECONNRESET` mid-frame, `EMFILE` storms, failing
//! `epoll_ctl` — without needing a misbehaving kernel on cue.
//!
//! The policy is *thread-local* by design: the chaos harness spawns the
//! reactor thread itself, installs the plan there, and drives traffic from
//! ordinary client threads whose sockets stay honest. Injection is
//! therefore exactly scoped to the code under test.

use std::cell::RefCell;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// `EINTR`: interrupted by a signal before any data transferred.
pub const EINTR: i32 = 4;
/// `EAGAIN`/`EWOULDBLOCK`: the operation would block.
pub const EAGAIN: i32 = 11;
/// `ENFILE`: the system file table is full.
pub const ENFILE: i32 = 23;
/// `EMFILE`: the per-process fd limit is hit (accept storms).
pub const EMFILE: i32 = 24;
/// `ENOSPC`: no space — what `epoll_ctl` returns when the watch limit
/// (`max_user_watches`) is exhausted.
pub const ENOSPC: i32 = 28;
/// `ECONNRESET`: the peer slammed the connection shut.
pub const ECONNRESET: i32 = 104;

/// A call site a policy can intercept. Raw-shim sites cover the epoll and
/// eventfd plane; the `Stream*`/`Accept` sites cover TCP IO, which goes
/// through `std` (whose own retry loops would otherwise hide `EINTR` from
/// us entirely).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// `epoll_create1` in [`crate::sys`].
    EpollCreate,
    /// `epoll_ctl` (ADD/MOD/DEL) in [`crate::sys`].
    EpollCtl,
    /// `epoll_pwait` in [`crate::sys`].
    EpollWait,
    /// `eventfd2` in [`crate::sys`].
    EventfdCreate,
    /// raw `read` on the waker eventfd.
    EventfdRead,
    /// raw `write` on the waker eventfd.
    EventfdWrite,
    /// `TcpStream` reads inside [`crate::buf::read_nonblocking`].
    StreamRead,
    /// `TcpStream` writes inside [`crate::buf::WriteBuf::flush_to`].
    StreamWrite,
    /// `TcpListener::accept` in the reactor's accept loop.
    Accept,
}

/// Number of interceptable sites (the arity of [`Site`]).
pub const SITE_COUNT: usize = 9;

/// Sites in `site_index` order, with their metric-label names.
pub const SITES: [(Site, &str); SITE_COUNT] = [
    (Site::EpollCreate, "epoll_create"),
    (Site::EpollCtl, "epoll_ctl"),
    (Site::EpollWait, "epoll_wait"),
    (Site::EventfdCreate, "eventfd_create"),
    (Site::EventfdRead, "eventfd_read"),
    (Site::EventfdWrite, "eventfd_write"),
    (Site::StreamRead, "stream_read"),
    (Site::StreamWrite, "stream_write"),
    (Site::Accept, "accept"),
];

/// Index of `site` into [`SITES`] / per-site count arrays.
pub fn site_index(site: Site) -> usize {
    match site {
        Site::EpollCreate => 0,
        Site::EpollCtl => 1,
        Site::EpollWait => 2,
        Site::EventfdCreate => 3,
        Site::EventfdRead => 4,
        Site::EventfdWrite => 5,
        Site::StreamRead => 6,
        Site::StreamWrite => 7,
        Site::Accept => 8,
    }
}

/// What a policy decided about one intercepted call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Perform the real operation.
    Pass,
    /// Fail the call with this raw errno before any IO happens.
    Fail(i32),
    /// Perform the real operation but cap its length to at most this many
    /// bytes (short read/write). Only meaningful for stream IO; other
    /// sites treat it as [`Verdict::Pass`].
    Short(usize),
}

/// A pluggable syscall policy. Implementations decide per call, so they can
/// inject by site, by call count, or probabilistically.
pub trait SysPolicy: Send {
    /// Rule on one intercepted call at `site`.
    fn intercept(&mut self, site: Site) -> Verdict;
}

thread_local! {
    static POLICY: RefCell<Option<Box<dyn SysPolicy>>> = const { RefCell::new(None) };
}

/// Process-wide injected-fault hit counters, one per site, incremented by
/// [`gate`] whenever a policy verdict actually perturbs a call (`Fail` or
/// `Short`). These are the single source of truth the `/metrics`
/// exposition reads through render-time callbacks; with no policy
/// installed anywhere they stay zero forever.
static INJECTED: [AtomicU64; SITE_COUNT] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const ZERO: AtomicU64 = AtomicU64::new(0);
    [ZERO; SITE_COUNT]
};

/// Total faults injected at `site` since process start.
pub fn injected_total(site: Site) -> u64 {
    INJECTED[site_index(site)].load(Ordering::Relaxed)
}

/// A shared, exact tally of the non-`Pass` verdicts one [`FaultPlan`]
/// produced, by site. The chaos suite holds a clone and compares it
/// against what the script was expected to fire — unlike the process-wide
/// [`injected_total`], it cannot be perturbed by plans on other threads.
#[derive(Debug, Default)]
pub struct FaultTally {
    counts: [AtomicU64; SITE_COUNT],
}

impl FaultTally {
    /// Injections this plan performed at `site`.
    pub fn at(&self, site: Site) -> u64 {
        self.counts[site_index(site)].load(Ordering::Relaxed)
    }

    /// Total injections across all sites.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }
}

/// Installs `policy` for the current thread (replacing any previous one).
pub fn install(policy: Box<dyn SysPolicy>) {
    POLICY.with(|slot| *slot.borrow_mut() = Some(policy));
}

/// Removes the current thread's policy, restoring passthrough.
pub fn clear() {
    POLICY.with(|slot| *slot.borrow_mut() = None);
}

/// Consults the thread's policy about a call at `site`. `Ok(None)` means
/// proceed normally, `Ok(Some(cap))` means proceed but transfer at most
/// `cap` bytes, `Err` means the call fails with the injected error. With no
/// policy installed this is a single TLS read.
pub fn gate(site: Site) -> io::Result<Option<usize>> {
    POLICY.with(|slot| {
        let mut slot = slot.borrow_mut();
        match slot.as_mut() {
            None => Ok(None),
            Some(policy) => match policy.intercept(site) {
                Verdict::Pass => Ok(None),
                // A zero-byte cap would read as EOF to callers; shortest
                // honest short IO is one byte.
                Verdict::Short(n) => {
                    INJECTED[site_index(site)].fetch_add(1, Ordering::Relaxed);
                    Ok(Some(n.max(1)))
                }
                Verdict::Fail(errno) => {
                    INJECTED[site_index(site)].fetch_add(1, Ordering::Relaxed);
                    Err(io::Error::from_raw_os_error(errno))
                }
            },
        }
    })
}

/// A seeded, reproducible fault plan: probabilistic recoverable faults
/// (`EINTR`, `EAGAIN`, short IO) plus scripted one-shot faults addressed by
/// `(site, nth call of that site)`. Same seed, same byte stream of
/// verdicts.
pub struct FaultPlan {
    rng: u64,
    /// Chance (percent) of `EINTR` per eligible call.
    eintr_pct: u32,
    /// Chance (percent) of a spurious `EAGAIN` on stream IO.
    wouldblock_pct: u32,
    /// Chance (percent) of a short read/write on stream IO.
    short_pct: u32,
    /// Consecutive-injection cap — guarantees retry loops (`EINTR` →
    /// retry) always make progress under any seed.
    max_streak: u32,
    streak: u32,
    counts: [u64; SITE_COUNT],
    scripted: Vec<(Site, u64, i32)>,
    tally: Arc<FaultTally>,
}

impl FaultPlan {
    /// A plan injecting only *recoverable* faults: `EINTR` everywhere a
    /// correct reactor must retry or shrug, spurious `EAGAIN` and short
    /// transfers on stream IO. Application output must be byte-identical
    /// to a fault-free run under this plan.
    pub fn recoverable(seed: u64) -> FaultPlan {
        FaultPlan {
            rng: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
            eintr_pct: 12,
            wouldblock_pct: 12,
            short_pct: 25,
            max_streak: 3,
            streak: 0,
            counts: [0; SITE_COUNT],
            scripted: Vec::new(),
            tally: Arc::new(FaultTally::default()),
        }
    }

    /// The plan's shared injection tally. Clone it before
    /// [`install`]ing the plan; it keeps counting as the plan runs.
    pub fn tally(&self) -> Arc<FaultTally> {
        self.tally.clone()
    }

    /// Adds a scripted fault: the `nth` call (0-based, per site) at `site`
    /// fails with `errno`. Scripted faults fire exactly once and take
    /// precedence over the probabilistic layer.
    pub fn script(mut self, site: Site, nth: u64, errno: i32) -> FaultPlan {
        self.scripted.push((site, nth, errno));
        self
    }

    fn next_u32(&mut self) -> u32 {
        // xorshift64* — tiny, seedable, good enough to scatter faults.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        (x.wrapping_mul(0x2545F4914F6CDD1D) >> 32) as u32
    }
}

impl SysPolicy for FaultPlan {
    fn intercept(&mut self, site: Site) -> Verdict {
        let idx = site_index(site);
        let nth = self.counts[idx];
        self.counts[idx] += 1;
        if let Some(pos) = self
            .scripted
            .iter()
            .position(|&(s, n, _)| s == site && n == nth)
        {
            let (_, _, errno) = self.scripted.swap_remove(pos);
            self.streak = 0;
            self.tally.counts[idx].fetch_add(1, Ordering::Relaxed);
            return Verdict::Fail(errno);
        }
        if self.streak >= self.max_streak {
            self.streak = 0;
            return Verdict::Pass;
        }
        let roll = self.next_u32() % 100;
        let verdict = match site {
            Site::StreamRead | Site::StreamWrite => {
                if roll < self.eintr_pct {
                    Verdict::Fail(EINTR)
                } else if roll < self.eintr_pct + self.wouldblock_pct {
                    Verdict::Fail(EAGAIN)
                } else if roll < self.eintr_pct + self.wouldblock_pct + self.short_pct {
                    Verdict::Short(1 + (self.next_u32() % 7) as usize)
                } else {
                    Verdict::Pass
                }
            }
            // EINTR is the one fault these sites can all absorb: the poll
            // loop treats it as zero events, accept retries, the waker
            // retries its write and the drain loop its read. An injected
            // EAGAIN on the eventfd *write* would silently eat a wakeup —
            // that is a real kernel impossibility (the counter saturates at
            // 2^64-1), so the plan does not fake it.
            Site::EpollWait | Site::Accept | Site::EventfdRead | Site::EventfdWrite => {
                if roll < self.eintr_pct {
                    Verdict::Fail(EINTR)
                } else {
                    Verdict::Pass
                }
            }
            // Failures here are never recoverable-transparent; only
            // scripted faults touch them.
            Site::EpollCreate | Site::EpollCtl | Site::EventfdCreate => Verdict::Pass,
        };
        match verdict {
            Verdict::Pass => self.streak = 0,
            _ => {
                self.streak += 1;
                self.tally.counts[idx].fetch_add(1, Ordering::Relaxed);
            }
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_by_default_and_scoped_to_the_thread() {
        assert!(gate(Site::StreamRead).unwrap().is_none());
        install(Box::new(FaultPlan::recoverable(1).script(
            Site::EpollCtl,
            0,
            ENOSPC,
        )));
        assert_eq!(
            gate(Site::EpollCtl).unwrap_err().raw_os_error(),
            Some(ENOSPC)
        );
        // Another thread sees no policy.
        std::thread::spawn(|| {
            assert!(gate(Site::EpollCtl).unwrap().is_none());
        })
        .join()
        .unwrap();
        clear();
        assert!(gate(Site::EpollCtl).unwrap().is_none());
    }

    #[test]
    fn plans_are_deterministic_and_streak_bounded() {
        let drive = |seed: u64| -> Vec<Verdict> {
            let mut plan = FaultPlan::recoverable(seed);
            (0..200).map(|_| plan.intercept(Site::StreamRead)).collect()
        };
        assert_eq!(drive(7), drive(7), "same seed, same verdicts");
        assert_ne!(drive(7), drive(8), "different seeds diverge");
        // No more than max_streak consecutive injections: retry loops
        // always terminate.
        let verdicts = drive(7);
        let mut streak = 0;
        for v in &verdicts {
            if *v == Verdict::Pass {
                streak = 0;
            } else {
                streak += 1;
                assert!(streak <= 3, "unbounded injection streak");
            }
        }
        assert!(verdicts.iter().any(|v| *v != Verdict::Pass));
    }

    #[test]
    fn scripted_faults_fire_once_at_the_addressed_call() {
        let mut plan = FaultPlan {
            eintr_pct: 0,
            wouldblock_pct: 0,
            short_pct: 0,
            ..FaultPlan::recoverable(3)
        }
        .script(Site::Accept, 2, EMFILE);
        assert_eq!(plan.intercept(Site::Accept), Verdict::Pass);
        assert_eq!(plan.intercept(Site::Accept), Verdict::Pass);
        assert_eq!(plan.intercept(Site::Accept), Verdict::Fail(EMFILE));
        assert_eq!(plan.intercept(Site::Accept), Verdict::Pass);
    }

    #[test]
    fn short_verdicts_are_never_zero_capped() {
        struct AlwaysShort;
        impl SysPolicy for AlwaysShort {
            fn intercept(&mut self, _: Site) -> Verdict {
                Verdict::Short(0)
            }
        }
        install(Box::new(AlwaysShort));
        assert_eq!(gate(Site::StreamWrite).unwrap(), Some(1));
        clear();
    }
}
