//! Raw Linux syscall shims for the handful of calls the reactor needs —
//! `epoll_create1`, `epoll_ctl`, `epoll_wait`/`epoll_pwait`, `eventfd2`,
//! plus `rt_sigaction` for graceful-shutdown signal handling and the
//! `setitimer`/`SIGPROF`/`process_vm_readv` trio behind the sampling CPU
//! profiler — issued directly through the architecture's syscall
//! instruction. The repo builds with no crates.io dependencies, and `std`
//! does not expose epoll, so this module is the entire FFI surface: no
//! `libc` crate, no `extern` bindings, no errno TLS (the raw syscall
//! convention returns `-errno` inline, which maps straight to
//! `io::Error::from_raw_os_error`).
//!
//! Supported targets are `linux` on `x86_64` and `aarch64`; everywhere else
//! the shims compile to stubs returning `Unsupported`, and
//! [`supported`] reports `false` so callers can fall back to blocking IO.
//!
//! # The sampling profiler ([`profiler_arm`])
//!
//! `setitimer(ITIMER_PROF, 1/hz)` makes the kernel deliver `SIGPROF` every
//! `1/hz` seconds of *process CPU time* (wall-clock idle does not tick),
//! to whichever thread is running. The handler reads the interrupted
//! context's PC/FP/SP straight out of the kernel `ucontext` at fixed ABI
//! offsets, then walks the frame-pointer chain (`[fp] = caller fp,
//! [fp+8] = return address` on both supported arches — the workspace
//! builds with `force-frame-pointers=yes`, see `.cargo/config.toml`).
//! Every stack read goes through `process_vm_readv` on our own pid: the
//! kernel validates the address and returns `EFAULT` for garbage instead
//! of faulting inside a signal handler. The sample lands in
//! `atpm_obs::profile`'s pre-allocated lock-free buffer; symbolization is
//! entirely offline. Nothing in the handler allocates, locks, or calls
//! into libc.

use std::io;
use std::os::fd::{AsRawFd, BorrowedFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Raised by the handler [`arm_terminate_flag`] installs. Lives outside
/// the arch-gated modules so the public API shape is target-independent.
static TERMINATE: AtomicBool = AtomicBool::new(false);

/// The signal handler itself: one atomic store, the only thing that is
/// async-signal-safe to do here.
extern "C" fn on_terminate_signal(_sig: i32) {
    TERMINATE.store(true, Ordering::Release);
}

/// Current profiler sampling rate; 0 while disarmed. Outside the
/// arch-gated modules so [`profiler_hz`] exists on every target.
static PROFILE_HZ: AtomicU32 = AtomicU32::new(0);

/// The sampling rate [`profiler_arm`] last installed, or 0 when the
/// profiler is off. `/debug/profile` uses this to decide whether to
/// temporarily arm for the window.
pub fn profiler_hz() -> u32 {
    PROFILE_HZ.load(Ordering::Relaxed)
}

/// `EPOLLIN`: the fd is readable (or at EOF).
pub const EPOLLIN: u32 = 0x001;
/// `EPOLLOUT`: the fd is writable.
pub const EPOLLOUT: u32 = 0x004;
/// `EPOLLERR`: error condition; always reported, never requested.
pub const EPOLLERR: u32 = 0x008;
/// `EPOLLHUP`: hangup; always reported, never requested.
pub const EPOLLHUP: u32 = 0x010;
/// `EPOLLEXCLUSIVE`: wake one waiter per event — the anti-thundering-herd
/// flag for a listener registered in several shard pollers. `ADD`-only;
/// an fd registered exclusive must not be modified afterwards.
pub const EPOLLEXCLUSIVE: u32 = 1 << 28;

/// `epoll_ctl` ops.
pub const EPOLL_CTL_ADD: u32 = 1;
/// Remove an fd from the interest list.
pub const EPOLL_CTL_DEL: u32 = 2;
/// Change an existing registration.
pub const EPOLL_CTL_MOD: u32 = 3;

const EPOLL_CLOEXEC: usize = 0x80000;
const EFD_CLOEXEC: usize = 0x80000;
const EFD_NONBLOCK: usize = 0x800;

/// The kernel's `struct epoll_event`. On x86_64 it is packed (a 12-byte
/// struct); on every other architecture it has natural alignment. Always
/// copy events out by value — taking references into a packed struct is UB
/// bait.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    /// Requested/reported readiness bits (`EPOLL*`).
    pub events: u32,
    /// Opaque per-registration cookie, returned verbatim with each event.
    pub data: u64,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod arch {
    pub const SYS_READ: usize = 0;
    pub const SYS_WRITE: usize = 1;
    pub const SYS_RT_SIGACTION: usize = 13;
    pub const SYS_EPOLL_PWAIT: usize = 281;
    pub const SYS_EPOLL_CTL: usize = 233;
    pub const SYS_EPOLL_CREATE1: usize = 291;
    pub const SYS_EVENTFD2: usize = 290;
    pub const SYS_SETITIMER: usize = 38;
    pub const SYS_PROCESS_VM_READV: usize = 310;
    pub const SYS_GETPID: usize = 39;
    #[cfg(test)]
    pub const SYS_KILL: usize = 62;

    /// PC, FP, SP of the interrupted context, read from the kernel
    /// `ucontext` a `SA_SIGINFO` handler receives as its third argument.
    ///
    /// x86_64 kernel ABI: `struct ucontext` is `uc_flags` (8) + `uc_link`
    /// (8) + `stack_t` (24) = 40 bytes before `uc_mcontext`, whose gpr
    /// array orders `r8 r9 r10 r11 r12 r13 r14 r15 rdi rsi rbp rbx rdx
    /// rax rcx rsp rip` — rbp at index 10, rsp 15, rip 16.
    ///
    /// # Safety
    /// `uctx` must be the ucontext pointer the kernel passed to a running
    /// signal handler.
    pub unsafe fn signal_regs(uctx: *const u8) -> (usize, usize, usize) {
        let gregs = unsafe { uctx.add(40) }.cast::<usize>();
        unsafe {
            (
                gregs.add(16).read(),
                gregs.add(10).read(),
                gregs.add(15).read(),
            )
        }
    }

    /// x86_64 requires userspace to supply the signal-return trampoline
    /// (`SA_RESTORER`); glibc normally hides this. Ours is the canonical
    /// two instructions: load `rt_sigreturn` (15) and trap.
    pub const SA_RESTORER: usize = 0x0400_0000;

    core::arch::global_asm!(
        // `.globl` so the symbol survives codegen-unit partitioning (the
        // reference in `sigaction` can land in a different object file);
        // `.hidden` keeps it out of the dynamic symbol table.
        ".globl __atpm_sigrestorer",
        ".hidden __atpm_sigrestorer",
        "__atpm_sigrestorer:",
        "mov rax, 15",
        "syscall",
    );
    extern "C" {
        pub fn __atpm_sigrestorer();
    }

    /// The kernel's `struct sigaction` on x86_64: handler, flags,
    /// restorer, then a 64-bit mask.
    #[repr(C)]
    pub struct KSigaction {
        pub handler: usize,
        pub flags: usize,
        pub restorer: usize,
        pub mask: u64,
    }

    /// Builds the sigaction installing `handler` with `flags`.
    pub fn sigaction(handler: usize, flags: usize) -> KSigaction {
        KSigaction {
            handler,
            flags: flags | SA_RESTORER,
            restorer: __atpm_sigrestorer as *const () as usize,
            mask: 0,
        }
    }

    /// One instruction, six argument registers: the x86_64 Linux syscall
    /// ABI (`rax` = number, args in `rdi rsi rdx r10 r8 r9`; `rcx`/`r11`
    /// clobbered by the `syscall` instruction itself).
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") n => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                in("r10") a4,
                in("r8") a5,
                in("r9") a6,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod arch {
    pub const SYS_READ: usize = 63;
    pub const SYS_WRITE: usize = 64;
    pub const SYS_RT_SIGACTION: usize = 134;
    pub const SYS_EPOLL_PWAIT: usize = 22;
    pub const SYS_EPOLL_CTL: usize = 21;
    pub const SYS_EPOLL_CREATE1: usize = 20;
    pub const SYS_EVENTFD2: usize = 19;
    pub const SYS_SETITIMER: usize = 103;
    pub const SYS_PROCESS_VM_READV: usize = 270;
    pub const SYS_GETPID: usize = 172;
    #[cfg(test)]
    pub const SYS_KILL: usize = 129;

    /// PC, FP, SP of the interrupted context, read from the kernel
    /// `ucontext` a `SA_SIGINFO` handler receives as its third argument.
    ///
    /// aarch64 kernel ABI: `uc_flags` (8) + `uc_link` (8) + `stack_t`
    /// (24) + `sigset_t` (8, padded out to 128) = 168 bytes, then
    /// `uc_mcontext` aligned to 16 at offset 176: `fault_address`,
    /// `regs[31]`, `sp`, `pc` — fp is `regs[29]` (word 30 from the
    /// mcontext base), sp word 32, pc word 33.
    ///
    /// # Safety
    /// `uctx` must be the ucontext pointer the kernel passed to a running
    /// signal handler.
    pub unsafe fn signal_regs(uctx: *const u8) -> (usize, usize, usize) {
        let mctx = unsafe { uctx.add(176) }.cast::<usize>();
        unsafe {
            (
                mctx.add(33).read(),
                mctx.add(30).read(),
                mctx.add(32).read(),
            )
        }
    }

    /// The kernel's `struct sigaction` on aarch64 (asm-generic layout, no
    /// `SA_RESTORER`: the kernel maps its own vDSO trampoline).
    #[repr(C)]
    pub struct KSigaction {
        pub handler: usize,
        pub flags: usize,
        pub mask: u64,
    }

    /// Builds the sigaction installing `handler` with `flags`.
    pub fn sigaction(handler: usize, flags: usize) -> KSigaction {
        KSigaction {
            handler,
            flags,
            mask: 0,
        }
    }

    /// The aarch64 Linux syscall ABI: `x8` = number, args in `x0..x5`.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn syscall6(
        n: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        unsafe {
            core::arch::asm!(
                "svc 0",
                in("x8") n,
                inlateout("x0") a1 => ret,
                in("x1") a2,
                in("x2") a3,
                in("x3") a4,
                in("x4") a5,
                in("x5") a6,
                options(nostack),
            );
        }
        ret
    }
}

/// Whether this build has working epoll shims. `false` means every call in
/// this module returns `Unsupported` and callers should use blocking IO.
pub const fn supported() -> bool {
    cfg!(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    use super::arch::*;
    use super::*;
    use crate::fault::{gate, Site};
    use std::os::fd::{FromRawFd, OwnedFd};

    /// Folds the raw `-errno` return convention into `io::Result`.
    fn check(ret: isize) -> io::Result<usize> {
        if ret < 0 {
            Err(io::Error::from_raw_os_error(-ret as i32))
        } else {
            Ok(ret as usize)
        }
    }

    /// A fresh epoll instance (`EPOLL_CLOEXEC`).
    pub fn epoll_create1() -> io::Result<OwnedFd> {
        gate(Site::EpollCreate)?;
        let fd = check(unsafe { syscall6(SYS_EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        // SAFETY: the kernel just handed us ownership of this fd.
        Ok(unsafe { OwnedFd::from_raw_fd(fd as RawFd) })
    }

    /// Adds/modifies/removes `fd` on the interest list of `epfd`.
    pub fn epoll_ctl(
        epfd: BorrowedFd<'_>,
        op: u32,
        fd: RawFd,
        events: u32,
        data: u64,
    ) -> io::Result<()> {
        gate(Site::EpollCtl)?;
        let mut ev = EpollEvent { events, data };
        check(unsafe {
            syscall6(
                SYS_EPOLL_CTL,
                epfd.as_raw_fd() as usize,
                op as usize,
                fd as usize,
                std::ptr::addr_of_mut!(ev) as usize,
                0,
                0,
            )
        })?;
        Ok(())
    }

    /// Waits for events; `timeout_ms < 0` blocks indefinitely. Returns how
    /// many entries of `events` were filled. Implemented via `epoll_pwait`
    /// with a null sigmask (aarch64 never had plain `epoll_wait`).
    pub fn epoll_wait(
        epfd: BorrowedFd<'_>,
        events: &mut [EpollEvent],
        timeout_ms: i32,
    ) -> io::Result<usize> {
        gate(Site::EpollWait)?;
        check(unsafe {
            syscall6(
                SYS_EPOLL_PWAIT,
                epfd.as_raw_fd() as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as isize as usize,
                0, // sigmask: NULL — don't alter the signal mask
                8, // sigsetsize (ignored for NULL, but the kernel validates it)
            )
        })
    }

    /// A nonblocking close-on-exec eventfd with counter 0 — the reactor's
    /// cross-thread wakeup primitive.
    pub fn eventfd() -> io::Result<OwnedFd> {
        gate(Site::EventfdCreate)?;
        let fd =
            check(unsafe { syscall6(SYS_EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) })?;
        // SAFETY: fresh fd owned by us.
        Ok(unsafe { OwnedFd::from_raw_fd(fd as RawFd) })
    }

    /// `write(2)` on a raw fd (used to post to an eventfd).
    pub fn write(fd: BorrowedFd<'_>, buf: &[u8]) -> io::Result<usize> {
        gate(Site::EventfdWrite)?;
        check(unsafe {
            syscall6(
                SYS_WRITE,
                fd.as_raw_fd() as usize,
                buf.as_ptr() as usize,
                buf.len(),
                0,
                0,
                0,
            )
        })
    }

    /// `read(2)` on a raw fd (used to drain an eventfd).
    pub fn read(fd: BorrowedFd<'_>, buf: &mut [u8]) -> io::Result<usize> {
        gate(Site::EventfdRead)?;
        check(unsafe {
            syscall6(
                SYS_READ,
                fd.as_raw_fd() as usize,
                buf.as_mut_ptr() as usize,
                buf.len(),
                0,
                0,
                0,
            )
        })
    }

    /// Installs a `SIGINT` + `SIGTERM` handler that raises the returned
    /// flag and returns (`SA_RESTART`, so in-flight blocking syscalls
    /// resume). Poll the flag from an ordinary loop to shut down
    /// gracefully — `atpm-served` uses it to flush its trace buffer and
    /// journal before exiting. Idempotent.
    pub fn arm_terminate_flag() -> io::Result<&'static AtomicBool> {
        const SIGINT: usize = 2;
        const SIGTERM: usize = 15;
        const SA_RESTART: usize = 0x1000_0000;
        let act = sigaction(on_terminate_signal as *const () as usize, SA_RESTART);
        for sig in [SIGINT, SIGTERM] {
            check(unsafe {
                syscall6(
                    SYS_RT_SIGACTION,
                    sig,
                    std::ptr::addr_of!(act) as usize,
                    0, // oldact: NULL
                    8, // sigsetsize
                    0,
                    0,
                )
            })?;
        }
        Ok(&TERMINATE)
    }

    /// Sends `sig` to the current process (tests only).
    #[cfg(test)]
    pub fn raise(sig: usize) -> io::Result<()> {
        let pid = check(unsafe { syscall6(SYS_GETPID, 0, 0, 0, 0, 0, 0) })?;
        check(unsafe { syscall6(SYS_KILL, pid, sig, 0, 0, 0, 0) })?;
        Ok(())
    }

    // ---- sampling CPU profiler (see module docs) ----

    const SIGPROF: usize = 27;
    const ITIMER_PROF: usize = 2;
    const SA_SIGINFO: usize = 4;
    const SA_RESTART: usize = 0x1000_0000;

    #[repr(C)]
    struct Timeval {
        sec: i64,
        usec: i64,
    }

    #[repr(C)]
    struct Itimerval {
        interval: Timeval,
        value: Timeval,
    }

    /// Our own pid, cached at arm time so the handler never has to make
    /// the `getpid` call under a possibly-forked state.
    static PROFILE_PID: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    /// Validated 16-byte read of `[addr, addr+16)` from our own address
    /// space via `process_vm_readv`: the kernel walks the page tables and
    /// returns `EFAULT`/short for unmapped memory, which is the only
    /// async-signal-safe way to probe an untrusted frame pointer.
    fn read_frame(addr: usize) -> Option<(usize, usize)> {
        #[repr(C)]
        struct IoVec {
            base: usize,
            len: usize,
        }
        let mut out = [0usize; 2];
        let local = IoVec {
            base: out.as_mut_ptr() as usize,
            len: 16,
        };
        let remote = IoVec {
            base: addr,
            len: 16,
        };
        let pid = PROFILE_PID.load(Ordering::Relaxed);
        let n = unsafe {
            syscall6(
                SYS_PROCESS_VM_READV,
                pid,
                std::ptr::addr_of!(local) as usize,
                1,
                std::ptr::addr_of!(remote) as usize,
                1,
                0,
            )
        };
        (n == 16).then_some((out[0], out[1]))
    }

    /// The SIGPROF handler: leaf PC from the ucontext, then a bounded
    /// frame-pointer walk. Both supported arches lay frame records out as
    /// `[fp] = caller's fp, [fp + 8] = return address`. Sanity checks:
    /// word alignment, frames strictly above the interrupted SP, bounded
    /// total stack span, and strictly monotone fp progression — any
    /// violation ends the walk with the frames gathered so far.
    extern "C" fn on_profile_signal(_sig: i32, _info: *mut u8, uctx: *mut u8) {
        // SAFETY: the kernel passed us this ucontext (SA_SIGINFO).
        let (pc, mut fp, sp) = unsafe { signal_regs(uctx) };
        let mut pcs = [0usize; atpm_obs::profile::MAX_DEPTH];
        pcs[0] = pc;
        let mut n = 1;
        let mut floor = sp;
        while n < pcs.len() {
            let misaligned = fp & (size_of::<usize>() - 1) != 0;
            if fp == 0 || misaligned || fp < floor || fp - floor > (1 << 26) {
                break;
            }
            let Some((next_fp, ret)) = read_frame(fp) else {
                break;
            };
            if ret < 0x1000 {
                break; // null/low return address: end of the chain
            }
            pcs[n] = ret;
            n += 1;
            floor = fp + size_of::<usize>();
            fp = next_fp;
        }
        atpm_obs::profile::record_sample(&pcs[..n]);
    }

    /// Arms the sampling profiler: installs the SIGPROF stack sampler and
    /// starts `setitimer(ITIMER_PROF)` firing every `1/hz` seconds of
    /// process CPU time. Samples accumulate in `atpm_obs::profile`;
    /// symbolize with `atpm_obs::profile::render_folded_since`. `hz = 0`
    /// disarms. Re-arming with a new rate is fine — `setitimer` replaces
    /// the previous interval.
    pub fn profiler_arm(hz: u32) -> io::Result<()> {
        if hz == 0 {
            return profiler_disarm();
        }
        let pid = check(unsafe { syscall6(SYS_GETPID, 0, 0, 0, 0, 0, 0) })?;
        PROFILE_PID.store(pid, Ordering::Relaxed);
        let act = sigaction(
            on_profile_signal as *const () as usize,
            SA_SIGINFO | SA_RESTART,
        );
        check(unsafe {
            syscall6(
                SYS_RT_SIGACTION,
                SIGPROF,
                std::ptr::addr_of!(act) as usize,
                0, // oldact: NULL
                8, // sigsetsize
                0,
                0,
            )
        })?;
        let period_us = (1_000_000 / hz.max(1)).max(1) as i64;
        let timer = Itimerval {
            interval: Timeval {
                sec: 0,
                usec: period_us,
            },
            value: Timeval {
                sec: 0,
                usec: period_us,
            },
        };
        check(unsafe {
            syscall6(
                SYS_SETITIMER,
                ITIMER_PROF,
                std::ptr::addr_of!(timer) as usize,
                0, // old value: NULL
                0,
                0,
                0,
            )
        })?;
        PROFILE_HZ.store(hz, Ordering::Relaxed);
        Ok(())
    }

    /// Stops the profiling timer (the SIGPROF disposition stays installed,
    /// harmless once the timer no longer fires).
    pub fn profiler_disarm() -> io::Result<()> {
        let timer = Itimerval {
            interval: Timeval { sec: 0, usec: 0 },
            value: Timeval { sec: 0, usec: 0 },
        };
        check(unsafe {
            syscall6(
                SYS_SETITIMER,
                ITIMER_PROF,
                std::ptr::addr_of!(timer) as usize,
                0,
                0,
                0,
                0,
            )
        })?;
        PROFILE_HZ.store(0, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    use super::*;
    use std::os::fd::OwnedFd;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "atpm-net epoll shims are linux x86_64/aarch64 only",
        ))
    }

    pub fn epoll_create1() -> io::Result<OwnedFd> {
        unsupported()
    }

    pub fn epoll_ctl(
        _epfd: BorrowedFd<'_>,
        _op: u32,
        _fd: RawFd,
        _events: u32,
        _data: u64,
    ) -> io::Result<()> {
        unsupported()
    }

    pub fn epoll_wait(
        _epfd: BorrowedFd<'_>,
        _events: &mut [EpollEvent],
        _timeout_ms: i32,
    ) -> io::Result<usize> {
        unsupported()
    }

    pub fn eventfd() -> io::Result<OwnedFd> {
        unsupported()
    }

    pub fn write(_fd: BorrowedFd<'_>, _buf: &[u8]) -> io::Result<usize> {
        unsupported()
    }

    pub fn read(_fd: BorrowedFd<'_>, _buf: &mut [u8]) -> io::Result<usize> {
        unsupported()
    }

    pub fn arm_terminate_flag() -> io::Result<&'static AtomicBool> {
        // Touch the statics so unsupported builds don't warn on them.
        let _ = on_terminate_signal as *const ();
        unsupported()
    }

    pub fn profiler_arm(_hz: u32) -> io::Result<()> {
        unsupported()
    }

    pub fn profiler_disarm() -> io::Result<()> {
        unsupported()
    }
}

pub use imp::{
    arm_terminate_flag, epoll_create1, epoll_ctl, epoll_wait, eventfd, profiler_arm,
    profiler_disarm, read, write,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::fd::AsFd;

    #[test]
    fn this_repo_targets_a_supported_platform() {
        // The build container and CI are linux x86_64; if this ever fails
        // the serve layer silently falls back to the pool backend, which is
        // worth knowing about.
        assert!(supported());
    }

    #[test]
    fn epoll_instance_creates_and_times_out() {
        let ep = epoll_create1().unwrap();
        let mut events = [EpollEvent::default(); 4];
        // Nothing registered: must time out promptly with zero events.
        let n = epoll_wait(ep.as_fd(), &mut events, 10).unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn eventfd_roundtrip_through_raw_read_write() {
        let efd = eventfd().unwrap();
        // Drain on empty: nonblocking read must fail with WouldBlock.
        let mut buf = [0u8; 8];
        let err = read(efd.as_fd(), &mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        // Post twice, read once: eventfd sums the counter.
        write(efd.as_fd(), &1u64.to_ne_bytes()).unwrap();
        write(efd.as_fd(), &1u64.to_ne_bytes()).unwrap();
        assert_eq!(read(efd.as_fd(), &mut buf).unwrap(), 8);
        assert_eq!(u64::from_ne_bytes(buf), 2);
    }

    #[test]
    fn epoll_reports_eventfd_readability_with_cookie() {
        let ep = epoll_create1().unwrap();
        let efd = eventfd().unwrap();
        epoll_ctl(
            ep.as_fd(),
            EPOLL_CTL_ADD,
            efd.as_raw_fd(),
            EPOLLIN,
            0xDEADBEEF,
        )
        .unwrap();
        write(efd.as_fd(), &1u64.to_ne_bytes()).unwrap();
        let mut events = [EpollEvent::default(); 4];
        let n = epoll_wait(ep.as_fd(), &mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let ev = events[0];
        let (bits, data) = (ev.events, ev.data);
        assert_eq!(data, 0xDEADBEEF);
        assert_ne!(bits & EPOLLIN, 0);
        // Deregister; the next wait must time out.
        epoll_ctl(ep.as_fd(), EPOLL_CTL_DEL, efd.as_raw_fd(), 0, 0).unwrap();
        assert_eq!(epoll_wait(ep.as_fd(), &mut events, 10).unwrap(), 0);
    }

    #[test]
    fn profiler_samples_a_busy_loop_with_sane_stacks() {
        // End-to-end check of the hard-coded ucontext offsets and the
        // frame-pointer walk: arm at a high rate, burn CPU, and require
        // that samples landed and at least one PC resolves to a symbol in
        // this binary. Wrong offsets would yield garbage PCs (resolving
        // nowhere) or a crash right here.
        profiler_arm(997).unwrap();
        let pos = atpm_obs::profile::cursor();
        // ITIMER_PROF ticks on CPU time, so busy-work guarantees fires.
        let mut acc = 0u64;
        let t0 = std::time::Instant::now();
        while t0.elapsed() < std::time::Duration::from_millis(300) {
            for i in 0..10_000u64 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            }
            std::hint::black_box(acc);
        }
        profiler_disarm().unwrap();
        assert_eq!(profiler_hz(), 0);
        let stacks = atpm_obs::profile::collect_since(pos);
        assert!(
            !stacks.is_empty(),
            "no SIGPROF samples after 300ms of busy CPU at 997 Hz"
        );
        let symbols = atpm_obs::profile::Symbolizer::from_self().unwrap();
        let resolved = stacks
            .iter()
            .flatten()
            .filter(|&&pc| symbols.resolve(pc).is_some())
            .count();
        assert!(
            resolved > 0,
            "none of {} sampled PCs resolve to a symbol — bad ucontext offsets?",
            stacks.iter().map(|s| s.len()).sum::<usize>()
        );
    }

    #[test]
    fn sigterm_raises_the_terminate_flag_instead_of_killing_us() {
        let flag = arm_terminate_flag().unwrap();
        assert!(!flag.load(Ordering::Acquire));
        imp::raise(15).unwrap(); // SIGTERM, handled — the process survives
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while !flag.load(Ordering::Acquire) {
            assert!(
                std::time::Instant::now() < deadline,
                "terminate flag never raised"
            );
            std::thread::yield_now();
        }
    }
}
