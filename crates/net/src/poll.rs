//! [`Poller`]: a safe, level-triggered wrapper over one epoll instance.
//!
//! Level-triggered is a deliberate choice: the reactor's connection state
//! machines re-derive their interest set after every step, so "tell me
//! again until I consume it" semantics make lost-wakeup bugs structurally
//! impossible, at the cost of one redundant `epoll_ctl` when interest
//! changes. Each registration carries a `u64` token the caller uses to map
//! events back to connections (slot + generation, so a recycled slot never
//! aliases a stale event).

use std::io;
use std::os::fd::{AsFd, AsRawFd};
use std::time::Duration;

use crate::sys;

/// What a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when readable (or peer-closed).
    pub readable: bool,
    /// Wake when writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// No IO interest (errors and hangups are still delivered).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };

    fn bits(self) -> u32 {
        let mut bits = 0;
        if self.readable {
            bits |= sys::EPOLLIN;
        }
        if self.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

/// One readiness event, decoded.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Read won't block (data, EOF, or an error to collect).
    pub readable: bool,
    /// Write won't block.
    pub writable: bool,
    /// `EPOLLERR`/`EPOLLHUP` was set — the fd is in a terminal state; a
    /// read/write will surface the actual error.
    pub is_err: bool,
}

/// A level-triggered epoll instance plus its reusable raw event buffer.
pub struct Poller {
    ep: std::os::fd::OwnedFd,
    raw: Vec<sys::EpollEvent>,
}

impl Poller {
    /// A fresh epoll instance with room for `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> io::Result<Poller> {
        Ok(Poller {
            ep: sys::epoll_create1()?,
            raw: vec![sys::EpollEvent::default(); capacity.max(8)],
        })
    }

    /// A fresh epoll instance (256-event batches).
    pub fn new() -> io::Result<Poller> {
        Self::with_capacity(256)
    }

    /// Registers `fd` under `token`. With `exclusive`, at most one of the
    /// pollers sharing this fd wakes per event (for listeners registered in
    /// several reactor shards); exclusive registrations must never be
    /// [`modify`](Poller::modify)-ed.
    pub fn add(
        &self,
        fd: impl AsFd,
        token: u64,
        interest: Interest,
        exclusive: bool,
    ) -> io::Result<()> {
        let mut bits = interest.bits();
        if exclusive {
            bits |= sys::EPOLLEXCLUSIVE;
        }
        sys::epoll_ctl(
            self.ep.as_fd(),
            sys::EPOLL_CTL_ADD,
            fd.as_fd().as_raw_fd(),
            bits,
            token,
        )
    }

    /// Changes the interest set of a registered fd.
    pub fn modify(&self, fd: impl AsFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl(
            self.ep.as_fd(),
            sys::EPOLL_CTL_MOD,
            fd.as_fd().as_raw_fd(),
            interest.bits(),
            token,
        )
    }

    /// Removes a registration. (Closing the fd removes it implicitly; this
    /// exists for fds that outlive their registration.)
    pub fn remove(&self, fd: impl AsFd) -> io::Result<()> {
        sys::epoll_ctl(
            self.ep.as_fd(),
            sys::EPOLL_CTL_DEL,
            fd.as_fd().as_raw_fd(),
            0,
            0,
        )
    }

    /// Waits for readiness, appending decoded events to `out` (cleared
    /// first). `None` blocks indefinitely. A signal interruption is treated
    /// as a timeout, not an error.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        let n = match sys::epoll_wait(self.ep.as_fd(), &mut self.raw, timeout_ms) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for raw in &self.raw[..n] {
            // Copy out of the (possibly packed) kernel struct before use.
            let (bits, token) = { (raw.events, raw.data) };
            let is_err = bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
            out.push(Event {
                token,
                // An errored fd is "ready" for both directions: the state
                // machine finds out by performing the IO.
                readable: bits & sys::EPOLLIN != 0 || is_err,
                writable: bits & sys::EPOLLOUT != 0 || is_err,
                is_err,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn readability_tracks_data_and_interest_changes() {
        let (mut a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(&b, 7, Interest::READ, false).unwrap();
        let mut events = Vec::new();

        // Idle: timeout, no events.
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        // Data arrives: readable with our token.
        a.write_all(b"x").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        // Level-triggered: unconsumed data keeps firing.
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);

        // Interest off: silence even with data pending.
        poller.modify(&b, 7, Interest::NONE).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());

        // Interest back on, consume, silence again.
        poller.modify(&b, 7, Interest::READ).unwrap();
        let mut buf = [0u8; 8];
        let mut b = b;
        assert_eq!(b.read(&mut buf).unwrap(), 1);
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn peer_close_is_readable_and_flagged() {
        let (a, b) = pair();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(&b, 1, Interest::READ, false).unwrap();
        drop(a);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].readable, "EOF must wake a reader");
    }

    #[test]
    fn writability_fires_for_a_fresh_socket() {
        let (a, _b) = pair();
        a.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.add(&a, 3, Interest::WRITE, false).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].writable);
        poller.remove(&a).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
    }
}
