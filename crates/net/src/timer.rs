//! A hashed timer wheel: O(1) schedule/cancel, deadlines bucketed by tick.
//!
//! The wheel is pure arithmetic over `u64` millisecond timestamps — it
//! never reads a clock. The reactor feeds it monotonic milliseconds; tests
//! feed it whatever they like (the session-expiry suite drives it with a
//! mock clock). Deadlines hash into `slots` buckets by tick index, so an
//! entry several laps out sits in its bucket and is skipped (not fired)
//! until its actual deadline's lap comes around — the classic hashed wheel,
//! as opposed to a hierarchical one: cheap for the reactor's workload of
//! many short, frequently-cancelled deadlines plus a few periodic ticks.

use std::collections::HashSet;

/// Handle for cancelling a scheduled timer. Single-use: cancelling a timer
/// that already fired (or was already cancelled) is a no-op that may leave
/// a tombstone until the wheel next sweeps past its bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(u64);

#[derive(Debug, Clone, Copy)]
struct Entry {
    deadline_ms: u64,
    id: u64,
    tag: u64,
}

/// The wheel. All times are absolute milliseconds on whatever clock the
/// caller uses (the reactor anchors an `Instant` at startup).
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    tick_ms: u64,
    /// Next tick index to process; everything strictly before it has fired.
    cursor: u64,
    next_id: u64,
    cancelled: HashSet<u64>,
    /// Entries currently stored (including cancelled-but-unswept ones).
    stored: usize,
}

impl TimerWheel {
    /// A wheel with `slots` buckets (rounded up to a power of two) of
    /// `tick_ms` granularity, starting at `now_ms`.
    pub fn new(tick_ms: u64, slots: usize, now_ms: u64) -> TimerWheel {
        let tick_ms = tick_ms.max(1);
        TimerWheel {
            slots: vec![Vec::new(); slots.next_power_of_two().max(2)],
            tick_ms,
            cursor: now_ms / tick_ms,
            next_id: 0,
            cancelled: HashSet::new(),
            stored: 0,
        }
    }

    /// Granularity: deadlines fire within one tick of their nominal time
    /// (an entry due later in the tick `advance` reaches fires with that
    /// tick — i.e. up to `tick_ms - 1` ms early, never a lap late).
    pub fn tick_ms(&self) -> u64 {
        self.tick_ms
    }

    /// Schedules `tag` to fire at `deadline_ms` (clamped to the present:
    /// a deadline in the past fires on the next [`advance`](Self::advance)).
    pub fn schedule(&mut self, deadline_ms: u64, tag: u64) -> TimerId {
        let id = self.next_id;
        self.next_id += 1;
        let tick = (deadline_ms / self.tick_ms).max(self.cursor);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry {
            deadline_ms,
            id,
            tag,
        });
        self.stored += 1;
        TimerId(id)
    }

    /// Cancels a pending timer. Lazy: the entry is dropped when its bucket
    /// is next swept.
    pub fn cancel(&mut self, id: TimerId) {
        self.cancelled.insert(id.0);
    }

    /// Timers that have neither fired nor been cancelled.
    pub fn pending(&self) -> usize {
        self.stored - self.cancelled.len().min(self.stored)
    }

    /// Earliest live deadline, if any — the reactor's poll timeout. O(live
    /// entries); fine at reactor scale (hundreds of entries, one call per
    /// loop iteration).
    pub fn next_deadline(&self) -> Option<u64> {
        self.slots
            .iter()
            .flatten()
            .filter(|e| !self.cancelled.contains(&e.id))
            .map(|e| e.deadline_ms)
            .min()
    }

    /// Advances the wheel to `now_ms`, pushing the `tag` of every fired
    /// timer into `fired` (deadline order within a bucket is not
    /// guaranteed; callers needing order sort the output).
    pub fn advance(&mut self, now_ms: u64, fired: &mut Vec<u64>) {
        let target = now_ms / self.tick_ms;
        let nslots = self.slots.len() as u64;
        // If the wheel fell behind by more than a full lap, every bucket
        // gets swept exactly once — no need to spin the cursor lap by lap.
        let sweep_all = target.saturating_sub(self.cursor) >= nslots;
        let last = if sweep_all {
            self.cursor + nslots - 1
        } else {
            target
        };
        while self.cursor <= last {
            let slot = (self.cursor % nslots) as usize;
            let bucket = &mut self.slots[slot];
            let mut i = 0;
            while i < bucket.len() {
                let e = bucket[i];
                if self.cancelled.remove(&e.id) {
                    bucket.swap_remove(i);
                    self.stored -= 1;
                    continue;
                }
                // Fire anything whose tick has been reached; entries in
                // this bucket for a later lap stay put. The comparison is
                // on ticks, not raw milliseconds: an entry due later in
                // the *current* tick must fire now (up to one tick early,
                // which is the wheel's stated granularity) — otherwise the
                // cursor walks past its bucket and the timer silently
                // waits a full wheel lap, while `next_deadline` keeps
                // telling the reactor it is due, producing a zero-timeout
                // poll spin.
                if e.deadline_ms / self.tick_ms <= target {
                    fired.push(e.tag);
                    bucket.swap_remove(i);
                    self.stored -= 1;
                    continue;
                }
                i += 1;
            }
            self.cursor += 1;
        }
        self.cursor = target + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn advance_sorted(wheel: &mut TimerWheel, now: u64) -> Vec<u64> {
        let mut fired = Vec::new();
        wheel.advance(now, &mut fired);
        fired.sort_unstable();
        fired
    }

    #[test]
    fn fires_at_deadline_not_before() {
        let mut wheel = TimerWheel::new(10, 8, 0);
        wheel.schedule(35, 1);
        assert_eq!(advance_sorted(&mut wheel, 20), Vec::<u64>::new());
        assert_eq!(wheel.pending(), 1);
        assert_eq!(advance_sorted(&mut wheel, 40), vec![1]);
        assert_eq!(wheel.pending(), 0);
        // Idempotent: no double fire.
        assert_eq!(advance_sorted(&mut wheel, 100), Vec::<u64>::new());
    }

    #[test]
    fn entries_a_lap_out_wait_their_turn() {
        // 8 slots x 10ms = one lap is 80ms. A deadline 3 laps out shares a
        // bucket with near deadlines but must not fire early.
        let mut wheel = TimerWheel::new(10, 8, 0);
        wheel.schedule(20, 1);
        wheel.schedule(20 + 240, 2); // same bucket, 3 laps later
        assert_eq!(advance_sorted(&mut wheel, 25), vec![1]);
        assert_eq!(advance_sorted(&mut wheel, 200), Vec::<u64>::new());
        assert_eq!(advance_sorted(&mut wheel, 261), vec![2]);
    }

    #[test]
    fn cancel_suppresses_and_next_deadline_skips_it() {
        let mut wheel = TimerWheel::new(10, 8, 0);
        let a = wheel.schedule(30, 1);
        wheel.schedule(50, 2);
        assert_eq!(wheel.next_deadline(), Some(30));
        wheel.cancel(a);
        assert_eq!(wheel.next_deadline(), Some(50));
        assert_eq!(wheel.pending(), 1);
        assert_eq!(advance_sorted(&mut wheel, 100), vec![2]);
        assert_eq!(wheel.pending(), 0);
    }

    #[test]
    fn mid_tick_deadline_fires_with_its_tick_not_a_lap_later() {
        // Regression: advance() at now=1060 reaches tick 21; a deadline at
        // 1073 lives in tick 21 too. It must fire now (13ms early, within
        // the tick_ms=50 granularity) — the old ms-exact comparison left
        // it stranded in an already-swept bucket for a whole wheel lap
        // while next_deadline() kept reporting it due, spinning the
        // reactor's poll loop at zero timeout.
        let mut wheel = TimerWheel::new(50, 8, 1_000);
        wheel.schedule(1_073, 7);
        assert_eq!(advance_sorted(&mut wheel, 1_060), vec![7]);
        assert_eq!(wheel.pending(), 0);
        assert_eq!(wheel.next_deadline(), None);
    }

    #[test]
    fn past_deadlines_fire_on_next_advance() {
        let mut wheel = TimerWheel::new(10, 8, 1_000);
        wheel.schedule(5, 9); // long past
        assert_eq!(advance_sorted(&mut wheel, 1_001), vec![9]);
    }

    #[test]
    fn far_jump_sweeps_every_bucket_once() {
        let mut wheel = TimerWheel::new(10, 8, 0);
        for i in 0..32 {
            wheel.schedule(i * 7 + 1, i);
        }
        // Jump 100 laps at once: all 32 must fire, exactly once.
        let fired = advance_sorted(&mut wheel, 80_000);
        assert_eq!(fired, (0..32).collect::<Vec<u64>>());
        assert_eq!(wheel.pending(), 0);
    }

    #[test]
    fn interleaved_schedule_and_advance() {
        let mut wheel = TimerWheel::new(5, 16, 0);
        wheel.schedule(12, 1);
        assert_eq!(advance_sorted(&mut wheel, 15), vec![1]);
        // Re-arm from the new present, including a deadline in the current
        // tick (fires next advance, never lost).
        wheel.schedule(15, 2);
        wheel.schedule(40, 3);
        let fired = advance_sorted(&mut wheel, 20);
        assert_eq!(fired, vec![2]);
        assert_eq!(advance_sorted(&mut wheel, 40), vec![3]);
    }
}
