//! Connection buffers: a write buffer with partial-write resumption and a
//! nonblocking read helper.
//!
//! These are the two halves of the per-connection state machine's IO edge:
//! [`WriteBuf`] owns every byte queued for the peer and survives any number
//! of short writes (the kernel send buffer filling up is normal under load,
//! not an error), and [`read_nonblocking`] slurps whatever the kernel has
//! buffered without ever parking the reactor thread.

use std::io::{self, Read, Write};

use crate::fault::{gate, Site};

/// An output queue with a consumption cursor: pushed bytes stay put until
/// the socket accepts them, however many `write` calls that takes.
#[derive(Default)]
pub struct WriteBuf {
    data: Vec<u8>,
    pos: usize,
}

impl WriteBuf {
    /// An empty buffer.
    pub fn new() -> WriteBuf {
        WriteBuf::default()
    }

    /// Queues bytes for the peer.
    pub fn push(&mut self, bytes: &[u8]) {
        if self.pos == self.data.len() {
            // Fully drained: restart at the front instead of growing.
            self.data.clear();
            self.pos = 0;
        }
        self.data.extend_from_slice(bytes);
    }

    /// Bytes not yet accepted by the socket.
    pub fn pending(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether everything pushed has been written out.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Writes as much as the socket will take. Returns `Ok(true)` when the
    /// buffer fully drained, `Ok(false)` on `WouldBlock` with bytes left
    /// (re-arm `EPOLLOUT` and resume later). Short writes are resumed
    /// in-place; a `WriteZero`-class failure is an error like any other.
    pub fn flush_to(&mut self, w: &mut impl Write) -> io::Result<bool> {
        while self.pos < self.data.len() {
            // Fault gate: an injected error takes the same arms a real one
            // would; a short-write cap just trims this pass's slice (≥1
            // byte, so `Ok(0)` still only ever means the real socket died).
            let attempt = match gate(Site::StreamWrite) {
                Ok(cap) => {
                    let end = cap.map_or(self.data.len(), |c| (self.pos + c).min(self.data.len()));
                    w.write(&self.data[self.pos..end])
                }
                Err(e) => Err(e),
            };
            match attempt {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.compact();
                    return Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.data.clear();
        self.pos = 0;
        Ok(true)
    }

    /// Drops consumed bytes once they dominate the buffer, so a long-lived
    /// connection under backpressure doesn't accrete a graveyard prefix.
    fn compact(&mut self) {
        if self.pos >= 4096 && self.pos * 2 >= self.data.len() {
            self.data.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// What a nonblocking read pass observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadStatus {
    /// Kernel buffer drained; more may arrive later.
    WouldBlock,
    /// Peer closed its write side (appended bytes, if any, are final).
    Eof,
    /// `limit` reached with the socket still readable — the caller stops
    /// reading as backpressure and resumes after consuming.
    LimitReached,
}

/// Reads everything currently available from `stream` into `buf`, up to
/// `limit` total buffered bytes. The stream must be in nonblocking mode.
pub fn read_nonblocking(
    stream: &mut impl Read,
    buf: &mut Vec<u8>,
    limit: usize,
) -> io::Result<ReadStatus> {
    const CHUNK: usize = 16 * 1024;
    loop {
        if buf.len() >= limit {
            return Ok(ReadStatus::LimitReached);
        }
        let old = buf.len();
        let mut want = CHUNK.min(limit - old);
        // Fault gate: injected errors flow through the arms below exactly
        // like kernel ones; a short-read cap shrinks this pass's chunk.
        let attempt = match gate(Site::StreamRead) {
            Ok(cap) => {
                if let Some(c) = cap {
                    want = want.min(c);
                }
                buf.resize(old + want, 0);
                stream.read(&mut buf[old..])
            }
            Err(e) => Err(e),
        };
        match attempt {
            Ok(0) => {
                buf.truncate(old);
                return Ok(ReadStatus::Eof);
            }
            Ok(n) => buf.truncate(old + n),
            Err(e) => {
                buf.truncate(old);
                return match e.kind() {
                    io::ErrorKind::WouldBlock => Ok(ReadStatus::WouldBlock),
                    io::ErrorKind::Interrupted => continue,
                    _ => Err(e),
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that accepts at most `cap` bytes per call and signals
    /// WouldBlock after `budget` total bytes — a kernel send buffer in
    /// miniature.
    struct Choppy {
        out: Vec<u8>,
        cap: usize,
        budget: usize,
    }

    impl Write for Choppy {
        fn write(&mut self, b: &[u8]) -> io::Result<usize> {
            if self.budget == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            let n = b.len().min(self.cap).min(self.budget);
            self.out.extend_from_slice(&b[..n]);
            self.budget -= n;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn partial_writes_resume_without_loss_or_duplication() {
        let mut wb = WriteBuf::new();
        wb.push(b"hello ");
        wb.push(b"world");
        let mut sink = Choppy {
            out: Vec::new(),
            cap: 3,
            budget: 4,
        };
        // First pass: 4 bytes, then WouldBlock.
        assert!(!wb.flush_to(&mut sink).unwrap());
        assert_eq!(wb.pending(), 7);
        // Push more while blocked — ordering must hold.
        wb.push(b"!");
        sink.budget = usize::MAX;
        assert!(wb.flush_to(&mut sink).unwrap());
        assert_eq!(sink.out, b"hello world!");
        assert!(wb.is_empty());
        // Buffer reuse after drain.
        wb.push(b"again");
        assert!(wb.flush_to(&mut sink).unwrap());
        assert_eq!(&sink.out[12..], b"again");
    }

    #[test]
    fn read_nonblocking_observes_eof_and_limit() {
        // A cursor reader: yields data then EOF.
        let data = vec![7u8; 40_000];
        let mut reader = io::Cursor::new(data.clone());
        let mut buf = Vec::new();
        // Generous limit: everything arrives, then EOF.
        assert_eq!(
            read_nonblocking(&mut reader, &mut buf, 1 << 20).unwrap(),
            ReadStatus::Eof
        );
        assert_eq!(buf, data);
        // Tight limit: stop early.
        let mut reader = io::Cursor::new(data);
        let mut buf = Vec::new();
        assert_eq!(
            read_nonblocking(&mut reader, &mut buf, 10_000).unwrap(),
            ReadStatus::LimitReached
        );
        assert_eq!(buf.len(), 10_000);
    }
}
