//! Reactor-plane metrics: counters a server registers into *its own*
//! [`Registry`] and hands to each reactor shard.
//!
//! The handles are per-server rather than process-global so two servers in
//! one process (the pool-vs-epoll differential tests) keep independent
//! numbers, and so the pool backend can tick the same counters at the
//! equivalent points of its blocking loop — which is what keeps the
//! `/metrics` bodies of the two backends byte-identical under identical
//! traffic. Fault-injection tallies are the exception: they live in
//! [`crate::fault`] next to the injection gate (see
//! [`crate::fault::injected_total`]) and reach the exposition as
//! render-time callbacks.

use std::sync::Arc;

use atpm_obs::{Counter, Registry};

/// Connection-plane counters shared by a server's reactor shards (or
/// mirrored by its blocking accept pool).
pub struct NetMetrics {
    /// Connections accepted and registered.
    pub accepts: Arc<Counter>,
    /// Complete frames handed to `Driver::dispatch` (or executed inline by
    /// a blocking backend).
    pub dispatches: Arc<Counter>,
    /// Connections closed (any reason: peer EOF, error, idle timeout).
    pub conns_closed: Arc<Counter>,
}

impl NetMetrics {
    /// Registers the connection-plane families in `registry` and returns
    /// the shared handles. Idempotent per registry.
    pub fn register(registry: &Registry) -> Arc<NetMetrics> {
        Arc::new(NetMetrics {
            accepts: registry.counter(
                "atpm_net_accepted_total",
                "Connections accepted and registered",
            ),
            dispatches: registry.counter(
                "atpm_net_dispatched_total",
                "Complete request frames handed to the execution layer",
            ),
            conns_closed: registry.counter(
                "atpm_net_conns_closed_total",
                "Connections closed for any reason",
            ),
        })
    }
}
