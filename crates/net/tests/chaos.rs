//! Chaos suite: drives full reactor shards under seeded syscall fault
//! plans and asserts the two invariants that define "robust" here:
//!
//! 1. **Transparency** — recoverable faults (`EINTR`, spurious `EAGAIN`,
//!    short reads/writes) must be invisible to the application: the bytes
//!    every client receives are identical to a fault-free run.
//! 2. **No leaks** — whatever the fault schedule (including connection
//!    resets, `EMFILE` storms, and failing `epoll_ctl`), the reactor exits
//!    with every connection slot back on the free list and an empty timer
//!    wheel.
//!
//! The fault policy is thread-local, installed by the reactor thread
//! itself, so client sockets in this file always behave honestly.

#![cfg(test)]

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use atpm_net::fault::{self, FaultPlan, Site, ECONNRESET, EMFILE, ENOSPC};
use atpm_net::{ConnId, Driver, Reactor, ReactorConfig, ReactorStats, Reply, ReplyQueue, Sliced};

const CLIENTS: usize = 4;
const LINES: usize = 6;

/// Newline-framed echo-uppercase: the simplest protocol that still
/// exercises frame cutting, dispatch, reply queuing, and pipelining.
struct EchoDriver;

impl Driver for EchoDriver {
    fn slice(&mut self, buf: &[u8]) -> Sliced {
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => Sliced::Frame(pos + 1),
            None => Sliced::Partial {
                head_complete: false,
            },
        }
    }

    fn dispatch(&mut self, conn: ConnId, frame: Vec<u8>, replies: &Arc<ReplyQueue>) {
        replies.push(Reply {
            conn,
            bytes: frame.to_ascii_uppercase(),
            keep_alive: true,
            id: None,
        });
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

fn payload(client: usize, seed: u64) -> Vec<u8> {
    let mut out = Vec::new();
    for line in 0..LINES {
        out.extend_from_slice(
            format!("conn{client} line{line} seed{seed} the quick brown fox\n").as_bytes(),
        );
    }
    out
}

/// One client conversation: write the payload in rng-sized dribbles,
/// half-close, then read everything the server sends until it closes.
/// `None` means the connection died midway (tolerated only in destructive
/// scenarios).
fn client(addr: std::net::SocketAddr, id: usize, seed: u64) -> Option<Vec<u8>> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let bytes = payload(id, seed);
    let mut rng = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(id as u64 + 1);
    let mut off = 0;
    while off < bytes.len() {
        let n = (1 + (xorshift(&mut rng) % 9) as usize).min(bytes.len() - off);
        stream.write_all(&bytes[off..off + n]).ok()?;
        off += n;
    }
    // Half-close: the server answers the remaining frames, then closes —
    // so a clean EOF below proves the slot was released server-side.
    stream.shutdown(Shutdown::Write).ok()?;
    let mut got = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return Some(got),
            Ok(n) => got.extend_from_slice(&buf[..n]),
            Err(_) => return None,
        }
    }
}

/// Boots a single-shard reactor (fault plan installed on the reactor
/// thread only), runs all clients to completion, stops the shard, and
/// returns per-client received bytes plus the shard's leak accounting.
fn run_scenario(seed: u64, plan: Option<FaultPlan>) -> (Vec<Option<Vec<u8>>>, ReactorStats) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let reactor = Reactor::new(
        listener,
        ReactorConfig {
            tick_ms: 10,
            idle_timeout_ms: Some(10_000),
            ..ReactorConfig::default()
        },
    )
    .unwrap();
    let replies = reactor.replies();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();
    let shard = std::thread::spawn(move || {
        if let Some(plan) = plan {
            fault::install(Box::new(plan));
        }
        let stats = reactor.run(EchoDriver, &stop2);
        fault::clear();
        stats
    });
    let clients: Vec<_> = (0..CLIENTS)
        .map(|id| std::thread::spawn(move || client(addr, id, seed)))
        .collect();
    let outputs: Vec<Option<Vec<u8>>> = clients.into_iter().map(|h| h.join().unwrap()).collect();
    stop.store(true, Ordering::SeqCst);
    replies.waker().wake();
    let stats = shard.join().unwrap();
    (outputs, stats)
}

fn assert_leak_free(stats: &ReactorStats, context: &str) {
    assert_eq!(stats.live_conns, 0, "{context}: connections still live");
    assert_eq!(
        stats.free_slots, stats.slots,
        "{context}: leaked connection slots"
    );
    assert_eq!(stats.pending_timers, 0, "{context}: stranded timers");
}

#[test]
fn recoverable_faults_are_invisible_across_many_seeds() {
    if !atpm_net::supported() {
        return;
    }
    for seed in 0..10u64 {
        let (clean, clean_stats) = run_scenario(seed, None);
        assert_leak_free(&clean_stats, &format!("clean seed {seed}"));
        for (id, out) in clean.iter().enumerate() {
            assert_eq!(
                out.as_deref(),
                Some(payload(id, seed).to_ascii_uppercase().as_slice()),
                "clean seed {seed} client {id}"
            );
        }
        let (faulty, fault_stats) = run_scenario(seed, Some(FaultPlan::recoverable(seed)));
        assert_leak_free(&fault_stats, &format!("faulty seed {seed}"));
        assert_eq!(
            clean, faulty,
            "seed {seed}: wire output diverged under recoverable faults"
        );
    }
}

#[test]
fn destructive_faults_never_leak_slots_or_timers() {
    if !atpm_net::supported() {
        return;
    }
    for seed in 0..4u64 {
        // The first epoll_ctl on the reactor thread is the first accepted
        // connection's ADD — failing it exercises slot reclamation on the
        // registration error path. EMFILE hits a later accept pass, resets
        // kill stream IO mid-conversation.
        let plan = FaultPlan::recoverable(seed)
            .script(Site::EpollCtl, 0, ENOSPC)
            .script(Site::Accept, 1, EMFILE)
            .script(Site::StreamRead, 3, ECONNRESET)
            .script(Site::StreamWrite, 7, ECONNRESET);
        let (outputs, stats) = run_scenario(seed, Some(plan));
        assert_leak_free(&stats, &format!("destructive seed {seed}"));
        // The shard must survive and keep serving: at least one client
        // finishes its full conversation correctly.
        let intact = outputs
            .iter()
            .enumerate()
            .filter(|(id, out)| {
                out.as_deref() == Some(payload(*id, seed).to_ascii_uppercase().as_slice())
            })
            .count();
        assert!(
            intact >= 1,
            "destructive seed {seed}: no client completed ({outputs:?})"
        );
    }
}

#[test]
fn fault_tally_and_global_counters_account_for_injections() {
    if !atpm_net::supported() {
        return;
    }
    let before = fault::injected_total(Site::EpollCtl);
    let plan = FaultPlan::recoverable(3)
        .script(Site::EpollCtl, 0, ENOSPC)
        .script(Site::StreamRead, 3, ECONNRESET);
    // Clone the tally before the plan moves onto the reactor thread; it
    // keeps counting as the scenario runs.
    let tally = plan.tally();
    let (_outputs, stats) = run_scenario(3, Some(plan));
    assert_leak_free(&stats, "tally scenario");
    // EpollCtl never takes probabilistic faults, so its tally is exactly
    // the script: one ENOSPC.
    assert_eq!(tally.at(Site::EpollCtl), 1, "scripted epoll_ctl fault");
    // StreamRead takes the scripted reset plus whatever the probabilistic
    // layer rolled — at least the scripted one must have landed.
    assert!(
        tally.at(Site::StreamRead) >= 1,
        "scripted stream-read fault"
    );
    assert!(tally.total() >= 2);
    // The process-global counters (what `atpm_net_fault_injected_total`
    // exports on /metrics) are a superset of this plan's tally: other
    // tests in this binary run in parallel and also inject, so we can
    // only assert the delta covers our scripted fault.
    assert!(
        fault::injected_total(Site::EpollCtl) - before >= 1,
        "global injected_total must include this plan's epoll_ctl fault"
    );
}

#[test]
fn graceful_drain_answers_in_flight_work_before_exit() {
    if !atpm_net::supported() {
        return;
    }
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let reactor = Reactor::new(
        listener,
        ReactorConfig {
            tick_ms: 10,
            drain_ms: 2_000,
            ..ReactorConfig::default()
        },
    )
    .unwrap();
    let replies = reactor.replies();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = stop.clone();

    /// Echo whose replies arrive *after* stop is raised: dispatch parks the
    /// frame on a side thread that completes once it sees the stop flag.
    struct SlowEcho {
        stop: Arc<AtomicBool>,
    }
    impl Driver for SlowEcho {
        fn slice(&mut self, buf: &[u8]) -> Sliced {
            match buf.iter().position(|&b| b == b'\n') {
                Some(pos) => Sliced::Frame(pos + 1),
                None => Sliced::Partial {
                    head_complete: false,
                },
            }
        }
        fn dispatch(&mut self, conn: ConnId, frame: Vec<u8>, replies: &Arc<ReplyQueue>) {
            let replies = replies.clone();
            let stop = self.stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                // Past the stop flag: only a draining reactor delivers this.
                std::thread::sleep(Duration::from_millis(20));
                replies.push(Reply {
                    conn,
                    bytes: frame.to_ascii_uppercase(),
                    keep_alive: true,
                    id: None,
                });
            });
        }
    }

    let stop_run = stop.clone();
    let shard = std::thread::spawn(move || reactor.run(SlowEcho { stop: stop2 }, &stop_run));
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"finish me\n").unwrap();
    // Let the reactor read + dispatch the frame, then stop mid-flight.
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::SeqCst);
    replies.waker().wake();
    // The reply is only produced after stop — a non-draining reactor would
    // have exited and dropped it.
    let mut got = [0u8; 10];
    stream.read_exact(&mut got).unwrap();
    assert_eq!(&got, b"FINISH ME\n");
    let stats = shard.join().unwrap();
    // The client was still connected at exit (that is what stopped us, not
    // a leak), and nothing else lingers.
    assert_eq!(stats.live_conns, 1);
    assert_eq!(stats.pending_timers, 0);
}
