//! Reactor integration tests over real loopback sockets, with a toy
//! line-framed protocol: each frame is one `\n`-terminated line; the reply
//! is the line uppercased (same terminator). A line starting with `!` is a
//! protocol error ("fatal"), answered with `ERR\n` and a close — enough
//! surface to exercise framing, dispatch, deferred replies from a worker
//! thread, pipelining, partial writes, EOF handling, and idle timeouts.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use atpm_net::{ConnId, Driver, Reactor, ReactorConfig, Reply, ReplyQueue, Sliced};

/// Where the echo driver computes its replies.
enum Mode {
    /// On the reactor thread, inside `dispatch` (simplest possible driver).
    Inline,
    /// On a separate worker thread fed by a channel — the deferred-response
    /// path the serve layer uses (reply arrives via the waker).
    Worker(mpsc::Sender<(ConnId, Vec<u8>, Arc<ReplyQueue>)>),
}

struct EchoDriver {
    mode: Mode,
    ticks: Arc<AtomicUsize>,
    tick_period: Option<u64>,
}

fn echo_reply(conn: ConnId, frame: &[u8]) -> Reply {
    if frame.first() == Some(&b'!') {
        return Reply {
            conn,
            bytes: b"ERR\n".to_vec(),
            keep_alive: false,
            id: None,
        };
    }
    Reply {
        conn,
        bytes: frame.to_ascii_uppercase(),
        keep_alive: true,
        id: None,
    }
}

impl Driver for EchoDriver {
    fn slice(&mut self, buf: &[u8]) -> Sliced {
        match buf.iter().position(|&b| b == b'\n') {
            Some(nl) => Sliced::Frame(nl + 1),
            None if buf.len() > 1024 => Sliced::Fatal(b"TOO LONG\n".to_vec()),
            None => Sliced::Partial {
                head_complete: false,
            },
        }
    }

    fn dispatch(&mut self, conn: ConnId, frame: Vec<u8>, replies: &Arc<ReplyQueue>) {
        match &self.mode {
            Mode::Inline => replies.push(echo_reply(conn, &frame)),
            Mode::Worker(tx) => {
                tx.send((conn, frame, replies.clone())).unwrap();
            }
        }
    }

    fn eof_reply(&mut self, _head_complete: bool) -> Option<Vec<u8>> {
        Some(b"EOF MID FRAME\n".to_vec())
    }

    fn tick_every_ms(&self) -> Option<u64> {
        self.tick_period
    }

    fn on_tick(&mut self, _now_ms: u64) {
        self.ticks.fetch_add(1, Ordering::SeqCst);
    }
}

struct Harness {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    reactor_thread: Option<std::thread::JoinHandle<()>>,
    worker_thread: Option<std::thread::JoinHandle<()>>,
    queue: Arc<ReplyQueue>,
    ticks: Arc<AtomicUsize>,
}

impl Harness {
    fn start(cfg: ReactorConfig, deferred: bool, tick_period: Option<u64>) -> Harness {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reactor = Reactor::new(listener, cfg).unwrap();
        let queue = reactor.replies();
        let stop = Arc::new(AtomicBool::new(false));
        let ticks = Arc::new(AtomicUsize::new(0));

        let (worker_thread, mode) = if deferred {
            let (tx, rx) = mpsc::channel::<(ConnId, Vec<u8>, Arc<ReplyQueue>)>();
            let rx = Mutex::new(rx);
            let handle = std::thread::spawn(move || {
                while let Ok((conn, frame, replies)) = rx.lock().unwrap().recv() {
                    // Simulate real work happening off the reactor thread.
                    std::thread::sleep(Duration::from_millis(1));
                    replies.push(echo_reply(conn, &frame));
                }
            });
            (Some(handle), Mode::Worker(tx))
        } else {
            (None, Mode::Inline)
        };

        let driver = EchoDriver {
            mode,
            ticks: ticks.clone(),
            tick_period,
        };
        let stop2 = stop.clone();
        let reactor_thread = Some(std::thread::spawn(move || {
            reactor.run(driver, &stop2);
        }));
        Harness {
            addr,
            stop,
            reactor_thread,
            worker_thread,
            queue,
            ticks,
        }
    }

    fn connect(&self) -> TcpStream {
        let s = TcpStream::connect(self.addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        s
    }
}

impl Drop for Harness {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.queue.waker().wake();
        if let Some(h) = self.reactor_thread.take() {
            h.join().unwrap();
        }
        // Worker exits when the driver (its Sender) is dropped with the
        // reactor.
        if let Some(h) = self.worker_thread.take() {
            h.join().unwrap();
        }
    }
}

fn read_exactly(stream: &mut TcpStream, n: usize) -> Vec<u8> {
    let mut buf = vec![0u8; n];
    stream.read_exact(&mut buf).unwrap();
    buf
}

#[test]
fn inline_echo_roundtrip_and_keepalive() {
    let h = Harness::start(ReactorConfig::default(), false, None);
    let mut c = h.connect();
    for word in ["alpha\n", "beta\n", "gamma\n"] {
        c.write_all(word.as_bytes()).unwrap();
        assert_eq!(
            read_exactly(&mut c, word.len()),
            word.to_uppercase().as_bytes()
        );
    }
}

#[test]
fn deferred_worker_replies_via_waker() {
    let h = Harness::start(ReactorConfig::default(), true, None);
    let mut c = h.connect();
    c.write_all(b"deferred\n").unwrap();
    assert_eq!(read_exactly(&mut c, 9), b"DEFERRED\n");
}

#[test]
fn pipelined_frames_answered_in_order() {
    let h = Harness::start(ReactorConfig::default(), true, None);
    let mut c = h.connect();
    // Three frames in one segment; replies must come back sequentially.
    c.write_all(b"one\ntwo\nthree\n").unwrap();
    assert_eq!(read_exactly(&mut c, 14), b"ONE\nTWO\nTHREE\n");
}

#[test]
fn byte_by_byte_frames_assemble() {
    let h = Harness::start(ReactorConfig::default(), false, None);
    let mut c = h.connect();
    for b in b"drip\n" {
        c.write_all(&[*b]).unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(read_exactly(&mut c, 5), b"DRIP\n");
}

#[test]
fn fatal_frame_answers_then_closes() {
    let h = Harness::start(ReactorConfig::default(), false, None);
    let mut c = h.connect();
    c.write_all(b"!boom\n").unwrap();
    assert_eq!(read_exactly(&mut c, 4), b"ERR\n");
    let mut rest = Vec::new();
    assert_eq!(c.read_to_end(&mut rest).unwrap(), 0, "server must close");
}

#[test]
fn eof_mid_frame_gets_the_parting_reply() {
    let h = Harness::start(ReactorConfig::default(), false, None);
    let mut c = h.connect();
    c.write_all(b"no newline").unwrap();
    c.shutdown(std::net::Shutdown::Write).unwrap();
    let mut rest = Vec::new();
    c.read_to_end(&mut rest).unwrap();
    assert_eq!(rest, b"EOF MID FRAME\n");
}

#[test]
fn clean_disconnect_is_silent() {
    let h = Harness::start(ReactorConfig::default(), false, None);
    let c = h.connect();
    drop(c); // no bytes sent: the reactor should just reap it
    let mut c2 = h.connect();
    c2.write_all(b"still alive\n").unwrap();
    assert_eq!(read_exactly(&mut c2, 12), b"STILL ALIVE\n");
}

#[test]
fn many_concurrent_idle_connections_do_not_starve_service() {
    // The whole point of the reactor: with one thread, hold dozens of idle
    // connections while still serving new traffic promptly.
    let h = Harness::start(ReactorConfig::default(), true, None);
    let idle: Vec<TcpStream> = (0..64).map(|_| h.connect()).collect();
    let mut active = h.connect();
    active.write_all(b"work\n").unwrap();
    assert_eq!(read_exactly(&mut active, 5), b"WORK\n");
    // Idle connections still usable afterwards.
    let mut one = idle.into_iter().next().unwrap();
    one.write_all(b"late\n").unwrap();
    assert_eq!(read_exactly(&mut one, 5), b"LATE\n");
}

#[test]
fn large_frames_exercise_partial_writes() {
    // A reply far larger than a socket buffer forces the EPOLLOUT
    // resumption path.
    let h = Harness::start(ReactorConfig::default(), false, None);
    let mut c = h.connect();
    let line = "x".repeat(900);
    let mut expected = Vec::new();
    for _ in 0..200 {
        c.write_all(line.as_bytes()).unwrap();
        c.write_all(b"\n").unwrap();
        expected.extend_from_slice(line.to_uppercase().as_bytes());
        expected.push(b'\n');
    }
    let got = read_exactly(&mut c, expected.len());
    assert_eq!(got, expected);
}

#[test]
fn driver_tick_fires_periodically() {
    let h = Harness::start(ReactorConfig::default(), false, Some(20));
    std::thread::sleep(Duration::from_millis(200));
    let ticks = h.ticks.load(Ordering::SeqCst);
    assert!(
        (2..=20).contains(&ticks),
        "expected a handful of 20ms ticks in 200ms, got {ticks}"
    );
}

#[test]
fn waker_shutdown_interrupts_an_indefinite_park() {
    // With no timers and no ticks the reactor parks in epoll_wait with no
    // timeout at all; the stop flag alone can never be observed. The
    // shutdown contract — raise stop, then wake — must tear it down
    // promptly anyway.
    let h = Harness::start(ReactorConfig::default(), false, None);
    // Give the loop time to reach its indefinite park.
    std::thread::sleep(Duration::from_millis(50));
    let t0 = std::time::Instant::now();
    drop(h); // Harness::drop raises stop, wakes, joins
    assert!(
        t0.elapsed() < Duration::from_secs(2),
        "shutdown took {:?} — the waker did not interrupt the park",
        t0.elapsed()
    );
}

#[test]
fn idle_timeout_reaps_quiet_connections_but_not_active_ones() {
    let cfg = ReactorConfig {
        idle_timeout_ms: Some(100),
        tick_ms: 10,
        ..Default::default()
    };
    let h = Harness::start(cfg, false, None);
    let mut quiet = h.connect();
    let mut chatty = h.connect();
    // Keep one connection active past the other's deadline.
    for _ in 0..6 {
        std::thread::sleep(Duration::from_millis(40));
        chatty.write_all(b"ping\n").unwrap();
        assert_eq!(read_exactly(&mut chatty, 5), b"PING\n");
    }
    // The quiet one must be gone by now.
    let mut rest = Vec::new();
    quiet
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    assert_eq!(
        quiet.read_to_end(&mut rest).unwrap(),
        0,
        "idle connection should have been closed"
    );
    // And the chatty one survives.
    chatty.write_all(b"still\n").unwrap();
    assert_eq!(read_exactly(&mut chatty, 6), b"STILL\n");
}
