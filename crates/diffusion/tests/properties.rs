//! Property-based tests for realizations and cascades.

use std::collections::HashSet;

use atpm_diffusion::{exact_spread, mc_spread, CascadeEngine, HashedRealization};
use atpm_graph::{GraphBuilder, ResidualGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Small random graphs whose exact spread is enumerable (m <= 10).
fn tiny_graph_strategy() -> impl Strategy<Value = atpm_graph::Graph> {
    (2usize..7)
        .prop_flat_map(|n| {
            let edges =
                proptest::collection::vec((0..n as u32, 0..n as u32, 0.1f32..=0.9f32), 0..10);
            (Just(n), edges)
        })
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, p) in edges {
                b.add_edge(u, v, p).unwrap();
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Adding seeds never shrinks the activated set within one world.
    #[test]
    fn cascade_monotone_in_seeds(g in tiny_graph_strategy(), world in 0u64..500) {
        let real = HashedRealization::new(world);
        let mut eng = CascadeEngine::new();
        let n = g.num_nodes() as u32;
        let seeds_small: Vec<u32> = vec![0];
        let seeds_big: Vec<u32> = (0..n.min(3)).collect();
        let a: HashSet<u32> = eng.observe(&&g, &real, &seeds_small).into_iter().collect();
        let b: HashSet<u32> = eng.observe(&&g, &real, &seeds_big).into_iter().collect();
        prop_assert!(a.is_subset(&b));
    }

    /// Joint observation equals sequential observation with removal in any
    /// world — the adaptive feedback loop's soundness invariant.
    #[test]
    fn sequential_equals_joint(g in tiny_graph_strategy(), world in 0u64..500) {
        let n = g.num_nodes() as u32;
        prop_assume!(n >= 2);
        let real = HashedRealization::new(world);
        let mut eng = CascadeEngine::new();
        let joint: HashSet<u32> = eng.observe(&&g, &real, &[0, n - 1]).into_iter().collect();

        let mut r = ResidualGraph::new(&g);
        let a0 = eng.observe(&r, &real, &[0]);
        r.remove_all(a0.iter().copied());
        let a1 = eng.observe(&r, &real, &[n - 1]);
        let seq: HashSet<u32> = a0.into_iter().chain(a1).collect();
        prop_assert_eq!(joint, seq);
    }

    /// Monte-Carlo spread stays within a generous confidence band of the
    /// exact enumeration (5 sigma with sigma <= n/(2 sqrt(samples))).
    #[test]
    fn mc_tracks_exact(g in tiny_graph_strategy(), seed in 0u64..100) {
        let exact = exact_spread(&&g, &[0]);
        let samples = 4000;
        let mut rng = StdRng::seed_from_u64(seed);
        let mc = mc_spread(&&g, &[0], samples, &mut rng);
        let sigma = g.num_nodes() as f64 / (2.0 * (samples as f64).sqrt());
        prop_assert!(
            (mc - exact).abs() <= 5.0 * sigma + 1e-9,
            "mc {} vs exact {} (sigma {})", mc, exact, sigma
        );
    }

    /// Spread of a set lies between the max single-seed spread and the sum.
    #[test]
    fn exact_spread_subadditive(g in tiny_graph_strategy()) {
        let n = g.num_nodes() as u32;
        prop_assume!(n >= 2);
        let s0 = exact_spread(&&g, &[0]);
        let s1 = exact_spread(&&g, &[1]);
        let joint = exact_spread(&&g, &[0, 1]);
        prop_assert!(joint <= s0 + s1 + 1e-9, "subadditive: {} > {} + {}", joint, s0, s1);
        prop_assert!(joint >= s0.max(s1) - 1e-9, "monotone: {} < max({}, {})", joint, s0, s1);
    }
}
