//! Forward statistical-equivalence suite: the coin-free cascade engine
//! (integer thresholds on the out-side `SampleView`, geometric skip over
//! uniform out-neighborhoods, `CounterRng` lanes) must draw cascades from
//! the *same distribution* as the retained per-coin oracle
//! (`CascadeEngine::random_cascade_percoin`), even though the streams
//! differ — the forward mirror of `crates/ris/tests/sampling_equivalence.rs`.
//!
//! Mean cascade size is the sufficient statistic: `E[|A(S)|] = E[I(S)]`,
//! so agreement of Monte-Carlo spread estimates (against chain closed
//! forms, the per-coin oracle, and skip-on/off against each other) pins
//! the per-edge acceptance probabilities the engine realizes. The batched
//! driver is additionally checked across stream counts {1, 2, 4}.

use atpm_diffusion::{mc_spread_batched, CascadeEngine};
use atpm_graph::gen::Dataset;
use atpm_graph::{GraphBuilder, GraphView};
use atpm_ris::CounterRng;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mean cascade size from `samples` per-coin oracle cascades.
fn percoin_spread<V: GraphView>(view: &V, seeds: &[u32], samples: usize, seed: u64) -> f64 {
    let mut engine = CascadeEngine::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0usize;
    for _ in 0..samples {
        total += engine.random_cascade_percoin(view, seeds, &mut rng);
    }
    total as f64 / samples as f64
}

#[test]
fn chain_spread_matches_oracle_and_closed_form() {
    // 0 -> 1 -> 2 at p = 0.5: E[I({0})] = 1 + p + p² = 1.75 exactly.
    let mut b = GraphBuilder::new(3);
    b.add_edge(0, 1, 0.5).unwrap();
    b.add_edge(1, 2, 0.5).unwrap();
    let g = b.build();
    let samples = 150_000;
    for threads in [1usize, 2, 4] {
        let fast = mc_spread_batched(&&g, &[0], samples, 11, threads);
        assert!(
            (fast - 1.75).abs() < 0.03,
            "threads {threads}: batched MC estimate {fast} vs exact 1.75"
        );
    }
    let oracle = percoin_spread(&&g, &[0], samples, 3);
    assert!((oracle - 1.75).abs() < 0.03, "oracle drifted: {oracle}");
}

#[test]
fn certain_chain_is_deterministic_under_quantization() {
    // All-p=1.0 chain: a cascade from 0 activates everything; a single
    // quantization flip anywhere would shrink it.
    let mut b = GraphBuilder::new(5);
    for i in 0..4u32 {
        b.add_edge(i, i + 1, 1.0).unwrap();
    }
    let g = b.build();
    let mut engine = CascadeEngine::new();
    let mut rng = CounterRng::new(5);
    for _ in 0..20_000 {
        assert_eq!(
            engine.random_cascade(&&g, &[0], &mut rng),
            5,
            "truncated certain cascade"
        );
    }
}

#[test]
fn constant_weight_hub_matches_percoin_oracle() {
    // A constant-weight rebake of a preset makes every out-neighborhood
    // uniform, so every node with out-degree ≥ 8 runs the geometric skip —
    // the workload the forward fast path exists for. Seed from the top
    // out-degree hubs (where the skip does all the work) and compare
    // against the per-coin oracle across stream counts.
    let g = Dataset::NetHept.generate(0.05, 3).map_probs(|_, _, _| 0.08);
    let n = g.num_nodes();
    let mut nodes: Vec<u32> = (0..n as u32).collect();
    nodes.sort_unstable_by_key(|&v| std::cmp::Reverse(g.out_degree(v)));
    let hubs: Vec<u32> = nodes.into_iter().take(3).collect();
    assert!(
        hubs.iter().all(|&v| g.out_skip_inv(v) < 0.0),
        "top out-degree hubs of a constant-weight graph must be skip-eligible"
    );

    let samples = 120_000;
    let oracle = percoin_spread(&&g, &hubs, samples, 17);
    for threads in [1usize, 2, 4] {
        let fast = mc_spread_batched(&&g, &hubs, samples, 23 + threads as u64, threads);
        // Spreads here are O(1)..O(10); 5% relative + small absolute slack
        // covers two independent Monte-Carlo estimates at 120k samples.
        let tol = 0.05 * oracle.max(1.0) + 0.05;
        assert!(
            (fast - oracle).abs() < tol,
            "threads {threads}: coin-free {fast} vs per-coin oracle {oracle}"
        );
    }
}

#[test]
fn threshold_only_path_matches_skip_path() {
    // The two fast paths must agree with each other, not just with the
    // float-era oracle: same seeds, skip on vs off.
    let g = Dataset::NetHept.generate(0.05, 4).map_probs(|_, _, _| 0.08);
    let hub = (0..g.num_nodes() as u32)
        .max_by_key(|&v| g.out_degree(v))
        .unwrap();
    assert!(g.out_skip_inv(hub) < 0.0, "hub must be skip-eligible");
    let samples = 120_000;
    let spread = |skip: bool, seed: u64| {
        let mut engine = CascadeEngine::new();
        let mut rng = CounterRng::new(seed);
        let mut total = 0usize;
        for _ in 0..samples {
            total += if skip {
                engine.random_cascade(&&g, &[hub], &mut rng)
            } else {
                engine.random_cascade_threshold(&&g, &[hub], &mut rng)
            };
        }
        total as f64 / samples as f64
    };
    let with_skip = spread(true, 7);
    let without = spread(false, 8);
    let tol = 0.05 * with_skip.max(1.0) + 0.05;
    assert!(
        (with_skip - without).abs() < tol,
        "skip {with_skip} vs threshold-only {without}"
    );
}

#[test]
fn residual_views_block_dead_nodes_on_every_path() {
    // Kill half the sinks of a skip-eligible broadcaster: no path may
    // count a dead node, and all three agree on the surviving mean.
    use atpm_graph::ResidualGraph;
    let mut b = GraphBuilder::new(33);
    for v in 1..33u32 {
        b.add_edge(0, v, 0.1).unwrap();
    }
    let g = b.build();
    assert!(g.out_skip_inv(0) < 0.0);
    let mut r = ResidualGraph::new(&g);
    r.remove_all((1..33).filter(|v| v % 2 == 0));
    // 16 alive sinks at p = 0.1: E[size] = 1 + 1.6 = 2.6.
    let samples = 100_000;
    let mut engine = CascadeEngine::new();
    let mut rng = CounterRng::new(31);
    let mut skip_total = 0usize;
    let mut thr_total = 0usize;
    for _ in 0..samples {
        skip_total += engine.random_cascade(&r, &[0], &mut rng);
        thr_total += engine.random_cascade_threshold(&r, &[0], &mut rng);
    }
    let oracle = percoin_spread(&r, &[0], samples, 37);
    for (name, total) in [("skip", skip_total), ("threshold", thr_total)] {
        let mean = total as f64 / samples as f64;
        assert!((mean - 2.6).abs() < 0.03, "{name} path drifted: {mean}");
        assert!(
            (mean - oracle).abs() < 0.05,
            "{name} {mean} vs oracle {oracle}"
        );
    }
}
