//! Enforces the cascade engine's allocation discipline: after warm-up,
//! repeated forward cascades — `observe_into` against a fixed world and
//! `random_cascade` with fresh coins, including the `CounterRng` lane
//! buffer behind them and the geometric-skip path — perform **zero heap
//! allocation per cascade**. The forward mirror of
//! `crates/ris/tests/alloc_discipline.rs`.
//!
//! A counting global allocator wraps `System`; everything runs inside one
//! `#[test]` so no concurrent test pollutes the counters.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocation count attributable to `f`.
fn allocations_during<F: FnOnce()>(f: F) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn warm_cascades_do_not_allocate() {
    use atpm_diffusion::{CascadeEngine, HashedRealization};
    use atpm_graph::GraphBuilder;
    use atpm_ris::CounterRng;

    // The counting allocator is process-wide, and libtest's main thread
    // allocates while formatting the test-start event *concurrently* with
    // the first few milliseconds of the test body. The cascade warm-up
    // below is much cheaper than the RIS suite's (which hides behind a
    // 20k-set batch build), so give the harness a moment to go quiet
    // before any counting window opens.
    std::thread::sleep(std::time::Duration::from_millis(100));

    // A graph with both shapes the engine specializes on: a long chain of
    // short mixed neighborhoods (per-edge threshold path) feeding a
    // 32-out-edge uniform broadcaster (geometric-skip path).
    let mut b = GraphBuilder::new(233);
    for i in 0..199u32 {
        b.add_edge(i, i + 1, 0.6).unwrap();
        b.add_edge(i + 1, i, 0.3).unwrap();
    }
    b.add_edge(199, 200, 0.9).unwrap();
    for v in 201..233u32 {
        b.add_edge(200, v, 0.1).unwrap();
    }
    let g = b.build();
    assert!(
        g.out_skip_inv(200) < 0.0,
        "broadcaster must take the skip path"
    );

    let mut engine = CascadeEngine::new();
    let mut rng = CounterRng::new(9);
    let seeds = [0u32, 200];
    let mut blackhole = 0usize;

    // ---- random_cascade: coins, lane refills, skip path ---------------------
    // Warm-up: seeding every node once activates the whole graph, so the
    // frontier queue reaches its maximum possible size immediately —
    // random cascades afterwards can never set a new record and grow it.
    let everyone: Vec<u32> = (0..233).collect();
    blackhole += engine.random_cascade(&&g, &everyone, &mut rng);
    for _ in 0..500 {
        blackhole += engine.random_cascade(&&g, &seeds, &mut rng); // warm-up
    }
    let allocs = allocations_during(|| {
        for _ in 0..2_000 {
            blackhole += engine.random_cascade(&&g, &seeds, &mut rng);
            blackhole += engine.random_cascade_threshold(&&g, &seeds, &mut rng);
        }
    });
    assert_eq!(allocs, 0, "random_cascade allocated after warm-up");

    // ---- observe_into against a fixed world --------------------------------
    let world = HashedRealization::new(42);
    let mut out = Vec::new();
    engine.observe_into(&&g, &world, &everyone, &mut out); // warm-up sizes `out` maximally
    let allocs = allocations_during(|| {
        for _ in 0..2_000 {
            engine.observe_into(&&g, &world, &seeds, &mut out);
            blackhole += out.len();
        }
    });
    assert_eq!(allocs, 0, "observe_into allocated after warm-up");

    // ---- the per-coin oracle shares the discipline -------------------------
    let allocs = allocations_during(|| {
        for _ in 0..500 {
            blackhole += engine.random_cascade_percoin(&&g, &seeds, &mut rng);
        }
    });
    assert_eq!(allocs, 0, "random_cascade_percoin allocated after warm-up");

    assert!(blackhole > 0, "keep the optimizer honest");
}
