//! Realizations (possible worlds) of a probabilistic graph.
//!
//! A realization `φ` keeps each edge `e` *live* with probability `p(e)`,
//! independently (paper §II-A). Sampling `Φ ~ Ω` and then asking reachability
//! questions is how both the adaptive feedback loop and the evaluation
//! protocol work.

use atpm_graph::{threshold_accept, threshold_prob, Edge, Graph};

/// A fixed assignment of live/blocked to every edge.
///
/// `is_live(e, p)` takes the edge's probability because implementations like
/// [`HashedRealization`] evaluate the coin lazily; the caller always has `p`
/// at hand from the adjacency slice it is scanning.
pub trait Realization {
    /// Whether edge `e` (with activation probability `prob`) is live in this
    /// possible world. Must be deterministic: repeated queries agree.
    fn is_live(&self, e: Edge, prob: f32) -> bool;

    /// Like [`is_live`](Self::is_live) but against the edge's baked `u32`
    /// threshold (`atpm_graph::quantize_prob`) — the *same* integer coin the
    /// reverse-BFS samplers compare, so forward observations and RR-set
    /// estimates realize one consistent quantized world. Forward cascades
    /// call this; the default converts the threshold back to its exact
    /// probability for implementations that only know the float rule.
    fn is_live_q(&self, e: Edge, threshold: u32) -> bool {
        self.is_live(e, threshold_prob(threshold) as f32)
    }
}

impl<T: Realization + ?Sized> Realization for &T {
    #[inline]
    fn is_live(&self, e: Edge, prob: f32) -> bool {
        (**self).is_live(e, prob)
    }
    #[inline]
    fn is_live_q(&self, e: Edge, threshold: u32) -> bool {
        (**self).is_live_q(e, threshold)
    }
}

/// Lazy realization: the coin of edge `e` is a pure hash of
/// `(realization_seed, e)`, mapped to `[0, 1)` and compared against `p(e)`.
///
/// * O(1) memory — no per-edge state, so a 69M-edge possible world costs
///   eight bytes;
/// * deterministic — policy, runner and scorer all observe the same world;
/// * independent across edges — distinct counter inputs through a
///   splitmix64-style finalizer are effectively independent uniforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashedRealization {
    seed: u64,
}

impl HashedRealization {
    /// Creates the possible world identified by `seed`.
    pub fn new(seed: u64) -> Self {
        HashedRealization { seed }
    }

    /// The identifying seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// splitmix64 finalizer: bijective mixing with good avalanche.
    #[inline]
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    #[inline]
    fn hash(&self, e: Edge) -> u64 {
        Self::mix(
            self.seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(0x632BE59BD9B4E019)
                ^ (e as u64).wrapping_mul(0xD6E8FEB86659FD93),
        )
    }

    /// The uniform draw assigned to edge `e` in `[0, 1)`.
    #[inline]
    pub fn unit(&self, e: Edge) -> f64 {
        // Take the top 53 bits for an exactly representable uniform in [0,1).
        (self.hash(e) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The raw 32-bit coin of edge `e` — the top bits of the same hash
    /// [`unit`](Self::unit) exposes, compared against baked thresholds by
    /// [`Realization::is_live_q`].
    #[inline]
    pub fn draw32(&self, e: Edge) -> u32 {
        (self.hash(e) >> 32) as u32
    }
}

impl Realization for HashedRealization {
    #[inline]
    fn is_live(&self, e: Edge, prob: f32) -> bool {
        self.unit(e) < prob as f64
    }

    #[inline]
    fn is_live_q(&self, e: Edge, threshold: u32) -> bool {
        threshold_accept(self.draw32(e), threshold)
    }
}

/// Eager realization: one bit per edge.
///
/// Used by exact enumeration (tiny graphs iterate all `2^m` bitmasks) and by
/// tests that need to force specific worlds.
#[derive(Debug, Clone)]
pub struct MaterializedRealization {
    live: Vec<u64>,
}

impl MaterializedRealization {
    /// Builds a world from an explicit edge-liveness bitmask, where bit `e`
    /// of `mask` (little-endian across words) is edge `e`'s state.
    pub fn from_bits(num_edges: usize, mask: &[u64]) -> Self {
        let words = num_edges.div_ceil(64);
        assert!(mask.len() >= words, "mask too short for {num_edges} edges");
        MaterializedRealization {
            live: mask[..words].to_vec(),
        }
    }

    /// Builds a world where exactly the listed edges are live.
    pub fn from_live_edges(num_edges: usize, edges: &[Edge]) -> Self {
        let mut live = vec![0u64; num_edges.div_ceil(64)];
        for &e in edges {
            assert!((e as usize) < num_edges, "edge {e} out of range");
            live[e as usize / 64] |= 1 << (e as usize % 64);
        }
        MaterializedRealization { live }
    }

    /// Materializes a [`HashedRealization`] against a concrete graph: useful
    /// when a world will be queried many times per edge. Evaluates the
    /// *quantized* coin (`is_live_q`), so the bits agree with what forward
    /// cascades and RR sampling would observe of the same world.
    pub fn materialize(g: &Graph, hashed: &HashedRealization) -> Self {
        let m = g.num_edges();
        let mut live = vec![0u64; m.div_ceil(64)];
        for e in 0..m as Edge {
            if hashed.is_live_q(e, g.edge_threshold(e)) {
                live[e as usize / 64] |= 1 << (e as usize % 64);
            }
        }
        MaterializedRealization { live }
    }

    /// Number of live edges.
    pub fn live_count(&self) -> usize {
        self.live.iter().map(|w| w.count_ones() as usize).sum()
    }
}

impl Realization for MaterializedRealization {
    #[inline]
    fn is_live(&self, e: Edge, _prob: f32) -> bool {
        self.live[e as usize / 64] & (1 << (e as usize % 64)) != 0
    }

    #[inline]
    fn is_live_q(&self, e: Edge, _threshold: u32) -> bool {
        self.live[e as usize / 64] & (1 << (e as usize % 64)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashed_is_deterministic() {
        let r = HashedRealization::new(42);
        for e in 0..100u32 {
            assert_eq!(r.is_live(e, 0.5), r.is_live(e, 0.5));
            assert_eq!(r.unit(e), r.unit(e));
        }
    }

    #[test]
    fn hashed_units_are_uniformish() {
        let r = HashedRealization::new(7);
        let n = 20_000u32;
        let mean: f64 = (0..n).map(|e| r.unit(e)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
        // Monotone in prob: live at p1 implies live at p2 >= p1.
        for e in 0..500u32 {
            if r.is_live(e, 0.3) {
                assert!(r.is_live(e, 0.8));
            }
        }
    }

    #[test]
    fn hashed_seeds_decorrelate() {
        let a = HashedRealization::new(1);
        let b = HashedRealization::new(2);
        let agree = (0..10_000u32)
            .filter(|&e| a.is_live(e, 0.5) == b.is_live(e, 0.5))
            .count();
        // Independent fair coins agree about half the time.
        assert!((4_500..=5_500).contains(&agree), "agreement {agree}");
    }

    #[test]
    fn hashed_live_rate_tracks_probability() {
        let r = HashedRealization::new(99);
        for &p in &[0.1f32, 0.5, 0.9] {
            let live = (0..50_000u32).filter(|&e| r.is_live(e, p)).count();
            let rate = live as f64 / 50_000.0;
            assert!((rate - p as f64).abs() < 0.01, "p = {p}: live rate {rate}");
        }
    }

    #[test]
    fn materialized_from_live_edges() {
        let r = MaterializedRealization::from_live_edges(100, &[0, 64, 99]);
        assert!(r.is_live(0, 0.0));
        assert!(r.is_live(64, 0.0));
        assert!(r.is_live(99, 0.0));
        assert!(!r.is_live(1, 1.0));
        assert_eq!(r.live_count(), 3);
    }

    #[test]
    fn materialize_agrees_with_hashed() {
        use atpm_graph::GraphBuilder;
        let mut b = GraphBuilder::new(10);
        for i in 0..9u32 {
            b.add_edge(i, i + 1, 0.3 + 0.05 * i as f32).unwrap();
        }
        let g = b.build();
        let h = HashedRealization::new(5);
        let m = MaterializedRealization::materialize(&g, &h);
        for e in 0..g.num_edges() as u32 {
            assert_eq!(m.is_live(e, 0.0), h.is_live_q(e, g.edge_threshold(e)));
            assert_eq!(m.is_live_q(e, 0), h.is_live_q(e, g.edge_threshold(e)));
        }
    }

    #[test]
    fn quantized_coin_is_exact_at_the_endpoints() {
        use atpm_graph::quantize_prob;
        for seed in 0..20u64 {
            let r = HashedRealization::new(seed);
            for e in 0..2_000u32 {
                assert!(r.is_live_q(e, quantize_prob(1.0)), "certain edge blocked");
                assert!(!r.is_live_q(e, quantize_prob(0.0)), "impossible edge fired");
            }
        }
    }

    #[test]
    fn quantized_coin_tracks_probability() {
        let r = HashedRealization::new(99);
        for &p in &[0.1f32, 0.5, 0.9] {
            let t = atpm_graph::quantize_prob(p);
            let live = (0..50_000u32).filter(|&e| r.is_live_q(e, t)).count();
            let rate = live as f64 / 50_000.0;
            assert!((rate - p as f64).abs() < 0.01, "p = {p}: live rate {rate}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn materialized_rejects_out_of_range() {
        let _ = MaterializedRealization::from_live_edges(4, &[4]);
    }
}
