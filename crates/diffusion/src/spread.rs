//! Expected spread `E[I(S)]` estimators.
//!
//! Computing the exact expected spread under the IC model is #P-hard
//! (paper §III-C, citing \[9\]); the practical estimator is Monte-Carlo (or
//! RR-set sampling, in `atpm-ris`). For *tiny* graphs the expectation can be
//! computed exactly by enumerating all `2^m` realizations, which is how the
//! test-suite pins down every sampling-based estimator and how the paper's
//! "oracle model" is realized for the theory tests.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use atpm_graph::{GraphView, Node};
use atpm_obs::{tracer, Counter, Histogram};
use atpm_ris::workspace::run_sharded;
use atpm_ris::CounterRng;
use rand::Rng;

use crate::cascade::CascadeEngine;
use crate::realization::MaterializedRealization;

/// Lane timers for [`mc_spread_batched`]: one histogram value per worker
/// lane per call (recorded outside the per-cascade loop), registered in
/// the process-global registry.
struct McMetrics {
    lane: Arc<Histogram>,
    cascades: Arc<Counter>,
}

fn mc_metrics() -> &'static McMetrics {
    static METRICS: OnceLock<McMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = atpm_obs::global();
        McMetrics {
            lane: reg.histogram(
                "atpm_mc_lane_seconds",
                "mc_spread_batched per-worker-lane wall time",
            ),
            cascades: reg.counter("atpm_mc_cascades_total", "Monte-Carlo cascades simulated"),
        }
    })
}

/// Largest edge count accepted by [`exact_spread`]; `2^20` worlds ≈ 1M BFS
/// runs is where "instant in a test" ends.
pub const EXACT_SPREAD_MAX_EDGES: usize = 20;

/// Monte-Carlo estimate of `E[I(S)]` over `samples` independent cascades.
///
/// The variance of a single cascade size is at most `n²/4`, so the standard
/// error is `≤ n / (2√samples)`.
pub fn mc_spread<V: GraphView, R: Rng + ?Sized>(
    view: &V,
    seeds: &[Node],
    samples: usize,
    rng: &mut R,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let mut engine = CascadeEngine::new();
    mc_spread_with_engine(view, seeds, samples, rng, &mut engine)
}

/// [`mc_spread`] with a caller-provided engine (no per-call allocation).
pub fn mc_spread_with_engine<V: GraphView, R: Rng + ?Sized>(
    view: &V,
    seeds: &[Node],
    samples: usize,
    rng: &mut R,
    engine: &mut CascadeEngine,
) -> f64 {
    let mut total = 0usize;
    for _ in 0..samples {
        total += engine.random_cascade(view, seeds, rng);
    }
    total as f64 / samples as f64
}

/// The batched Monte-Carlo driver: `samples` coin-free cascades split
/// across `threads` deterministic [`CounterRng`] streams (the same
/// `worker_seed`/`run_sharded` fan-out the RR-set samplers use), merged in
/// worker order. The result is a pure function of
/// `(view, seeds, samples, seed, threads)`, so bandit-style workloads that
/// hammer forward simulation replay exactly under parallelism.
pub fn mc_spread_batched<V: GraphView + Sync>(
    view: &V,
    seeds: &[Node],
    samples: usize,
    seed: u64,
    threads: usize,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let t_all = Instant::now();
    let lanes: Vec<(u64, u64)> = run_sharded(samples, threads, seed, |_tid, quota, wseed| {
        let t_lane = Instant::now();
        let mut engine = CascadeEngine::new();
        let mut rng = CounterRng::new(wseed);
        let mut total = 0u64;
        for _ in 0..quota {
            total += engine.random_cascade(view, seeds, &mut rng) as u64;
        }
        (total, t_lane.elapsed().as_nanos() as u64)
    });
    let metrics = mc_metrics();
    for &(_, lane_ns) in &lanes {
        metrics.lane.record(lane_ns);
    }
    metrics.cascades.add(samples as u64);
    let tr = tracer();
    if tr.enabled() {
        tr.record("mc", "spread_batched", t_all, t_all.elapsed());
    }
    lanes.iter().map(|&(total, _)| total).sum::<u64>() as f64 / samples as f64
}

/// Single-stream [`mc_spread_batched`] over a caller-provided engine: the
/// per-query form (no allocation beyond the engine's warm buffers) the MC
/// spread oracle runs on. Equals `mc_spread_batched(.., threads = 1)` for
/// the same seed, minus the engine construction.
pub fn mc_spread_batched_with_engine<V: GraphView>(
    view: &V,
    seeds: &[Node],
    samples: usize,
    seed: u64,
    engine: &mut CascadeEngine,
) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let mut rng = CounterRng::new(atpm_ris::workspace::worker_seed(seed, 0));
    let mut total = 0u64;
    for _ in 0..samples {
        total += engine.random_cascade(view, seeds, &mut rng) as u64;
    }
    total as f64 / samples as f64
}

/// Exact `E[I(S)]` by enumerating every realization of the base graph.
///
/// Works on residual views too: dead nodes neither count nor transmit.
/// Panics if the base graph has more than [`EXACT_SPREAD_MAX_EDGES`] edges.
pub fn exact_spread<V: GraphView>(view: &V, seeds: &[Node]) -> f64 {
    let g = view.base();
    let m = g.num_edges();
    assert!(
        m <= EXACT_SPREAD_MAX_EDGES,
        "exact_spread enumerates 2^m worlds; m = {m} is too large"
    );
    let probs: Vec<f64> = (0..m as u32).map(|e| g.edge_prob(e) as f64).collect();
    let mut engine = CascadeEngine::new();
    let mut expectation = 0.0;
    for mask in 0u64..(1u64 << m) {
        let mut p_world = 1.0;
        for (e, &p) in probs.iter().enumerate() {
            if mask >> e & 1 == 1 {
                p_world *= p;
            } else {
                p_world *= 1.0 - p;
            }
        }
        if p_world == 0.0 {
            continue;
        }
        let world = MaterializedRealization::from_bits(m, &[mask]);
        let activated = engine.observe(view, &world, seeds).len();
        expectation += p_world * activated as f64;
    }
    expectation
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpm_graph::{GraphBuilder, ResidualGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain(p: f32) -> atpm_graph::Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, p).unwrap();
        b.add_edge(1, 2, p).unwrap();
        b.build()
    }

    #[test]
    fn exact_spread_on_chain_matches_closed_form() {
        // E[I({0})] = 1 + p + p^2 on the 2-edge chain.
        for &p in &[0.25f32, 0.5, 0.75] {
            let g = chain(p);
            let got = exact_spread(&&g, &[0]);
            let want = 1.0 + p as f64 + (p as f64).powi(2);
            assert!((got - want).abs() < 1e-12, "p = {p}: {got} vs {want}");
        }
    }

    #[test]
    fn exact_spread_of_empty_seed_set_is_zero() {
        let g = chain(0.5);
        assert_eq!(exact_spread(&&g, &[]), 0.0);
    }

    #[test]
    fn exact_spread_of_all_nodes_is_n() {
        let g = chain(0.5);
        assert!((exact_spread(&&g, &[0, 1, 2]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn exact_spread_respects_residual_views() {
        let g = chain(0.5);
        let mut r = ResidualGraph::new(&g);
        r.remove(1);
        // With 1 dead the cascade from 0 cannot move: E = 1.
        assert!((exact_spread(&r, &[0]) - 1.0).abs() < 1e-12);
        // Dead seed: E = 0.
        assert!((exact_spread(&r, &[1]) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn exact_spread_on_diamond() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 with p = 0.5 everywhere.
        // E[I({0})] = 1 + 0.5 + 0.5 + P(3 reached)
        // P(3) = P(via 1 or via 2) = 1 - (1 - 0.25)^2 = 0.4375.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(0, 2, 0.5).unwrap();
        b.add_edge(1, 3, 0.5).unwrap();
        b.add_edge(2, 3, 0.5).unwrap();
        let g = b.build();
        let got = exact_spread(&&g, &[0]);
        assert!((got - 2.4375).abs() < 1e-12, "{got}");
    }

    #[test]
    fn mc_spread_converges_to_exact() {
        let g = chain(0.5);
        let mut rng = StdRng::seed_from_u64(11);
        let exact = exact_spread(&&g, &[0]);
        let mc = mc_spread(&&g, &[0], 60_000, &mut rng);
        assert!(
            (mc - exact).abs() < 0.02,
            "MC {mc} should approximate exact {exact}"
        );
    }

    #[test]
    fn mc_spread_batched_converges_and_replays() {
        let g = chain(0.5);
        let exact = exact_spread(&&g, &[0]);
        for threads in [1usize, 2, 4] {
            let est = mc_spread_batched(&&g, &[0], 60_000, 9, threads);
            assert!(
                (est - exact).abs() < 0.02,
                "threads {threads}: batched MC {est} vs exact {exact}"
            );
            // Pure function of (view, seeds, samples, seed, threads).
            assert_eq!(est, mc_spread_batched(&&g, &[0], 60_000, 9, threads));
        }
        // The engine-reusing form is the threads = 1 stream exactly.
        let mut engine = CascadeEngine::new();
        assert_eq!(
            mc_spread_batched_with_engine(&&g, &[0], 60_000, 9, &mut engine),
            mc_spread_batched(&&g, &[0], 60_000, 9, 1)
        );
    }

    #[test]
    fn mc_spread_monotone_in_seeds_statistically() {
        let g = chain(0.3);
        let mut rng = StdRng::seed_from_u64(3);
        let one = mc_spread(&&g, &[2], 20_000, &mut rng);
        let two = mc_spread(&&g, &[0, 2], 20_000, &mut rng);
        assert!(two > one, "supersets spread more: {two} vs {one}");
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn exact_spread_guards_edge_count() {
        let mut b = GraphBuilder::new(30);
        for i in 0..25u32 {
            b.add_edge(i, i + 1, 0.5).unwrap();
        }
        let g = b.build();
        let _ = exact_spread(&&g, &[0]);
    }
}
