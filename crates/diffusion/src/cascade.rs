//! Forward IC cascades: observation of `A(u)` against a realization and
//! randomized cascades for Monte-Carlo estimation.
//!
//! Both paths draw edge coins against the graph's baked `u32` thresholds
//! (`atpm_graph::quantize_prob`) — the same integer lattice the reverse-BFS
//! samplers use — so a world realized forward is the world the RR-set
//! estimator reasons about, down to the last quantization bit.

use atpm_graph::{threshold_accept, GraphView, Node};
use rand::Rng;

use crate::realization::Realization;

/// Reusable cascade workspace.
///
/// Visited marks are epoch-stamped (`mark[u] == epoch` means "visited in the
/// current cascade"), so starting a new cascade is O(1) instead of O(n).
/// One engine per thread; it grows to the largest graph it has seen.
pub struct CascadeEngine {
    mark: Vec<u32>,
    epoch: u32,
    queue: Vec<Node>,
}

impl Default for CascadeEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl CascadeEngine {
    /// Creates an empty engine; buffers grow on first use.
    pub fn new() -> Self {
        CascadeEngine {
            mark: Vec::new(),
            epoch: 0,
            queue: Vec::new(),
        }
    }

    /// Prepares the visited buffer for a graph of `n` nodes and opens a new
    /// epoch.
    fn begin(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        // On wrap-around, clear the whole buffer once; epochs restart at 1.
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.mark.iter_mut().for_each(|m| *m = 0);
                1
            }
        };
        self.queue.clear();
    }

    #[inline]
    fn visit(&mut self, u: Node) -> bool {
        let slot = &mut self.mark[u as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Runs the cascade seeded by `seeds` in the possible world `real`,
    /// restricted to alive nodes of `view`. Returns every activated node
    /// (seeds included), in BFS discovery order.
    ///
    /// Dead (previously removed) seeds are skipped; dead targets block.
    /// This is the observation primitive of the adaptive loop: the paper's
    /// `A(u_i)` is `observe(view, real, &[u_i])`.
    pub fn observe<V: GraphView, R: Realization>(
        &mut self,
        view: &V,
        real: &R,
        seeds: &[Node],
    ) -> Vec<Node> {
        self.begin(view.num_nodes());
        let mut out = Vec::new();
        for &s in seeds {
            if view.is_alive(s) && self.visit(s) {
                self.queue.push(s);
                out.push(s);
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let (targets, _, ids) = view.out_slice(u);
            let thresholds = view.base().out_thresholds(u);
            for i in 0..targets.len() {
                let v = targets[i];
                if view.is_alive(v)
                    && real.is_live_q(ids.start + i as u32, thresholds[i])
                    && self.visit(v)
                {
                    self.queue.push(v);
                    out.push(v);
                }
            }
        }
        out
    }

    /// Runs one cascade with *fresh* coins from `rng` and returns the number
    /// of activated nodes. Used by Monte-Carlo spread estimation, where each
    /// sample is an independent possible world.
    pub fn random_cascade<V: GraphView, G: Rng + ?Sized>(
        &mut self,
        view: &V,
        seeds: &[Node],
        rng: &mut G,
    ) -> usize {
        self.begin(view.num_nodes());
        let mut activated = 0usize;
        for &s in seeds {
            if view.is_alive(s) && self.visit(s) {
                self.queue.push(s);
                activated += 1;
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let (targets, _, _) = view.out_slice(u);
            let thresholds = view.base().out_thresholds(u);
            for i in 0..targets.len() {
                let v = targets[i];
                if view.is_alive(v)
                    && threshold_accept(rng.next_u32(), thresholds[i])
                    && self.visit(v)
                {
                    self.queue.push(v);
                    activated += 1;
                }
            }
        }
        activated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realization::{HashedRealization, MaterializedRealization};
    use atpm_graph::{GraphBuilder, ResidualGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// 0 -> 1 -> 2 -> 3 chain; edge ids are 0, 1, 2 in order.
    fn chain() -> atpm_graph::Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(2, 3, 0.5).unwrap();
        b.build()
    }

    #[test]
    fn observe_follows_live_edges_only() {
        let g = chain();
        let mut eng = CascadeEngine::new();
        // Only edges 0 and 1 live: cascade from 0 reaches {0, 1, 2}.
        let real = MaterializedRealization::from_live_edges(3, &[0, 1]);
        let act = eng.observe(&&g, &real, &[0]);
        assert_eq!(act, vec![0, 1, 2]);
        // Edge 2 blocked: from 2, only itself.
        let act = eng.observe(&&g, &real, &[2]);
        assert_eq!(act, vec![2]);
    }

    #[test]
    fn observe_skips_dead_nodes() {
        let g = chain();
        let mut r = ResidualGraph::new(&g);
        r.remove(1);
        let real = MaterializedRealization::from_live_edges(3, &[0, 1, 2]);
        let mut eng = CascadeEngine::new();
        // 1 is dead, so the world's live edge 0->1 leads nowhere.
        let act = eng.observe(&r, &real, &[0]);
        assert_eq!(act, vec![0]);
        // A dead seed activates nothing.
        let act = eng.observe(&r, &real, &[1]);
        assert!(act.is_empty());
    }

    #[test]
    fn observe_handles_multiple_and_duplicate_seeds() {
        let g = chain();
        let real = MaterializedRealization::from_live_edges(3, &[2]);
        let mut eng = CascadeEngine::new();
        let act = eng.observe(&&g, &real, &[0, 0, 2]);
        assert_eq!(act, vec![0, 2, 3]);
    }

    #[test]
    fn observe_same_world_is_repeatable() {
        let g = chain();
        let real = HashedRealization::new(123);
        let mut eng = CascadeEngine::new();
        let a1 = eng.observe(&&g, &real, &[0]);
        let a2 = eng.observe(&&g, &real, &[0]);
        assert_eq!(a1, a2);
    }

    #[test]
    fn observation_is_consistent_with_incremental_removal() {
        // Observing {u, v} at once must equal observing u, removing A(u),
        // then observing v — the core soundness property of the adaptive loop.
        let g = chain();
        for seed in 0..50u64 {
            let real = HashedRealization::new(seed);
            let mut eng = CascadeEngine::new();
            let joint: std::collections::HashSet<_> =
                eng.observe(&&g, &real, &[0, 2]).into_iter().collect();

            let mut r = ResidualGraph::new(&g);
            let a0 = eng.observe(&r, &real, &[0]);
            r.remove_all(a0.iter().copied());
            let a2 = eng.observe(&r, &real, &[2]);
            let split: std::collections::HashSet<_> = a0.into_iter().chain(a2).collect();
            assert_eq!(joint, split, "world {seed}");
        }
    }

    #[test]
    fn random_cascade_bounds() {
        let g = chain();
        let mut eng = CascadeEngine::new();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let k = eng.random_cascade(&&g, &[0], &mut rng);
            assert!((1..=4).contains(&k));
        }
    }

    #[test]
    fn epoch_reuse_does_not_leak_marks() {
        let g = chain();
        let real = MaterializedRealization::from_live_edges(3, &[]);
        let mut eng = CascadeEngine::new();
        for _ in 0..10_000 {
            let act = eng.observe(&&g, &real, &[0]);
            assert_eq!(act, vec![0]);
        }
    }
}
