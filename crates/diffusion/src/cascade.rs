//! Forward IC cascades: observation of `A(u)` against a realization and
//! randomized cascades for Monte-Carlo estimation.
//!
//! Both paths run on the forward face of the baked
//! [`SampleView`](atpm_graph::SampleView) — the same machinery the
//! reverse-BFS samplers in `atpm-ris` use, mirrored to the out CSR:
//!
//! * edge coins are raw 32-bit draws compared against `u32` thresholds
//!   baked at graph build time (`atpm_graph::quantize_prob`), one unsigned
//!   compare per coin, never an `f32` in the hot loop;
//! * uniform out-neighborhoods (every node under a constant-weight model)
//!   take a geometric-skip fast path that jumps straight to the next
//!   accepted out-edge, with the first draw doubling as a one-compare
//!   whole-span reject;
//! * per-node metadata and the out-edge span of the next frontier member
//!   are software-prefetched one member ahead;
//! * visit marks are the shared epoch-stamped
//!   [`EpochMarks`](atpm_ris::workspace::EpochMarks), so a cascade costs
//!   zero heap allocation after warm-up (enforced by
//!   `tests/alloc_discipline.rs`).
//!
//! Because realizations and RR-set sampling draw against the same
//! quantized thresholds, a world realized forward is the world the RR-set
//! estimator reasons about, down to the last quantization bit.
//!
//! The pre-refactor per-coin walk survives as
//! [`random_cascade_percoin`](CascadeEngine::random_cascade_percoin): one
//! RNG draw per out-edge against the bare threshold slice, no skip, no
//! prefetch. It is pinned as the statistical oracle by
//! `tests/cascade_equivalence.rs`, exactly like
//! `RrSampler::sample_into_percoin` is for the reverse direction.

use atpm_graph::{threshold_accept, GraphView, Node, SampleView};
use atpm_ris::rng::unit_open;
use atpm_ris::workspace::EpochMarks;
use rand::Rng;

use crate::realization::Realization;

/// Reusable cascade workspace.
///
/// Visited marks are epoch-stamped (an O(1) bump starts a new cascade
/// instead of an O(n) clear) and the frontier queue is retained across
/// cascades, so a warm engine never touches the heap. One engine per
/// thread; it grows to the largest graph it has seen.
pub struct CascadeEngine {
    marks: EpochMarks,
    queue: Vec<Node>,
}

impl Default for CascadeEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl CascadeEngine {
    /// Creates an empty engine; buffers grow on first use.
    pub fn new() -> Self {
        CascadeEngine {
            marks: EpochMarks::new(),
            queue: Vec::new(),
        }
    }

    /// Runs the cascade seeded by `seeds` in the possible world `real`,
    /// restricted to alive nodes of `view`. Returns every activated node
    /// (seeds included), in BFS discovery order.
    ///
    /// Dead (previously removed) seeds are skipped; dead targets block.
    /// This is the observation primitive of the adaptive loop: the paper's
    /// `A(u_i)` is `observe(view, real, &[u_i])`.
    pub fn observe<V: GraphView, R: Realization>(
        &mut self,
        view: &V,
        real: &R,
        seeds: &[Node],
    ) -> Vec<Node> {
        let mut out = Vec::new();
        self.observe_into(view, real, seeds, &mut out);
        out
    }

    /// [`observe`](Self::observe) into a caller-owned buffer (cleared
    /// first) — the no-allocation form for callers that score many worlds
    /// in a loop, like the evaluation harness.
    ///
    /// The realization's coin for slot `i` of a node's out-span `lo..hi`
    /// is queried by forward edge id `lo + i` (out-edge ids are CSR
    /// positions), so observations stay consistent with reverse-side
    /// traversals of the same world.
    pub fn observe_into<V: GraphView, R: Realization>(
        &mut self,
        view: &V,
        real: &R,
        seeds: &[Node],
        out: &mut Vec<Node>,
    ) {
        out.clear();
        self.marks.begin(view.num_nodes());
        let sv: SampleView<'_> = view.sample_view();
        for &s in seeds {
            if view.is_alive(s) && self.marks.mark(s as usize) {
                sv.prefetch_out_meta(s);
                out.push(s);
            }
        }
        // `out` doubles as the BFS frontier (the activation set *is* the
        // visit order), with the next member's out-span prefetched while
        // the current one is scanned.
        if let Some(&r) = out.first() {
            let (lo, hi, _, _) = sv.out_meta(r);
            sv.prefetch_out_span(lo, hi);
        }
        let mut head = 0;
        while head < out.len() {
            let u = out[head];
            head += 1;
            let (lo, hi, _, _) = sv.out_meta(u);
            if let Some(&nu) = out.get(head) {
                let (nlo, nhi, _, _) = sv.out_meta(nu);
                sv.prefetch_out_span(nlo, nhi);
            }
            let targets = sv.targets(lo, hi);
            let thresholds = sv.out_thresholds(lo, hi);
            for i in 0..targets.len() {
                let v = targets[i];
                if sv.is_alive(v)
                    && real.is_live_q(lo as u32 + i as u32, thresholds[i])
                    && self.marks.mark(v as usize)
                {
                    sv.prefetch_out_meta(v);
                    out.push(v);
                }
            }
        }
    }

    /// Runs one cascade with *fresh* coins from `rng` and returns the number
    /// of activated nodes. Used by Monte-Carlo spread estimation, where each
    /// sample is an independent possible world.
    ///
    /// This is the coin-free fast path: integer-threshold coins, geometric
    /// skip over uniform out-neighborhoods, branchless staged accepts for
    /// short uniform spans, meta/span prefetch one frontier member ahead.
    /// Feed it a buffered counter RNG (`atpm_ris::CounterRng`) — that is
    /// what the batched drivers do — and a coin is a buffered 32-bit read.
    pub fn random_cascade<V: GraphView, G: Rng + ?Sized>(
        &mut self,
        view: &V,
        seeds: &[Node],
        rng: &mut G,
    ) -> usize {
        self.cascade_core::<V, G, true>(view, seeds, rng)
    }

    /// [`random_cascade`](Self::random_cascade) with the geometric-skip
    /// fast path disabled: every out-edge pays one threshold compare. Same
    /// distribution; exists so the benchmarks can price the two fast paths
    /// separately (`ris_engine/cascade_*`).
    pub fn random_cascade_threshold<V: GraphView, G: Rng + ?Sized>(
        &mut self,
        view: &V,
        seeds: &[Node],
        rng: &mut G,
    ) -> usize {
        self.cascade_core::<V, G, false>(view, seeds, rng)
    }

    /// The forward-BFS kernel behind the randomized cascades. Mirrors the
    /// reverse sampler's `rooted_core` structure edge for edge, over the
    /// out CSR.
    fn cascade_core<V: GraphView, G: Rng + ?Sized, const SKIP: bool>(
        &mut self,
        view: &V,
        seeds: &[Node],
        rng: &mut G,
    ) -> usize {
        self.marks.begin(view.num_nodes());
        self.queue.clear();
        let sv: SampleView<'_> = view.sample_view();
        for &s in seeds {
            if view.is_alive(s) && self.marks.mark(s as usize) {
                sv.prefetch_out_meta(s);
                self.queue.push(s);
            }
        }
        if let Some(&r) = self.queue.first() {
            let (lo, hi, _, _) = sv.out_meta(r);
            sv.prefetch_out_span(lo, hi);
        }
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let (lo, hi, thr, inv) = sv.out_meta(u);
            // One-member span lookahead: while `u` is processed, the next
            // frontier member's out-edge span is pulled in (its meta record
            // was prefetched when it was pushed).
            if let Some(&nu) = self.queue.get(head) {
                let (nlo, nhi, _, _) = sv.out_meta(nu);
                sv.prefetch_out_span(nlo, nhi);
            }
            let targets = sv.targets(lo, hi);
            if SKIP && inv < 0.0 {
                // Uniform out-neighborhood: geometric skip to the next
                // accepted out-edge. The first draw is special — `thr`
                // holds the quantized probability that the whole span
                // rejects, so the common no-accept case retires on one
                // integer compare; when an accept exists, the *same* draw
                // continues through the inverse transform. `inv = 1/ln(1-q)`
                // is finite negative, `ln(u)` is finite negative, so
                // `s >= 0` and `i` stays in bounds.
                let len = targets.len();
                let r0 = rng.next_u32();
                if r0 >= thr {
                    let mut s = ((r0 as f64 + 0.5) * (1.0 / 4_294_967_296.0)).ln() * inv;
                    let mut i = 0usize;
                    loop {
                        if s >= (len - i) as f64 {
                            break;
                        }
                        i += s as usize;
                        let w = targets[i];
                        if sv.is_alive(w) && self.marks.mark(w as usize) {
                            sv.prefetch_out_meta(w);
                            self.queue.push(w);
                        }
                        i += 1;
                        if i == len {
                            break;
                        }
                        s = unit_open(rng.next_u64()).ln() * inv;
                    }
                }
            } else if inv.is_nan() && thr != 0 {
                // Uniform out-neighborhood below the skip cutoff: the
                // shared threshold rides in a register, the per-edge array
                // is never touched. Short neighborhoods stage accepts
                // branchlessly — the accept decision is data-dependent
                // noise the predictor can't learn. (The staged form draws
                // a coin even for dead targets, where the long-form loop
                // short-circuits — same acceptance law, the coins are
                // independent either way.)
                const STAGE: usize = 16;
                if targets.len() <= STAGE {
                    let mut cand = [0 as Node; STAGE];
                    let mut k = 0usize;
                    for &w in targets {
                        cand[k] = w;
                        k += usize::from(threshold_accept(rng.next_u32(), thr) && sv.is_alive(w));
                    }
                    for &w in &cand[..k] {
                        if self.marks.mark(w as usize) {
                            sv.prefetch_out_meta(w);
                            self.queue.push(w);
                        }
                    }
                } else {
                    for &w in targets {
                        if sv.is_alive(w)
                            && threshold_accept(rng.next_u32(), thr)
                            && self.marks.mark(w as usize)
                        {
                            sv.prefetch_out_meta(w);
                            self.queue.push(w);
                        }
                    }
                }
            } else {
                let thresholds = sv.out_thresholds(lo, hi);
                for (&w, &t) in targets.iter().zip(thresholds) {
                    if sv.is_alive(w)
                        && threshold_accept(rng.next_u32(), t)
                        && self.marks.mark(w as usize)
                    {
                        sv.prefetch_out_meta(w);
                        self.queue.push(w);
                    }
                }
            }
        }
        self.queue.len()
    }

    /// The pre-refactor randomized cascade: one fresh 32-bit draw per
    /// out-edge against the bare per-edge threshold slice, no skip path,
    /// no prefetch. Kept as the statistical oracle the forward
    /// equivalence suite pins [`random_cascade`](Self::random_cascade)
    /// against; not a hot path.
    pub fn random_cascade_percoin<V: GraphView, G: Rng + ?Sized>(
        &mut self,
        view: &V,
        seeds: &[Node],
        rng: &mut G,
    ) -> usize {
        self.marks.begin(view.num_nodes());
        self.queue.clear();
        for &s in seeds {
            if view.is_alive(s) && self.marks.mark(s as usize) {
                self.queue.push(s);
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let (targets, _, _) = view.out_slice(u);
            let thresholds = view.base().out_thresholds(u);
            for i in 0..targets.len() {
                let v = targets[i];
                if view.is_alive(v)
                    && threshold_accept(rng.next_u32(), thresholds[i])
                    && self.marks.mark(v as usize)
                {
                    self.queue.push(v);
                }
            }
        }
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::realization::{HashedRealization, MaterializedRealization};
    use atpm_graph::{GraphBuilder, ResidualGraph};
    use atpm_ris::CounterRng;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// 0 -> 1 -> 2 -> 3 chain; edge ids are 0, 1, 2 in order.
    fn chain() -> atpm_graph::Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.add_edge(2, 3, 0.5).unwrap();
        b.build()
    }

    #[test]
    fn observe_follows_live_edges_only() {
        let g = chain();
        let mut eng = CascadeEngine::new();
        // Only edges 0 and 1 live: cascade from 0 reaches {0, 1, 2}.
        let real = MaterializedRealization::from_live_edges(3, &[0, 1]);
        let act = eng.observe(&&g, &real, &[0]);
        assert_eq!(act, vec![0, 1, 2]);
        // Edge 2 blocked: from 2, only itself.
        let act = eng.observe(&&g, &real, &[2]);
        assert_eq!(act, vec![2]);
    }

    #[test]
    fn observe_skips_dead_nodes() {
        let g = chain();
        let mut r = ResidualGraph::new(&g);
        r.remove(1);
        let real = MaterializedRealization::from_live_edges(3, &[0, 1, 2]);
        let mut eng = CascadeEngine::new();
        // 1 is dead, so the world's live edge 0->1 leads nowhere.
        let act = eng.observe(&r, &real, &[0]);
        assert_eq!(act, vec![0]);
        // A dead seed activates nothing.
        let act = eng.observe(&r, &real, &[1]);
        assert!(act.is_empty());
    }

    #[test]
    fn observe_handles_multiple_and_duplicate_seeds() {
        let g = chain();
        let real = MaterializedRealization::from_live_edges(3, &[2]);
        let mut eng = CascadeEngine::new();
        let act = eng.observe(&&g, &real, &[0, 0, 2]);
        assert_eq!(act, vec![0, 2, 3]);
    }

    #[test]
    fn observe_same_world_is_repeatable() {
        let g = chain();
        let real = HashedRealization::new(123);
        let mut eng = CascadeEngine::new();
        let a1 = eng.observe(&&g, &real, &[0]);
        let a2 = eng.observe(&&g, &real, &[0]);
        assert_eq!(a1, a2);
    }

    #[test]
    fn observe_into_reuses_the_buffer() {
        let g = chain();
        let real = HashedRealization::new(7);
        let mut eng = CascadeEngine::new();
        let mut buf = vec![99, 99, 99];
        eng.observe_into(&&g, &real, &[0], &mut buf);
        assert_eq!(buf, eng.observe(&&g, &real, &[0]));
        // Cleared between calls, not appended.
        eng.observe_into(&&g, &real, &[3], &mut buf);
        assert_eq!(buf, vec![3]);
    }

    #[test]
    fn observation_is_consistent_with_incremental_removal() {
        // Observing {u, v} at once must equal observing u, removing A(u),
        // then observing v — the core soundness property of the adaptive loop.
        let g = chain();
        for seed in 0..50u64 {
            let real = HashedRealization::new(seed);
            let mut eng = CascadeEngine::new();
            let joint: std::collections::HashSet<_> =
                eng.observe(&&g, &real, &[0, 2]).into_iter().collect();

            let mut r = ResidualGraph::new(&g);
            let a0 = eng.observe(&r, &real, &[0]);
            r.remove_all(a0.iter().copied());
            let a2 = eng.observe(&r, &real, &[2]);
            let split: std::collections::HashSet<_> = a0.into_iter().chain(a2).collect();
            assert_eq!(joint, split, "world {seed}");
        }
    }

    #[test]
    fn random_cascade_bounds() {
        let g = chain();
        let mut eng = CascadeEngine::new();
        let mut rng = CounterRng::new(1);
        for _ in 0..100 {
            let k = eng.random_cascade(&&g, &[0], &mut rng);
            assert!((1..=4).contains(&k));
            let k = eng.random_cascade_threshold(&&g, &[0], &mut rng);
            assert!((1..=4).contains(&k));
        }
        let mut std_rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let k = eng.random_cascade_percoin(&&g, &[0], &mut std_rng);
            assert!((1..=4).contains(&k));
        }
    }

    #[test]
    fn skip_path_respects_dead_nodes_and_marks() {
        // A broadcaster with 16 uniform out-edges at p = 0.2 takes the
        // skip path; kill half the sinks and check the cascade never
        // counts them.
        let mut b = GraphBuilder::new(17);
        for v in 1..17u32 {
            b.add_edge(0, v, 0.2).unwrap();
        }
        let g = b.build();
        assert!(g.out_skip_inv(0) < 0.0, "broadcaster must be skip-eligible");
        let mut r = ResidualGraph::new(&g);
        r.remove_all((1..17).filter(|v| v % 2 == 0));
        let mut eng = CascadeEngine::new();
        let mut rng = CounterRng::new(21);
        let mut total = 0usize;
        for _ in 0..20_000 {
            total += eng.random_cascade(&r, &[0], &mut rng);
        }
        // 8 alive sinks at p = 0.2 each: E[size] = 1 + 8·0.2 = 2.6.
        let mean = total as f64 / 20_000.0;
        assert!(
            (mean - 2.6).abs() < 0.05,
            "skip path over dead sinks drifted: {mean}"
        );
    }

    #[test]
    fn certain_edges_always_fire_forward() {
        // p = 1.0 out-edges must fire on every draw through every path.
        let mut b = GraphBuilder::new(5);
        for v in 1..5u32 {
            b.add_edge(0, v, 1.0).unwrap();
        }
        let g = b.build();
        let mut eng = CascadeEngine::new();
        let mut rng = CounterRng::new(3);
        for _ in 0..2_000 {
            assert_eq!(eng.random_cascade(&&g, &[0], &mut rng), 5);
            assert_eq!(eng.random_cascade_threshold(&&g, &[0], &mut rng), 5);
        }
    }

    #[test]
    fn epoch_reuse_does_not_leak_marks() {
        let g = chain();
        let real = MaterializedRealization::from_live_edges(3, &[]);
        let mut eng = CascadeEngine::new();
        for _ in 0..10_000 {
            let act = eng.observe(&&g, &real, &[0]);
            assert_eq!(act, vec![0]);
        }
    }
}
