//! # atpm-diffusion
//!
//! Independent cascade (IC) diffusion engine for the adaptive TPM stack.
//!
//! Three concerns live here:
//!
//! * **Realizations** ([`realization`]) — a *realization* (possible world,
//!   paper §II-A) fixes the outcome of every edge's activation coin. The
//!   adaptive algorithms interleave seed selection with observations *of the
//!   same possible world*, so realizations must be repeatable: the default
//!   [`HashedRealization`] derives each coin from `(realization seed, edge id)`
//!   with a splitmix-style hash — O(1) memory no matter how large the graph.
//! * **Cascades** ([`cascade`]) — forward BFS over live edges, both against a
//!   fixed realization (for observations `A(u)`) and with fresh coins (for
//!   Monte-Carlo spread estimation). A reusable [`CascadeEngine`] keeps
//!   epoch-marked visit buffers so repeated cascades never reallocate, and
//!   the randomized path runs coin-free on the forward face of the baked
//!   `SampleView` (integer thresholds, geometric skip over uniform
//!   out-neighborhoods, buffered counter RNG) — the out-side mirror of the
//!   reverse-BFS machinery in `atpm-ris`. The pre-refactor per-coin walk is
//!   retained as `CascadeEngine::random_cascade_percoin`, the statistical
//!   oracle of `tests/cascade_equivalence.rs`.
//! * **Spread** ([`spread`]) — `E[I(S)]` estimators: Monte-Carlo (including
//!   the batched, sharded [`mc_spread_batched`] driver) and, for tiny
//!   graphs, exact enumeration over all `2^m` realizations (the paper's
//!   oracle model made concrete; spread is #P-hard in general \[9\]).

pub mod cascade;
pub mod lt;
pub mod realization;
pub mod spread;

pub use cascade::CascadeEngine;
pub use lt::{lt_mc_spread, lt_observe, LtRealization};
pub use realization::{HashedRealization, MaterializedRealization, Realization};
pub use spread::{exact_spread, mc_spread, mc_spread_batched, mc_spread_batched_with_engine};
