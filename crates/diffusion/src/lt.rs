//! Linear threshold (LT) diffusion — an extension beyond the paper's IC
//! experiments.
//!
//! The paper's theory (§II, §V) holds for any model whose spread function is
//! monotone submodular; Kempe et al. \[16\] prove that for both IC and LT. We
//! ship LT so downstream users can run the same TPM machinery on the other
//! standard model.
//!
//! Under LT, every node `v` draws a threshold `θ_v ~ U[0,1]` and activates
//! once the summed weights of its active in-neighbours exceed `θ_v`
//! (with `Σ_u w(u,v) ≤ 1`). Kempe et al.'s live-edge characterization makes
//! realizations tractable: each node independently selects **at most one**
//! incoming edge (edge `e` with probability `w(e)`, none with probability
//! `1 − Σw`), and LT diffusion equals reachability over selected edges. An
//! [`LtRealization`] is therefore one hashed uniform draw *per node*.
//!
//! Edge selection has two legs. The hot leg
//! ([`LtRealization::selected_in_edge_fast`], used by [`lt_observe`] and
//! [`lt_rr_set`]) runs on the graph's baked `u32` coin lattice — the same
//! [`quantize_prob`](atpm_graph::quantize_prob) thresholds and packed
//! [`SampleMeta`] records the IC samplers compare raw draws against — so
//! the inner loop is integer adds and compares, and a uniform-weight
//! in-neighbourhood (the weighted-cascade case) resolves with a single
//! division instead of a scan. The f64 slow leg
//! ([`LtRealization::selected_in_edge`]) is retained as the readable
//! reference; the two agree statistically to the lattice's `2^-32`
//! per-edge quantization (the tests pin it).

use atpm_graph::{Graph, GraphView, Node, SampleMeta};

/// A possible world of the LT model: each node's selected in-edge, derived
/// lazily from a hash of `(seed, node)` — O(1) memory like
/// [`HashedRealization`](crate::HashedRealization).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LtRealization {
    seed: u64,
}

impl LtRealization {
    /// Creates the LT possible world identified by `seed`.
    pub fn new(seed: u64) -> Self {
        LtRealization { seed }
    }

    /// The identifying seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    #[inline]
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// The uniform draw assigned to node `v`.
    #[inline]
    pub fn unit(&self, v: Node) -> f64 {
        let h = Self::mix(
            self.seed
                .wrapping_mul(0xA24BAED4963EE407)
                .wrapping_add(0x9FB21C651E98DF25)
                ^ (v as u64).wrapping_mul(0xD6E8FEB86659FD93),
        );
        (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The draw of node `v` on the quantized `[0, 2^32)` coin lattice: the
    /// top 32 bits of the same hash behind [`unit`](Self::unit), so
    /// `unit_u32(v) == floor(unit(v) · 2^32)` and the two legs see the
    /// *same* uniform variate at their respective precisions.
    #[inline]
    pub fn unit_u32(&self, v: Node) -> u32 {
        let h = Self::mix(
            self.seed
                .wrapping_mul(0xA24BAED4963EE407)
                .wrapping_add(0x9FB21C651E98DF25)
                ^ (v as u64).wrapping_mul(0xD6E8FEB86659FD93),
        );
        (h >> 32) as u32
    }

    /// The in-edge of `v` selected in this world, as an index into `v`'s
    /// in-slice, or `None` (thresholds too high / no in-edges).
    ///
    /// Edge `i` is selected iff the draw falls inside its probability band
    /// `[Σ_{j<i} w_j, Σ_{j≤i} w_j)`; weights must satisfy `Σ w ≤ 1`
    /// (use [`normalize_lt_weights`] to enforce it).
    ///
    /// This is the retained f64 slow leg — the readable reference the fast
    /// leg is tested against. Hot paths use
    /// [`selected_in_edge_fast`](Self::selected_in_edge_fast).
    pub fn selected_in_edge(&self, g: &Graph, v: Node) -> Option<usize> {
        let (_, probs, _) = g.in_slice(v);
        let draw = self.unit(v);
        let mut acc = 0.0f64;
        for (i, &p) in probs.iter().enumerate() {
            acc += p as f64;
            if draw < acc {
                return Some(i);
            }
        }
        None
    }

    /// [`selected_in_edge`](Self::selected_in_edge) on the graph's baked
    /// `u32` coin lattice — the hot leg. Integer adds and compares only
    /// (no int→float conversion), and a uniform in-neighbourhood resolves
    /// with a single division via its packed [`SampleMeta`] record.
    ///
    /// Statistically equivalent to the slow leg, not bit-equal: both legs
    /// read the same per-node hash, but band boundaries live on the
    /// quantized lattice, so selections can differ when a draw lands
    /// within `~2^-32` of a boundary.
    pub fn selected_in_edge_fast(&self, g: &Graph, v: Node) -> Option<usize> {
        select_in_band(g.in_thresholds(v), g.in_meta(v), self.unit_u32(v))
    }
}

/// Width of one edge's probability band on the `[0, 2^32)` lattice. The
/// baked thresholds reserve `u32::MAX` for "certain" (see
/// [`quantize_prob`](atpm_graph::quantize_prob)); under LT a certain edge
/// owns the entire lattice — a band of exactly `2^32`, which is why bands
/// accumulate in `u64`.
#[inline]
fn band(t: u32) -> u64 {
    if t == u32::MAX {
        1u64 << 32
    } else {
        t as u64
    }
}

/// Quantized in-edge selection: the index of the band containing `draw`.
/// `thresholds` is the node's in-span of baked coins (`Σ bands ≤ 2^32`
/// when the LT validity condition `Σ w ≤ 1` holds); `meta` its packed
/// sampling record, which advertises uniform spans so they resolve with
/// one division instead of the scan.
#[inline]
fn select_in_band(thresholds: &[u32], meta: &SampleMeta, draw: u32) -> Option<usize> {
    let draw = draw as u64;
    // Uniform spans: skip-eligible records (finite `inv`) are uniform by
    // construction with the shared coin in slot 0; otherwise a nonzero
    // `meta.thr` *is* the shared coin. (`thr == 0` means mixed — or
    // all-zero, which the scan below correctly never selects from.)
    let shared = if meta.inv.is_finite() {
        Some(thresholds[0])
    } else if meta.thr != 0 {
        Some(meta.thr)
    } else {
        None
    };
    if let Some(t) = shared {
        let w = band(t);
        return (draw < w * thresholds.len() as u64).then(|| (draw / w) as usize);
    }
    let mut acc = 0u64;
    for (i, &t) in thresholds.iter().enumerate() {
        acc += band(t);
        if draw < acc {
            return Some(i);
        }
    }
    None
}

/// Rescales edge probabilities so every node's incoming weights sum to at
/// most 1 (the LT validity requirement). Weighted-cascade graphs
/// (`p = 1/indeg`) already satisfy it with equality; other weightings are
/// divided by the in-weight sum where it exceeds 1.
pub fn normalize_lt_weights(g: &Graph) -> Graph {
    // Precompute per-node in-weight sums.
    let n = g.num_nodes();
    let mut sums = vec![0.0f64; n];
    for v in 0..n as Node {
        let (_, probs, _) = g.in_slice(v);
        sums[v as usize] = probs.iter().map(|&p| p as f64).sum();
    }
    g.map_probs(|_, v, p| {
        let s = sums[v as usize];
        if s > 1.0 {
            (p as f64 / s) as f32
        } else {
            p
        }
    })
}

/// Forward LT cascade of `seeds` in world `real`, restricted to alive nodes
/// of `view`. Returns the activated nodes in discovery order.
///
/// Uses the live-edge formulation: node `v` activates iff its selected
/// in-edge comes from an activated (and alive) node.
pub fn lt_observe<V: GraphView>(view: &V, real: &LtRealization, seeds: &[Node]) -> Vec<Node> {
    let g = view.base();
    let mut active = vec![false; g.num_nodes()];
    let mut out: Vec<Node> = Vec::new();
    let mut queue: Vec<Node> = Vec::new();
    for &s in seeds {
        if view.is_alive(s) && !active[s as usize] {
            active[s as usize] = true;
            queue.push(s);
            out.push(s);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        let (targets, _, _) = g.out_slice(u);
        for &v in targets {
            if active[v as usize] || !view.is_alive(v) {
                continue;
            }
            // v activates via u iff v's selected in-edge points at u.
            if let Some(i) = real.selected_in_edge_fast(g, v) {
                let (sources, _, _) = g.in_slice(v);
                if sources[i] == u {
                    active[v as usize] = true;
                    queue.push(v);
                    out.push(v);
                }
            }
        }
    }
    out
}

/// Monte-Carlo LT spread: the mean cascade size over `samples` worlds
/// derived from `seed_base`.
pub fn lt_mc_spread<V: GraphView>(view: &V, seeds: &[Node], samples: usize, seed_base: u64) -> f64 {
    assert!(samples > 0, "need at least one sample");
    let total: usize = (0..samples as u64)
        .map(|i| lt_observe(view, &LtRealization::new(seed_base.wrapping_add(i)), seeds).len())
        .sum();
    total as f64 / samples as f64
}

/// Samples one LT RR set rooted at a uniform alive node: the reverse walk
/// along selected in-edges. Under LT an RR set is a *path*: each node has at
/// most one selected in-edge, so the reverse-reachable structure is the
/// chain root ← sel(root) ← sel(sel(root)) ⋯ (stopping at a dead end, a dead
/// node, or a cycle).
pub fn lt_rr_set<V: GraphView, R: rand::Rng + ?Sized>(
    view: &V,
    rng: &mut R,
    out: &mut Vec<Node>,
) -> bool {
    out.clear();
    let Some(root) = view.sample_alive(rng) else {
        return false;
    };
    let g = view.base();
    out.push(root);
    let mut v = root;
    loop {
        // Fresh selection per step (independent worlds across RR sets),
        // through the same quantized leg the forward cascade runs on.
        let (sources, _, _) = g.in_slice(v);
        let draw: u32 = rng.gen();
        let chosen =
            select_in_band(g.in_thresholds(v), g.in_meta(v), draw).map(|i| sources[i]);
        match chosen {
            Some(u) if view.is_alive(u) && !out.contains(&u) => {
                out.push(u);
                v = u;
            }
            _ => break,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpm_graph::{GraphBuilder, ResidualGraph, WeightingScheme};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Chain 0 -> 1 -> 2 with weight 1.0 per edge (valid LT: indeg 1 each).
    fn certain_chain() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        b.build()
    }

    #[test]
    fn deterministic_chain_fully_activates() {
        let g = certain_chain();
        for seed in 0..20u64 {
            let r = LtRealization::new(seed);
            let act = lt_observe(&&g, &r, &[0]);
            assert_eq!(act, vec![0, 1, 2], "weight-1 edges always selected");
        }
    }

    #[test]
    fn realization_is_deterministic_and_varies_with_seed() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        let g = b.build();
        let r = LtRealization::new(3);
        assert_eq!(r.selected_in_edge(&g, 2), r.selected_in_edge(&g, 2));
        // Over many seeds both in-edges (and never "none") get selected.
        let mut counts = [0usize; 2];
        for seed in 0..2000u64 {
            let sel = LtRealization::new(seed).selected_in_edge(&g, 2).unwrap();
            counts[sel] += 1;
        }
        assert!(counts[0] > 800 && counts[1] > 800, "{counts:?}");
    }

    #[test]
    fn selection_respects_partial_weight() {
        // Single in-edge of weight 0.3: selected ~30% of the time.
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 0.3).unwrap();
        let g = b.build();
        let selected = (0..20_000u64)
            .filter(|&s| LtRealization::new(s).selected_in_edge(&g, 1).is_some())
            .count();
        let rate = selected as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn fast_leg_matches_slow_leg_statistically_on_mixed_spans() {
        // A mixed-weight star: bands 0.15 / 0.35 / 0.25 (Σ = 0.75, so
        // "none" keeps the remaining 0.25) — a span the scan path must
        // handle. Both legs read the same per-node hash and disagree only
        // when a draw lands within ~2^-32 of a band boundary, i.e.
        // essentially never; the realized frequencies must match the
        // weights.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 3, 0.15).unwrap();
        b.add_edge(1, 3, 0.35).unwrap();
        b.add_edge(2, 3, 0.25).unwrap();
        let g = b.build();
        let trials = 40_000u64;
        let mut counts = [0usize; 4]; // three edges + "none"
        let mut disagreements = 0usize;
        for seed in 0..trials {
            let r = LtRealization::new(seed);
            let fast = r.selected_in_edge_fast(&g, 3);
            disagreements += usize::from(fast != r.selected_in_edge(&g, 3));
            counts[fast.unwrap_or(3)] += 1;
        }
        assert!(
            disagreements <= 1,
            "legs disagree on {disagreements} of {trials} draws"
        );
        for (i, want) in [0.15, 0.35, 0.25, 0.25].into_iter().enumerate() {
            let rate = counts[i] as f64 / trials as f64;
            assert!((rate - want).abs() < 0.01, "band {i}: rate {rate}");
        }
    }

    #[test]
    fn fast_leg_division_shortcut_agrees_on_uniform_spans() {
        // Uniform spans take the one-division shortcut, through both meta
        // encodings: a weighted-cascade star of 10 edges at 1/10 is
        // skip-eligible (finite `inv`, shared coin in slot 0); a 2-edge
        // star at 0.45 is uniform but below the skip degree (`meta.thr`
        // carries the coin). Each must agree with the slow leg and
        // realize the per-edge weight.
        let mut b = GraphBuilder::new(11);
        for u in 0..10u32 {
            b.add_edge(u, 10, 0.1).unwrap();
        }
        let g = b.build();
        let trials = 50_000u64;
        let mut counts = [0usize; 10];
        let mut disagreements = 0usize;
        for seed in 0..trials {
            let r = LtRealization::new(seed ^ 0xABCD);
            let fast = r.selected_in_edge_fast(&g, 10);
            disagreements += usize::from(fast != r.selected_in_edge(&g, 10));
            counts[fast.expect("10 bands of 1/10 cover the lattice")] += 1;
        }
        assert!(disagreements <= 2, "{disagreements} of {trials}");
        for (i, &c) in counts.iter().enumerate() {
            let rate = c as f64 / trials as f64;
            assert!((rate - 0.1).abs() < 0.01, "edge {i}: rate {rate}");
        }

        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2, 0.45).unwrap();
        b.add_edge(1, 2, 0.45).unwrap();
        let g = b.build();
        let mut counts = [0usize; 3];
        for seed in 0..trials {
            let r = LtRealization::new(seed);
            let fast = r.selected_in_edge_fast(&g, 2);
            assert_eq!(fast, r.selected_in_edge(&g, 2), "seed {seed}");
            counts[fast.unwrap_or(2)] += 1;
        }
        for (i, want) in [0.45, 0.45, 0.1].into_iter().enumerate() {
            let rate = counts[i] as f64 / trials as f64;
            assert!((rate - want).abs() < 0.01, "band {i}: rate {rate}");
        }
    }

    #[test]
    fn lt_mc_spread_matches_closed_form_on_chain() {
        // Weights p: E[I({0})] = 1 + p + p² exactly (path independence).
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        let g = b.build();
        let est = lt_mc_spread(&&g, &[0], 60_000, 7);
        assert!((est - 1.75).abs() < 0.02, "{est}");
    }

    #[test]
    fn lt_observe_respects_residual_views() {
        let g = certain_chain();
        let mut view = ResidualGraph::new(&g);
        view.remove(1);
        let act = lt_observe(&view, &LtRealization::new(1), &[0]);
        assert_eq!(act, vec![0], "dead node blocks the chain");
    }

    #[test]
    fn normalize_caps_in_weight_sums() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 2, 0.9).unwrap();
        b.add_edge(1, 2, 0.9).unwrap(); // sum 1.8 > 1
        let g = normalize_lt_weights(&b.build());
        let (_, probs, _) = g.in_slice(2);
        let sum: f64 = probs.iter().map(|&p| p as f64).sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        // Weighted cascade is already valid and must be untouched.
        let wc = WeightingScheme::WeightedCascade.apply(&certain_chain());
        let wc2 = normalize_lt_weights(&wc);
        assert_eq!(
            wc.edges().collect::<Vec<_>>(),
            wc2.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn lt_rr_sets_estimate_spread() {
        // RIS identity under LT: E[I({u})] = n·Pr[u ∈ RR].
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = Vec::new();
        let theta = 150_000;
        let mut cov = 0usize;
        for _ in 0..theta {
            assert!(lt_rr_set(&&g, &mut rng, &mut buf));
            if buf.contains(&0) {
                cov += 1;
            }
        }
        let est = 3.0 * cov as f64 / theta as f64;
        assert!((est - 1.75).abs() < 0.02, "{est}");
    }

    #[test]
    fn lt_rr_sets_are_paths() {
        let mut b = GraphBuilder::new(6);
        for v in 1..6u32 {
            b.add_edge(v - 1, v, 0.8).unwrap();
            b.add_edge((v + 1) % 6, v, 0.2).unwrap();
        }
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = Vec::new();
        for _ in 0..500 {
            lt_rr_set(&&g, &mut rng, &mut buf);
            let unique: std::collections::HashSet<_> = buf.iter().collect();
            assert_eq!(unique.len(), buf.len(), "RR path must not repeat nodes");
        }
    }
}
