//! Shared scaffolding for the parallel RIS engine: worker seeding, sharded
//! fan-out/fan-in, and the epoch-marked scratch marks every hot query path
//! reuses.
//!
//! Before this module existed, `sampler` and `stream` each carried a private
//! `worker_seed` and a private copy of the scoped-thread spawn/merge loop;
//! the two had silently diverged. Every parallel entry point now derives
//! worker streams from [`worker_seed`] and fans out through [`run_sharded`],
//! so determinism semantics ("pure function of `(input, seed, threads)`")
//! are defined in exactly one place.

/// Derives the RNG seed of worker `tid` from a batch seed.
///
/// Workers must not share streams; the mix is a wyhash-style multiply-add
/// whose constants are pinned by [`tests::worker_seed_values_are_pinned`] —
/// changing them silently redraws every sampled world, so any change must be
/// deliberate.
#[inline]
pub fn worker_seed(seed: u64, tid: u64) -> u64 {
    seed ^ tid
        .wrapping_mul(0xA0761D6478BD642F)
        .wrapping_add(0xE7037ED1A0B428DB)
}

/// Splits `total` work items across `threads` *workers* (deterministic
/// stream shards) and merges the per-worker outputs in worker order.
///
/// `worker(tid, quota, seed)` runs with `quota` items and the stream seed
/// `worker_seed(seed, tid)`. Quotas differ by at most one and sum to
/// `total`; the returned vector is indexed by `tid`, so the merge order —
/// and therefore the final result — is independent of thread scheduling.
///
/// The worker count fixes the *streams* (and hence the sampled worlds);
/// the OS threads that execute them are capped separately at
/// `available_parallelism()`. Oversubscribing a small machine — the
/// 1-vCPU build container running a `threads = 4` benchmark — used to pay
/// spawn and context-switch overhead for nothing; now the four shards run
/// on however many cores exist, producing bit-identical output either way
/// (shard `tid`'s content depends only on its seed and quota).
pub fn run_sharded<T, W>(total: usize, threads: usize, seed: u64, worker: W) -> Vec<T>
where
    T: Send,
    W: Fn(usize, usize, u64) -> T + Sync,
{
    let threads = threads.max(1).min(total.max(1));
    let per = total / threads;
    let extra = total % threads;
    let quota_of = |tid: usize| per + usize::from(tid < extra);
    let os_threads = threads.min(available_threads(None));
    if os_threads == 1 {
        return (0..threads)
            .map(|tid| worker(tid, quota_of(tid), worker_seed(seed, tid as u64)))
            .collect();
    }
    // Work-steal shard indices; slots keep the output in worker order.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        (0..threads).map(|_| std::sync::Mutex::new(None)).collect();
    let run = |slots: &[std::sync::Mutex<Option<T>>]| loop {
        let tid = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if tid >= threads {
            return;
        }
        let out = worker(tid, quota_of(tid), worker_seed(seed, tid as u64));
        *slots[tid].lock().expect("RIS worker panicked") = Some(out);
    };
    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..os_threads)
            .map(|_| scope.spawn(|| run(&slots)))
            .collect();
        run(&slots);
        for h in handles {
            h.join().expect("RIS worker panicked");
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("RIS worker panicked")
                .expect("every shard filled")
        })
        .collect()
}

/// Epoch-stamped marks over a dense id universe: O(1) set/test, O(1)
/// *bulk clear* (bump the epoch), zero allocation after the first use at a
/// given universe size.
///
/// This is the allocation discipline the whole engine runs on: instead of
/// `vec![false; n]` per query, every reusable visit/coverage buffer keeps a
/// `u16` stamp per id and compares it against the current epoch. The epoch
/// wraps after `u16::MAX` generations, at which point the stamps are zeroed
/// once — a 2-byte-per-id memset every 65k generations, amortized free,
/// and the narrow stamp halves the random-access working set of the
/// sampling and coverage hot loops.
#[derive(Debug, Default)]
pub struct EpochMarks {
    stamp: Vec<u16>,
    epoch: u16,
}

impl EpochMarks {
    /// Empty marks; the stamp array grows on first [`begin`](Self::begin).
    pub fn new() -> Self {
        EpochMarks {
            stamp: Vec::new(),
            epoch: 0,
        }
    }

    /// Starts a new generation over ids `0..n`: all marks read as unset.
    pub fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.epoch = match self.epoch.checked_add(1) {
            Some(e) => e,
            None => {
                self.stamp.iter_mut().for_each(|s| *s = 0);
                1
            }
        };
    }

    /// Marks `i`; returns `true` when `i` was unmarked in this generation.
    #[inline]
    pub fn mark(&mut self, i: usize) -> bool {
        let slot = &mut self.stamp[i];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// Whether `i` is marked in the current generation. Ids beyond the
    /// universe of the last [`begin`](Self::begin) read as unmarked.
    #[inline]
    pub fn is_marked(&self, i: usize) -> bool {
        self.stamp.get(i).is_some_and(|&s| s == self.epoch)
    }

    /// Universe size the marks currently cover.
    pub fn capacity(&self) -> usize {
        self.stamp.len()
    }

    /// Prefetches the stamp slot of `i` (no-op if the marks have not grown
    /// that far yet). The samplers use this to overlap the next root's
    /// first stamp write with the current sample.
    #[inline]
    pub fn prefetch(&self, i: usize) {
        if let Some(slot) = self.stamp.get(i) {
            atpm_graph::view::prefetch_read(slot);
        }
    }
}

/// Picks a worker count for samplers: available parallelism, optionally
/// capped.
///
/// `cap = None` uses the full machine. The old hard-wired cap of 8 lives on
/// only as [`crate::sampler::default_threads`]'s interpretation of the
/// `ATPM_MAX_THREADS` environment variable and the `ExpConfig` plumbing in
/// the bench crate — large machines are no longer silently throttled.
pub fn available_threads(cap: Option<usize>) -> usize {
    let avail = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    match cap {
        Some(c) => avail.min(c.max(1)),
        None => avail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden values: the shared helper must keep producing the exact streams
    /// the sampler used before the dedup, or every stored experiment
    /// trajectory silently changes meaning.
    #[test]
    fn worker_seed_values_are_pinned() {
        assert_eq!(worker_seed(0, 0), 0xE7037ED1A0B428DB);
        assert_eq!(worker_seed(7, 0), 0xE7037ED1A0B428DB ^ 7);
        assert_eq!(
            worker_seed(0, 1),
            0xA0761D6478BD642Fu64.wrapping_add(0xE7037ED1A0B428DB)
        );
        assert_eq!(
            worker_seed(42, 3),
            42 ^ 3u64
                .wrapping_mul(0xA0761D6478BD642F)
                .wrapping_add(0xE7037ED1A0B428DB)
        );
        // Distinct workers get distinct streams.
        let seeds: std::collections::HashSet<u64> = (0..64).map(|t| worker_seed(9, t)).collect();
        assert_eq!(seeds.len(), 64);
    }

    #[test]
    fn run_sharded_splits_quotas_exactly() {
        let quotas = run_sharded(10, 4, 1, |tid, quota, _| (tid, quota));
        assert_eq!(quotas, vec![(0, 3), (1, 3), (2, 2), (3, 2)]);
        let total: usize = quotas.iter().map(|&(_, q)| q).sum();
        assert_eq!(total, 10);
        // Never more workers than items.
        assert_eq!(run_sharded(2, 8, 1, |tid, q, _| (tid, q)).len(), 2);
        // Single worker runs inline with tid 0.
        assert_eq!(
            run_sharded(5, 1, 3, |tid, q, s| (tid, q, s)),
            vec![(0, 5, worker_seed(3, 0))]
        );
    }

    #[test]
    fn run_sharded_merges_in_worker_order() {
        let parts = run_sharded(100, 7, 5, |tid, _, seed| (tid, seed));
        for (i, &(tid, seed)) in parts.iter().enumerate() {
            assert_eq!(tid, i);
            assert_eq!(seed, worker_seed(5, i as u64));
        }
    }

    #[test]
    fn epoch_marks_reset_in_o1() {
        let mut m = EpochMarks::new();
        m.begin(10);
        assert!(m.mark(3));
        assert!(!m.mark(3), "second mark reports already-set");
        assert!(m.is_marked(3));
        assert!(!m.is_marked(4));
        m.begin(10);
        assert!(
            !m.is_marked(3),
            "new generation clears marks without touching memory"
        );
        assert!(m.mark(3));
        // Growing the universe keeps old marks addressable.
        m.begin(20);
        assert!(m.mark(19));
        assert!(!m.is_marked(3));
        assert!(!m.is_marked(10_000), "out-of-universe ids read unmarked");
    }

    #[test]
    fn epoch_marks_survive_wraparound() {
        let mut m = EpochMarks {
            stamp: vec![u16::MAX - 1; 4],
            epoch: u16::MAX - 1,
        };
        assert!(m.is_marked(0));
        m.begin(4); // epoch -> MAX
        assert!(!m.is_marked(0));
        assert!(m.mark(0));
        m.begin(4); // wraps: stamps zeroed, epoch 1
        assert!(!m.is_marked(0));
        assert!(m.mark(0) && m.is_marked(0));
    }

    #[test]
    fn available_threads_honors_cap() {
        assert_eq!(available_threads(Some(1)), 1);
        assert!(available_threads(None) >= 1);
        assert!(available_threads(Some(4)) <= 4);
        // cap 0 is clamped to 1, not "no threads".
        assert_eq!(available_threads(Some(0)), 1);
    }
}
