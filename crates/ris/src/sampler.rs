//! Deterministic (optionally multi-threaded) batch RR-set generation.

use atpm_graph::GraphView;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::collection::RrCollection;
use crate::rr::RrSampler;

/// Derives the RNG seed of worker `tid` from the batch seed; workers must not
/// share streams.
fn worker_seed(seed: u64, tid: u64) -> u64 {
    seed ^ tid.wrapping_mul(0xA0761D6478BD642F).wrapping_add(0xE7037ED1A0B428DB)
}

/// Generates `count` RR sets on `view` into a frozen [`RrCollection`].
///
/// Work is split across `threads` workers, each with an independent seeded
/// RNG; partial collections are merged in worker order, so the result is a
/// pure function of `(view, count, seed, threads)` — experiments stay
/// reproducible under parallelism (though changing `threads` changes which
/// worlds are drawn).
///
/// If the view has no alive nodes the returned collection is empty.
pub fn generate_batch<V: GraphView + Sync>(
    view: &V,
    count: usize,
    seed: u64,
    threads: usize,
) -> RrCollection {
    let threads = threads.max(1);
    let mut merged = RrCollection::new(view.num_nodes(), view.num_alive());
    if count == 0 || view.num_alive() == 0 {
        merged.freeze();
        return merged;
    }
    if threads == 1 {
        let mut sampler = RrSampler::new();
        let mut rng = StdRng::seed_from_u64(worker_seed(seed, 0));
        let mut buf = Vec::new();
        for _ in 0..count {
            if !sampler.sample_into(view, &mut rng, &mut buf) {
                break;
            }
            merged.push(&buf);
        }
        merged.freeze();
        return merged;
    }

    let per = count / threads;
    let extra = count % threads;
    let parts: Vec<RrCollection> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let quota = per + usize::from(tid < extra);
                scope.spawn(move || {
                    let mut local = RrCollection::new(view.num_nodes(), view.num_alive());
                    let mut sampler = RrSampler::new();
                    let mut rng = StdRng::seed_from_u64(worker_seed(seed, tid as u64));
                    let mut buf = Vec::new();
                    for _ in 0..quota {
                        if !sampler.sample_into(view, &mut rng, &mut buf) {
                            break;
                        }
                        local.push(&buf);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sampler worker panicked"))
            .collect()
    });
    for part in &parts {
        for i in 0..part.len() {
            merged.push(part.set(i));
        }
    }
    merged.freeze();
    merged
}

/// Picks a sensible worker count: available parallelism capped at 8 (RR-set
/// generation saturates memory bandwidth quickly).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get().min(8))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpm_graph::{GraphBuilder, ResidualGraph};

    fn chain(p: f32) -> atpm_graph::Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, p).unwrap();
        b.add_edge(1, 2, p).unwrap();
        b.build()
    }

    #[test]
    fn batch_has_requested_count() {
        let g = chain(0.5);
        let c = generate_batch(&&g, 1000, 7, 1);
        assert_eq!(c.len(), 1000);
        assert_eq!(c.n_alive(), 3);
    }

    #[test]
    fn parallel_batch_is_deterministic() {
        let g = chain(0.5);
        let a = generate_batch(&&g, 2000, 11, 4);
        let b = generate_batch(&&g, 2000, 11, 4);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.set(i), b.set(i));
        }
    }

    #[test]
    fn parallel_and_serial_agree_statistically() {
        let g = chain(0.5);
        let serial = generate_batch(&&g, 30_000, 1, 1);
        let parallel = generate_batch(&&g, 30_000, 1, 4);
        // Different worlds, same distribution: singleton spreads match.
        for u in 0..3u32 {
            let s = serial.spread_node(u);
            let p = parallel.spread_node(u);
            assert!((s - p).abs() < 0.06, "node {u}: serial {s} parallel {p}");
        }
    }

    #[test]
    fn empty_view_gives_empty_frozen_collection() {
        let g = chain(0.5);
        let mut r = ResidualGraph::new(&g);
        r.remove_all(0..3);
        let c = generate_batch(&r, 100, 3, 2);
        assert!(c.is_empty());
        assert_eq!(c.spread_set(&[0]), 0.0);
    }

    #[test]
    fn spread_estimate_matches_exact_enumeration() {
        let g = chain(0.5);
        let c = generate_batch(&&g, 120_000, 5, 4);
        // exact E[I({0})] = 1.75 (chain p=0.5); E[I({0,2})] = 1.75 + 1 = 2.75
        // minus overlap? No: I({0,2}) counts union of reach; exact = ?
        // From enumeration: reach(0) = {0,1?,2?}, reach(2) = {2}. Union size
        // E = 1(for 0) + p(1 reached)·1 + 1(for 2) = 1 + 0.5 + 1 = 2.5.
        assert!((c.spread_node(0) - 1.75).abs() < 0.03, "{}", c.spread_node(0));
        assert!((c.spread_set(&[0, 2]) - 2.5).abs() < 0.03, "{}", c.spread_set(&[0, 2]));
    }
}
