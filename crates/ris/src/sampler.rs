//! Deterministic (optionally multi-threaded) batch RR-set generation.
//!
//! Workers fill pre-sized [`RrShard`]s in the collection's own flat layout;
//! the merge is two bulk copies per shard (`extend_from_slice` + offset
//! rebasing) and the inverted index is built exactly once over the merged
//! arrays. Worker seeding and fan-out/fan-in go through
//! [`crate::workspace`], shared with the streaming counters. Each worker
//! samples through the coin-free `SampleView` path of [`RrSampler`], fed by
//! its own buffered [`CounterRng`] stream.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use atpm_graph::GraphView;
use atpm_obs::{tracer, Counter, Histogram};

use crate::collection::{RrCollection, RrShard};
use crate::rng::CounterRng;
use crate::rr::RrSampler;
use crate::workspace::{available_threads, run_sharded};

/// Expected RR-set size used only for shard pre-sizing (the truth is graph-
/// dependent; over-estimating wastes a little reserve, under-estimating
/// costs one or two grows per worker).
const AVG_SET_SIZE_HINT: usize = 8;

/// Stage timers for [`generate_batch`], registered once in the
/// process-global registry ([`atpm_obs::global`]). Each batch records one
/// value per stage — sample (worker fan-out), merge (shard absorption),
/// freeze (index build) — strictly *outside* the per-sample inner loop, so
/// the instrumented cost per batch is a handful of clock reads and the
/// `sample/skip` bench medians stay inside the regression gate.
struct StageMetrics {
    sample: Arc<Histogram>,
    merge: Arc<Histogram>,
    freeze: Arc<Histogram>,
    batches: Arc<Counter>,
    sets: Arc<Counter>,
}

fn stage_metrics() -> &'static StageMetrics {
    static METRICS: OnceLock<StageMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = atpm_obs::global();
        const HELP: &str = "generate_batch stage wall time by stage (sample/merge/freeze)";
        StageMetrics {
            sample: reg.histogram_with("atpm_ris_stage_seconds", &[("stage", "sample")], HELP),
            merge: reg.histogram_with("atpm_ris_stage_seconds", &[("stage", "merge")], HELP),
            freeze: reg.histogram_with("atpm_ris_stage_seconds", &[("stage", "freeze")], HELP),
            batches: reg.counter("atpm_ris_batches_total", "generate_batch invocations"),
            sets: reg.counter("atpm_ris_sets_total", "RR sets generated"),
        }
    })
}

/// Generates `count` RR sets on `view` into a frozen [`RrCollection`].
///
/// Work is split across `threads` workers, each with an independent seeded
/// RNG; worker shards are merged in worker order by bulk copy, so the result
/// is a pure function of `(view, count, seed, threads)` — experiments stay
/// reproducible under parallelism (though changing `threads` changes which
/// worlds are drawn).
///
/// If the view has no alive nodes the returned collection is empty.
pub fn generate_batch<V: GraphView + Sync>(
    view: &V,
    count: usize,
    seed: u64,
    threads: usize,
) -> RrCollection {
    if count == 0 || view.num_alive() == 0 {
        let mut merged = RrCollection::new(view.num_nodes(), view.num_alive());
        merged.freeze();
        return merged;
    }
    let metrics = stage_metrics();
    let t_sample = Instant::now();
    let shards: Vec<RrShard> = run_sharded(count, threads, seed, |_tid, quota, wseed| {
        let mut shard = RrShard::with_capacity(quota, AVG_SET_SIZE_HINT);
        let mut sampler = RrSampler::new();
        let mut rng = CounterRng::new(wseed);
        let sv = view.sample_view();
        // Root lookahead: the next set's root is drawn one set early; its
        // sampling record, in-edge span, and visit-mark slot are all
        // prefetched while the *current* set samples, so the three random
        // accesses that open every set are already resolving.
        let mut next_root = view.sample_alive(&mut rng);
        if let Some(r) = next_root {
            sv.prefetch_meta(r);
        }
        for _ in 0..quota {
            let Some(root) = next_root else { break };
            next_root = view.sample_alive(&mut rng);
            if let Some(r) = next_root {
                sv.prefetch_meta(r);
                sampler.prefetch_visit(r);
            }
            // The set is sampled straight into the shard's flat storage.
            shard.push_with(|members| sampler.sample_append(view, root, &mut rng, members));
            if let Some(r) = next_root {
                // Its meta record arrived during the sample; chase it to
                // the span now.
                let (lo, hi, _, _) = sv.in_meta(r);
                sv.prefetch_span(lo, hi);
            }
        }
        shard
    });
    let sample_d = t_sample.elapsed();
    let t_merge = Instant::now();
    let sets: usize = shards.iter().map(RrShard::len).sum();
    let members: usize = shards.iter().map(RrShard::total_members).sum();
    let mut merged = RrCollection::with_capacity(view.num_nodes(), view.num_alive(), sets, members);
    for shard in &shards {
        merged.absorb_shard(shard);
    }
    let merge_d = t_merge.elapsed();
    let t_freeze = Instant::now();
    merged.freeze_parallel(threads);
    let freeze_d = t_freeze.elapsed();
    metrics.sample.record_duration(sample_d);
    metrics.merge.record_duration(merge_d);
    metrics.freeze.record_duration(freeze_d);
    metrics.batches.inc();
    metrics.sets.add(sets as u64);
    let tr = tracer();
    if tr.enabled() {
        tr.record("ris", "sample", t_sample, sample_d);
        tr.record("ris", "merge", t_merge, merge_d);
        tr.record("ris", "freeze", t_freeze, freeze_d);
    }
    merged
}

/// Picks a sensible worker count: available parallelism, optionally capped
/// by the `ATPM_MAX_THREADS` environment variable.
///
/// There is deliberately no built-in hard cap anymore (the old limit of 8
/// silently throttled large machines); deployments that do want a ceiling
/// set `ATPM_MAX_THREADS` or pass an explicit thread count through
/// `ExpConfig`/policy configs.
pub fn default_threads() -> usize {
    let cap = std::env::var("ATPM_MAX_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok());
    available_threads(cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpm_graph::{GraphBuilder, ResidualGraph};

    fn chain(p: f32) -> atpm_graph::Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, p).unwrap();
        b.add_edge(1, 2, p).unwrap();
        b.build()
    }

    #[test]
    fn batch_has_requested_count() {
        let g = chain(0.5);
        let c = generate_batch(&&g, 1000, 7, 1);
        assert_eq!(c.len(), 1000);
        assert_eq!(c.n_alive(), 3);
    }

    #[test]
    fn parallel_batch_is_deterministic() {
        let g = chain(0.5);
        let a = generate_batch(&&g, 2000, 11, 4);
        let b = generate_batch(&&g, 2000, 11, 4);
        assert_eq!(a.len(), b.len());
        for i in 0..a.len() {
            assert_eq!(a.set(i), b.set(i));
        }
    }

    #[test]
    fn sharded_merge_matches_per_set_repush() {
        // The pre-refactor merge re-pushed every set of every worker part
        // through the un-frozen API. The bulk-copy merge must produce a
        // byte-identical collection: same worker seeds, same split, same
        // order.
        let g = chain(0.5);
        for threads in [1usize, 2, 3, 4, 8] {
            let fast = generate_batch(&&g, 999, 13, threads);
            // Reference: per-worker sampling identical to the sharded path,
            // merged set by set.
            let mut slow = RrCollection::new(3, 3);
            let parts = crate::workspace::run_sharded(999, threads, 13, |_tid, quota, wseed| {
                // Mirrors the production worker exactly, including the
                // root-lookahead draw order — the merge legs must consume
                // identical streams to be byte-comparable.
                let mut local: Vec<Vec<u32>> = Vec::new();
                let mut sampler = RrSampler::new();
                let mut rng = CounterRng::new(wseed);
                let mut buf = Vec::new();
                let mut next_root = (&&g).sample_alive(&mut rng);
                for _ in 0..quota {
                    let Some(root) = next_root else { break };
                    next_root = (&&g).sample_alive(&mut rng);
                    sampler.sample_into_rooted(&&g, root, &mut rng, &mut buf);
                    local.push(buf.clone());
                }
                local
            });
            for part in &parts {
                for set in part {
                    slow.push(set);
                }
            }
            slow.freeze();
            assert_eq!(fast.len(), slow.len(), "threads {threads}");
            for i in 0..fast.len() {
                assert_eq!(fast.set(i), slow.set(i), "threads {threads}, set {i}");
            }
        }
    }

    #[test]
    fn parallel_and_serial_agree_statistically() {
        let g = chain(0.5);
        let serial = generate_batch(&&g, 30_000, 1, 1);
        let parallel = generate_batch(&&g, 30_000, 1, 4);
        // Different worlds, same distribution: singleton spreads match.
        for u in 0..3u32 {
            let s = serial.spread_node(u);
            let p = parallel.spread_node(u);
            assert!((s - p).abs() < 0.06, "node {u}: serial {s} parallel {p}");
        }
    }

    #[test]
    fn empty_view_gives_empty_frozen_collection() {
        let g = chain(0.5);
        let mut r = ResidualGraph::new(&g);
        r.remove_all(0..3);
        let c = generate_batch(&r, 100, 3, 2);
        assert!(c.is_empty());
        assert_eq!(c.spread_set(&[0]), 0.0);
    }

    #[test]
    fn spread_estimate_matches_exact_enumeration() {
        let g = chain(0.5);
        let c = generate_batch(&&g, 120_000, 5, 4);
        // exact E[I({0})] = 1.75 (chain p=0.5); E[I({0,2})] = 1.75 + 1 = 2.75
        // minus overlap? No: I({0,2}) counts union of reach; exact = ?
        // From enumeration: reach(0) = {0,1?,2?}, reach(2) = {2}. Union size
        // E = 1(for 0) + p(1 reached)·1 + 1(for 2) = 1 + 0.5 + 1 = 2.5.
        assert!(
            (c.spread_node(0) - 1.75).abs() < 0.03,
            "{}",
            c.spread_node(0)
        );
        assert!(
            (c.spread_set(&[0, 2]) - 2.5).abs() < 0.03,
            "{}",
            c.spread_set(&[0, 2])
        );
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
