//! Stored RR-set batches with an inverted index and coverage queries.
//!
//! Allocation discipline: the collection itself is three flat arrays plus a
//! flat inverted index, built exactly once by [`RrCollection::freeze`].
//! Parallel generation produces [`RrShard`]s whose storage is merged with
//! two `extend_from_slice` calls per shard ([`RrCollection::absorb_shard`])
//! instead of re-pushing set by set. Hot queries go through a reusable
//! [`CoverageScratch`] (epoch-stamped, O(1) bulk clear) so steady-state
//! coverage evaluation performs **zero heap allocation per query** — see
//! `tests/alloc_discipline.rs`.

use atpm_graph::Node;

use crate::nodeset::NodeSet;
use crate::workspace::EpochMarks;

/// A worker-local batch of RR sets in the same flat layout as
/// [`RrCollection`], ready to be merged by bulk copy.
///
/// `offsets` always starts with `0` and holds one entry per stored set plus
/// the sentinel, exactly like the collection's own offsets but relative to
/// the shard.
#[derive(Debug)]
pub struct RrShard {
    members: Vec<Node>,
    offsets: Vec<u64>,
}

// Not derived: a derived Default would skip the leading-0 sentinel in
// `offsets` and break the flat-layout invariant.
impl Default for RrShard {
    fn default() -> Self {
        Self::new()
    }
}

impl RrShard {
    /// An empty shard.
    pub fn new() -> Self {
        RrShard {
            members: Vec::new(),
            offsets: vec![0],
        }
    }

    /// An empty shard pre-sized for `sets` RR sets of `avg_size` expected
    /// members, so worker-side pushes settle into at most a few grows.
    pub fn with_capacity(sets: usize, avg_size: usize) -> Self {
        let mut offsets = Vec::with_capacity(sets + 1);
        offsets.push(0);
        RrShard {
            members: Vec::with_capacity(sets.saturating_mul(avg_size)),
            offsets,
        }
    }

    /// Appends one RR set.
    pub fn push(&mut self, set: &[Node]) {
        self.members.extend_from_slice(set);
        self.offsets.push(self.members.len() as u64);
    }

    /// Appends one RR set written *in place*: `fill` appends the members
    /// directly onto the shard's flat storage (e.g.
    /// [`RrSampler::sample_append`](crate::RrSampler::sample_append)), and
    /// the boundary is recorded afterwards — no intermediate buffer, no
    /// copy.
    pub fn push_with(&mut self, fill: impl FnOnce(&mut Vec<Node>)) {
        fill(&mut self.members);
        self.offsets.push(self.members.len() as u64);
    }

    /// Number of stored sets.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether no sets are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total stored members.
    pub fn total_members(&self) -> usize {
        self.members.len()
    }
}

/// A batch of RR sets in flat storage plus an inverted node → set-id index.
///
/// `CovR(S)` (paper Table I) is the number of stored sets that intersect `S`.
/// The inverted index is built once with a counting sort, so the per-node
/// memory overhead is two flat arrays rather than `n` separate `Vec`s.
#[derive(Debug)]
pub struct RrCollection {
    /// Universe size (total nodes of the view the sets were sampled on).
    n: usize,
    /// Alive-node count at generation time (`n_i`); spread estimates scale by
    /// this, not by `n`.
    n_alive: usize,
    /// Flat member storage.
    members: Vec<Node>,
    /// `offsets[i]..offsets[i+1]` is set `i` in `members`.
    offsets: Vec<u64>,
    /// Inverted index: `idx_sets[idx_offsets[u]..idx_offsets[u+1]]` are the
    /// ids of the sets containing `u`. Built on demand by `freeze`.
    idx_offsets: Vec<u64>,
    idx_sets: Vec<u32>,
    frozen: bool,
}

impl RrCollection {
    /// An empty collection over a view with `n` total and `n_alive` alive
    /// nodes.
    pub fn new(n: usize, n_alive: usize) -> Self {
        RrCollection {
            n,
            n_alive,
            members: Vec::new(),
            offsets: vec![0],
            idx_offsets: Vec::new(),
            idx_sets: Vec::new(),
            frozen: false,
        }
    }

    /// Number of stored RR sets (`θ`).
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether no sets are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Alive-node count `n_i` the sets were generated against.
    pub fn n_alive(&self) -> usize {
        self.n_alive
    }

    /// Universe size: total node count of the base graph.
    pub fn len_universe(&self) -> usize {
        self.n
    }

    /// Total stored members (Σ |R|).
    pub fn total_members(&self) -> usize {
        self.members.len()
    }

    /// Resident bytes of the set storage plus the inverted index (element
    /// counts × element sizes; allocator slack not included). The serve
    /// layer's snapshot-eviction budget charges each snapshot with this.
    pub fn mem_bytes(&self) -> usize {
        self.members.len() * std::mem::size_of::<Node>()
            + self.offsets.len() * std::mem::size_of::<u64>()
            + self.idx_sets.len() * std::mem::size_of::<u32>()
            + self.idx_offsets.len() * std::mem::size_of::<u64>()
    }

    /// An empty collection pre-sized for `sets` RR sets totalling `members`
    /// stored nodes (capacity hints only — exceeding them is fine).
    pub fn with_capacity(n: usize, n_alive: usize, sets: usize, members: usize) -> Self {
        let mut offsets = Vec::with_capacity(sets + 1);
        offsets.push(0);
        RrCollection {
            n,
            n_alive,
            members: Vec::with_capacity(members),
            offsets,
            idx_offsets: Vec::new(),
            idx_sets: Vec::new(),
            frozen: false,
        }
    }

    /// Appends one RR set. Panics after [`freeze`](Self::freeze).
    pub fn push(&mut self, set: &[Node]) {
        assert!(!self.frozen, "cannot push into a frozen collection");
        self.members.extend_from_slice(set);
        self.offsets.push(self.members.len() as u64);
    }

    /// Merges a worker shard by bulk copy: one `extend_from_slice` for the
    /// members, one offset-rebased extend for the set boundaries. This is
    /// the fan-in half of sharded generation — no per-set re-push, no
    /// per-set bounds checks. Panics after [`freeze`](Self::freeze).
    pub fn absorb_shard(&mut self, shard: &RrShard) {
        assert!(!self.frozen, "cannot absorb into a frozen collection");
        let base = self.members.len() as u64;
        self.members.extend_from_slice(&shard.members);
        self.offsets
            .extend(shard.offsets[1..].iter().map(|&o| o + base));
    }

    /// Members of set `i`.
    pub fn set(&self, i: usize) -> &[Node] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.members[lo..hi]
    }

    /// Builds the inverted index (idempotent). Required before any
    /// index-based query.
    pub fn freeze(&mut self) {
        if self.frozen {
            return;
        }
        // Cursors are u32, halving the zero-fill and keeping the scatter's
        // working set dense; the stored u64 offsets are widened in one
        // cheap pass. (The parallel build below already indexes postings
        // with u32.)
        assert!(
            self.members.len() <= u32::MAX as usize,
            "posting count exceeds the u32 index space"
        );
        // Both passes stream the member array sequentially but scatter into
        // the counts array at random; prefetching the cursor a few members
        // ahead hides most of that latency.
        const LOOKAHEAD: usize = 16;
        let mut counts = vec![0u32; self.n + 1];
        for (i, &u) in self.members.iter().enumerate() {
            if let Some(&next) = self.members.get(i + LOOKAHEAD) {
                atpm_graph::view::prefetch_read(&counts[next as usize]);
            }
            counts[u as usize + 1] += 1;
        }
        for i in 0..self.n {
            counts[i + 1] += counts[i];
        }
        // counts[u] is the start of u's posting list; placement advances it
        // to the end (= start of u+1), so shifting right by one afterwards
        // rebuilds the offsets without a cursor clone.
        let mut idx_sets = vec![0u32; self.members.len()];
        let mut set = 0usize;
        let mut set_end = self.offsets.get(1).copied().unwrap_or(0);
        for (i, &u) in self.members.iter().enumerate() {
            if let Some(&next) = self.members.get(i + LOOKAHEAD) {
                atpm_graph::view::prefetch_read(&counts[next as usize]);
            }
            while i as u64 == set_end {
                set += 1;
                set_end = self.offsets[set + 1];
            }
            let slot = counts[u as usize] as usize;
            counts[u as usize] += 1;
            idx_sets[slot] = set as u32;
        }
        let mut idx_offsets = Vec::with_capacity(self.n + 1);
        idx_offsets.push(0u64);
        idx_offsets.extend(counts[..self.n].iter().map(|&c| c as u64));
        self.idx_offsets = idx_offsets;
        self.idx_sets = idx_sets;
        self.frozen = true;
    }

    /// [`freeze`](Self::freeze) with the counting sort parallelized across
    /// `threads` workers (idempotent; produces an identical index).
    ///
    /// The index is partitioned by **node range**, each range sized to hold
    /// ~`Σ|R| / threads` postings: every worker scans the full member array
    /// but counts and places only the nodes it owns, so the output slices
    /// are disjoint (`split_at_mut` — no atomics) and each node's posting
    /// list is still filled in ascending set order, exactly like the
    /// sequential build. Redundant reads are cheap (sequential scans);
    /// scattered writes — the expensive half — are what gets split.
    pub fn freeze_parallel(&mut self, threads: usize) {
        // Workers do redundant reads, so more workers than cores is strictly
        // counterproductive — clamp to the machine.
        let threads = threads
            .max(1)
            .min(crate::workspace::available_threads(None));
        // Below ~64k postings the spawn overhead beats the savings.
        if self.frozen || threads == 1 || self.members.len() < (1 << 16) {
            return self.freeze();
        }
        self.freeze_parallel_impl(threads);
    }

    /// The parallel build without the core-count clamp or size fallback
    /// (separated so tests exercise it on any machine).
    fn freeze_parallel_impl(&mut self, threads: usize) {
        let m = self.members.len();
        let members = &self.members;

        // Node-range boundaries balanced by posting count.
        let mut counts = vec![0u32; self.n + 1];
        for &u in members {
            counts[u as usize + 1] += 1;
        }
        let mut boundaries = Vec::with_capacity(threads + 1);
        boundaries.push(0usize);
        let per = m.div_ceil(threads);
        let mut acc = 0usize;
        for u in 0..self.n {
            acc += counts[u + 1] as usize;
            if acc >= per * boundaries.len() && boundaries.len() < threads {
                boundaries.push(u + 1);
            }
        }
        boundaries.push(self.n);

        // Global offsets from the histogram.
        let mut offsets = vec![0u64; self.n + 1];
        for u in 0..self.n {
            offsets[u + 1] = offsets[u] + u64::from(counts[u + 1]);
        }

        // Disjoint output slices per node range; each worker re-scans the
        // sets and places only its own nodes, in ascending set order.
        let mut idx_sets = vec![0u32; m];
        let set_offsets = &self.offsets;
        std::thread::scope(|scope| {
            let mut rest: &mut [u32] = &mut idx_sets;
            let mut consumed = 0u64;
            // Skewed histograms can yield fewer ranges than workers.
            for w in 0..boundaries.len() - 1 {
                let (lo, hi) = (boundaries[w], boundaries[w + 1]);
                let range_postings = (offsets[hi] - offsets[lo]) as usize;
                let (mine, tail) = rest.split_at_mut(range_postings);
                rest = tail;
                let base = consumed;
                consumed += range_postings as u64;
                let offsets = &offsets;
                scope.spawn(move || {
                    // Local cursors relative to this range's slice.
                    let mut cursor: Vec<usize> =
                        (lo..hi).map(|u| (offsets[u] - base) as usize).collect();
                    for i in 0..set_offsets.len() - 1 {
                        let set = &members[set_offsets[i] as usize..set_offsets[i + 1] as usize];
                        for &u in set {
                            let u = u as usize;
                            if (lo..hi).contains(&u) {
                                let slot = &mut cursor[u - lo];
                                mine[*slot] = i as u32;
                                *slot += 1;
                            }
                        }
                    }
                });
            }
        });
        self.idx_offsets = offsets;
        self.idx_sets = idx_sets;
        self.frozen = true;
    }

    /// Ids of the sets containing `u`. Requires [`freeze`](Self::freeze).
    pub fn sets_containing(&self, u: Node) -> &[u32] {
        assert!(self.frozen, "freeze() before querying the inverted index");
        let lo = self.idx_offsets[u as usize] as usize;
        let hi = self.idx_offsets[u as usize + 1] as usize;
        &self.idx_sets[lo..hi]
    }

    /// `CovR({u})`: number of sets containing `u`.
    pub fn cov_node(&self, u: Node) -> usize {
        self.sets_containing(u).len()
    }

    /// Iterates `(u, CovR({u}))` over every node with nonzero coverage, in
    /// increasing node order.
    ///
    /// One sequential pass over the inverted index's offset array — the fast
    /// path for bulk gain initialization (the greedy build), without the
    /// per-call slicing of [`cov_node`](Self::cov_node).
    pub fn nonzero_cov_nodes(&self) -> impl Iterator<Item = (Node, usize)> + '_ {
        assert!(self.frozen, "freeze() before querying the inverted index");
        self.idx_offsets
            .windows(2)
            .enumerate()
            .filter_map(|(u, w)| {
                let c = (w[1] - w[0]) as usize;
                (c > 0).then_some((u as Node, c))
            })
    }

    /// `CovR(S)`: number of sets intersecting `S`.
    ///
    /// Convenience wrapper allocating a fresh scratch; hot paths should hold
    /// a [`CoverageScratch`] and call [`cov_set_with`](Self::cov_set_with).
    pub fn cov_set(&self, s: &[Node]) -> usize {
        self.cov_set_with(s, &mut CoverageScratch::new())
    }

    /// `CovR(S)` using a reusable scratch: zero heap allocation once the
    /// scratch has warmed up to this collection's size.
    pub fn cov_set_with(&self, s: &[Node], scratch: &mut CoverageScratch) -> usize {
        assert!(self.frozen, "freeze() before querying the inverted index");
        scratch.marks.begin(self.len());
        let mut total = 0usize;
        for &u in s {
            for &i in self.sets_containing(u) {
                if scratch.marks.mark(i as usize) {
                    total += 1;
                }
            }
        }
        total
    }

    /// `CovR(u | S)`: sets containing `u` but not intersecting `S`
    /// (marginal coverage; `S` as a [`NodeSet`]). Allocation-free by
    /// construction (pure index walk).
    pub fn cov_marginal(&self, u: Node, s: &NodeSet) -> usize {
        self.sets_containing(u)
            .iter()
            .filter(|&&i| !s.intersects(self.set(i as usize)))
            .count()
    }

    /// Batch marginal coverage: for each query node `u` in `nodes`, writes
    /// `CovR(u)` (when `cond` is `None`) or `CovR(u | cond)` into `out`.
    ///
    /// The win over calling [`cov_marginal`](Self::cov_marginal) per node is
    /// that the "does `cond` hit set `i`" verdict is computed **once per
    /// distinct set** and cached in the scratch for the rest of the batch —
    /// query nodes in the same neighbourhood share most of their RR sets, so
    /// the member-array walks are amortized away. Zero heap allocation after
    /// warm-up (`out` included, once its capacity has grown).
    pub fn cov_nodes_into(
        &self,
        nodes: &[Node],
        cond: Option<&NodeSet>,
        scratch: &mut CoverageScratch,
        out: &mut Vec<u32>,
    ) {
        assert!(self.frozen, "freeze() before querying the inverted index");
        out.clear();
        out.reserve(nodes.len());
        let Some(cond) = cond else {
            out.extend(nodes.iter().map(|&u| self.sets_containing(u).len() as u32));
            return;
        };
        scratch.marks.begin(self.len());
        scratch.ensure_hit_words(self.len());
        for &u in nodes {
            let mut cnt = 0u32;
            for &i in self.sets_containing(u) {
                let i = i as usize;
                let hit = if scratch.marks.mark(i) {
                    let hit = cond.intersects(self.set(i));
                    scratch.set_hit(i, hit);
                    hit
                } else {
                    scratch.hit(i)
                };
                cnt += u32::from(!hit);
            }
            out.push(cnt);
        }
    }

    /// Estimated spread of `{u}` on the generation-time view:
    /// `n_alive · CovR({u}) / θ`.
    pub fn spread_node(&self, u: Node) -> f64 {
        self.scale(self.cov_node(u))
    }

    /// Estimated spread of `S`: `n_alive · CovR(S) / θ`.
    pub fn spread_set(&self, s: &[Node]) -> f64 {
        self.scale(self.cov_set(s))
    }

    /// Converts a coverage count to a spread estimate.
    pub fn scale(&self, cov: usize) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.n_alive as f64 * cov as f64 / self.len() as f64
        }
    }
}

/// Reusable per-set scratch for coverage queries.
///
/// Holds an [`EpochMarks`] over set ids (which sets the current query has
/// touched) plus a hit bitset (whether a touched set intersects the query's
/// condition set). Clearing between queries is an O(1) epoch bump; the
/// backing arrays are allocated once per collection size and then reused, so
/// `cov_set_with` / `cov_nodes_into` are allocation-free in steady state.
///
/// One scratch per thread: queries borrow it mutably.
#[derive(Debug, Default)]
pub struct CoverageScratch {
    marks: EpochMarks,
    hit_words: Vec<u64>,
}

impl CoverageScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        CoverageScratch {
            marks: EpochMarks::new(),
            hit_words: Vec::new(),
        }
    }

    /// A scratch pre-sized for collections of `theta` sets (avoids the one
    /// warm-up allocation).
    pub fn with_theta(theta: usize) -> Self {
        let mut s = CoverageScratch::new();
        s.marks.begin(theta);
        s.ensure_hit_words(theta);
        s
    }

    fn ensure_hit_words(&mut self, theta: usize) {
        let words = theta.div_ceil(64);
        if self.hit_words.len() < words {
            self.hit_words.resize(words, 0);
        }
    }

    #[inline]
    fn set_hit(&mut self, i: usize, hit: bool) {
        let (w, b) = (i / 64, i % 64);
        if hit {
            self.hit_words[w] |= 1 << b;
        } else {
            self.hit_words[w] &= !(1 << b);
        }
    }

    #[inline]
    fn hit(&self, i: usize) -> bool {
        self.hit_words[i / 64] & (1 << (i % 64)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_collection() -> RrCollection {
        let mut c = RrCollection::new(5, 5);
        c.push(&[0, 1]);
        c.push(&[1, 2]);
        c.push(&[3]);
        c.push(&[0, 2, 4]);
        c.freeze();
        c
    }

    #[test]
    fn counts_and_sets() {
        let c = sample_collection();
        assert_eq!(c.len(), 4);
        assert_eq!(c.total_members(), 8);
        assert_eq!(c.set(0), &[0, 1]);
        assert_eq!(c.set(3), &[0, 2, 4]);
    }

    #[test]
    fn inverted_index_is_exact() {
        let c = sample_collection();
        assert_eq!(c.sets_containing(0), &[0, 3]);
        assert_eq!(c.sets_containing(1), &[0, 1]);
        assert_eq!(c.sets_containing(2), &[1, 3]);
        assert_eq!(c.sets_containing(3), &[2]);
        assert_eq!(c.sets_containing(4), &[3]);
    }

    #[test]
    fn coverage_queries() {
        let c = sample_collection();
        assert_eq!(c.cov_node(0), 2);
        assert_eq!(c.cov_set(&[0, 1]), 3); // sets 0, 1, 3
        assert_eq!(c.cov_set(&[0, 1, 3]), 4); // everything
        assert_eq!(c.cov_set(&[]), 0);
    }

    #[test]
    fn marginal_coverage() {
        let c = sample_collection();
        let s = NodeSet::from_iter(5, [1]);
        // Sets containing 0: {0,1} (hit by 1), {0,2,4} (not hit) -> marginal 1.
        assert_eq!(c.cov_marginal(0, &s), 1);
        let empty = NodeSet::new(5);
        assert_eq!(c.cov_marginal(0, &empty), 2);
    }

    #[test]
    fn spread_scaling() {
        let c = sample_collection();
        // n_alive = 5, theta = 4: node 0 covered twice -> 5 * 2/4 = 2.5.
        assert!((c.spread_node(0) - 2.5).abs() < 1e-12);
        assert!((c.spread_set(&[0, 1, 3]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn submodularity_of_coverage() {
        // Cov(A ∪ {u}) - Cov(A) >= Cov(B ∪ {u}) - Cov(B) for A ⊆ B.
        let c = sample_collection();
        let a: Vec<Node> = vec![1];
        let b: Vec<Node> = vec![1, 3];
        for u in [0u32, 2, 4] {
            let ga = c.cov_set(&[&a[..], &[u]].concat()) - c.cov_set(&a);
            let gb = c.cov_set(&[&b[..], &[u]].concat()) - c.cov_set(&b);
            assert!(ga >= gb, "submodularity violated for {u}");
        }
    }

    #[test]
    #[should_panic(expected = "frozen")]
    fn push_after_freeze_panics() {
        let mut c = sample_collection();
        c.push(&[1]);
    }

    #[test]
    #[should_panic(expected = "freeze")]
    fn query_before_freeze_panics() {
        let mut c = RrCollection::new(3, 3);
        c.push(&[0]);
        let _ = c.cov_node(0);
    }

    #[test]
    fn empty_collection_scales_to_zero() {
        let mut c = RrCollection::new(3, 3);
        c.freeze();
        assert_eq!(c.spread_set(&[0, 1]), 0.0);
    }

    #[test]
    fn absorb_shard_matches_per_set_push() {
        let mut a = RrShard::with_capacity(2, 2);
        a.push(&[0, 1]);
        a.push(&[1, 2]);
        let mut b = RrShard::new();
        b.push(&[3]);
        b.push(&[0, 2, 4]);
        assert_eq!(a.len(), 2);
        assert_eq!(b.total_members(), 4);

        let mut merged = RrCollection::with_capacity(5, 5, 4, 8);
        merged.absorb_shard(&a);
        merged.absorb_shard(&b);
        merged.freeze();

        let reference = sample_collection(); // same four sets pushed one by one
        assert_eq!(merged.len(), reference.len());
        assert_eq!(merged.total_members(), reference.total_members());
        for i in 0..reference.len() {
            assert_eq!(merged.set(i), reference.set(i), "set {i}");
        }
        for u in 0..5u32 {
            assert_eq!(
                merged.sets_containing(u),
                reference.sets_containing(u),
                "node {u}"
            );
        }
    }

    #[test]
    fn freeze_parallel_matches_sequential_index() {
        // Big enough to clear the sequential-fallback threshold (2^16
        // postings), with a skewed node distribution.
        let n = 700usize;
        let build = || {
            let mut c = RrCollection::new(n, n);
            let mut x = 9u64;
            for i in 0..30_000usize {
                let mut set = Vec::new();
                for j in 0..3 + (i % 4) {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    // Square to skew toward low ids (power-law-ish).
                    let r = (x >> 33) as usize % (n * n);
                    let u = ((r as f64).sqrt() as usize).min(n - 1) as Node;
                    if !set.contains(&u) {
                        set.push(u);
                    }
                    let _ = j;
                }
                c.push(&set);
            }
            c
        };
        let mut seq = build();
        assert!(
            seq.total_members() >= (1 << 16),
            "need to exercise the parallel path"
        );
        seq.freeze();
        for threads in [2usize, 3, 8] {
            let mut par = build();
            // Call the unclamped impl so the parallel path is exercised even
            // on single-core CI machines.
            par.freeze_parallel_impl(threads);
            assert_eq!(par.len(), seq.len());
            for u in 0..n as Node {
                assert_eq!(
                    par.sets_containing(u),
                    seq.sets_containing(u),
                    "threads {threads}, node {u}"
                );
            }
        }
    }

    #[test]
    fn default_shard_upholds_the_offset_invariant() {
        let mut shard = RrShard::default();
        assert!(shard.is_empty());
        assert_eq!(shard.len(), 0);
        shard.push(&[1, 2]);
        let mut c = RrCollection::new(3, 3);
        c.absorb_shard(&shard);
        c.freeze();
        assert_eq!(c.len(), 1);
        assert_eq!(c.set(0), &[1, 2]);
    }

    #[test]
    fn absorbing_empty_shards_is_a_noop() {
        let mut c = RrCollection::new(3, 3);
        c.absorb_shard(&RrShard::new());
        let mut s = RrShard::new();
        s.push(&[1]);
        c.absorb_shard(&s);
        c.absorb_shard(&RrShard::new());
        c.freeze();
        assert_eq!(c.len(), 1);
        assert_eq!(c.set(0), &[1]);
    }

    #[test]
    #[should_panic(expected = "frozen")]
    fn absorb_after_freeze_panics() {
        let mut c = sample_collection();
        c.absorb_shard(&RrShard::new());
    }

    #[test]
    fn scratch_cov_set_matches_allocating_path() {
        let c = sample_collection();
        let mut scratch = CoverageScratch::new();
        for query in [
            &[][..],
            &[0],
            &[0, 1],
            &[0, 1, 3],
            &[4, 4, 4],
            &[0, 1, 2, 3, 4],
        ] {
            assert_eq!(
                c.cov_set_with(query, &mut scratch),
                c.cov_set(query),
                "{query:?}"
            );
        }
        // Back-to-back reuse must not leak marks between queries.
        assert_eq!(c.cov_set_with(&[0, 1, 3], &mut scratch), 4);
        assert_eq!(c.cov_set_with(&[3], &mut scratch), 1);
    }

    #[test]
    fn cov_nodes_into_matches_per_node_queries() {
        let c = sample_collection();
        let mut scratch = CoverageScratch::with_theta(c.len());
        let mut out = Vec::new();
        let nodes = [0u32, 1, 2, 3, 4];

        c.cov_nodes_into(&nodes, None, &mut scratch, &mut out);
        let plain: Vec<u32> = nodes.iter().map(|&u| c.cov_node(u) as u32).collect();
        assert_eq!(out, plain);

        let cond = NodeSet::from_iter(5, [1]);
        c.cov_nodes_into(&nodes, Some(&cond), &mut scratch, &mut out);
        let expected: Vec<u32> = nodes
            .iter()
            .map(|&u| c.cov_marginal(u, &cond) as u32)
            .collect();
        assert_eq!(out, expected);

        // Reuse with a different condition: the hit cache must be rebuilt.
        let cond2 = NodeSet::from_iter(5, [0, 2]);
        c.cov_nodes_into(&nodes, Some(&cond2), &mut scratch, &mut out);
        let expected2: Vec<u32> = nodes
            .iter()
            .map(|&u| c.cov_marginal(u, &cond2) as u32)
            .collect();
        assert_eq!(out, expected2);
    }
}
