//! Stored RR-set batches with an inverted index and coverage queries.

use atpm_graph::Node;

use crate::nodeset::NodeSet;

/// A batch of RR sets in flat storage plus an inverted node → set-id index.
///
/// `CovR(S)` (paper Table I) is the number of stored sets that intersect `S`.
/// The inverted index is built once with a counting sort, so the per-node
/// memory overhead is two flat arrays rather than `n` separate `Vec`s.
#[derive(Debug)]
pub struct RrCollection {
    /// Universe size (total nodes of the view the sets were sampled on).
    n: usize,
    /// Alive-node count at generation time (`n_i`); spread estimates scale by
    /// this, not by `n`.
    n_alive: usize,
    /// Flat member storage.
    members: Vec<Node>,
    /// `offsets[i]..offsets[i+1]` is set `i` in `members`.
    offsets: Vec<u64>,
    /// Inverted index: `idx_sets[idx_offsets[u]..idx_offsets[u+1]]` are the
    /// ids of the sets containing `u`. Built on demand by `freeze`.
    idx_offsets: Vec<u64>,
    idx_sets: Vec<u32>,
    frozen: bool,
}

impl RrCollection {
    /// An empty collection over a view with `n` total and `n_alive` alive
    /// nodes.
    pub fn new(n: usize, n_alive: usize) -> Self {
        RrCollection {
            n,
            n_alive,
            members: Vec::new(),
            offsets: vec![0],
            idx_offsets: Vec::new(),
            idx_sets: Vec::new(),
            frozen: false,
        }
    }

    /// Number of stored RR sets (`θ`).
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether no sets are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Alive-node count `n_i` the sets were generated against.
    pub fn n_alive(&self) -> usize {
        self.n_alive
    }

    /// Universe size: total node count of the base graph.
    pub fn len_universe(&self) -> usize {
        self.n
    }

    /// Total stored members (Σ |R|).
    pub fn total_members(&self) -> usize {
        self.members.len()
    }

    /// Appends one RR set. Panics after [`freeze`](Self::freeze).
    pub fn push(&mut self, set: &[Node]) {
        assert!(!self.frozen, "cannot push into a frozen collection");
        self.members.extend_from_slice(set);
        self.offsets.push(self.members.len() as u64);
    }

    /// Members of set `i`.
    pub fn set(&self, i: usize) -> &[Node] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.members[lo..hi]
    }

    /// Builds the inverted index (idempotent). Required before any
    /// index-based query.
    pub fn freeze(&mut self) {
        if self.frozen {
            return;
        }
        let mut counts = vec![0u64; self.n + 1];
        for &u in &self.members {
            counts[u as usize + 1] += 1;
        }
        for i in 0..self.n {
            counts[i + 1] += counts[i];
        }
        let mut cursor = counts[..self.n].to_vec();
        let mut idx_sets = vec![0u32; self.members.len()];
        for i in 0..self.len() {
            for &u in self.set(i) {
                let slot = cursor[u as usize] as usize;
                cursor[u as usize] += 1;
                idx_sets[slot] = i as u32;
            }
        }
        self.idx_offsets = counts;
        self.idx_sets = idx_sets;
        self.frozen = true;
    }

    /// Ids of the sets containing `u`. Requires [`freeze`](Self::freeze).
    pub fn sets_containing(&self, u: Node) -> &[u32] {
        assert!(self.frozen, "freeze() before querying the inverted index");
        let lo = self.idx_offsets[u as usize] as usize;
        let hi = self.idx_offsets[u as usize + 1] as usize;
        &self.idx_sets[lo..hi]
    }

    /// `CovR({u})`: number of sets containing `u`.
    pub fn cov_node(&self, u: Node) -> usize {
        self.sets_containing(u).len()
    }

    /// `CovR(S)`: number of sets intersecting `S`.
    pub fn cov_set(&self, s: &[Node]) -> usize {
        assert!(self.frozen, "freeze() before querying the inverted index");
        let mut hit = vec![false; self.len()];
        let mut total = 0usize;
        for &u in s {
            for &i in self.sets_containing(u) {
                if !hit[i as usize] {
                    hit[i as usize] = true;
                    total += 1;
                }
            }
        }
        total
    }

    /// `CovR(u | S)`: sets containing `u` but not intersecting `S`
    /// (marginal coverage; `S` as a [`NodeSet`]).
    pub fn cov_marginal(&self, u: Node, s: &NodeSet) -> usize {
        self.sets_containing(u)
            .iter()
            .filter(|&&i| !s.intersects(self.set(i as usize)))
            .count()
    }

    /// Estimated spread of `{u}` on the generation-time view:
    /// `n_alive · CovR({u}) / θ`.
    pub fn spread_node(&self, u: Node) -> f64 {
        self.scale(self.cov_node(u))
    }

    /// Estimated spread of `S`: `n_alive · CovR(S) / θ`.
    pub fn spread_set(&self, s: &[Node]) -> f64 {
        self.scale(self.cov_set(s))
    }

    /// Converts a coverage count to a spread estimate.
    pub fn scale(&self, cov: usize) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.n_alive as f64 * cov as f64 / self.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_collection() -> RrCollection {
        let mut c = RrCollection::new(5, 5);
        c.push(&[0, 1]);
        c.push(&[1, 2]);
        c.push(&[3]);
        c.push(&[0, 2, 4]);
        c.freeze();
        c
    }

    #[test]
    fn counts_and_sets() {
        let c = sample_collection();
        assert_eq!(c.len(), 4);
        assert_eq!(c.total_members(), 8);
        assert_eq!(c.set(0), &[0, 1]);
        assert_eq!(c.set(3), &[0, 2, 4]);
    }

    #[test]
    fn inverted_index_is_exact() {
        let c = sample_collection();
        assert_eq!(c.sets_containing(0), &[0, 3]);
        assert_eq!(c.sets_containing(1), &[0, 1]);
        assert_eq!(c.sets_containing(2), &[1, 3]);
        assert_eq!(c.sets_containing(3), &[2]);
        assert_eq!(c.sets_containing(4), &[3]);
    }

    #[test]
    fn coverage_queries() {
        let c = sample_collection();
        assert_eq!(c.cov_node(0), 2);
        assert_eq!(c.cov_set(&[0, 1]), 3); // sets 0, 1, 3
        assert_eq!(c.cov_set(&[0, 1, 3]), 4); // everything
        assert_eq!(c.cov_set(&[]), 0);
    }

    #[test]
    fn marginal_coverage() {
        let c = sample_collection();
        let s = NodeSet::from_iter(5, [1]);
        // Sets containing 0: {0,1} (hit by 1), {0,2,4} (not hit) -> marginal 1.
        assert_eq!(c.cov_marginal(0, &s), 1);
        let empty = NodeSet::new(5);
        assert_eq!(c.cov_marginal(0, &empty), 2);
    }

    #[test]
    fn spread_scaling() {
        let c = sample_collection();
        // n_alive = 5, theta = 4: node 0 covered twice -> 5 * 2/4 = 2.5.
        assert!((c.spread_node(0) - 2.5).abs() < 1e-12);
        assert!((c.spread_set(&[0, 1, 3]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn submodularity_of_coverage() {
        // Cov(A ∪ {u}) - Cov(A) >= Cov(B ∪ {u}) - Cov(B) for A ⊆ B.
        let c = sample_collection();
        let a: Vec<Node> = vec![1];
        let b: Vec<Node> = vec![1, 3];
        for u in [0u32, 2, 4] {
            let ga = c.cov_set(&[&a[..], &[u]].concat()) - c.cov_set(&a);
            let gb = c.cov_set(&[&b[..], &[u]].concat()) - c.cov_set(&b);
            assert!(ga >= gb, "submodularity violated for {u}");
        }
    }

    #[test]
    #[should_panic(expected = "frozen")]
    fn push_after_freeze_panics() {
        let mut c = sample_collection();
        c.push(&[1]);
    }

    #[test]
    #[should_panic(expected = "freeze")]
    fn query_before_freeze_panics() {
        let mut c = RrCollection::new(3, 3);
        c.push(&[0]);
        let _ = c.cov_node(0);
    }

    #[test]
    fn empty_collection_scales_to_zero() {
        let mut c = RrCollection::new(3, 3);
        c.freeze();
        assert_eq!(c.spread_set(&[0, 1]), 0.0);
    }
}
