//! Single RR-set generation: coin-free reverse BFS on the baked
//! [`SampleView`](atpm_graph::SampleView).
//!
//! The hot path never touches an `f32`: edge coins are raw 32-bit draws
//! compared against the `u32` thresholds baked into the graph at build time
//! (`atpm_graph::quantize_prob`), uniform in-neighborhoods (the weighted
//! cascade's `1/indeg` case) jump straight to the next accepted in-edge via
//! a geometric skip instead of flipping a coin per edge, and draws come from
//! whatever RNG the caller supplies — in the batch samplers that is the
//! buffered [`CounterRng`](crate::rng::CounterRng), so a coin is a buffered
//! 32-bit read.
//!
//! The pre-refactor per-coin loop survives as
//! [`sample_into_percoin`](RrSampler::sample_into_percoin): it draws one
//! `f32` per in-edge and compares against the float probability, and the
//! statistical-equivalence suite (`tests/sampling_equivalence.rs`) pins the
//! fast paths against it as the distribution oracle.

use atpm_graph::{threshold_accept, GraphView, Node, SampleView};
use rand::Rng;

use crate::rng::unit_open;
use crate::workspace::EpochMarks;

/// Reusable RR-set sampler with epoch-marked visit buffers (no per-sample
/// allocation or clearing). One sampler per thread.
///
/// The visit marks outlive the sample: [`contains_last`](Self::contains_last)
/// answers "is `u` in the most recent RR set" in O(1), which is what the
/// streaming front/rear counters use instead of scanning the output buffer.
pub struct RrSampler {
    marks: EpochMarks,
    /// Total nodes traversed across all samples — the paper's EPT accounting
    /// (expected time per RR set) for the complexity experiments.
    nodes_traversed: u64,
    /// Total RR sets generated.
    sets_generated: u64,
}

impl Default for RrSampler {
    fn default() -> Self {
        Self::new()
    }
}

impl RrSampler {
    /// Creates an empty sampler; buffers grow on first use.
    pub fn new() -> Self {
        RrSampler {
            marks: EpochMarks::new(),
            nodes_traversed: 0,
            sets_generated: 0,
        }
    }

    #[inline]
    fn visit(&mut self, u: Node) -> bool {
        self.marks.mark(u as usize)
    }

    /// Whether `u` is a member of the most recently sampled RR set (O(1),
    /// no buffer scan). Meaningless before the first successful
    /// [`sample_into`](Self::sample_into).
    #[inline]
    pub fn contains_last(&self, u: Node) -> bool {
        self.marks.is_marked(u as usize)
    }

    /// Prefetches the visit-mark slot of `u`. Batch drivers that pre-draw
    /// roots call this so the first stamp write of the next set — a random
    /// access into the marks array — is already resolving.
    #[inline]
    pub fn prefetch_visit(&self, u: Node) {
        self.marks.prefetch(u as usize);
    }

    /// Samples one RR set on `view` into `out` (cleared first). The root is
    /// uniform over alive nodes; each in-edge `⟨w, v⟩` is traversed with
    /// the probability its baked `u32` threshold encodes (within `2^-32` of
    /// `p(w, v)`, exact at 0 and 1); dead nodes are skipped entirely.
    /// Returns `false` (and leaves `out` empty) when no alive node remains.
    ///
    /// `out` doubles as the BFS frontier (the RR set *is* the visit order),
    /// so there is no separate queue buffer to maintain.
    #[inline]
    pub fn sample_into<V: GraphView, R: Rng + ?Sized>(
        &mut self,
        view: &V,
        rng: &mut R,
        out: &mut Vec<Node>,
    ) -> bool {
        self.sample_core::<V, R, true>(view, rng, out)
    }

    /// [`sample_into`](Self::sample_into) with the geometric-skip fast path
    /// disabled: every in-edge pays one threshold compare. Same
    /// distribution; exists so the benchmarks can price the two fast paths
    /// separately (`ris_engine/sample_*`).
    #[inline]
    pub fn sample_into_threshold<V: GraphView, R: Rng + ?Sized>(
        &mut self,
        view: &V,
        rng: &mut R,
        out: &mut Vec<Node>,
    ) -> bool {
        self.sample_core::<V, R, false>(view, rng, out)
    }

    /// Like [`sample_into`](Self::sample_into) but with the root already
    /// drawn (and known alive). The batch samplers use this to pre-draw
    /// roots a few sets ahead and prefetch their metadata, hiding the
    /// first random CSR access of every set.
    #[inline]
    pub fn sample_into_rooted<V: GraphView, R: Rng + ?Sized>(
        &mut self,
        view: &V,
        root: Node,
        rng: &mut R,
        out: &mut Vec<Node>,
    ) {
        out.clear();
        self.rooted_core::<V, R, true>(view, root, rng, out);
    }

    /// [`sample_into_rooted`](Self::sample_into_rooted) that *appends*: the
    /// new set occupies `out[len..]` where `len` is `out`'s length on
    /// entry. Lets batch workers sample straight into a shard's flat member
    /// storage — the set is born in its final resting place, no per-set
    /// copy. Returns nothing; the caller records the boundary.
    #[inline]
    pub fn sample_append<V: GraphView, R: Rng + ?Sized>(
        &mut self,
        view: &V,
        root: Node,
        rng: &mut R,
        out: &mut Vec<Node>,
    ) {
        self.rooted_core::<V, R, true>(view, root, rng, out);
    }

    fn sample_core<V: GraphView, R: Rng + ?Sized, const SKIP: bool>(
        &mut self,
        view: &V,
        rng: &mut R,
        out: &mut Vec<Node>,
    ) -> bool {
        out.clear();
        let Some(root) = view.sample_alive(rng) else {
            return false;
        };
        self.rooted_core::<V, R, SKIP>(view, root, rng, out);
        true
    }

    /// The BFS kernel. Appends the sampled set at `out[base..]` where
    /// `base = out.len()` on entry (callers wanting a fresh buffer clear
    /// first).
    fn rooted_core<V: GraphView, R: Rng + ?Sized, const SKIP: bool>(
        &mut self,
        view: &V,
        root: Node,
        rng: &mut R,
        out: &mut Vec<Node>,
    ) {
        let base = out.len();
        let sv: SampleView<'_> = view.sample_view();
        self.marks.begin(view.num_nodes());
        self.visit(root);
        out.push(root);
        // One-member software pipeline: while member `v` is processed, the
        // in-edge span of the *next* frontier member is already in flight
        // (its meta record was prefetched when it was pushed).
        let (rlo, rhi, _, _) = sv.in_meta(root);
        sv.prefetch_span(rlo, rhi);
        let mut head = base;
        while head < out.len() {
            let v = out[head];
            head += 1;
            let (lo, hi, thr, inv) = sv.in_meta(v);
            // One-member span lookahead: while `v` is processed, the next
            // frontier member's in-edge span is pulled in (its meta record
            // was prefetched when it was pushed).
            if let Some(&nv) = out.get(head) {
                let (nlo, nhi, _, _) = sv.in_meta(nv);
                sv.prefetch_span(nlo, nhi);
            }
            let sources = sv.sources(lo, hi);
            if SKIP && inv < 0.0 {
                // Uniform neighborhood: geometric skip to the next accepted
                // in-edge. The first draw is special — `thr` holds the
                // quantized probability that the whole span rejects, so the
                // common no-accept case retires on one integer compare; when
                // an accept exists, the *same* draw continues through the
                // inverse transform (the compare is just its early-out).
                // `inv = 1/ln(1-q)` is finite negative, `ln(u)` is finite
                // negative, so `s >= 0` and `i` stays in bounds.
                let len = sources.len();
                let r0 = rng.next_u32();
                if r0 >= thr {
                    let mut s = ((r0 as f64 + 0.5) * (1.0 / 4_294_967_296.0)).ln() * inv;
                    let mut i = 0usize;
                    loop {
                        if s >= (len - i) as f64 {
                            break;
                        }
                        i += s as usize;
                        let w = sources[i];
                        if sv.is_alive(w) && self.visit(w) {
                            sv.prefetch_meta(w);
                            out.push(w);
                        }
                        i += 1;
                        if i == len {
                            break;
                        }
                        s = unit_open(rng.next_u64()).ln() * inv;
                    }
                }
            } else if inv.is_nan() && thr != 0 {
                // Uniform neighborhood below the skip cutoff: the shared
                // threshold rides in a register, the per-edge array is
                // never touched. (On skip-eligible nodes `thr` holds the
                // whole-span rejection probability instead — when the skip
                // path is disabled they fall through to the per-edge array,
                // which is uniform there anyway.)
                //
                // Short neighborhoods stage accepts branchlessly: the
                // accept decision is data-dependent noise the predictor
                // can't learn, so it becomes an increment instead of a
                // branch; only the (rare) accepted edges take one. (The
                // staged form draws a coin even for dead sources, where the
                // long-form loop short-circuits — same acceptance law, the
                // coins are independent either way.)
                const STAGE: usize = 16;
                if sources.len() <= STAGE {
                    let mut cand = [0 as Node; STAGE];
                    let mut k = 0usize;
                    for &w in sources {
                        cand[k] = w;
                        k += usize::from(threshold_accept(rng.next_u32(), thr) && sv.is_alive(w));
                    }
                    for &w in &cand[..k] {
                        if self.visit(w) {
                            sv.prefetch_meta(w);
                            out.push(w);
                        }
                    }
                } else {
                    for &w in sources {
                        if sv.is_alive(w) && threshold_accept(rng.next_u32(), thr) && self.visit(w)
                        {
                            sv.prefetch_meta(w);
                            out.push(w);
                        }
                    }
                }
            } else {
                let thresholds = sv.thresholds(lo, hi);
                for (&w, &t) in sources.iter().zip(thresholds) {
                    if sv.is_alive(w) && threshold_accept(rng.next_u32(), t) && self.visit(w) {
                        sv.prefetch_meta(w);
                        out.push(w);
                    }
                }
            }
        }
        self.nodes_traversed += (out.len() - base) as u64;
        self.sets_generated += 1;
    }

    /// The pre-refactor sampler: one fresh `f32` coin per in-edge, compared
    /// against the float probability. Kept as the statistical oracle the
    /// equivalence suite pins [`sample_into`](Self::sample_into) against;
    /// not a hot path.
    pub fn sample_into_percoin<V: GraphView, R: Rng + ?Sized>(
        &mut self,
        view: &V,
        rng: &mut R,
        out: &mut Vec<Node>,
    ) -> bool {
        out.clear();
        let Some(root) = view.sample_alive(rng) else {
            return false;
        };
        self.marks.begin(view.num_nodes());
        self.visit(root);
        out.push(root);
        let mut head = 0;
        while head < out.len() {
            let v = out[head];
            head += 1;
            let (sources, probs, _) = view.in_slice(v);
            for i in 0..sources.len() {
                let w = sources[i];
                if view.is_alive(w) && rng.gen::<f32>() < probs[i] && self.visit(w) {
                    out.push(w);
                }
            }
        }
        self.nodes_traversed += out.len() as u64;
        self.sets_generated += 1;
        true
    }

    /// Average RR-set size so far — an empirical EPT estimate.
    pub fn avg_set_size(&self) -> f64 {
        if self.sets_generated == 0 {
            0.0
        } else {
            self.nodes_traversed as f64 / self.sets_generated as f64
        }
    }

    /// Total RR sets generated by this sampler.
    pub fn sets_generated(&self) -> u64 {
        self.sets_generated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpm_graph::{GraphBuilder, ResidualGraph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// 0 -> 1 -> 2 chain with probability 1: RR(2) = {2,1,0}, RR(0) = {0}.
    fn certain_chain() -> atpm_graph::Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        b.build()
    }

    #[test]
    fn rr_set_contains_reverse_reachable_nodes() {
        let g = certain_chain();
        let mut s = RrSampler::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = Vec::new();
        for _ in 0..50 {
            assert!(s.sample_into(&&g, &mut rng, &mut buf));
            let root = buf[0];
            let mut sorted = buf.clone();
            sorted.sort_unstable();
            match root {
                0 => assert_eq!(sorted, vec![0]),
                1 => assert_eq!(sorted, vec![0, 1]),
                2 => assert_eq!(sorted, vec![0, 1, 2]),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn certain_edges_always_fire_under_the_integer_coin() {
        // p = 1.0 quantizes to the reserved "certain" threshold; a flipped
        // certain edge would show up here within a few thousand samples.
        let g = certain_chain();
        let mut s = RrSampler::new();
        let mut rng = crate::rng::CounterRng::new(9);
        let mut buf = Vec::new();
        for _ in 0..5_000 {
            assert!(s.sample_into(&&g, &mut rng, &mut buf));
            let expect = buf[0] as usize + 1;
            assert_eq!(buf.len(), expect, "certain chain RR must be maximal");
        }
    }

    #[test]
    fn rr_sets_skip_dead_nodes() {
        let g = certain_chain();
        let mut r = ResidualGraph::new(&g);
        r.remove(1);
        let mut s = RrSampler::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = Vec::new();
        for _ in 0..50 {
            assert!(s.sample_into(&r, &mut rng, &mut buf));
            assert!(!buf.contains(&1), "dead node in RR set");
            // With 1 dead, nothing reaches 2 and nothing reaches 0.
            assert_eq!(buf.len(), 1);
        }
    }

    #[test]
    fn empty_view_yields_no_set() {
        let g = certain_chain();
        let mut r = ResidualGraph::new(&g);
        r.remove_all(0..3);
        let mut s = RrSampler::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = vec![9, 9];
        assert!(!s.sample_into(&r, &mut rng, &mut buf));
        assert!(buf.is_empty());
        assert!(!s.sample_into_percoin(&r, &mut rng, &mut buf));
        assert!(buf.is_empty());
    }

    #[test]
    fn coverage_estimates_singleton_spread() {
        // E[I({0})] on the certain chain is 3 (it activates everyone), so
        // Pr[0 in RR] = 3/3 = 1... check a probabilistic chain instead:
        // p = 0.5: E[I({0})] = 1 + 0.5 + 0.25 = 1.75; Pr[0 ∈ RR] = 1.75/3.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        let g = b.build();
        let mut s = RrSampler::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = Vec::new();
        let theta = 200_000;
        let mut cov = 0usize;
        for _ in 0..theta {
            s.sample_into(&&g, &mut rng, &mut buf);
            if buf.contains(&0) {
                cov += 1;
            }
        }
        let est = 3.0 * cov as f64 / theta as f64;
        assert!(
            (est - 1.75).abs() < 0.02,
            "RIS estimate {est} should match exact 1.75"
        );
    }

    #[test]
    fn contains_last_mirrors_output_buffer() {
        let mut b = GraphBuilder::new(6);
        for i in 0..5u32 {
            b.add_edge(i, i + 1, 0.5).unwrap();
        }
        let g = b.build();
        let mut s = RrSampler::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = Vec::new();
        for _ in 0..200 {
            assert!(s.sample_into(&&g, &mut rng, &mut buf));
            for u in 0..6u32 {
                assert_eq!(s.contains_last(u), buf.contains(&u), "node {u} of {buf:?}");
            }
        }
    }

    #[test]
    fn skip_path_respects_dead_nodes_and_marks() {
        // A hub with 16 uniform in-edges at p = 0.1 takes the skip path;
        // kill half the spokes and check they never appear.
        let mut b = GraphBuilder::new(17);
        for u in 1..17u32 {
            b.add_edge(u, 0, 0.1).unwrap();
        }
        let g = b.build();
        assert!(g.in_skip_inv(0) < 0.0, "hub must be skip-eligible");
        let mut r = ResidualGraph::new(&g);
        r.remove_all((1..17).filter(|u| u % 2 == 0));
        let mut s = RrSampler::new();
        let mut rng = crate::rng::CounterRng::new(21);
        let mut buf = Vec::new();
        let mut accepted = 0usize;
        for _ in 0..20_000 {
            assert!(s.sample_into(&r, &mut rng, &mut buf));
            if buf[0] == 0 {
                for &w in &buf[1..] {
                    assert!(w % 2 == 1, "dead spoke {w} in RR set");
                    assert!(s.contains_last(w));
                }
                accepted += buf.len() - 1;
            }
        }
        assert!(accepted > 0, "skip path never accepted an edge");
    }

    #[test]
    fn ept_accounting_tracks_sizes() {
        let g = certain_chain();
        let mut s = RrSampler::new();
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = Vec::new();
        for _ in 0..300 {
            s.sample_into(&&g, &mut rng, &mut buf);
        }
        assert_eq!(s.sets_generated(), 300);
        // Sizes are 1, 2 or 3 each with prob 1/3: mean 2.
        let avg = s.avg_set_size();
        assert!((1.7..=2.3).contains(&avg), "avg size {avg}");
    }

    #[test]
    fn unit_open_never_hits_the_endpoints() {
        assert!(unit_open(0) > 0.0);
        assert!(unit_open(u64::MAX) < 1.0);
        assert!((unit_open(u64::MAX / 2) - 0.5).abs() < 1e-9);
    }
}
