//! Streaming front/rear coverage counters for the (non)adaptive
//! sampling-based double greedy algorithms.
//!
//! ADDATP and HATP regenerate their RR batches `R1`, `R2` from scratch in
//! every sampling round (Algorithm 3 line 9, Algorithm 4 line 9) and only
//! ever query them for a *single* node `u_i`:
//!
//! * front: `Cov_{R1}(u_i | S_{i−1})` — sets containing `u_i` that avoid
//!   `S_{i−1}`. On a residual graph every selected seed is already dead, so
//!   the adaptive callers pass an empty condition set; the nonadaptive HNTP
//!   passes its accumulated `S_{i−1}`.
//! * rear: `Cov_{R2}(u_i | T_{i−1} ∖ {u_i})` — sets containing `u_i` that
//!   avoid every other remaining candidate.
//!
//! Materializing those batches would waste memory and time, so this module
//! streams them: generate a set, bump two counters, drop it. Worker seeding
//! and the fan-out/fan-in scaffolding are shared with the batch sampler via
//! [`crate::workspace`] (the two used to carry diverged private copies).

use atpm_graph::{GraphView, Node};

use crate::nodeset::NodeSet;
use crate::rng::CounterRng;
use crate::rr::RrSampler;
use crate::workspace::run_sharded;

/// Result of one streamed sampling round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontRearCounts {
    /// Number of `R1` sets containing `u` and disjoint from the front
    /// condition set.
    pub cov_front: u64,
    /// Number of `R2` sets containing `u` and disjoint from the rear
    /// condition set.
    pub cov_rear: u64,
    /// RR sets actually generated per batch (can fall short of the request
    /// only when the view has no alive nodes).
    pub theta: usize,
    /// Total nodes traversed across both batches (EPT/work accounting).
    pub work: u64,
}

fn shared_worker<V: GraphView>(
    view: &V,
    u: Node,
    front_cond: &NodeSet,
    rear_cond: &NodeSet,
    quota: usize,
    seed: u64,
) -> FrontRearCounts {
    let mut sampler = RrSampler::new();
    let mut rng = CounterRng::new(seed);
    let mut buf = Vec::new();
    let mut counts = FrontRearCounts {
        cov_front: 0,
        cov_rear: 0,
        theta: 0,
        work: 0,
    };
    for _ in 0..quota {
        if !sampler.sample_into(view, &mut rng, &mut buf) {
            break;
        }
        counts.work += buf.len() as u64;
        // O(1) epoch-mark membership probe instead of scanning the buffer.
        if sampler.contains_last(u) {
            if !front_cond.intersects(&buf) {
                counts.cov_front += 1;
            }
            if !rear_cond.intersects(&buf) {
                counts.cov_rear += 1;
            }
        }
        counts.theta += 1;
    }
    counts
}

/// Like [`front_rear_counts`], but evaluates both statistics on **one shared
/// batch** of `theta` RR sets.
///
/// This is the reading the analysis requires: the proof of Lemma 5 uses
/// `ρ̃_f + ρ̃_r ≥ 0` *pointwise*, which holds exactly when both coverages are
/// counted on the same sets and the front condition set is contained in the
/// rear condition set (then `cov_front ≥ cov_rear` deterministically). It
/// also halves the sampling cost relative to two independent batches.
pub fn front_rear_counts_shared<V: GraphView + Sync>(
    view: &V,
    u: Node,
    front_cond: &NodeSet,
    rear_cond: &NodeSet,
    theta: usize,
    seed: u64,
    threads: usize,
) -> FrontRearCounts {
    if theta == 0 || view.num_alive() == 0 {
        return FrontRearCounts {
            cov_front: 0,
            cov_rear: 0,
            theta: 0,
            work: 0,
        };
    }
    let parts = run_sharded(theta, threads, seed, |_tid, quota, wseed| {
        shared_worker(view, u, front_cond, rear_cond, quota, wseed)
    });
    merge_counts(parts)
}

/// Sums per-worker counters (fan-in half of the sharded runs).
fn merge_counts(parts: Vec<FrontRearCounts>) -> FrontRearCounts {
    let mut total = FrontRearCounts {
        cov_front: 0,
        cov_rear: 0,
        theta: 0,
        work: 0,
    };
    for p in parts {
        total.cov_front += p.cov_front;
        total.cov_rear += p.cov_rear;
        total.theta += p.theta;
        total.work += p.work;
    }
    total
}

fn stream_worker<V: GraphView>(
    view: &V,
    u: Node,
    front_cond: &NodeSet,
    rear_cond: &NodeSet,
    quota: usize,
    seed: u64,
) -> FrontRearCounts {
    let mut sampler = RrSampler::new();
    let mut rng = CounterRng::new(seed);
    let mut buf = Vec::new();
    let mut cov_front = 0u64;
    let mut cov_rear = 0u64;
    let mut work = 0u64;
    let mut done = 0usize;
    for _ in 0..quota {
        // R1 sample: u present, front condition set absent.
        if !sampler.sample_into(view, &mut rng, &mut buf) {
            break;
        }
        work += buf.len() as u64;
        if sampler.contains_last(u) && !front_cond.intersects(&buf) {
            cov_front += 1;
        }
        // R2 sample: u present, rear condition set absent.
        if !sampler.sample_into(view, &mut rng, &mut buf) {
            break;
        }
        work += buf.len() as u64;
        if sampler.contains_last(u) && !rear_cond.intersects(&buf) {
            cov_rear += 1;
        }
        done += 1;
    }
    FrontRearCounts {
        cov_front,
        cov_rear,
        theta: done,
        work,
    }
}

/// Streams `theta` RR-set pairs on `view` and returns the conditional
/// front/rear coverage counts for node `u`.
///
/// `front_cond` is `S_{i−1}` (empty for the adaptive algorithms, whose
/// selected seeds are dead in the view); `rear_cond` is `T_{i−1} ∖ {u}`.
/// Deterministic in `(view, u, conditions, theta, seed, threads)`.
pub fn front_rear_counts<V: GraphView + Sync>(
    view: &V,
    u: Node,
    front_cond: &NodeSet,
    rear_cond: &NodeSet,
    theta: usize,
    seed: u64,
    threads: usize,
) -> FrontRearCounts {
    if theta == 0 || view.num_alive() == 0 {
        return FrontRearCounts {
            cov_front: 0,
            cov_rear: 0,
            theta: 0,
            work: 0,
        };
    }
    let parts = run_sharded(theta, threads, seed, |_tid, quota, wseed| {
        stream_worker(view, u, front_cond, rear_cond, quota, wseed)
    });
    merge_counts(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpm_graph::{GraphBuilder, ResidualGraph};

    /// 0 -> 1 -> 2 chain, p = 0.5.
    fn chain() -> atpm_graph::Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.5).unwrap();
        b.add_edge(1, 2, 0.5).unwrap();
        b.build()
    }

    #[test]
    fn front_estimates_singleton_spread() {
        let g = chain();
        let empty = NodeSet::new(3);
        let theta = 120_000;
        let c = front_rear_counts(&&g, 0, &empty, &empty, theta, 1, 2);
        assert_eq!(c.theta, theta);
        let est = 3.0 * c.cov_front as f64 / c.theta as f64;
        assert!((est - 1.75).abs() < 0.03, "front spread {est}, want 1.75");
    }

    #[test]
    fn rear_excludes_sets_hit_by_condition() {
        let g = chain();
        // rear condition {2}: a set counts if it contains 0 and avoids 2.
        // Root 0 (never reaches 2 in reverse): contributes Pr = 1/3.
        // Root 1: contains 0 with p(0->1) = 0.5, never contains 2: 1/6.
        // Root 2: always contains 2: 0.  Total = 0.5.
        let empty = NodeSet::new(3);
        let cond2 = NodeSet::from_iter(3, [2]);
        let theta = 120_000;
        let c = front_rear_counts(&&g, 0, &empty, &cond2, theta, 3, 2);
        let frac = c.cov_rear as f64 / c.theta as f64;
        assert!((frac - 0.5).abs() < 0.01, "rear fraction {frac}, want 0.5");
        assert!(c.cov_front > c.cov_rear);
    }

    #[test]
    fn front_condition_matches_marginal_semantics() {
        // Conditioning the front on {1} must equal the rear conditioned on
        // {1}: same formula, different batch -> statistically equal.
        let g = chain();
        let cond = NodeSet::from_iter(3, [1]);
        let theta = 120_000;
        let c = front_rear_counts(&&g, 0, &cond, &cond, theta, 7, 2);
        let f = c.cov_front as f64 / c.theta as f64;
        let r = c.cov_rear as f64 / c.theta as f64;
        assert!((f - r).abs() < 0.01, "front {f} vs rear {r}");
        // And strictly below the unconditional coverage.
        let empty = NodeSet::new(3);
        let unc = front_rear_counts(&&g, 0, &empty, &empty, theta, 7, 2);
        assert!(unc.cov_front > c.cov_front);
    }

    #[test]
    fn deterministic_per_seed_and_threads() {
        let g = chain();
        let empty = NodeSet::new(3);
        let rest = NodeSet::from_iter(3, [1]);
        let a = front_rear_counts(&&g, 0, &empty, &rest, 5000, 42, 3);
        let b = front_rear_counts(&&g, 0, &empty, &rest, 5000, 42, 3);
        assert_eq!(a, b);
    }

    /// Golden values: the streamed counters draw their worlds through the
    /// shared `workspace::worker_seed` + the engine's `CounterRng`; these
    /// exact counts pin that stream so a silent reseeding (like the
    /// pre-dedup drift between sampler.rs and stream.rs) fails loudly
    /// instead of quietly redrawing every stored experiment trajectory.
    /// (Re-pinned when the coin-free `SampleView` sampler replaced the
    /// per-coin `StdRng` loop — a deliberate world redraw.)
    #[test]
    fn stream_values_are_pinned() {
        let g = chain();
        let empty = NodeSet::new(3);
        let rear = NodeSet::from_iter(3, [2]);
        let indep1 = front_rear_counts(&&g, 0, &empty, &rear, 1000, 42, 1);
        assert_eq!(
            indep1,
            FrontRearCounts {
                cov_front: 614,
                cov_rear: 515,
                theta: 1000,
                work: 2866
            }
        );
        let shared1 = front_rear_counts_shared(&&g, 0, &empty, &rear, 1000, 42, 1);
        assert_eq!(
            shared1,
            FrontRearCounts {
                cov_front: 590,
                cov_rear: 501,
                theta: 1000,
                work: 1420
            }
        );
        let indep2 = front_rear_counts(&&g, 0, &empty, &rear, 1000, 42, 2);
        assert_eq!(
            indep2,
            FrontRearCounts {
                cov_front: 577,
                cov_rear: 462,
                theta: 1000,
                work: 2843
            }
        );
        let shared2 = front_rear_counts_shared(&&g, 0, &empty, &rear, 1000, 42, 2);
        assert_eq!(
            shared2,
            FrontRearCounts {
                cov_front: 571,
                cov_rear: 480,
                theta: 1000,
                work: 1418
            }
        );
    }

    #[test]
    fn dead_view_short_circuits() {
        let g = chain();
        let mut r = ResidualGraph::new(&g);
        r.remove_all(0..3);
        let empty = NodeSet::new(3);
        let c = front_rear_counts(&r, 0, &empty, &empty, 100, 1, 2);
        assert_eq!(c.theta, 0);
        assert_eq!(c.cov_front, 0);
    }

    #[test]
    fn work_accounting_is_positive() {
        let g = chain();
        let empty = NodeSet::new(3);
        let c = front_rear_counts(&&g, 0, &empty, &empty, 100, 1, 1);
        assert!(c.work >= 2 * c.theta as u64, "each set has >= 1 node");
    }

    #[test]
    fn shared_batch_front_dominates_rear_pointwise() {
        // With front condition ⊆ rear condition, the shared batch guarantees
        // cov_front >= cov_rear on every draw (the Lemma 5 requirement).
        let g = chain();
        let empty = NodeSet::new(3);
        let rear = NodeSet::from_iter(3, [1, 2]);
        for seed in 0..50u64 {
            let c = front_rear_counts_shared(&&g, 0, &empty, &rear, 64, seed, 2);
            assert!(c.cov_front >= c.cov_rear, "seed {seed}: {c:?}");
        }
    }

    #[test]
    fn shared_batch_matches_independent_statistically() {
        let g = chain();
        let empty = NodeSet::new(3);
        let rear = NodeSet::from_iter(3, [2]);
        let theta = 120_000;
        let shared = front_rear_counts_shared(&&g, 0, &empty, &rear, theta, 9, 2);
        let indep = front_rear_counts(&&g, 0, &empty, &rear, theta, 9, 2);
        let f1 = shared.cov_front as f64 / shared.theta as f64;
        let f2 = indep.cov_front as f64 / indep.theta as f64;
        let r1 = shared.cov_rear as f64 / shared.theta as f64;
        let r2 = indep.cov_rear as f64 / indep.theta as f64;
        assert!((f1 - f2).abs() < 0.01, "front {f1} vs {f2}");
        assert!((r1 - r2).abs() < 0.01, "rear {r1} vs {r2}");
    }

    #[test]
    fn shared_batch_is_deterministic() {
        let g = chain();
        let empty = NodeSet::new(3);
        let rear = NodeSet::from_iter(3, [1]);
        let a = front_rear_counts_shared(&&g, 0, &empty, &rear, 3000, 5, 3);
        let b = front_rear_counts_shared(&&g, 0, &empty, &rear, 3000, 5, 3);
        assert_eq!(a, b);
    }
}
