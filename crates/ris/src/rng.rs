//! Batched counter-based RNG for the sampling hot loops — reverse BFS in
//! this crate, and (via the `atpm-diffusion` dependency on it) the
//! forward-cascade engine's randomized walks, which draw from the same
//! lanes so the two directions share one stream discipline.
//!
//! The per-coin sampler called `rng.gen::<f32>()` once per in-edge — one
//! serially-dependent xoshiro step plus an int→float conversion per coin.
//! [`CounterRng`] replaces that with a splitmix64-style *counter* stream:
//! lane `i` is a pure finalizer hash of `(key, counter + i)`, so a refill
//! fills a 64-word buffer with no loop-carried dependency (the finalizers
//! pipeline across lanes) and the per-draw cost collapses to a buffered
//! read. 32-bit coin draws consume half a lane each, so one refill funds
//! 128 edge coins.
//!
//! The construction is the same counter→finalizer scheme the possible-world
//! machinery already trusts (`HashedRealization` in `atpm-diffusion`):
//! splitmix64 with the worker key as stream offset, which passes BigCrush.
//! Streams are deterministic per key — `generate_batch` remains a pure
//! function of `(view, count, seed, threads)` — but they are *different*
//! streams than the shim `StdRng` draws, so swapping the sampler's RNG
//! redraws every sampled world (deliberate; the statistical-equivalence
//! suite pins the distributions instead of the streams).
//!
//! Everything lives in fixed-size arrays: creating or refilling a
//! [`CounterRng`] never heap-allocates, which the `alloc_discipline` test
//! asserts through the sampling paths.

use rand::{RngCore, SeedableRng};

/// Maps a raw 64-bit draw to a uniform in the *open* interval `(0, 1)` —
/// the geometric-skip paths (reverse BFS in this crate, forward cascades
/// in `atpm-diffusion`) take `ln(u)`, which must never see 0.
///
/// 52 bits, offset by half a lattice step: the extremes map to `2^-53` and
/// `1 − 2^-53`, both exactly representable (53 bits would round the top
/// value to 1.0 and `ln` would return an exact 0).
#[inline]
pub fn unit_open(x: u64) -> f64 {
    ((x >> 12) as f64 + 0.5) * (1.0 / (1u64 << 52) as f64)
}

/// Lane-buffer length, in 64-bit words.
const LANES: usize = 64;

/// A buffered counter RNG: 64-word refills, splitmix64 lanes.
pub struct CounterRng {
    /// Stream identity (derived from the worker seed).
    key: u64,
    /// Next counter value to bake into a lane.
    counter: u64,
    /// Refilled lane buffer; `pos` words consumed so far.
    buf: [u64; LANES],
    pos: usize,
    /// Unconsumed upper half of the last 32-bit draw's lane.
    spare: u32,
    has_spare: bool,
}

/// The splitmix64 finalizer over the keyed counter: lane `c` of stream
/// `key` is `fin(key + c·golden)`.
#[inline]
fn lane(key: u64, c: u64) -> u64 {
    let mut z = key.wrapping_add(c.wrapping_mul(0x9E3779B97F4A7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl CounterRng {
    /// A fresh stream for `seed` (typically a `workspace::worker_seed`).
    pub fn new(seed: u64) -> Self {
        CounterRng {
            // One finalizer round decorrelates adjacent worker seeds before
            // they become stream offsets.
            key: lane(0xD6E8FEB86659FD93, seed),
            counter: 0,
            buf: [0; LANES],
            pos: LANES,
            spare: 0,
            has_spare: false,
        }
    }

    #[cold]
    fn refill(&mut self) {
        let base = self.counter;
        for (i, slot) in self.buf.iter_mut().enumerate() {
            *slot = lane(self.key, base.wrapping_add(i as u64));
        }
        self.counter = base.wrapping_add(LANES as u64);
        self.pos = 0;
    }
}

impl RngCore for CounterRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.pos == LANES {
            self.refill();
        }
        let x = self.buf[self.pos];
        self.pos += 1;
        x
    }

    /// Coin draws split lanes in half instead of discarding 32 bits per
    /// coin — the edge-coin path is the whole reason this type exists.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.has_spare {
            self.has_spare = false;
            return self.spare;
        }
        let x = self.next_u64();
        self.spare = (x >> 32) as u32;
        self.has_spare = true;
        x as u32
    }
}

impl SeedableRng for CounterRng {
    fn seed_from_u64(state: u64) -> Self {
        CounterRng::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed_and_distinct_across_seeds() {
        let mut a = CounterRng::new(7);
        let mut b = CounterRng::new(7);
        for _ in 0..300 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = CounterRng::new(8);
        let agree = (0..64).filter(|_| a.next_u64() == c.next_u64()).count();
        assert_eq!(agree, 0, "adjacent seeds must not share a stream");
    }

    #[test]
    fn u32_draws_consume_both_lane_halves() {
        let mut whole = CounterRng::new(3);
        let mut halves = CounterRng::new(3);
        for _ in 0..200 {
            let x = whole.next_u64();
            assert_eq!(halves.next_u32(), x as u32);
            assert_eq!(halves.next_u32(), (x >> 32) as u32);
        }
    }

    #[test]
    fn draws_are_uniformish() {
        let mut rng = CounterRng::new(11);
        let n = 100_000u64;
        let mut ones = 0u64;
        let mut sum = 0.0f64;
        for _ in 0..n {
            ones += rng.next_u64().count_ones() as u64;
            sum += rng.gen::<f64>();
        }
        let bit_rate = ones as f64 / (n as f64 * 64.0);
        assert!((bit_rate - 0.5).abs() < 0.005, "bit rate {bit_rate}");
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "unit mean {mean}");
    }

    #[test]
    fn gen_range_works_through_the_shim_trait() {
        let mut rng = CounterRng::new(5);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - 5_000.0).abs() < 500.0,
                "bucket {i}: {c} draws far from uniform"
            );
        }
    }
}
