//! A dense bitset over node ids, used for membership tests in coverage
//! queries (e.g. "is this RR-set member in `T_{i-1} ∖ {u_i}`?").

use atpm_graph::Node;

/// Dense bitset over `0..n` node ids with O(1) insert/remove/contains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSet {
    words: Vec<u64>,
    len: usize,
}

impl NodeSet {
    /// An empty set over the universe `0..n`.
    pub fn new(n: usize) -> Self {
        NodeSet {
            words: vec![0; n.div_ceil(64)],
            len: 0,
        }
    }

    /// Builds a set from an iterator of node ids.
    pub fn from_iter(n: usize, nodes: impl IntoIterator<Item = Node>) -> Self {
        let mut s = NodeSet::new(n);
        for u in nodes {
            s.insert(u);
        }
        s
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, u: Node) -> bool {
        let (w, b) = (u as usize / 64, u as usize % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Inserts `u`; returns true if newly inserted.
    #[inline]
    pub fn insert(&mut self, u: Node) -> bool {
        let (w, b) = (u as usize / 64, u as usize % 64);
        let word = &mut self.words[w];
        if *word & (1 << b) == 0 {
            *word |= 1 << b;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `u`; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, u: Node) -> bool {
        let (w, b) = (u as usize / 64, u as usize % 64);
        let word = &mut self.words[w];
        if *word & (1 << b) != 0 {
            *word &= !(1 << b);
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes every member.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// Iterates members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = Node> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some((w * 64) as Node + b)
                }
            })
        })
    }

    /// Whether any node in `slice` is a member.
    #[inline]
    pub fn intersects(&self, slice: &[Node]) -> bool {
        slice.iter().any(|&u| self.contains(u))
    }

    /// Number of members of `slice` that are in the set.
    #[inline]
    pub fn count_in(&self, slice: &[Node]) -> usize {
        slice.iter().filter(|&&u| self.contains(u)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert reports false");
        assert_eq!(s.len(), 3);
        assert!(s.contains(129));
        assert!(!s.contains(1));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let s = NodeSet::from_iter(200, [5, 199, 0, 63, 64]);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![0, 5, 63, 64, 199]);
    }

    #[test]
    fn intersects_and_count() {
        let s = NodeSet::from_iter(100, [10, 20, 30]);
        assert!(s.intersects(&[1, 2, 20]));
        assert!(!s.intersects(&[1, 2, 3]));
        assert_eq!(s.count_in(&[10, 20, 40, 10]), 3);
    }

    #[test]
    fn clear_resets() {
        let mut s = NodeSet::from_iter(10, [1, 2]);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(1));
    }

    #[test]
    fn contains_out_of_universe_is_false() {
        let s = NodeSet::new(10);
        assert!(!s.contains(1000));
    }
}
