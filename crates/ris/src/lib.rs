//! # atpm-ris
//!
//! Reverse-influence sampling (RIS) for the adaptive TPM stack.
//!
//! A *reverse-reachable (RR) set* rooted at a uniformly random node `r` is the
//! set of nodes that reach `r` in a random possible world [Borgs et al.,
//! SODA'14]. The fundamental identity the whole noise-model machinery rests
//! on is
//!
//! ```text
//! E[I(S)] = n_alive · Pr[RR set intersects S]
//! ```
//!
//! so coverage counts over a batch of RR sets estimate expected spreads, and
//! concentration bounds on the coverage translate directly into spread
//! guarantees.
//!
//! Modules:
//!
//! * [`rr`] — single RR-set generation on any [`GraphView`](atpm_graph::GraphView)
//!   (reverse BFS with fresh coins, dead nodes skipped);
//! * [`collection`] — stored batches with an inverted node→set index and the
//!   coverage/marginal-coverage queries used by the greedy algorithms;
//! * [`coverage`] — incremental double-greedy coverage state (front / rear
//!   marginals in O(sets-containing-u));
//! * [`stream`] — streaming front/rear coverage counters for the adaptive
//!   algorithms, which never need to store their per-iteration batches;
//! * [`bounds`] — Hoeffding (paper Lemma 4), the Relative+Additive martingale
//!   bound (paper Lemma 7), and the one-sided coverage bounds used for
//!   `E_l[I(T)]` cost calibration;
//! * [`sampler`] — deterministic multi-threaded batch generation;
//! * [`nodeset`] — a plain bitset over node ids shared by the above.

pub mod bounds;
pub mod collection;
pub mod coverage;
pub mod nodeset;
pub mod rr;
pub mod sampler;
pub mod stream;

pub use collection::RrCollection;
pub use coverage::DoubleGreedyCoverage;
pub use nodeset::NodeSet;
pub use rr::RrSampler;
pub use sampler::generate_batch;
