//! # atpm-ris
//!
//! Reverse-influence sampling (RIS) for the adaptive TPM stack.
//!
//! A *reverse-reachable (RR) set* rooted at a uniformly random node `r` is the
//! set of nodes that reach `r` in a random possible world [Borgs et al.,
//! SODA'14]. The fundamental identity the whole noise-model machinery rests
//! on is
//!
//! ```text
//! E[I(S)] = n_alive · Pr[RR set intersects S]
//! ```
//!
//! so coverage counts over a batch of RR sets estimate expected spreads, and
//! concentration bounds on the coverage translate directly into spread
//! guarantees.
//!
//! ## Engine architecture
//!
//! The sampling → coverage → greedy pipeline is the hot path of every policy
//! (ADDATP/HATP regenerate their batches every round), so the engine is built
//! around three rules:
//!
//! 1. **Coin-free sampling on the baked `SampleView`.** Reverse BFS never
//!    touches an `f32`: each in-edge's probability is quantized to a `u32`
//!    threshold at graph *build* time (`atpm_graph::quantize_prob` — exact
//!    at `p ∈ {0, 1}`, within `2^-32` elsewhere, so a batch that traverses
//!    `E` edges carries at most `2^-32·|E|` estimator bias, far below
//!    sampling noise), and a coin is one unsigned compare against a raw
//!    32-bit draw. Uniform in-neighborhoods — the weighted cascade's
//!    `1/indeg` case, i.e. *every* node of the paper's preset graphs — take
//!    a geometric-skip fast path that jumps straight to the next accepted
//!    in-edge instead of flipping per edge. Draws come from the buffered
//!    counter RNG ([`rng::CounterRng`]): 64-word lane refills with no
//!    serial dependency, half a lane per coin. The pre-refactor per-coin
//!    loop survives as [`RrSampler::sample_into_percoin`], the distribution
//!    oracle of `tests/sampling_equivalence.rs`.
//! 2. **Zero per-query heap allocation.** All transient state lives in
//!    reusable, epoch-stamped buffers ([`workspace::EpochMarks`]): clearing
//!    is an O(1) epoch bump, the backing arrays are allocated once per size
//!    and reused forever. [`RrSampler`] uses them for visit marks,
//!    [`collection::CoverageScratch`] for coverage queries
//!    ([`RrCollection::cov_set_with`], [`RrCollection::cov_nodes_into`]), and
//!    the decremental lazy greedy in `atpm-im` for its gain cache. The
//!    discipline — including the RNG lane buffer and the skip path — is
//!    enforced by a counting-allocator test (`tests/alloc_discipline.rs`).
//! 3. **Merge parallel work by bulk copy.** [`sampler::generate_batch`]
//!    workers fill [`collection::RrShard`]s in the collection's own flat
//!    layout; fan-in is two `extend_from_slice`-style copies per shard with
//!    offset rebasing ([`RrCollection::absorb_shard`]), and the inverted
//!    node→set index is built exactly once over the merged arrays by
//!    [`RrCollection::freeze`]. Worker seeding ([`workspace::worker_seed`],
//!    pinned by a golden test) and the fan-out/fan-in scaffolding
//!    ([`workspace::run_sharded`]) are shared by the batch sampler and the
//!    streaming counters, so "deterministic in `(input, seed, threads)`" is
//!    defined in one place.
//!
//! Perf baselines for every stage live in `crates/bench/benches/micro.rs`
//! (group `ris_engine`), which emits the committed `BENCH_ris.json`
//! trajectory — run it before and after touching any of these paths. The
//! `ris_engine/sample_*` stages price the threshold compare, the geometric
//! skip, and the RNG refill in isolation.
//!
//! Modules:
//!
//! * [`rr`] — single RR-set generation on any [`GraphView`](atpm_graph::GraphView)
//!   (coin-free reverse BFS over the baked thresholds, geometric skip on
//!   uniform in-neighborhoods, dead nodes skipped, O(1) last-sample
//!   membership probes);
//! * [`rng`] — the buffered counter RNG feeding the samplers;
//! * [`collection`] — stored batches with an inverted node→set index, shard
//!   absorption, and the scratch-buffer coverage oracle used by the greedy
//!   algorithms;
//! * [`coverage`] — incremental double-greedy coverage state (front / rear
//!   marginals in O(sets-containing-u));
//! * [`stream`] — streaming front/rear coverage counters for the adaptive
//!   algorithms, which never need to store their per-iteration batches;
//! * [`bounds`] — Hoeffding (paper Lemma 4), the Relative+Additive martingale
//!   bound (paper Lemma 7), and the one-sided coverage bounds used for
//!   `E_l[I(T)]` cost calibration;
//! * [`sampler`] — deterministic multi-threaded batch generation;
//! * [`workspace`] — worker seeding, sharded fan-out/fan-in, epoch marks;
//! * [`nodeset`] — a plain bitset over node ids shared by the above.

pub mod bounds;
pub mod collection;
pub mod coverage;
pub mod nodeset;
pub mod rng;
pub mod rr;
pub mod sampler;
pub mod stream;
pub mod workspace;

pub use collection::{CoverageScratch, RrCollection, RrShard};
pub use coverage::DoubleGreedyCoverage;
pub use nodeset::NodeSet;
pub use rng::CounterRng;
pub use rr::RrSampler;
pub use sampler::generate_batch;
