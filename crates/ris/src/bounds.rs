//! Concentration bounds: sample-size formulas and tail probabilities.
//!
//! Three families are used by the paper:
//!
//! * **Hoeffding** (Lemma 4) drives ADDATP: with `θ` samples of a `[0,1]`
//!   variable, `Pr[|X̄ − μ| ≥ ζ] ≤ 2·e^{−2θζ²}`.
//! * **Relative+Additive** (Lemma 7) drives HATP:
//!   `Pr[X̄ ≥ (1+ε)μ + ζ] ≤ e^{−2θεζ/(1+ε/3)²}` and
//!   `Pr[X̄ ≤ (1−ε)μ − ζ] ≤ e^{−2θεζ}`.
//! * **One-sided coverage bounds** (martingale bounds of [Tang et al.,
//!   SIGMOD'15/18]) turn an observed coverage count into high-probability
//!   lower/upper bounds on the true mean — used to calibrate costs via
//!   `E_l[I(T)]` (paper §VI-A).

/// Sample size used by ADDATP (Algorithm 3, line 8):
/// `θ = ln(8/δ) / (2ζ²)`.
pub fn addatp_theta(zeta: f64, delta: f64) -> usize {
    assert!(
        zeta > 0.0 && delta > 0.0 && delta < 1.0,
        "zeta={zeta} delta={delta}"
    );
    ((8.0 / delta).ln() / (2.0 * zeta * zeta)).ceil() as usize
}

/// Sample size used by HATP (Algorithm 4, line 8):
/// `θ = (1 + ε/3)² / (2εζ) · ln(4/δ)`.
pub fn hatp_theta(eps: f64, zeta: f64, delta: f64) -> usize {
    assert!(
        eps > 0.0 && zeta > 0.0 && delta > 0.0 && delta < 1.0,
        "eps={eps} zeta={zeta} delta={delta}"
    );
    let c = (1.0 + eps / 3.0).powi(2);
    (c / (2.0 * eps * zeta) * (4.0 / delta).ln()).ceil() as usize
}

/// Two-sided Hoeffding tail: `Pr[|X̄ − μ| ≥ ζ] ≤ 2e^{−2θζ²}` (Lemma 4).
pub fn hoeffding_tail(theta: usize, zeta: f64) -> f64 {
    (2.0 * (-2.0 * theta as f64 * zeta * zeta).exp()).min(1.0)
}

/// Upper tail of the Relative+Additive bound (Lemma 7, eq. 10):
/// `Pr[X̄ ≥ (1+ε)μ + ζ] ≤ e^{−2θεζ/(1+ε/3)²}`.
pub fn rel_add_upper_tail(theta: usize, eps: f64, zeta: f64) -> f64 {
    ((-2.0 * theta as f64 * eps * zeta) / (1.0 + eps / 3.0).powi(2))
        .exp()
        .min(1.0)
}

/// Lower tail of the Relative+Additive bound (Lemma 7, eq. 11):
/// `Pr[X̄ ≤ (1−ε)μ − ζ] ≤ e^{−2θεζ}`.
pub fn rel_add_lower_tail(theta: usize, eps: f64, zeta: f64) -> f64 {
    (-2.0 * theta as f64 * eps * zeta).exp().min(1.0)
}

/// High-probability (`1 − delta`) *lower* bound on the mean coverage
/// probability `μ`, given `cov` hits over `theta` samples.
///
/// This is the martingale bound `μ ≥ ((√(Λ + 2η/9) − √(η/2))² − η/18) / θ`
/// with `η = ln(1/δ)`, clamped to `[0, cov/θ]`.
pub fn coverage_lower_bound(cov: u64, theta: u64, delta: f64) -> f64 {
    assert!(theta > 0, "need at least one sample");
    assert!(delta > 0.0 && delta < 1.0, "delta={delta}");
    let eta = (1.0 / delta).ln();
    let lam = cov as f64;
    let root = (lam + 2.0 * eta / 9.0).sqrt() - (eta / 2.0).sqrt();
    let lower = (root.max(0.0).powi(2) - eta / 18.0) / theta as f64;
    lower.clamp(0.0, lam / theta as f64)
}

/// High-probability (`1 − delta`) *upper* bound on the mean coverage
/// probability: `μ ≤ (√(Λ + η/2) + √(η/2))² / θ`, clamped to `[cov/θ, 1]`.
pub fn coverage_upper_bound(cov: u64, theta: u64, delta: f64) -> f64 {
    assert!(theta > 0, "need at least one sample");
    assert!(delta > 0.0 && delta < 1.0, "delta={delta}");
    let eta = (1.0 / delta).ln();
    let lam = cov as f64;
    let upper = ((lam + eta / 2.0).sqrt() + (eta / 2.0).sqrt()).powi(2) / theta as f64;
    upper.clamp(lam / theta as f64, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn theta_formulas_match_paper_lines() {
        // ADDATP: ln(8/δ)/(2ζ²)
        let t = addatp_theta(0.1, 0.01);
        let want = ((8.0f64 / 0.01).ln() / 0.02).ceil() as usize;
        assert_eq!(t, want);
        // HATP: (1+ε/3)²/(2εζ)·ln(4/δ)
        let t = hatp_theta(0.5, 0.1, 0.01);
        let want = ((1.0 + 0.5 / 3.0f64).powi(2) / (2.0 * 0.5 * 0.1) * (4.0f64 / 0.01).ln()).ceil()
            as usize;
        assert_eq!(t, want);
    }

    #[test]
    fn theta_grows_as_errors_shrink() {
        assert!(addatp_theta(0.05, 0.01) > addatp_theta(0.1, 0.01));
        assert!(addatp_theta(0.1, 0.001) > addatp_theta(0.1, 0.01));
        assert!(hatp_theta(0.25, 0.1, 0.01) > hatp_theta(0.5, 0.1, 0.01));
        assert!(hatp_theta(0.5, 0.05, 0.01) > hatp_theta(0.5, 0.1, 0.01));
    }

    #[test]
    fn hatp_needs_far_fewer_samples_than_addatp_at_small_zeta() {
        // The §IV-A rationale: additive-only error needs O(1/ζ²) samples,
        // hybrid needs O(1/(εζ)).
        let zeta = 1e-4;
        let delta = 1e-6;
        let add = addatp_theta(zeta, delta);
        let hyb = hatp_theta(0.1, zeta, delta);
        assert!(
            add > hyb * 100,
            "additive {add} should dwarf hybrid {hyb} at zeta={zeta}"
        );
    }

    #[test]
    fn tails_decrease_with_theta_and_cap_at_one() {
        assert!(hoeffding_tail(10, 0.1) > hoeffding_tail(1000, 0.1));
        assert_eq!(hoeffding_tail(0, 0.5), 1.0);
        assert!(rel_add_upper_tail(10_000, 0.1, 0.01) < 1e-8);
        assert!(rel_add_lower_tail(10_000, 0.1, 0.01) < rel_add_upper_tail(10_000, 0.1, 0.01));
    }

    #[test]
    fn hoeffding_theta_actually_bounds_deviation() {
        // Empirical check: estimate a Bernoulli(0.3) mean with the ADDATP
        // sample size for (ζ=0.05, δ=0.01); deviations beyond ζ should be
        // (much) rarer than δ.
        let zeta = 0.05;
        let delta = 0.01;
        let theta = addatp_theta(zeta, delta);
        let mut rng = StdRng::seed_from_u64(1);
        let mut violations = 0;
        let trials = 200;
        for _ in 0..trials {
            let mut hits = 0u64;
            for _ in 0..theta {
                if rng.gen::<f64>() < 0.3 {
                    hits += 1;
                }
            }
            let xbar = hits as f64 / theta as f64;
            if (xbar - 0.3).abs() >= zeta {
                violations += 1;
            }
        }
        assert!(
            violations <= 2,
            "{violations}/{trials} deviations ≥ ζ; bound promises ≤ {}",
            delta * trials as f64
        );
    }

    #[test]
    fn coverage_bounds_bracket_truth() {
        // 2000 samples of Bernoulli(0.4); LB <= 0.4 <= UB should essentially
        // always hold at delta = 0.001.
        let mut rng = StdRng::seed_from_u64(2);
        for trial in 0..100 {
            let theta = 2000u64;
            let cov = (0..theta).filter(|_| rng.gen::<f64>() < 0.4).count() as u64;
            let lb = coverage_lower_bound(cov, theta, 0.001);
            let ub = coverage_upper_bound(cov, theta, 0.001);
            assert!(lb <= ub);
            assert!(
                lb <= 0.4 && 0.4 <= ub,
                "trial {trial}: [{lb}, {ub}] misses 0.4"
            );
        }
    }

    #[test]
    fn coverage_bounds_tighten_with_samples() {
        let lb1 = coverage_lower_bound(40, 100, 0.01);
        let lb2 = coverage_lower_bound(4000, 10_000, 0.01);
        assert!(lb2 > lb1);
        let ub1 = coverage_upper_bound(40, 100, 0.01);
        let ub2 = coverage_upper_bound(4000, 10_000, 0.01);
        assert!(ub2 < ub1);
    }

    #[test]
    fn coverage_bounds_edge_cases() {
        assert_eq!(coverage_lower_bound(0, 100, 0.01), 0.0);
        let ub = coverage_upper_bound(100, 100, 0.01);
        assert_eq!(ub, 1.0);
    }
}
