//! Incremental coverage state for the nonadaptive double greedy (NDG).
//!
//! NDG examines each target node once, needing two marginals per node
//! (paper §III-A, Algorithm 1):
//!
//! * **front** `CovR(u | S)` — sets containing `u` not yet covered by the
//!   kept set `S`;
//! * **rear** `CovR(u | Q ∖ {u})` — sets containing `u` that no *other*
//!   member of the candidate set `Q` hits.
//!
//! Maintaining a per-set "covered by S" flag and a per-set count of `Q`
//! members makes both queries and both updates O(#sets containing `u`).

use atpm_graph::Node;

use crate::collection::RrCollection;
use crate::nodeset::NodeSet;

/// Incremental front/rear coverage over a frozen [`RrCollection`].
pub struct DoubleGreedyCoverage<'a> {
    c: &'a RrCollection,
    covered_by_s: Vec<bool>,
    q_count: Vec<u32>,
    in_q: NodeSet,
}

impl<'a> DoubleGreedyCoverage<'a> {
    /// Initializes with `S = ∅` and `Q = candidates`. The collection must be
    /// frozen.
    pub fn new(c: &'a RrCollection, candidates: &[Node]) -> Self {
        let mut q_count = vec![0u32; c.len()];
        let mut in_q = NodeSet::new(
            candidates
                .iter()
                .map(|&u| u as usize + 1)
                .max()
                .unwrap_or(0),
        );
        for &u in candidates {
            if in_q.insert(u) {
                for &i in c.sets_containing(u) {
                    q_count[i as usize] += 1;
                }
            }
        }
        DoubleGreedyCoverage {
            c,
            covered_by_s: vec![false; c.len()],
            q_count,
            in_q,
        }
    }

    /// `CovR(u | S)`.
    pub fn front_cov(&self, u: Node) -> usize {
        self.c
            .sets_containing(u)
            .iter()
            .filter(|&&i| !self.covered_by_s[i as usize])
            .count()
    }

    /// `CovR(u | Q ∖ {u})`. Requires `u ∈ Q`.
    pub fn rear_cov(&self, u: Node) -> usize {
        debug_assert!(self.in_q.contains(u), "rear_cov caller must keep u in Q");
        self.c
            .sets_containing(u)
            .iter()
            .filter(|&&i| self.q_count[i as usize] == 1)
            .count()
    }

    /// Commits `u` to `S` (it also stays in `Q`, mirroring Algorithm 1 where
    /// `T` keeps selected nodes).
    pub fn select(&mut self, u: Node) {
        for &i in self.c.sets_containing(u) {
            self.covered_by_s[i as usize] = true;
        }
    }

    /// Removes `u` from `Q`.
    pub fn reject(&mut self, u: Node) {
        if self.in_q.remove(u) {
            for &i in self.c.sets_containing(u) {
                debug_assert!(self.q_count[i as usize] > 0);
                self.q_count[i as usize] -= 1;
            }
        }
    }

    /// The underlying collection.
    pub fn collection(&self) -> &RrCollection {
        self.c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Four sets over five nodes; candidates {0, 1, 2}.
    fn setup() -> RrCollection {
        let mut c = RrCollection::new(5, 5);
        c.push(&[0, 1]);
        c.push(&[1, 2]);
        c.push(&[2]);
        c.push(&[0, 3]);
        c.freeze();
        c
    }

    #[test]
    fn initial_front_equals_plain_coverage() {
        let c = setup();
        let dg = DoubleGreedyCoverage::new(&c, &[0, 1, 2]);
        assert_eq!(dg.front_cov(0), 2);
        assert_eq!(dg.front_cov(1), 2);
        assert_eq!(dg.front_cov(2), 2);
    }

    #[test]
    fn initial_rear_counts_exclusive_sets() {
        let c = setup();
        let dg = DoubleGreedyCoverage::new(&c, &[0, 1, 2]);
        // Node 0: sets {0,1} (1 ∈ Q too -> count 2), {0,3} (only 0 -> count 1).
        assert_eq!(dg.rear_cov(0), 1);
        // Node 1: both its sets contain another Q member.
        assert_eq!(dg.rear_cov(1), 0);
        // Node 2: set {1,2} shared, set {2} exclusive.
        assert_eq!(dg.rear_cov(2), 1);
    }

    #[test]
    fn select_updates_front() {
        let c = setup();
        let mut dg = DoubleGreedyCoverage::new(&c, &[0, 1, 2]);
        dg.select(0); // covers sets 0 and 3
        assert_eq!(dg.front_cov(1), 1); // only set 1 remains uncovered
        assert_eq!(dg.front_cov(2), 2);
    }

    #[test]
    fn reject_updates_rear() {
        let c = setup();
        let mut dg = DoubleGreedyCoverage::new(&c, &[0, 1, 2]);
        dg.reject(1);
        // With 1 gone, node 0's set {0,1} becomes exclusive to 0.
        assert_eq!(dg.rear_cov(0), 2);
        // Node 2's set {1,2} becomes exclusive to 2.
        assert_eq!(dg.rear_cov(2), 2);
    }

    #[test]
    fn rear_matches_collection_marginal() {
        // rear_cov(u) must equal cov(u) - cov_marginal against Q \ {u}...
        // more precisely: cov_marginal(u, Q \ {u}) from the collection.
        let c = setup();
        let dg = DoubleGreedyCoverage::new(&c, &[0, 1, 2]);
        for u in [0u32, 1, 2] {
            let others: Vec<Node> = [0u32, 1, 2].into_iter().filter(|&v| v != u).collect();
            let s = NodeSet::from_iter(5, others);
            assert_eq!(dg.rear_cov(u), c.cov_marginal(u, &s), "node {u}");
        }
    }

    #[test]
    fn duplicate_candidates_are_counted_once() {
        let c = setup();
        let dg1 = DoubleGreedyCoverage::new(&c, &[0, 1, 2]);
        let dg2 = DoubleGreedyCoverage::new(&c, &[0, 1, 2, 2, 1]);
        for u in [0u32, 1, 2] {
            assert_eq!(dg1.rear_cov(u), dg2.rear_cov(u));
        }
    }
}
