//! Property-based tests for RR-set machinery: coverage laws, bound
//! monotonicity, and estimator consistency.

use atpm_graph::{GraphBuilder, GraphView};
use atpm_ris::bounds::{addatp_theta, coverage_lower_bound, coverage_upper_bound, hatp_theta};
use atpm_ris::sampler::generate_batch;
use atpm_ris::{DoubleGreedyCoverage, NodeSet, RrCollection};
use proptest::prelude::*;

fn arb_collection() -> impl Strategy<Value = (usize, RrCollection)> {
    (3usize..10).prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::btree_set(0..n as u32, 1..4), 1..40)
            .prop_map(move |sets| {
                let mut c = RrCollection::new(n, n);
                for s in &sets {
                    let v: Vec<u32> = s.iter().copied().collect();
                    c.push(&v);
                }
                c.freeze();
                (n, c)
            })
    })
}

proptest! {
    /// Coverage is monotone and submodular in the seed set.
    #[test]
    fn coverage_is_monotone_submodular((n, c) in arb_collection()) {
        let a: Vec<u32> = vec![0];
        let b: Vec<u32> = (0..n as u32 / 2).collect();
        prop_assert!(c.cov_set(&a) <= c.cov_set(&b.iter().copied().chain([0]).collect::<Vec<_>>()));
        // Submodularity: marginal of u wrt A >= wrt B for A ⊆ B.
        for u in 0..n as u32 {
            let a_with: Vec<u32> = a.iter().copied().chain([u]).collect();
            let mut b_sup = b.clone();
            if !b_sup.contains(&0) { b_sup.push(0); }
            let b_with: Vec<u32> = b_sup.iter().copied().chain([u]).collect();
            let ga = c.cov_set(&a_with) - c.cov_set(&a);
            let gb = c.cov_set(&b_with) - c.cov_set(&b_sup);
            prop_assert!(ga >= gb, "node {}: {} < {}", u, ga, gb);
        }
    }

    /// cov(u | S) == |sets containing u| - |sets containing u hit by S|,
    /// and the double-greedy incremental state agrees with recomputation.
    #[test]
    fn marginals_agree_with_incremental_state((n, c) in arb_collection()) {
        let candidates: Vec<u32> = (0..n as u32).collect();
        let mut dg = DoubleGreedyCoverage::new(&c, &candidates);
        // Walk candidates: select evens, reject odds; check rear/front before
        // each operation against a from-scratch computation.
        let mut q: Vec<u32> = candidates.clone();
        let mut s: Vec<u32> = Vec::new();
        for &u in &candidates {
            let s_set = NodeSet::from_iter(n, s.iter().copied());
            let expected_front = c
                .sets_containing(u)
                .iter()
                .filter(|&&i| !s_set.intersects(c.set(i as usize)))
                .count();
            prop_assert_eq!(dg.front_cov(u), expected_front);

            let rest = NodeSet::from_iter(n, q.iter().copied().filter(|&v| v != u));
            prop_assert_eq!(dg.rear_cov(u), c.cov_marginal(u, &rest));

            if u % 2 == 0 {
                dg.select(u);
                s.push(u);
            } else {
                dg.reject(u);
                q.retain(|&v| v != u);
            }
        }
    }

    /// Sample-size formulas are monotone in their error arguments.
    #[test]
    fn theta_monotonicity(
        z1 in 0.01f64..0.3, z2 in 0.01f64..0.3,
        e1 in 0.05f64..0.9, d in 0.0001f64..0.1,
    ) {
        let (zl, zh) = if z1 < z2 { (z1, z2) } else { (z2, z1) };
        prop_assert!(addatp_theta(zl, d) >= addatp_theta(zh, d));
        prop_assert!(hatp_theta(e1, zl, d) >= hatp_theta(e1, zh, d));
        // Hybrid always needs no more samples than additive for the same zeta
        // whenever eps is moderate (the whole point of §IV-A).
        prop_assert!(hatp_theta(0.5, zl, d) <= addatp_theta(zl, d) * 2);
    }

    /// Coverage bounds bracket the point estimate and are ordered.
    #[test]
    fn coverage_bounds_bracket(cov in 0u64..1000, extra in 1u64..1000, d in 0.001f64..0.2) {
        let theta = cov + extra;
        let lb = coverage_lower_bound(cov, theta, d);
        let ub = coverage_upper_bound(cov, theta, d);
        let point = cov as f64 / theta as f64;
        prop_assert!(lb <= point + 1e-12);
        prop_assert!(ub >= point - 1e-12);
        prop_assert!((0.0..=1.0).contains(&lb));
        prop_assert!((0.0..=1.0).contains(&ub));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `generate_batch` is a pure function of `(view, count, seed, threads)`
    /// after the sharded merge: re-running any configuration reproduces the
    /// collection byte for byte, and single-worker runs are unaffected by
    /// requesting more workers than items.
    #[test]
    fn generate_batch_is_pure_across_thread_counts(
        count in 1usize..400,
        seed in 0u64..1000,
        p in 0.1f32..0.9,
    ) {
        let mut b = GraphBuilder::new(12);
        for i in 0..11u32 {
            b.add_edge(i, i + 1, p).unwrap();
            b.add_edge((i * 5 + 1) % 12, i, p * 0.5).unwrap();
        }
        let g = b.build();
        for threads in [1usize, 2, 4, 8] {
            let a = generate_batch(&&g, count, seed, threads);
            let b2 = generate_batch(&&g, count, seed, threads);
            prop_assert_eq!(a.len(), count);
            prop_assert_eq!(a.len(), b2.len());
            for i in 0..a.len() {
                prop_assert_eq!(a.set(i), b2.set(i), "threads {}, set {}", threads, i);
            }
            prop_assert_eq!(a.total_members(), b2.total_members());
        }
        // Requesting more workers than RR sets must degrade to the same
        // result as exactly `count` workers (quota-0 workers contribute
        // nothing and draw nothing).
        let exact = generate_batch(&&g, count, seed, count);
        let oversub = generate_batch(&&g, count, seed, count + 7);
        prop_assert_eq!(exact.len(), oversub.len());
        for i in 0..exact.len() {
            prop_assert_eq!(exact.set(i), oversub.set(i));
        }
    }

    /// The scratch-based coverage oracle agrees with a from-scratch
    /// recomputation on arbitrary collections and query sets, across reuses.
    #[test]
    fn scratch_coverage_matches_reference((n, c) in arb_collection(), seed in 0u64..500) {
        use atpm_ris::CoverageScratch;
        let mut scratch = CoverageScratch::new();
        let mut out = Vec::new();
        let nodes: Vec<u32> = (0..n as u32).collect();
        // A couple of different conditions exercise hit-cache rebuilds.
        for shift in 0..3u32 {
            let cond = NodeSet::from_iter(n, nodes.iter().copied().filter(|u| (u + shift + seed as u32).is_multiple_of(3)));
            c.cov_nodes_into(&nodes, Some(&cond), &mut scratch, &mut out);
            for (j, &u) in nodes.iter().enumerate() {
                prop_assert_eq!(out[j] as usize, c.cov_marginal(u, &cond), "node {}", u);
            }
            let query: Vec<u32> = nodes.iter().copied().filter(|u| (u + shift) % 2 == 0).collect();
            let mut reference = 0usize;
            let mut hit = vec![false; c.len()];
            for &u in &query {
                for &i in c.sets_containing(u) {
                    if !hit[i as usize] {
                        hit[i as usize] = true;
                        reference += 1;
                    }
                }
            }
            prop_assert_eq!(c.cov_set_with(&query, &mut scratch), reference);
        }
    }
}

#[test]
fn batch_spread_estimates_are_consistent_across_thread_counts() {
    // Not a proptest (costly): spread estimates from different worker counts
    // must agree statistically because they draw from the same distribution.
    let mut b = GraphBuilder::new(30);
    for i in 0..29u32 {
        b.add_edge(i, i + 1, 0.4).unwrap();
    }
    let g = b.build();
    let c1 = generate_batch(&&g, 40_000, 3, 1);
    let c4 = generate_batch(&&g, 40_000, 3, 4);
    assert_eq!(c1.n_alive(), g.num_alive());
    for u in [0u32, 10, 29] {
        let s1 = c1.spread_node(u);
        let s4 = c4.spread_node(u);
        assert!((s1 - s4).abs() < 0.25, "node {u}: {s1} vs {s4}");
    }
}
