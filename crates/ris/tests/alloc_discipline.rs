//! Enforces the engine's allocation discipline: after warm-up, the hot
//! query paths (`cov_set_with`, `cov_nodes_into`, `cov_marginal`, and
//! repeated `sample_into` on a reused sampler) perform **zero heap
//! allocation per query**.
//!
//! A counting global allocator wraps `System`; everything runs inside one
//! `#[test]` so no concurrent test pollutes the counters. Batch
//! *generation* (`generate_batch`) is excluded by design — it returns a
//! freshly allocated collection.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocation count attributable to `f`.
fn allocations_during<F: FnOnce()>(f: F) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn hot_query_paths_do_not_allocate_after_warmup() {
    use atpm_graph::GraphBuilder;
    use atpm_ris::sampler::generate_batch;
    use atpm_ris::{CoverageScratch, NodeSet, RrSampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // A graph big enough that RR sets and coverage structures are nontrivial.
    let mut b = GraphBuilder::new(200);
    for i in 0..199u32 {
        b.add_edge(i, i + 1, 0.6).unwrap();
        b.add_edge(i + 1, i, 0.3).unwrap();
    }
    let g = b.build();
    let collection = generate_batch(&&g, 20_000, 7, 1);
    assert!(collection.len() == 20_000);

    let queries: Vec<Vec<u32>> = (0..8)
        .map(|q| (0..50u32).map(|i| (i * 3 + q) % 200).collect())
        .collect();
    let cond = NodeSet::from_iter(200, (0..30).map(|i| i * 5));

    // ---- cov_set_with ------------------------------------------------------
    let mut scratch = CoverageScratch::new();
    let mut blackhole = 0usize;
    // Warm-up sizes the scratch to this collection.
    blackhole += collection.cov_set_with(&queries[0], &mut scratch);
    let allocs = allocations_during(|| {
        for q in &queries {
            blackhole += collection.cov_set_with(q, &mut scratch);
        }
    });
    assert_eq!(allocs, 0, "cov_set_with allocated after warm-up");

    // ---- cov_marginal (allocation-free by construction) --------------------
    let allocs = allocations_during(|| {
        for u in 0..200u32 {
            blackhole += collection.cov_marginal(u, &cond);
        }
    });
    assert_eq!(allocs, 0, "cov_marginal allocated");

    // ---- cov_nodes_into ----------------------------------------------------
    let mut out = Vec::new();
    collection.cov_nodes_into(&queries[0], Some(&cond), &mut scratch, &mut out); // warm-up
    let allocs = allocations_during(|| {
        for q in &queries {
            collection.cov_nodes_into(q, Some(&cond), &mut scratch, &mut out);
            blackhole += out.iter().map(|&c| c as usize).sum::<usize>();
            collection.cov_nodes_into(q, None, &mut scratch, &mut out);
            blackhole += out.len();
        }
    });
    assert_eq!(allocs, 0, "cov_nodes_into allocated after warm-up");

    // ---- repeated sampling on a reused sampler -----------------------------
    let mut sampler = RrSampler::new();
    let mut rng = StdRng::seed_from_u64(3);
    let mut buf = Vec::new();
    for _ in 0..500 {
        sampler.sample_into(&&g, &mut rng, &mut buf); // warm-up: buffers reach max size
    }
    let allocs = allocations_during(|| {
        for _ in 0..500 {
            sampler.sample_into(&&g, &mut rng, &mut buf);
            blackhole += usize::from(sampler.contains_last(0));
        }
    });
    assert_eq!(allocs, 0, "sample_into allocated after warm-up");

    // ---- the per-coin oracle shares the discipline -------------------------
    let allocs = allocations_during(|| {
        for _ in 0..500 {
            sampler.sample_into_percoin(&&g, &mut rng, &mut buf);
            blackhole += usize::from(sampler.contains_last(0));
        }
    });
    assert_eq!(allocs, 0, "sample_into_percoin allocated after warm-up");

    // ---- counter-RNG refills + geometric skip path -------------------------
    // A hub with 32 uniform p = 0.1 in-edges forces the skip fast path;
    // CounterRng's 64-word lane buffer refills many times in 2000 samples.
    // Neither may touch the heap once buffers are warm.
    use atpm_ris::CounterRng;
    let mut hb = GraphBuilder::new(33);
    for u in 1..33u32 {
        hb.add_edge(u, 0, 0.1).unwrap();
    }
    let hub = hb.build();
    assert!(hub.in_skip_inv(0) < 0.0, "hub must take the skip path");
    let mut crng = CounterRng::new(9);
    let mut hsampler = RrSampler::new();
    for _ in 0..500 {
        hsampler.sample_into(&hub, &mut crng, &mut buf); // warm-up
    }
    let allocs = allocations_during(|| {
        for _ in 0..2_000 {
            hsampler.sample_into(&hub, &mut crng, &mut buf);
            blackhole += buf.len();
        }
    });
    assert_eq!(allocs, 0, "skip path / CounterRng allocated after warm-up");

    assert!(blackhole > 0, "keep the optimizer honest");
}
