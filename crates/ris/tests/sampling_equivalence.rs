//! Statistical-equivalence suite: the coin-free `SampleView` sampler
//! (integer thresholds + geometric skip + `CounterRng`) must draw RR sets
//! from the *same distribution* as the retained per-coin oracle
//! (`RrSampler::sample_into_percoin`), even though the streams differ.
//!
//! Singleton-spread estimates are the sufficient statistic here: by the RIS
//! identity `E[I({u})] = n·Pr[u ∈ RR]`, agreement of every singleton
//! coverage rate pins the per-edge acceptance probabilities the sampler
//! realizes. The suite checks chain graphs with known closed forms, a
//! weighted-cascade preset (whose uniform in-neighborhoods exercise the
//! skip path), and thread counts {1, 2, 4}; proptests pin the quantization
//! endpoints exactly.

use atpm_graph::gen::Dataset;
use atpm_graph::{quantize_prob, threshold_accept, threshold_prob, GraphBuilder, GraphView};
use atpm_ris::{generate_batch, CounterRng, RrSampler};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Singleton-spread estimate from `theta` per-coin oracle samples.
fn percoin_spread<V: GraphView>(view: &V, u: u32, theta: usize, seed: u64) -> f64 {
    let mut sampler = RrSampler::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = Vec::new();
    let mut cov = 0usize;
    for _ in 0..theta {
        assert!(sampler.sample_into_percoin(view, &mut rng, &mut buf));
        if sampler.contains_last(u) {
            cov += 1;
        }
    }
    view.num_alive() as f64 * cov as f64 / theta as f64
}

#[test]
fn chain_spread_matches_oracle_and_closed_form() {
    // 0 -> 1 -> 2 at p = 0.5: E[I({0})] = 1.75 exactly.
    let mut b = GraphBuilder::new(3);
    b.add_edge(0, 1, 0.5).unwrap();
    b.add_edge(1, 2, 0.5).unwrap();
    let g = b.build();
    let theta = 150_000;
    for threads in [1usize, 2, 4] {
        let c = generate_batch(&&g, theta, 11, threads);
        let fast = c.spread_node(0);
        assert!(
            (fast - 1.75).abs() < 0.03,
            "threads {threads}: SampleView estimate {fast} vs exact 1.75"
        );
    }
    let oracle = percoin_spread(&&g, 0, theta, 3);
    assert!((oracle - 1.75).abs() < 0.03, "oracle drifted: {oracle}");
}

#[test]
fn certain_chain_is_deterministic_under_quantization() {
    // All-p=1.0 chain: every RR set from root r is exactly {0..=r}; a
    // single quantization flip anywhere would shrink a set.
    let mut b = GraphBuilder::new(5);
    for i in 0..4u32 {
        b.add_edge(i, i + 1, 1.0).unwrap();
    }
    let g = b.build();
    let c = generate_batch(&&g, 20_000, 5, 2);
    for i in 0..c.len() {
        let set = c.set(i);
        assert_eq!(set.len(), set[0] as usize + 1, "truncated certain RR set");
    }
}

#[test]
fn preset_skip_path_matches_percoin_oracle() {
    // Weighted-cascade preset: every in-neighborhood is uniform, so high-
    // degree nodes run the geometric skip. Compare singleton spreads of the
    // highest in-degree nodes (where the skip path does all the work)
    // against the per-coin oracle across thread counts.
    let g = Dataset::NetHept.generate(0.05, 3);
    let n = g.num_nodes();
    let mut nodes: Vec<u32> = (0..n as u32).collect();
    nodes.sort_unstable_by_key(|&v| std::cmp::Reverse(g.in_degree(v)));
    let hubs: Vec<u32> = nodes.into_iter().take(3).collect();
    assert!(
        hubs.iter().any(|&v| g.in_skip_inv(v) < 0.0),
        "top in-degree hubs of a WC preset must be skip-eligible"
    );

    let theta = 120_000;
    for &hub in &hubs {
        let oracle = percoin_spread(&&g, hub, theta, 17);
        for threads in [1usize, 2, 4] {
            let c = generate_batch(&&g, theta, 23 + threads as u64, threads);
            let fast = c.spread_node(hub);
            // Spreads here are O(1)..O(10); 5% relative + small absolute slack
            // covers two independent Monte-Carlo estimates at θ = 120k.
            let tol = 0.05 * oracle.max(1.0) + 0.05;
            assert!(
                (fast - oracle).abs() < tol,
                "hub {hub}, threads {threads}: SampleView {fast} vs oracle {oracle}"
            );
        }
    }
}

#[test]
fn threshold_only_path_matches_skip_path() {
    // The two fast paths must agree with each other, not just with the
    // float oracle: same hub, skip on vs off.
    let g = Dataset::NetHept.generate(0.05, 4);
    let hub = (0..g.num_nodes() as u32)
        .max_by_key(|&v| g.in_degree(v))
        .unwrap();
    let theta = 120_000;
    let spread = |skip: bool, seed: u64| {
        let mut sampler = RrSampler::new();
        let mut rng = CounterRng::new(seed);
        let mut buf = Vec::new();
        let mut cov = 0usize;
        for _ in 0..theta {
            let ok = if skip {
                sampler.sample_into(&&g, &mut rng, &mut buf)
            } else {
                sampler.sample_into_threshold(&&g, &mut rng, &mut buf)
            };
            assert!(ok);
            if sampler.contains_last(hub) {
                cov += 1;
            }
        }
        g.num_nodes() as f64 * cov as f64 / theta as f64
    };
    let with_skip = spread(true, 7);
    let without = spread(false, 8);
    let tol = 0.05 * with_skip.max(1.0) + 0.05;
    assert!(
        (with_skip - without).abs() < tol,
        "skip {with_skip} vs threshold-only {without}"
    );
}

proptest! {
    /// Quantization never flips an endpoint edge: p = 1.0 accepts every
    /// draw, p = 0.0 accepts none — for *any* 32-bit draw value.
    #[test]
    fn endpoint_probabilities_never_flip(draw in 0u32..=u32::MAX) {
        prop_assert!(threshold_accept(draw, quantize_prob(1.0)));
        prop_assert!(!threshold_accept(draw, quantize_prob(0.0)));
    }

    /// Quantized acceptance probability stays within one lattice step of
    /// the requested probability, and the endpoints round-trip exactly.
    #[test]
    fn quantization_error_is_bounded(p in 0.0f32..=1.0f32) {
        let q = threshold_prob(quantize_prob(p));
        prop_assert!((q - p as f64).abs() <= 1.0 / 4_294_967_296.0,
            "p {} quantized to {}", p, q);
    }

    /// Edges at the endpoints survive a full build (builder + CSR bake):
    /// a p = 1.0 edge in a built graph always fires under every world.
    #[test]
    fn built_certain_edges_always_fire(seed in 0u64..1_000) {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1.0).unwrap();
        let g = b.build();
        prop_assert_eq!(g.edge_threshold(0), quantize_prob(1.0));
        let mut sampler = RrSampler::new();
        let mut rng = CounterRng::new(seed);
        let mut buf = Vec::new();
        prop_assert!(sampler.sample_into(&&g, &mut rng, &mut buf));
        if buf[0] == 1 {
            prop_assert!(buf.contains(&0), "certain edge failed to fire");
        }
    }
}
