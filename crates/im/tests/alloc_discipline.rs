//! Enforces the allocation discipline of the decremental lazy greedy: with
//! a caller-provided [`GreedyScratch`] and result, selection performs zero
//! heap allocation after warm-up.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations_during<F: FnOnce()>(f: F) -> u64 {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    f();
    ALLOCATIONS.load(Ordering::Relaxed) - before
}

#[test]
fn greedy_selection_does_not_allocate_after_warmup() {
    use atpm_graph::GraphBuilder;
    use atpm_im::greedy::{max_coverage_greedy_with, GreedyResult, GreedyScratch};
    use atpm_ris::sampler::generate_batch;

    let mut b = GraphBuilder::new(300);
    for i in 0..299u32 {
        b.add_edge(i, i + 1, 0.5).unwrap();
        b.add_edge(i, (i * 7 + 3) % 300, 0.2).unwrap();
    }
    let g = b.build();
    let collection = generate_batch(&&g, 30_000, 11, 1);

    let candidates: Vec<u32> = (0..150u32).collect();
    let mut scratch = GreedyScratch::new();
    let mut result = GreedyResult::default();

    // Warm-up sizes the scratch, heap, and result buffers.
    max_coverage_greedy_with(
        &collection,
        25,
        Some(&candidates),
        &mut scratch,
        &mut result,
    );
    max_coverage_greedy_with(&collection, 25, None, &mut scratch, &mut result);
    let warm = result.clone();

    let allocs = allocations_during(|| {
        for _ in 0..5 {
            max_coverage_greedy_with(
                &collection,
                25,
                Some(&candidates),
                &mut scratch,
                &mut result,
            );
            max_coverage_greedy_with(&collection, 25, None, &mut scratch, &mut result);
        }
    });
    assert_eq!(allocs, 0, "greedy selection allocated after warm-up");
    assert_eq!(result, warm, "repeated runs must be identical");
    assert!(!result.seeds.is_empty());
}
