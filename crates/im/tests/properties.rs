//! Property-based tests for the influence-maximization substrate.

use atpm_graph::{GraphBuilder, WeightingScheme};
use atpm_im::greedy::max_coverage_greedy_rescan;
use atpm_im::{
    imm_select, max_coverage_greedy, max_coverage_greedy_with, spread_lower_bound, GreedyResult,
    GreedyScratch, ImmConfig,
};
use atpm_ris::sampler::generate_batch;
use atpm_ris::RrCollection;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = atpm_graph::Graph> {
    (4usize..12)
        .prop_flat_map(|n| {
            let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 3..25);
            (Just(n), edges)
        })
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                if u != v {
                    b.add_edge(u, v, 1.0).unwrap();
                }
            }
            WeightingScheme::WeightedCascade.apply(&b.build())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Greedy coverage is monotone in k and never exceeds the collection size.
    #[test]
    fn greedy_coverage_monotone_in_k(g in arb_graph(), seed in 0u64..50) {
        let c = generate_batch(&&g, 500, seed, 1);
        let mut prev = 0usize;
        for k in 1..=4usize {
            let r = max_coverage_greedy(&c, k, None);
            prop_assert!(r.coverage >= prev, "k={}: {} < {}", k, r.coverage, prev);
            prop_assert!(r.coverage <= c.len());
            prev = r.coverage;
        }
    }

    /// Each recorded gain is non-increasing (submodularity of the greedy
    /// trajectory) and sums to the total coverage.
    #[test]
    fn greedy_gains_decrease_and_sum(g in arb_graph(), seed in 0u64..50) {
        let c = generate_batch(&&g, 400, seed, 1);
        let r = max_coverage_greedy(&c, 5, None);
        prop_assert!(r.gains.windows(2).all(|w| w[0] >= w[1]), "{:?}", r.gains);
        prop_assert_eq!(r.gains.iter().sum::<usize>(), r.coverage);
    }

    /// The greedy result covers at least (1 − 1/e) of the best single batch
    /// cover of the same size... which we can only lower-bound by the best
    /// singleton: greedy(k=1) IS the best singleton.
    #[test]
    fn greedy_first_pick_is_argmax(g in arb_graph(), seed in 0u64..50) {
        let c = generate_batch(&&g, 300, seed, 1);
        let r = max_coverage_greedy(&c, 1, None);
        let best = (0..g.num_nodes() as u32).map(|u| c.cov_node(u)).max().unwrap_or(0);
        prop_assert_eq!(r.coverage, best);
    }

    /// Engine equivalence: the decremental CELF returns byte-identical
    /// results to the pre-refactor re-scanning implementation on randomized
    /// collections — unrestricted, candidate-restricted, and with duplicate
    /// candidates — including across scratch reuse.
    #[test]
    fn decremental_celf_equals_rescan_oracle(g in arb_graph(), seed in 0u64..100) {
        let c = generate_batch(&&g, 600, seed, 2);
        let n = g.num_nodes() as u32;
        let mut scratch = GreedyScratch::new();
        let mut result = GreedyResult::default();
        for k in [1usize, 2, 5, 9] {
            let oracle = max_coverage_greedy_rescan(&c, k, None);
            max_coverage_greedy_with(&c, k, None, &mut scratch, &mut result);
            prop_assert_eq!(&result, &oracle, "k = {}", k);

            let candidates: Vec<u32> = (0..n).filter(|u| u % 2 == seed as u32 % 2).collect();
            let oracle = max_coverage_greedy_rescan(&c, k, Some(&candidates));
            max_coverage_greedy_with(&c, k, Some(&candidates), &mut scratch, &mut result);
            prop_assert_eq!(&result, &oracle, "restricted, k = {}", k);

            let dups: Vec<u32> = candidates.iter().chain(candidates.iter()).copied().collect();
            max_coverage_greedy_with(&c, k, Some(&dups), &mut scratch, &mut result);
            prop_assert_eq!(&result, &oracle, "duplicated candidates, k = {}", k);
        }
    }

    /// The spread lower bound is monotone in the seed set.
    #[test]
    fn spread_lower_bound_monotone(g in arb_graph(), seed in 0u64..20) {
        let small = spread_lower_bound(&&g, &[0], 4000, 0.01, seed, 1);
        let all: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let big = spread_lower_bound(&&g, &all, 4000, 0.01, seed, 1);
        prop_assert!(big >= small - 1e-9, "{} < {}", big, small);
        // Full-set coverage is every RR set: LB approaches n but never exceeds.
        prop_assert!(big <= g.num_nodes() as f64 + 1e-9);
    }
}

#[test]
fn imm_estimate_is_unbiased_enough_on_fixed_graph() {
    // Star with hub + chain; IMM's estimate must track exact greedy spread.
    let mut b = GraphBuilder::new(12);
    for v in 1..=6 {
        b.add_edge(0, v, 0.8).unwrap();
    }
    b.add_edge(7, 8, 0.8).unwrap();
    b.add_edge(8, 9, 0.8).unwrap();
    let g = b.build();
    let r = imm_select(
        &&g,
        ImmConfig {
            k: 2,
            eps: 0.2,
            seed: 5,
            ..Default::default()
        },
    );
    assert!(r.seeds.contains(&0), "hub must be selected: {:?}", r.seeds);
    assert!(r.seeds.contains(&7), "chain head is the best second pick");
    let exact = atpm_diffusion::exact_spread(&&g, &r.seeds);
    assert!(
        (r.est_spread - exact).abs() < 0.15 * exact,
        "estimate {} vs exact {exact}",
        r.est_spread
    );
}

#[test]
fn greedy_ties_break_deterministically_by_node_id() {
    let mut c = RrCollection::new(4, 4);
    c.push(&[1]);
    c.push(&[2]);
    c.push(&[3]);
    c.freeze();
    let r = max_coverage_greedy(&c, 2, None);
    assert_eq!(r.seeds, vec![1, 2], "equal gains resolve to smaller ids");
}
