//! IMM: influence maximization with martingales [Tang–Shi–Xiao, SIGMOD'15].
//!
//! IMM returns a `(1 − 1/e − ε)`-approximate size-`k` seed set with
//! probability `1 − n^{−ℓ}`. The paper uses it ("one of the state of the
//! arts \[28\]", §VI-A) to pick the top-`k` influential users as the target
//! set `T`.
//!
//! Two phases:
//!
//! 1. **Parameter estimation** — guesses `OPT` by halving: for
//!    `x_i = n / 2^i`, draw `θ_i` RR sets; if the greedy cover certifies
//!    spread `≥ (1 + ε′)·x_i` the loop stops with a lower bound on `OPT`.
//! 2. **Node selection** — draw `θ = λ* / LB` RR sets and run lazy greedy.
//!
//! Both phases sample through `generate_batch`, i.e. the coin-free
//! `SampleView` pipeline (integer thresholds + geometric skip + counter
//! RNG). The thresholds quantize each edge probability to the `2^-32`
//! lattice — exact at `p ∈ {0, 1}` — so every spread estimate below
//! carries at most `2^-32·|edges-traversed|` additional bias, vanishing
//! next to the `ε` the θ-formulas already budget for sampling error.

use atpm_graph::{GraphView, Node};
use atpm_ris::sampler::generate_batch;

use crate::greedy::{max_coverage_greedy_with, GreedyResult, GreedyScratch};

/// IMM parameters.
#[derive(Debug, Clone, Copy)]
pub struct ImmConfig {
    /// Seed-set size `k`.
    pub k: usize,
    /// Approximation slack `ε` (the guarantee is `1 − 1/e − ε`).
    pub eps: f64,
    /// Failure exponent: success probability is `1 − n^{−ℓ}`.
    pub ell: f64,
    /// RNG seed.
    pub seed: u64,
    /// Sampler worker threads.
    pub threads: usize,
}

impl Default for ImmConfig {
    fn default() -> Self {
        ImmConfig {
            k: 50,
            eps: 0.5,
            ell: 1.0,
            seed: 0,
            threads: 1,
        }
    }
}

/// Output of [`imm_select`].
#[derive(Debug, Clone)]
pub struct ImmResult {
    /// Selected seed nodes (≤ k, in pick order).
    pub seeds: Vec<Node>,
    /// RIS estimate of the seeds' expected spread.
    pub est_spread: f64,
    /// RR sets used in the final selection phase.
    pub theta: usize,
}

/// `ln C(n, k)` by summing logs (k ≤ a few thousand in practice).
fn ln_binomial(n: usize, k: usize) -> f64 {
    let k = k.min(n - k.min(n));
    (1..=k)
        .map(|i| ((n - k + i) as f64).ln() - (i as f64).ln())
        .sum()
}

/// Runs IMM on `view` and returns the selected seed set.
///
/// Panics if `k` is zero or exceeds the number of alive nodes.
pub fn imm_select<V: GraphView + Sync>(view: &V, cfg: ImmConfig) -> ImmResult {
    let n = view.num_alive();
    assert!(cfg.k >= 1, "k must be positive");
    assert!(cfg.k <= n, "k = {} exceeds alive nodes {n}", cfg.k);
    assert!(cfg.eps > 0.0 && cfg.eps < 1.0, "eps must be in (0,1)");
    let nf = n as f64;
    let k = cfg.k;
    // ℓ is boosted by ln 2 / ln n so the union bound over both phases holds
    // (IMM paper, remark after Theorem 1).
    let ell = cfg.ell + 2f64.ln() / nf.ln();

    let ln_nk = ln_binomial(n, k);
    let log2n = nf.log2().max(1.0);

    // ---- Phase 1: estimate a lower bound of OPT ----------------------------
    let eps_prime = 2f64.sqrt() * cfg.eps;
    // λ' = (2 + 2ε'/3)·(ln C(n,k) + ℓ ln n + ln log2 n)·n / ε'²  (IMM eq. 9)
    let lambda_prime = (2.0 + 2.0 * eps_prime / 3.0) * (ln_nk + ell * nf.ln() + log2n.ln()) * nf
        / (eps_prime * eps_prime);

    // One scratch + result pair reused across every halving round and the
    // final selection: the greedy loop allocates nothing after round one.
    let mut scratch = GreedyScratch::new();
    let mut g = GreedyResult::default();

    let mut lb = 1.0f64;
    let max_rounds = (log2n.ceil() as usize).max(1);
    for i in 1..max_rounds {
        let x = nf / 2f64.powi(i as i32);
        let theta_i = (lambda_prime / x).ceil() as usize;
        let c = generate_batch(view, theta_i, cfg.seed.wrapping_add(i as u64), cfg.threads);
        if c.is_empty() {
            break;
        }
        max_coverage_greedy_with(&c, k, None, &mut scratch, &mut g);
        let est = g.spread(&c);
        if est >= (1.0 + eps_prime) * x {
            lb = est / (1.0 + eps_prime);
            break;
        }
        if i == max_rounds - 1 {
            lb = est.max(1.0);
        }
    }

    // ---- Phase 2: final sampling and selection -----------------------------
    // α = √(ℓ ln n + ln 2), β = √((1−1/e)(ln C(n,k) + ℓ ln n + ln 2))
    let alpha = (ell * nf.ln() + 2f64.ln()).sqrt();
    let one_minus_inv_e = 1.0 - 1.0 / std::f64::consts::E;
    let beta = (one_minus_inv_e * (ln_nk + ell * nf.ln() + 2f64.ln())).sqrt();
    let lambda_star = 2.0 * nf * (one_minus_inv_e * alpha + beta).powi(2) / (cfg.eps * cfg.eps);
    let theta = (lambda_star / lb).ceil() as usize;

    let c = generate_batch(
        view,
        theta,
        cfg.seed.wrapping_mul(0x9E37).wrapping_add(77),
        cfg.threads,
    );
    max_coverage_greedy_with(&c, k, None, &mut scratch, &mut g);
    let est_spread = g.spread(&c);
    ImmResult {
        seeds: g.seeds,
        est_spread,
        theta: c.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpm_diffusion::exact_spread;
    use atpm_graph::{GraphBuilder, WeightingScheme};

    /// Star: hub 0 points at 1..=5 with p = 1.0; plus an isolated chain 6->7.
    fn star_plus_chain() -> atpm_graph::Graph {
        let mut b = GraphBuilder::new(8);
        for v in 1..=5 {
            b.add_edge(0, v, 1.0).unwrap();
        }
        b.add_edge(6, 7, 0.2).unwrap();
        b.build()
    }

    #[test]
    fn ln_binomial_is_accurate() {
        // C(10, 3) = 120.
        assert!((ln_binomial(10, 3) - 120f64.ln()).abs() < 1e-9);
        // C(n, 1) = n.
        assert!((ln_binomial(50, 1) - 50f64.ln()).abs() < 1e-9);
        // Symmetric.
        assert!((ln_binomial(20, 17) - ln_binomial(20, 3)).abs() < 1e-9);
    }

    #[test]
    fn imm_finds_the_hub() {
        let g = star_plus_chain();
        let r = imm_select(
            &&g,
            ImmConfig {
                k: 1,
                eps: 0.3,
                seed: 3,
                ..Default::default()
            },
        );
        assert_eq!(r.seeds, vec![0], "hub must win");
        // True spread of {0} is 6.
        assert!(
            (r.est_spread - 6.0).abs() < 0.5,
            "estimate {}",
            r.est_spread
        );
    }

    #[test]
    fn imm_k2_adds_the_secondary_source() {
        let g = star_plus_chain();
        let r = imm_select(
            &&g,
            ImmConfig {
                k: 2,
                eps: 0.3,
                seed: 4,
                ..Default::default()
            },
        );
        assert_eq!(r.seeds.len(), 2);
        assert!(r.seeds.contains(&0));
        assert!(
            r.seeds.contains(&6),
            "6 is the only other node with spread > 1"
        );
    }

    #[test]
    fn imm_spread_close_to_exact_greedy_value() {
        // Random small graph under WIC; compare IMM's seed-set spread with
        // the exhaustive best pair.
        let raw = atpm_graph::gen::erdos_renyi::gnm_directed(10, 14, 9);
        let g = WeightingScheme::WeightedCascade.apply(&raw);
        let r = imm_select(
            &&g,
            ImmConfig {
                k: 2,
                eps: 0.2,
                seed: 1,
                ..Default::default()
            },
        );
        let imm_spread = exact_spread(&&g, &r.seeds);

        let mut best = 0.0f64;
        for a in 0..10u32 {
            for b in (a + 1)..10u32 {
                best = best.max(exact_spread(&&g, &[a, b]));
            }
        }
        // (1 - 1/e - eps) ≈ 0.43 guarantee; empirically IMM is near-optimal.
        assert!(
            imm_spread >= 0.8 * best,
            "IMM pair spreads {imm_spread}, best pair {best}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let g = star_plus_chain();
        let cfg = ImmConfig {
            k: 2,
            eps: 0.4,
            seed: 11,
            ..Default::default()
        };
        let a = imm_select(&&g, cfg);
        let b = imm_select(&&g, cfg);
        assert_eq!(a.seeds, b.seeds);
        assert_eq!(a.theta, b.theta);
    }

    #[test]
    #[should_panic(expected = "exceeds alive")]
    fn rejects_k_larger_than_n() {
        let g = star_plus_chain();
        let _ = imm_select(
            &&g,
            ImmConfig {
                k: 9,
                ..Default::default()
            },
        );
    }
}
