//! Lazy (CELF) greedy maximum coverage over an RR-set collection —
//! decremental bucket-queue edition.
//!
//! Coverage is monotone submodular, so marginal gains only shrink as the
//! seed set grows; CELF exploits this by keeping stale gains in a priority
//! structure and re-evaluating only the top entry [Leskovec et al.,
//! KDD'07]. The pre-refactor implementation used a binary heap over *every*
//! node of the universe — on a 100k-node graph the O(n) tuple collect +
//! heapify dominated the entire selection (the k picks themselves touch only
//! a few hundred entries).
//!
//! This implementation replaces the heap with a **decremental bucket
//! queue**: gains are small integers, so node ids are binned by gain with a
//! comparison-free O(n) build (zero-gain nodes never enter), a cursor walks
//! buckets top-down, and a stale entry is *demoted* to its fresh bucket in
//! O(1) (gains only decrease, so the cursor never has to look up again).
//! Each node exists in exactly one bucket; only the buckets the cursor
//! actually reaches are ever sorted (for deterministic smallest-id
//! tie-breaking), and with power-law coverage those top buckets hold a
//! handful of entries — the huge low-gain tail is never touched.
//!
//! A full gain-cache variant (decrement every member of every newly covered
//! set through the inverted index, making stale checks O(1)) was measured
//! and rejected: its Σ|R|-bounded cache maintenance costs more than the few
//! rescans it saves on RIS workloads, where the average node sits in only
//! `Σ|R|/n` sets (see `BENCH_ris.json`; `ris_engine/greedy/*`).
//!
//! All working state lives in a reusable [`GreedyScratch`]; with a
//! caller-provided scratch and result the selection loop performs zero heap
//! allocation after warm-up (see `tests/alloc_discipline.rs`).
//!
//! The pre-refactor re-scanning binary-heap implementation is kept as
//! [`max_coverage_greedy_rescan`] — a test-only oracle proving the bucket
//! path returns byte-identical results (see `tests/properties.rs`) and the
//! baseline leg of the `ris_engine` micro-benchmarks.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use atpm_graph::Node;
use atpm_ris::workspace::EpochMarks;
use atpm_ris::RrCollection;

/// Result of a greedy max-coverage run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GreedyResult {
    /// Selected nodes in pick order.
    pub seeds: Vec<Node>,
    /// Number of RR sets covered by `seeds`.
    pub coverage: usize,
    /// Marginal coverage of each pick (same order as `seeds`).
    pub gains: Vec<usize>,
}

impl GreedyResult {
    /// Spread estimate of the selection: `n_alive · coverage / θ`.
    pub fn spread(&self, c: &RrCollection) -> f64 {
        c.scale(self.coverage)
    }

    fn clear(&mut self) {
        self.seeds.clear();
        self.gains.clear();
        self.coverage = 0;
    }
}

/// Reusable working state for [`max_coverage_greedy_with`]: covered flags
/// per set, candidate-dedup marks, and the gain buckets' backing storage.
/// Allocation settles after the first run at a given `(universe, θ, max
/// gain)` size.
#[derive(Debug, Default)]
pub struct GreedyScratch {
    covered: EpochMarks,
    active: EpochMarks,
    /// `buckets[g]` holds the ids whose last-known gain is `g`. Vectors keep
    /// their capacity across runs; `buckets_used` caps the reset loop.
    buckets: Vec<Vec<Node>>,
    buckets_used: usize,
}

impl GreedyScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        GreedyScratch::default()
    }

    fn reset_buckets(&mut self) {
        for b in &mut self.buckets[..self.buckets_used] {
            b.clear();
        }
        self.buckets_used = 0;
    }

    #[inline]
    fn bucket_push(&mut self, gain: usize, u: Node) {
        if self.buckets.len() <= gain {
            self.buckets.resize_with(gain + 1, Vec::new);
        }
        self.buckets[gain].push(u);
        self.buckets_used = self.buckets_used.max(gain + 1);
    }
}

/// Selects up to `k` nodes greedily maximizing RR-set coverage.
///
/// `candidates` restricts the selection universe (defaults to every node).
/// Nodes with zero marginal gain are never selected, so fewer than `k` seeds
/// can be returned when the collection is exhausted.
///
/// Convenience wrapper allocating fresh scratch and result; hot loops (IMM's
/// phase-1 rounds, repeated policy decisions) should hold a
/// [`GreedyScratch`] and call [`max_coverage_greedy_with`].
pub fn max_coverage_greedy(
    c: &RrCollection,
    k: usize,
    candidates: Option<&[Node]>,
) -> GreedyResult {
    let mut result = GreedyResult::default();
    max_coverage_greedy_with(c, k, candidates, &mut GreedyScratch::new(), &mut result);
    result
}

/// Decremental bucket-queue CELF into caller-provided buffers (`result` is
/// cleared first). Zero heap allocation once `scratch` and `result`
/// capacities have warmed up.
///
/// Output-identical to [`max_coverage_greedy_rescan`]: the commit at bucket
/// level `g` is always the smallest-id node whose fresh gain equals `g`,
/// which is exactly the binary heap's `(gain, Reverse(node))` maximum.
pub fn max_coverage_greedy_with(
    c: &RrCollection,
    k: usize,
    candidates: Option<&[Node]>,
    scratch: &mut GreedyScratch,
    result: &mut GreedyResult,
) {
    result.clear();
    if k == 0 || c.is_empty() {
        return;
    }
    scratch.covered.begin(c.len());
    scratch.reset_buckets();

    // Comparison-free build: bin every candidate by its initial gain (plain
    // coverage count). Zero-gain nodes can never be selected and never
    // enter; `active` dedups repeated candidates.
    let mut max_gain = 0usize;
    match candidates {
        Some(cs) => {
            scratch.active.begin(c.len_universe());
            for &u in cs {
                if scratch.active.mark(u as usize) {
                    let g = c.cov_node(u);
                    if g > 0 {
                        scratch.bucket_push(g, u);
                        max_gain = max_gain.max(g);
                    }
                }
            }
        }
        None => {
            for (u, g) in c.nonzero_cov_nodes() {
                scratch.bucket_push(g, u);
                max_gain = max_gain.max(g);
            }
        }
    }

    // Cursor walk, top bucket first. Gains only shrink, so a popped entry's
    // fresh gain is ≤ the cursor level: fresh hits commit, stale entries are
    // demoted to their fresh bucket in O(1) and the cursor never revisits
    // them at this level. Only buckets the cursor actually reaches are
    // sorted (deterministic smallest-id tie-breaking); with power-law
    // coverage the low-gain tail stays untouched.
    let mut cur = max_gain;
    'outer: while cur > 0 && result.seeds.len() < k {
        // Detach the bucket so demotions (always to lower levels) can push
        // freely; swapping back preserves its capacity for the next run.
        let mut bucket = std::mem::take(&mut scratch.buckets[cur]);
        bucket.sort_unstable();
        for &u in bucket.iter() {
            let fresh = c
                .sets_containing(u)
                .iter()
                .filter(|&&i| !scratch.covered.is_marked(i as usize))
                .count();
            if fresh == cur {
                // Fresh maximum: commit.
                for &i in c.sets_containing(u) {
                    scratch.covered.mark(i as usize);
                }
                result.coverage += fresh;
                result.seeds.push(u);
                result.gains.push(fresh);
                if result.seeds.len() == k {
                    // Undrained entries are cleared by the next run's reset.
                    scratch.buckets[cur] = bucket;
                    break 'outer;
                }
            } else if fresh > 0 {
                debug_assert!(fresh < cur, "gains only shrink");
                scratch.bucket_push(fresh, u);
            }
        }
        bucket.clear();
        scratch.buckets[cur] = bucket;
        cur -= 1;
    }
}

/// The pre-refactor lazy greedy: stale heap entries trigger an
/// O(|sets containing u|) coverage rescan.
///
/// Kept as the equivalence oracle for the decremental path (and as the
/// baseline leg of the `ris_engine` micro-benchmarks) — not for production
/// use.
#[doc(hidden)]
pub fn max_coverage_greedy_rescan(
    c: &RrCollection,
    k: usize,
    candidates: Option<&[Node]>,
) -> GreedyResult {
    let mut covered = vec![false; c.len()];
    let mut result = GreedyResult::default();
    if k == 0 || c.is_empty() {
        return result;
    }

    let mut heap: BinaryHeap<(usize, Reverse<Node>, usize)> = match candidates {
        Some(cs) => {
            let mut uniq: Vec<Node> = cs.to_vec();
            uniq.sort_unstable();
            uniq.dedup();
            uniq.into_iter()
                .map(|u| (c.cov_node(u), Reverse(u), 0))
                .collect()
        }
        None => (0..c.len_universe() as Node)
            .map(|u| (c.cov_node(u), Reverse(u), 0))
            .collect(),
    };

    let mut round = 0usize;
    while result.seeds.len() < k {
        let Some((gain, Reverse(u), evaluated_at)) = heap.pop() else {
            break;
        };
        if gain == 0 {
            break;
        }
        if evaluated_at == round {
            for &i in c.sets_containing(u) {
                covered[i as usize] = true;
            }
            result.coverage += gain;
            result.seeds.push(u);
            result.gains.push(gain);
            round += 1;
        } else {
            let fresh = c
                .sets_containing(u)
                .iter()
                .filter(|&&i| !covered[i as usize])
                .count();
            heap.push((fresh, Reverse(u), round));
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection() -> RrCollection {
        let mut c = RrCollection::new(6, 6);
        c.push(&[0, 1]);
        c.push(&[0, 2]);
        c.push(&[0, 3]);
        c.push(&[4]);
        c.push(&[4, 5]);
        c.push(&[5]);
        c.freeze();
        c
    }

    #[test]
    fn picks_best_cover_first() {
        let c = collection();
        let r = max_coverage_greedy(&c, 1, None);
        assert_eq!(r.seeds, vec![0]); // covers 3 sets
        assert_eq!(r.coverage, 3);
        assert_eq!(r.gains, vec![3]);
    }

    #[test]
    fn greedy_sequence_is_correct() {
        let c = collection();
        let r = max_coverage_greedy(&c, 3, None);
        // 0 covers {0,1,2}; 4 covers {3,4}; then 5 covers {5}.
        assert_eq!(r.seeds, vec![0, 4, 5]);
        assert_eq!(r.coverage, 6);
        assert_eq!(r.gains, vec![3, 2, 1]);
    }

    #[test]
    fn stops_at_zero_gain() {
        let c = collection();
        let r = max_coverage_greedy(&c, 6, None);
        assert_eq!(r.coverage, 6);
        assert!(r.seeds.len() <= 4, "no zero-gain picks: {:?}", r.seeds);
    }

    #[test]
    fn candidate_restriction_is_respected() {
        let c = collection();
        let r = max_coverage_greedy(&c, 2, Some(&[1, 2, 5]));
        assert!(r.seeds.iter().all(|u| [1, 2, 5].contains(u)));
        // Best restricted: any of 1/2 covers 1 set, 5 covers 2 sets.
        assert_eq!(r.seeds[0], 5);
    }

    #[test]
    fn duplicate_candidates_do_not_double_pick() {
        let c = collection();
        let r = max_coverage_greedy(&c, 3, Some(&[0, 0, 0]));
        assert_eq!(r.seeds, vec![0]);
    }

    #[test]
    fn scratch_reuse_across_runs_is_clean() {
        let c = collection();
        let mut scratch = GreedyScratch::new();
        let mut result = GreedyResult::default();
        max_coverage_greedy_with(&c, 3, None, &mut scratch, &mut result);
        let first = result.clone();
        // A different collection with the same scratch: no state leak.
        let mut c2 = RrCollection::new(4, 4);
        c2.push(&[1]);
        c2.push(&[1, 2]);
        c2.freeze();
        max_coverage_greedy_with(&c2, 2, None, &mut scratch, &mut result);
        assert_eq!(result.seeds, vec![1]);
        assert_eq!(result.coverage, 2);
        // And back: identical to the first run.
        max_coverage_greedy_with(&c, 3, None, &mut scratch, &mut result);
        assert_eq!(result, first);
    }

    #[test]
    fn decremental_matches_rescan_oracle_on_random_inputs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut scratch = GreedyScratch::new();
        let mut result = GreedyResult::default();
        for trial in 0..40 {
            let n = 12usize;
            let mut c = RrCollection::new(n, n);
            for _ in 0..40 {
                let size = rng.gen_range(1..5);
                let mut s: Vec<Node> = (0..size).map(|_| rng.gen_range(0..n as Node)).collect();
                s.sort_unstable();
                s.dedup();
                c.push(&s);
            }
            c.freeze();

            for k in [1usize, 2, 4, 8] {
                let oracle = max_coverage_greedy_rescan(&c, k, None);
                max_coverage_greedy_with(&c, k, None, &mut scratch, &mut result);
                assert_eq!(result.seeds, oracle.seeds, "trial {trial} k {k}");
                assert_eq!(result.gains, oracle.gains, "trial {trial} k {k}");
                assert_eq!(result.coverage, oracle.coverage, "trial {trial} k {k}");
            }
        }
    }

    #[test]
    fn matches_naive_greedy_on_random_inputs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let n = 12usize;
            let mut c = RrCollection::new(n, n);
            for _ in 0..40 {
                let size = rng.gen_range(1..5);
                let mut s: Vec<Node> = (0..size).map(|_| rng.gen_range(0..n as Node)).collect();
                s.sort_unstable();
                s.dedup();
                c.push(&s);
            }
            c.freeze();

            let lazy = max_coverage_greedy(&c, 4, None);

            // Naive reference.
            let mut covered = vec![false; c.len()];
            let mut naive_cov = 0usize;
            for _pick in 0..4 {
                let mut best = (0usize, Node::MAX);
                for u in 0..n as Node {
                    let g = c
                        .sets_containing(u)
                        .iter()
                        .filter(|&&i| !covered[i as usize])
                        .count();
                    if g > best.0 || (g == best.0 && u < best.1) {
                        best = (g, u);
                    }
                }
                if best.0 == 0 {
                    break;
                }
                for &i in c.sets_containing(best.1) {
                    covered[i as usize] = true;
                }
                naive_cov += best.0;
            }
            assert_eq!(lazy.coverage, naive_cov, "trial {trial}");
        }
    }

    #[test]
    fn empty_inputs() {
        let mut c = RrCollection::new(3, 3);
        c.freeze();
        let r = max_coverage_greedy(&c, 2, None);
        assert!(r.seeds.is_empty());
        let c2 = collection();
        let r2 = max_coverage_greedy(&c2, 0, None);
        assert!(r2.seeds.is_empty());
    }
}
