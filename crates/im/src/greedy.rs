//! Lazy (CELF) greedy maximum coverage over an RR-set collection.
//!
//! Coverage is monotone submodular, so marginal gains only shrink as the
//! seed set grows; CELF exploits this by keeping stale gains in a max-heap
//! and re-evaluating only the top entry [Leskovec et al., KDD'07]. The
//! output is identical to naive greedy, typically at a small fraction of the
//! evaluations.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use atpm_graph::Node;
use atpm_ris::RrCollection;

/// Result of a greedy max-coverage run.
#[derive(Debug, Clone)]
pub struct GreedyResult {
    /// Selected nodes in pick order.
    pub seeds: Vec<Node>,
    /// Number of RR sets covered by `seeds`.
    pub coverage: usize,
    /// Marginal coverage of each pick (same order as `seeds`).
    pub gains: Vec<usize>,
}

impl GreedyResult {
    /// Spread estimate of the selection: `n_alive · coverage / θ`.
    pub fn spread(&self, c: &RrCollection) -> f64 {
        c.scale(self.coverage)
    }
}

/// Selects up to `k` nodes greedily maximizing RR-set coverage.
///
/// `candidates` restricts the selection universe (defaults to every node).
/// Nodes with zero marginal gain are never selected, so fewer than `k` seeds
/// can be returned when the collection is exhausted.
pub fn max_coverage_greedy(
    c: &RrCollection,
    k: usize,
    candidates: Option<&[Node]>,
) -> GreedyResult {
    let mut covered = vec![false; c.len()];
    let mut result = GreedyResult { seeds: Vec::new(), coverage: 0, gains: Vec::new() };
    if k == 0 || c.is_empty() {
        return result;
    }

    // Heap of (gain, Reverse(node), round-evaluated). Reverse(node) makes
    // ties deterministic (smaller id wins), independent of heap internals.
    let mut heap: BinaryHeap<(usize, Reverse<Node>, usize)> = match candidates {
        Some(cs) => {
            let mut uniq: Vec<Node> = cs.to_vec();
            uniq.sort_unstable();
            uniq.dedup();
            uniq.into_iter()
                .map(|u| (c.cov_node(u), Reverse(u), 0))
                .collect()
        }
        None => (0..c.len_universe() as Node)
            .map(|u| (c.cov_node(u), Reverse(u), 0))
            .collect(),
    };

    let mut round = 0usize;
    while result.seeds.len() < k {
        let Some((gain, Reverse(u), evaluated_at)) = heap.pop() else {
            break;
        };
        if gain == 0 {
            break; // nothing useful remains
        }
        if evaluated_at == round {
            // Fresh gain: commit.
            for &i in c.sets_containing(u) {
                covered[i as usize] = true;
            }
            result.coverage += gain;
            result.seeds.push(u);
            result.gains.push(gain);
            round += 1;
        } else {
            // Stale: re-evaluate and push back.
            let fresh = c
                .sets_containing(u)
                .iter()
                .filter(|&&i| !covered[i as usize])
                .count();
            heap.push((fresh, Reverse(u), round));
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection() -> RrCollection {
        let mut c = RrCollection::new(6, 6);
        c.push(&[0, 1]);
        c.push(&[0, 2]);
        c.push(&[0, 3]);
        c.push(&[4]);
        c.push(&[4, 5]);
        c.push(&[5]);
        c.freeze();
        c
    }

    #[test]
    fn picks_best_cover_first() {
        let c = collection();
        let r = max_coverage_greedy(&c, 1, None);
        assert_eq!(r.seeds, vec![0]); // covers 3 sets
        assert_eq!(r.coverage, 3);
        assert_eq!(r.gains, vec![3]);
    }

    #[test]
    fn greedy_sequence_is_correct() {
        let c = collection();
        let r = max_coverage_greedy(&c, 3, None);
        // 0 covers {0,1,2}; 4 covers {3,4}; then 5 covers {5}.
        assert_eq!(r.seeds, vec![0, 4, 5]);
        assert_eq!(r.coverage, 6);
        assert_eq!(r.gains, vec![3, 2, 1]);
    }

    #[test]
    fn stops_at_zero_gain() {
        let c = collection();
        let r = max_coverage_greedy(&c, 6, None);
        assert_eq!(r.coverage, 6);
        assert!(r.seeds.len() <= 4, "no zero-gain picks: {:?}", r.seeds);
    }

    #[test]
    fn candidate_restriction_is_respected() {
        let c = collection();
        let r = max_coverage_greedy(&c, 2, Some(&[1, 2, 5]));
        assert!(r.seeds.iter().all(|u| [1, 2, 5].contains(u)));
        // Best restricted: any of 1/2 covers 1 set, 5 covers 2 sets.
        assert_eq!(r.seeds[0], 5);
    }

    #[test]
    fn duplicate_candidates_do_not_double_pick() {
        let c = collection();
        let r = max_coverage_greedy(&c, 3, Some(&[0, 0, 0]));
        assert_eq!(r.seeds, vec![0]);
    }

    #[test]
    fn matches_naive_greedy_on_random_inputs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let n = 12usize;
            let mut c = RrCollection::new(n, n);
            for _ in 0..40 {
                let size = rng.gen_range(1..5);
                let mut s: Vec<Node> =
                    (0..size).map(|_| rng.gen_range(0..n as Node)).collect();
                s.sort_unstable();
                s.dedup();
                c.push(&s);
            }
            c.freeze();

            let lazy = max_coverage_greedy(&c, 4, None);

            // Naive reference.
            let mut covered = vec![false; c.len()];
            let mut naive_cov = 0usize;
            for _pick in 0..4 {
                let mut best = (0usize, Node::MAX);
                for u in 0..n as Node {
                    let g = c
                        .sets_containing(u)
                        .iter()
                        .filter(|&&i| !covered[i as usize])
                        .count();
                    if g > best.0 || (g == best.0 && u < best.1) {
                        best = (g, u);
                    }
                }
                if best.0 == 0 {
                    break;
                }
                for &i in c.sets_containing(best.1) {
                    covered[i as usize] = true;
                }
                naive_cov += best.0;
            }
            assert_eq!(lazy.coverage, naive_cov, "trial {trial}");
        }
    }

    #[test]
    fn empty_inputs() {
        let mut c = RrCollection::new(3, 3);
        c.freeze();
        let r = max_coverage_greedy(&c, 2, None);
        assert!(r.seeds.is_empty());
        let c2 = collection();
        let r2 = max_coverage_greedy(&c2, 0, None);
        assert!(r2.seeds.is_empty());
    }
}
