//! High-probability lower bounds on a given set's expected spread.
//!
//! The cost-calibration of §VI-A sets `c(T) = E_l[I(T)]` where `E_l` is a
//! lower bound on the target set's spread — using a lower bound (rather than
//! the point estimate) makes the baseline profit `ρ(T) ≈ E[I(T)] − c(T)`
//! nonnegative with high probability, which the problem definition requires.

use atpm_graph::{GraphView, Node};
use atpm_ris::bounds::coverage_lower_bound;
use atpm_ris::sampler::generate_batch;

/// Returns a `1 − delta` lower bound on `E[I(set)]` using `theta` RR sets.
///
/// Deterministic in `(view, set, theta, delta, seed, threads)`.
pub fn spread_lower_bound<V: GraphView + Sync>(
    view: &V,
    set: &[Node],
    theta: usize,
    delta: f64,
    seed: u64,
    threads: usize,
) -> f64 {
    let c = generate_batch(view, theta, seed, threads);
    if c.is_empty() {
        return 0.0;
    }
    let cov = c.cov_set(set) as u64;
    let frac = coverage_lower_bound(cov, c.len() as u64, delta);
    c.n_alive() as f64 * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use atpm_diffusion::exact_spread;
    use atpm_graph::GraphBuilder;

    fn chain(p: f32) -> atpm_graph::Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, p).unwrap();
        b.add_edge(1, 2, p).unwrap();
        b.build()
    }

    #[test]
    fn lower_bound_is_below_truth_and_tight() {
        let g = chain(0.5);
        let truth = exact_spread(&&g, &[0]); // 1.75
        let lb = spread_lower_bound(&&g, &[0], 100_000, 0.001, 1, 2);
        assert!(lb <= truth + 1e-9, "LB {lb} exceeds truth {truth}");
        assert!(lb > truth * 0.9, "LB {lb} too loose vs {truth}");
    }

    #[test]
    fn lower_bound_grows_with_more_samples() {
        let g = chain(0.5);
        let loose = spread_lower_bound(&&g, &[0], 500, 0.001, 2, 1);
        let tight = spread_lower_bound(&&g, &[0], 50_000, 0.001, 2, 1);
        assert!(tight >= loose, "tight {tight} < loose {loose}");
    }

    #[test]
    fn empty_set_has_zero_bound() {
        let g = chain(0.5);
        let lb = spread_lower_bound(&&g, &[], 1000, 0.01, 3, 1);
        assert_eq!(lb, 0.0);
    }
}
