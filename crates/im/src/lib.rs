//! # atpm-im
//!
//! Influence maximization substrate.
//!
//! The paper needs classical (cardinality-constrained, monotone) influence
//! maximization in one place: picking the target set `T` as the top-`k`
//! influential users with "one of the state of the arts \[28\]" — IMM
//! [Tang–Shi–Xiao, SIGMOD'15]. This crate provides:
//!
//! * [`greedy`] — decremental bucket-queue lazy (CELF) greedy maximum
//!   coverage over an [`RrCollection`](atpm_ris::RrCollection), the
//!   selection core shared by IMM and by the NSG baseline — gains are
//!   binned comparison-free, stale entries demote between buckets in O(1)
//!   (their fresh gain is recounted through the inverted index on pop),
//!   and a reusable [`GreedyScratch`] makes the selection loop
//!   allocation-free after warm-up;
//! * [`imm`] — the two-phase IMM algorithm (parameter estimation + node
//!   selection) with the standard `(1 − 1/e − ε)` guarantee;
//! * [`bound`] — high-probability lower bounds on a *given* set's spread,
//!   used by the cost-calibration procedure of §VI-A (`c(T) = E_l[I(T)]`).

pub mod bound;
pub mod greedy;
pub mod imm;

pub use bound::spread_lower_bound;
pub use greedy::{max_coverage_greedy, max_coverage_greedy_with, GreedyResult, GreedyScratch};
pub use imm::{imm_select, ImmConfig, ImmResult};
