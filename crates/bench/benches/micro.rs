//! Criterion micro-benchmarks for the performance-critical components:
//! RR-set generation (serial and parallel), coverage queries, realization
//! hashing, forward cascades, and one end-to-end policy decision per
//! algorithm family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use atpm_core::policies::{Adg, Hatp, Ndg, Nsg};
use atpm_core::oracle::McOracle;
use atpm_core::runner::{evaluate_adaptive, evaluate_nonadaptive};
use atpm_core::setup::{calibrated_instance, CalibrationConfig};
use atpm_core::CostSplit;
use atpm_diffusion::{CascadeEngine, HashedRealization, MaterializedRealization, Realization};
use atpm_graph::gen::Dataset;
use atpm_ris::sampler::generate_batch;
use atpm_ris::{NodeSet, RrSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_rr_generation(c: &mut Criterion) {
    let g = Dataset::Epinions.generate(0.05, 1); // ~6.6K nodes
    let mut group = c.benchmark_group("rr_generation");
    group.sample_size(20);
    let count = 20_000usize;
    group.throughput(Throughput::Elements(count as u64));
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("batch", threads),
            &threads,
            |b, &threads| {
                b.iter(|| generate_batch(&&g, count, 7, threads));
            },
        );
    }
    group.finish();
}

fn bench_rr_single(c: &mut Criterion) {
    let g = Dataset::NetHept.generate(0.2, 2);
    c.bench_function("rr_single_set", |b| {
        let mut sampler = RrSampler::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = Vec::new();
        b.iter(|| {
            sampler.sample_into(&&g, &mut rng, &mut buf);
            buf.len()
        });
    });
}

fn bench_coverage_queries(c: &mut Criterion) {
    let g = Dataset::NetHept.generate(0.2, 3);
    let batch = generate_batch(&&g, 100_000, 5, 4);
    let seeds: Vec<u32> = (0..50).collect();
    c.bench_function("coverage_cov_set_50", |b| {
        b.iter(|| batch.cov_set(&seeds));
    });
    let cond = NodeSet::from_iter(g.num_nodes(), (0..20).map(|i| i * 3));
    c.bench_function("coverage_marginal", |b| {
        b.iter(|| batch.cov_marginal(0, &cond));
    });
}

fn bench_realizations(c: &mut Criterion) {
    let g = Dataset::NetHept.generate(0.2, 4);
    let hashed = HashedRealization::new(9);
    c.bench_function("realization_hash_coin", |b| {
        let mut e = 0u32;
        b.iter(|| {
            e = e.wrapping_add(1) % g.num_edges() as u32;
            hashed.is_live(e, 0.3)
        });
    });
    c.bench_function("realization_materialize", |b| {
        b.iter(|| MaterializedRealization::materialize(&g, &hashed));
    });
}

fn bench_cascade(c: &mut Criterion) {
    let g = Dataset::NetHept.generate(0.2, 5);
    let real = HashedRealization::new(11);
    let mut engine = CascadeEngine::new();
    let seeds: Vec<u32> = (0..10).collect();
    c.bench_function("cascade_observe_10_seeds", |b| {
        b.iter(|| engine.observe(&&g, &real, &seeds).len());
    });
}

fn bench_policies(c: &mut Criterion) {
    // One small calibrated instance shared across policy benches.
    let graph = Dataset::NetHept.generate(0.05, 6); // ~760 nodes
    let inst = calibrated_instance(
        graph,
        8,
        CostSplit::Uniform,
        CalibrationConfig { lb_theta: 30_000, seed: 6, threads: 4, ..Default::default() },
    );
    let worlds = [1u64, 2];
    let mut group = c.benchmark_group("policies");
    group.sample_size(10);
    group.bench_function("hatp_2_worlds", |b| {
        b.iter(|| {
            let mut p = Hatp { seed: 1, threads: 4, ..Default::default() };
            evaluate_adaptive(&inst, &mut p, &worlds).mean_profit()
        });
    });
    group.bench_function("adg_mc_oracle_2_worlds", |b| {
        b.iter(|| {
            let mut p = Adg::new(McOracle::new(2_000, 1));
            evaluate_adaptive(&inst, &mut p, &worlds).mean_profit()
        });
    });
    group.bench_function("nsg_select", |b| {
        b.iter(|| {
            let mut p = Nsg::new(50_000, 1, 4);
            evaluate_nonadaptive(&inst, &mut p, &worlds).mean_profit()
        });
    });
    group.bench_function("ndg_select", |b| {
        b.iter(|| {
            let mut p = Ndg::new(50_000, 1, 4);
            evaluate_nonadaptive(&inst, &mut p, &worlds).mean_profit()
        });
    });
    group.finish();
}

fn bench_graph_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.bench_function("nethept_preset_s0.2", |b| {
        b.iter(|| Dataset::NetHept.generate(0.2, 1).num_edges());
    });
    group.bench_function("epinions_preset_s0.05", |b| {
        b.iter(|| Dataset::Epinions.generate(0.05, 1).num_edges());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rr_generation,
    bench_rr_single,
    bench_coverage_queries,
    bench_realizations,
    bench_cascade,
    bench_policies,
    bench_graph_generation,
);
criterion_main!(benches);
