//! Criterion micro-benchmarks for the performance-critical components:
//! RR-set generation (serial and parallel), coverage queries, realization
//! hashing, forward cascades, and one end-to-end policy decision per
//! algorithm family.
//!
//! The `ris_engine` group is the performance contract of the RIS refactor:
//! each stage of the sampling → coverage → greedy pipeline is benchmarked
//! against its pre-refactor implementation (re-push merge, allocating
//! coverage, re-scanning CELF) on a 100k-node preset graph. Run with
//!
//! ```text
//! ATPM_BENCH_JSON=$PWD/BENCH_ris.json cargo bench -p atpm-bench --bench micro -- ris_engine
//! ```
//!
//! (from the repo root) to refresh the committed `BENCH_ris.json`
//! trajectory — the path must be absolute because cargo runs bench
//! binaries with the package directory as CWD.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use atpm_core::oracle::McOracle;
use atpm_core::policies::{Adg, Hatp, Ndg, Nsg};
use atpm_core::runner::{evaluate_adaptive, evaluate_nonadaptive};
use atpm_core::setup::{calibrated_instance, CalibrationConfig};
use atpm_core::CostSplit;
use atpm_diffusion::{
    mc_spread_batched, CascadeEngine, HashedRealization, MaterializedRealization, Realization,
};
use atpm_graph::gen::Dataset;
use atpm_graph::GraphView;
use atpm_im::greedy::max_coverage_greedy_rescan;
use atpm_im::{max_coverage_greedy_with, GreedyResult, GreedyScratch};
use atpm_ris::sampler::generate_batch;
use atpm_ris::workspace::run_sharded;
use atpm_ris::{CounterRng, CoverageScratch, NodeSet, RrCollection, RrSampler, RrShard};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The pre-refactor `generate_batch`: per-coin `f32` sampling from a serial
/// `StdRng`, worker parts stored as collections, merged by re-pushing every
/// set through the un-frozen API. Baseline leg of
/// `ris_engine/generate_batch`.
fn generate_batch_repush<V: GraphView + Sync>(
    view: &V,
    count: usize,
    seed: u64,
    threads: usize,
) -> RrCollection {
    let parts: Vec<RrCollection> = run_sharded(count, threads, seed, |_tid, quota, wseed| {
        let mut local = RrCollection::new(view.num_nodes(), view.num_alive());
        let mut sampler = RrSampler::new();
        let mut rng = StdRng::seed_from_u64(wseed);
        let mut buf = Vec::new();
        for _ in 0..quota {
            if !sampler.sample_into_percoin(view, &mut rng, &mut buf) {
                break;
            }
            local.push(&buf);
        }
        local
    });
    let mut merged = RrCollection::new(view.num_nodes(), view.num_alive());
    for part in &parts {
        for i in 0..part.len() {
            merged.push(part.set(i));
        }
    }
    merged.freeze();
    merged
}

/// The pre-refactor allocating coverage query: fresh `vec![false; θ]` per
/// call. Baseline leg of `ris_engine/cov_set`.
fn cov_set_alloc_baseline(c: &RrCollection, s: &[u32]) -> usize {
    let mut hit = vec![false; c.len()];
    let mut total = 0usize;
    for &u in s {
        for &i in c.sets_containing(u) {
            if !hit[i as usize] {
                hit[i as usize] = true;
                total += 1;
            }
        }
    }
    total
}

fn bench_ris_engine(c: &mut Criterion) {
    // The acceptance-criteria graph: a 100k-node preset (Epinions scaled).
    let g = Dataset::Epinions.generate(0.76, 42);
    assert!(
        g.num_nodes() >= 100_000,
        "preset too small: {}",
        g.num_nodes()
    );
    let mut group = c.benchmark_group("ris_engine");
    group.sample_size(10);

    // ---- stage 1: batch generation, 4 workers ------------------------------
    let count = 20_000usize;
    group.throughput(Throughput::Elements(count as u64));
    group.bench_function("generate_batch/sharded_4t", |b| {
        b.iter(|| generate_batch(&&g, count, 7, 4));
    });
    group.bench_function("generate_batch/repush_4t", |b| {
        b.iter(|| generate_batch_repush(&&g, count, 7, 4));
    });

    // ---- stage 1a: the reverse-BFS inner loop in isolation ------------------
    // Single-threaded sampling of `sample_count` sets, one leg per coin
    // mechanism: the retained per-coin f32 oracle, the integer-threshold
    // compare (skip disabled), and the full geometric-skip fast path. The
    // preset is pure weighted cascade, so every eligible in-neighborhood
    // skips in the third leg.
    let sample_count = 5_000usize;
    group.throughput(Throughput::Elements(sample_count as u64));
    group.bench_function("sample/percoin", |b| {
        let mut sampler = RrSampler::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = Vec::new();
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..sample_count {
                sampler.sample_into_percoin(&&g, &mut rng, &mut buf);
                total += buf.len();
            }
            total
        });
    });
    group.bench_function("sample/threshold", |b| {
        let mut sampler = RrSampler::new();
        let mut rng = CounterRng::new(3);
        let mut buf = Vec::new();
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..sample_count {
                sampler.sample_into_threshold(&&g, &mut rng, &mut buf);
                total += buf.len();
            }
            total
        });
    });
    group.bench_function("sample/skip", |b| {
        let mut sampler = RrSampler::new();
        let mut rng = CounterRng::new(3);
        let mut buf = Vec::new();
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..sample_count {
                sampler.sample_into(&&g, &mut rng, &mut buf);
                total += buf.len();
            }
            total
        });
    });

    // ---- stage 1a': raw RNG refill throughput -------------------------------
    // 64k u32 coins per iteration: the batched counter refill against the
    // serial xoshiro stream it replaced.
    let draws = 65_536usize;
    group.throughput(Throughput::Elements(draws as u64));
    group.bench_function("sample_rng/counter_refill", |b| {
        let mut rng = CounterRng::new(7);
        b.iter(|| {
            let mut acc = 0u32;
            for _ in 0..draws {
                acc = acc.wrapping_add(rng.next_u32());
            }
            acc
        });
    });
    group.bench_function("sample_rng/stdrng", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        b.iter(|| {
            let mut acc = 0u32;
            for _ in 0..draws {
                acc = acc.wrapping_add(rng.next_u32());
            }
            acc
        });
    });

    // ---- stage 1c: forward cascades (the MC spread oracle's inner loop) ----
    // Constant-weight rebake of the same 100k-node preset: every
    // out-neighborhood is uniform, so hubs run the forward geometric skip
    // the way WC in-neighborhoods run the reverse one. Seeds are the top
    // out-degree hubs — the IM-shaped seed sets forward simulation scores
    // in practice. One leg per coin mechanism, mirroring the sample/*
    // stages: the retained per-coin walk (fresh draw per out-edge, StdRng),
    // the integer-threshold compare (skip disabled), and the full
    // geometric-skip fast path (both on the buffered counter RNG).
    let gc = g.map_probs(|_, _, _| 0.05);
    let mut hubs: Vec<u32> = (0..gc.num_nodes() as u32).collect();
    hubs.sort_unstable_by_key(|&v| std::cmp::Reverse(gc.out_degree(v)));
    hubs.truncate(50);
    // Sized so one batch lands well under the group's measurement budget
    // (hub-seeded cascades on the 100k preset run ~150µs each).
    let cascades = 250usize;
    group.throughput(Throughput::Elements(cascades as u64));
    group.bench_function("cascade_percoin", |b| {
        let mut engine = CascadeEngine::new();
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..cascades {
                total += engine.random_cascade_percoin(&&gc, &hubs, &mut rng);
            }
            total
        });
    });
    group.bench_function("cascade_threshold", |b| {
        let mut engine = CascadeEngine::new();
        let mut rng = CounterRng::new(3);
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..cascades {
                total += engine.random_cascade_threshold(&&gc, &hubs, &mut rng);
            }
            total
        });
    });
    group.bench_function("cascade_skip", |b| {
        let mut engine = CascadeEngine::new();
        let mut rng = CounterRng::new(3);
        b.iter(|| {
            let mut total = 0usize;
            for _ in 0..cascades {
                total += engine.random_cascade(&&gc, &hubs, &mut rng);
            }
            total
        });
    });
    // The end-to-end batched driver (4 deterministic counter streams, same
    // fan-out as generate_batch/sharded_4t); gated by
    // tools/bench_regression.py alongside generate_batch.
    group.bench_function("cascade_mc_spread", |b| {
        b.iter(|| mc_spread_batched(&&gc, &hubs, cascades, 7, 4));
    });
    group.throughput(Throughput::Elements(count as u64));

    // ---- stage 1b: the merge in isolation (same pre-sampled sets) ----------
    let shards: Vec<RrShard> = run_sharded(count, 4, 7, |_tid, quota, wseed| {
        let mut shard = RrShard::new();
        let mut sampler = RrSampler::new();
        let mut rng = StdRng::seed_from_u64(wseed);
        let mut buf = Vec::new();
        for _ in 0..quota {
            if !sampler.sample_into(&&g, &mut rng, &mut buf) {
                break;
            }
            shard.push(&buf);
        }
        shard
    });
    let parts: Vec<Vec<Vec<u32>>> = run_sharded(count, 4, 7, |_tid, quota, wseed| {
        let mut local = Vec::new();
        let mut sampler = RrSampler::new();
        let mut rng = StdRng::seed_from_u64(wseed);
        let mut buf = Vec::new();
        for _ in 0..quota {
            if !sampler.sample_into(&&g, &mut rng, &mut buf) {
                break;
            }
            local.push(buf.clone());
        }
        local
    });
    let (total_sets, total_members) = shards
        .iter()
        .fold((0, 0), |(s, m), sh| (s + sh.len(), m + sh.total_members()));
    group.bench_function("merge/bulk_absorb", |b| {
        b.iter(|| {
            let mut merged = RrCollection::with_capacity(
                g.num_nodes(),
                g.num_alive(),
                total_sets,
                total_members,
            );
            for shard in &shards {
                merged.absorb_shard(shard);
            }
            merged.freeze_parallel(4);
            merged.len()
        });
    });
    group.bench_function("merge/per_set_repush", |b| {
        b.iter(|| {
            let mut merged = RrCollection::new(g.num_nodes(), g.num_alive());
            for part in &parts {
                for set in part {
                    merged.push(set);
                }
            }
            merged.freeze();
            merged.len()
        });
    });
    // Fan-in isolated from the (shared) index build: this is the stage the
    // sharded refactor actually rewrote.
    group.bench_function("merge_nofreeze/bulk_absorb", |b| {
        b.iter(|| {
            let mut merged = RrCollection::with_capacity(
                g.num_nodes(),
                g.num_alive(),
                total_sets,
                total_members,
            );
            for shard in &shards {
                merged.absorb_shard(shard);
            }
            merged.len()
        });
    });
    group.bench_function("merge_nofreeze/per_set_repush", |b| {
        b.iter(|| {
            let mut merged = RrCollection::new(g.num_nodes(), g.num_alive());
            for part in &parts {
                for set in part {
                    merged.push(set);
                }
            }
            merged.len()
        });
    });

    // ---- stage 2: coverage queries -----------------------------------------
    let batch = generate_batch(&&g, 100_000, 5, 4);
    let seeds: Vec<u32> = (0..50).collect();
    let mut scratch = CoverageScratch::with_theta(batch.len());
    group.bench_function("cov_set/scratch", |b| {
        b.iter(|| batch.cov_set_with(&seeds, &mut scratch));
    });
    group.bench_function("cov_set/alloc_baseline", |b| {
        b.iter(|| cov_set_alloc_baseline(&batch, &seeds));
    });

    let nodes: Vec<u32> = (0..2000u32)
        .map(|i| (i * 37) % g.num_nodes() as u32)
        .collect();
    let cond = NodeSet::from_iter(g.num_nodes(), (0..200u32).map(|i| i * 41));
    let mut out = Vec::new();
    group.bench_function("cov_marginal/batched", |b| {
        b.iter(|| {
            batch.cov_nodes_into(&nodes, Some(&cond), &mut scratch, &mut out);
            out.len()
        });
    });
    group.bench_function("cov_marginal/per_node", |b| {
        b.iter(|| {
            nodes
                .iter()
                .map(|&u| batch.cov_marginal(u, &cond))
                .sum::<usize>()
        });
    });

    // ---- stage 3: greedy selection -----------------------------------------
    let k = 100usize;
    let mut gscratch = GreedyScratch::new();
    let mut gresult = GreedyResult::default();
    group.bench_function("greedy/decremental", |b| {
        b.iter(|| {
            max_coverage_greedy_with(&batch, k, None, &mut gscratch, &mut gresult);
            gresult.coverage
        });
    });
    group.bench_function("greedy/rescan_baseline", |b| {
        b.iter(|| max_coverage_greedy_rescan(&batch, k, None).coverage);
    });
    group.finish();
}

fn bench_rr_generation(c: &mut Criterion) {
    let g = Dataset::Epinions.generate(0.05, 1); // ~6.6K nodes
    let mut group = c.benchmark_group("rr_generation");
    group.sample_size(20);
    let count = 20_000usize;
    group.throughput(Throughput::Elements(count as u64));
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("batch", threads),
            &threads,
            |b, &threads| {
                b.iter(|| generate_batch(&&g, count, 7, threads));
            },
        );
    }
    group.finish();
}

fn bench_rr_single(c: &mut Criterion) {
    let g = Dataset::NetHept.generate(0.2, 2);
    c.bench_function("rr_single_set", |b| {
        let mut sampler = RrSampler::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = Vec::new();
        b.iter(|| {
            sampler.sample_into(&&g, &mut rng, &mut buf);
            buf.len()
        });
    });
}

fn bench_coverage_queries(c: &mut Criterion) {
    let g = Dataset::NetHept.generate(0.2, 3);
    let batch = generate_batch(&&g, 100_000, 5, 4);
    let seeds: Vec<u32> = (0..50).collect();
    c.bench_function("coverage_cov_set_50", |b| {
        b.iter(|| batch.cov_set(&seeds));
    });
    let cond = NodeSet::from_iter(g.num_nodes(), (0..20).map(|i| i * 3));
    c.bench_function("coverage_marginal", |b| {
        b.iter(|| batch.cov_marginal(0, &cond));
    });
}

fn bench_realizations(c: &mut Criterion) {
    let g = Dataset::NetHept.generate(0.2, 4);
    let hashed = HashedRealization::new(9);
    c.bench_function("realization_hash_coin", |b| {
        let mut e = 0u32;
        b.iter(|| {
            e = e.wrapping_add(1) % g.num_edges() as u32;
            hashed.is_live(e, 0.3)
        });
    });
    c.bench_function("realization_materialize", |b| {
        b.iter(|| MaterializedRealization::materialize(&g, &hashed));
    });
}

fn bench_cascade(c: &mut Criterion) {
    let g = Dataset::NetHept.generate(0.2, 5);
    let real = HashedRealization::new(11);
    let mut engine = CascadeEngine::new();
    let seeds: Vec<u32> = (0..10).collect();
    c.bench_function("cascade_observe_10_seeds", |b| {
        b.iter(|| engine.observe(&&g, &real, &seeds).len());
    });
}

fn bench_policies(c: &mut Criterion) {
    // One small calibrated instance shared across policy benches.
    let graph = Dataset::NetHept.generate(0.05, 6); // ~760 nodes
    let inst = calibrated_instance(
        graph,
        8,
        CostSplit::Uniform,
        CalibrationConfig {
            lb_theta: 30_000,
            seed: 6,
            threads: 4,
            ..Default::default()
        },
    );
    let worlds = [1u64, 2];
    let mut group = c.benchmark_group("policies");
    group.sample_size(10);
    group.bench_function("hatp_2_worlds", |b| {
        b.iter(|| {
            let mut p = Hatp {
                seed: 1,
                threads: 4,
                ..Default::default()
            };
            evaluate_adaptive(&inst, &mut p, &worlds).mean_profit()
        });
    });
    group.bench_function("adg_mc_oracle_2_worlds", |b| {
        b.iter(|| {
            let mut p = Adg::new(McOracle::new(2_000, 1));
            evaluate_adaptive(&inst, &mut p, &worlds).mean_profit()
        });
    });
    group.bench_function("nsg_select", |b| {
        b.iter(|| {
            let mut p = Nsg::new(50_000, 1, 4);
            evaluate_nonadaptive(&inst, &mut p, &worlds).mean_profit()
        });
    });
    group.bench_function("ndg_select", |b| {
        b.iter(|| {
            let mut p = Ndg::new(50_000, 1, 4);
            evaluate_nonadaptive(&inst, &mut p, &worlds).mean_profit()
        });
    });
    group.finish();
}

fn bench_graph_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.bench_function("nethept_preset_s0.2", |b| {
        b.iter(|| Dataset::NetHept.generate(0.2, 1).num_edges());
    });
    group.bench_function("epinions_preset_s0.05", |b| {
        b.iter(|| Dataset::Epinions.generate(0.05, 1).num_edges());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ris_engine,
    bench_rr_generation,
    bench_rr_single,
    bench_coverage_queries,
    bench_realizations,
    bench_cascade,
    bench_policies,
    bench_graph_generation,
);
criterion_main!(benches);
