//! `atpm-loadgen` — hammer an `atpm-serve` instance over loopback and
//! report throughput + latency percentiles per concurrency level.
//!
//! ```text
//! cargo run -p atpm-bench --release --bin atpm-loadgen -- [flags]
//!
//! flags: --quick                smoke configuration (CI serve-smoke job)
//!        --addr HOST:PORT       drive an external server (default: boot one)
//!        --backend epoll|pool   self-booted server transport (default epoll)
//!        --boot-workers N       self-booted worker threads
//!                               (default: 4 for epoll; max level + 1 for pool)
//!        --levels a,b,c         concurrent-session levels   (default 1,2,4)
//!        --sessions N           sessions per level          (default 16)
//!        --rate R               ALSO run open-loop: R session arrivals/s
//!        --open-sessions N      open-loop total arrivals    (default 48)
//!        --open-workers N       open-loop client threads    (default 16)
//!        --mix p=w,p=w          session mix                 (default hatp=1,ars=2,deploy_all=3;
//!                               policies: hatp | ars | deploy_all | threshold_batch)
//!        --batch-size a,b       seeds per round trip; each size is its own
//!                               closed-loop measurement (default 1; sizes > 1
//!                               drive the batched next_batch/observe_batch verbs)
//!        --crash-every N        ALSO run the crash-restart drill: kill -9 a
//!                               journaling atpm-served child every N
//!                               completed sessions; hard-fail unless every
//!                               acked session recovers bit-equal
//!        --scale F --k N --rr-theta N --seed S    snapshot knobs
//!        --json PATH            report file (default BENCH_serve.json); --no-json
//! ```

use atpm_bench::loadgen::{render, run, LoadgenConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match LoadgenConfig::parse(&args) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: atpm-loadgen [--quick] [--addr HOST:PORT] [--backend epoll|pool] \
                 [--boot-workers N] [--levels a,b,c] [--sessions N] [--rate R] \
                 [--open-sessions N] [--open-workers N] [--mix p=w,...] \
                 [--batch-size a,b] [--crash-every N] [--scale F] [--k N] [--rr-theta N] \
                 [--seed S] [--json PATH | --no-json]"
            );
            std::process::exit(2);
        }
    };
    eprintln!(
        "# loadgen: levels={:?} sessions/level={} rate={:?} mix={:?} batch={:?} scale={} k={} target={}",
        cfg.levels,
        cfg.sessions_per_level,
        cfg.rate,
        cfg.mix,
        cfg.batch_sizes,
        cfg.scale,
        cfg.k,
        match &cfg.addr {
            Some(a) => a.clone(),
            None => format!("(self-booted {} server)", cfg.backend.as_str()),
        },
    );
    let t0 = std::time::Instant::now();
    match run(&cfg) {
        Ok(reports) => {
            print!("{}", render(&reports));
            if let Some(path) = &cfg.json_path {
                eprintln!("# wrote {path}");
            }
            eprintln!("# total wall-clock: {:.1?}", t0.elapsed());
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
