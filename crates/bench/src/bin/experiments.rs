//! `experiments` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run -p atpm-bench --release --bin experiments -- <subcommand> [flags]
//!
//! subcommands: table2 fig2 fig3 fig4a fig4b fig5 fig6 fig7 fig8 fig9 ablation all
//! flags:       --paper | --quick | --scale F | --worlds N | --k a,b,c
//!              --threads N | --max-threads N | --seed S | --no-addatp
//!              --graph PATH (external edge-list/ATPMGRF1 file instead of presets)
//! ```

use atpm_bench::config::ExpConfig;
use atpm_bench::runs;
use atpm_core::setup::TargetSelector;
use atpm_core::CostSplit;
use atpm_graph::gen::Dataset;

fn usage() -> ! {
    eprintln!(
        "usage: experiments <table2|fig2|fig3|fig4a|fig4b|fig5|fig6|fig7|fig8|fig9|ablation|all> \
         [--paper] [--quick] [--scale F] [--worlds N] [--k a,b,c] [--threads N] \
         [--max-threads N] [--seed S] [--no-addatp] [--graph PATH]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let cfg = match ExpConfig::parse(&args[1..]) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
        }
    };
    eprintln!(
        "# config: paper={} worlds={} k={:?} threads={} seed={} scale_mult={}",
        cfg.paper, cfg.worlds, cfg.k_grid, cfg.threads, cfg.seed, cfg.scale_mult
    );
    // Validate an external graph up front so a bad path fails fast with a
    // clean message instead of mid-run.
    if let Some(path) = &cfg.graph_path {
        match cfg.load_graph_override() {
            Ok(Some(g)) => eprintln!(
                "# external graph {path}: n={} m={} (replaces preset generation; grids run one dataset slot)",
                g.num_nodes(),
                g.num_edges()
            ),
            Ok(None) => unreachable!(),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    let t0 = std::time::Instant::now();
    match cmd.as_str() {
        "table2" => print!("{}", runs::table2(&cfg)),
        "fig2" | "fig5" => {
            let res = runs::profit_grid(&cfg, CostSplit::DegreeProportional, cfg.datasets());
            print!(
                "{}",
                runs::render_profit(&res, "Fig. 2 (degree-proportional cost)")
            );
            print!(
                "{}",
                runs::render_time(&res, "Fig. 5 (degree-proportional cost)")
            );
        }
        "fig3" | "fig6" => {
            let res = runs::profit_grid(&cfg, CostSplit::Uniform, cfg.datasets());
            print!("{}", runs::render_profit(&res, "Fig. 3 (uniform cost)"));
            print!("{}", runs::render_time(&res, "Fig. 6 (uniform cost)"));
        }
        "fig4a" => {
            let res = runs::profit_grid(
                &cfg,
                CostSplit::Random { seed: cfg.seed },
                &[Dataset::Epinions],
            );
            print!(
                "{}",
                runs::render_profit(&res, "Fig. 4(a) (random cost, Epinions)")
            );
        }
        "fig4b" => print!("{}", runs::fig4b(&cfg)),
        "fig7" => print!("{}", runs::fig78(&cfg, TargetSelector::Ndg)),
        "fig8" => print!("{}", runs::fig78(&cfg, TargetSelector::Nsg)),
        "fig9" => print!("{}", runs::fig9(&cfg)),
        "ablation" => print!("{}", runs::ablation(&cfg)),
        "all" => {
            print!("{}", runs::table2(&cfg));
            let res = runs::profit_grid(&cfg, CostSplit::DegreeProportional, cfg.datasets());
            print!(
                "{}",
                runs::render_profit(&res, "Fig. 2 (degree-proportional cost)")
            );
            print!(
                "{}",
                runs::render_time(&res, "Fig. 5 (degree-proportional cost)")
            );
            let res = runs::profit_grid(&cfg, CostSplit::Uniform, cfg.datasets());
            print!("{}", runs::render_profit(&res, "Fig. 3 (uniform cost)"));
            print!("{}", runs::render_time(&res, "Fig. 6 (uniform cost)"));
            let res = runs::profit_grid(
                &cfg,
                CostSplit::Random { seed: cfg.seed },
                &[Dataset::Epinions],
            );
            print!(
                "{}",
                runs::render_profit(&res, "Fig. 4(a) (random cost, Epinions)")
            );
            print!("{}", runs::fig4b(&cfg));
            print!("{}", runs::fig78(&cfg, TargetSelector::Ndg));
            print!("{}", runs::fig78(&cfg, TargetSelector::Nsg));
            print!("{}", runs::fig9(&cfg));
            print!("{}", runs::ablation(&cfg));
        }
        _ => usage(),
    }
    eprintln!("# total wall-clock: {:.1?}", t0.elapsed());
}
