//! Experiment drivers — one function per paper artifact.

use std::time::Instant;

use atpm_core::policies::{Addatp, Ars, Baseline, Hatp, Hntp, Ndg, Nsg};
use atpm_core::runner::{evaluate_adaptive, evaluate_nonadaptive, EvalSummary};
use atpm_core::setup::{
    calibrated_instance, predefined_instance, CalibrationConfig, TargetSelector,
};
use atpm_core::{CostSplit, TpmInstance};
use atpm_graph::gen::Dataset;
use atpm_graph::{Graph, GraphStats};
use atpm_ris::bounds::hatp_theta;
use atpm_ris::sampler::generate_batch;

use crate::config::ExpConfig;
use crate::report::{Table, ValueFormat};

/// Profit and timing tables of one figure-style grid run.
pub struct GridResult {
    /// Mean profit per (k, algorithm).
    pub profit: Table,
    /// Decision wall-clock seconds per (k, algorithm).
    pub time: Table,
}

/// The sample size handed to NSG/NDG: the paper sets it to "the largest
/// number of samples generated in HATP for one iteration in all settings",
/// i.e. HATP's final-round batch at `ε = ε_threshold`, `ζ = 1/n` and the
/// smallest δ a bounded round count can reach. Capped in laptop mode.
pub fn nsg_ndg_theta(n: usize, cfg: &ExpConfig) -> usize {
    let nf = n as f64;
    let delta_min = 1.0 / (nf * nf * (1u64 << 20) as f64);
    let theta = hatp_theta(0.05, 1.0 / nf, delta_min);
    if cfg.paper {
        theta
    } else {
        theta.min(2_000_000)
    }
}

fn dataset_graph(d: Dataset, cfg: &ExpConfig) -> Graph {
    // `--graph` replaces generation: experiments run on the external file
    // (validated up front by the CLI, hence the expect here).
    if let Some(g) = cfg
        .load_graph_override()
        .expect("--graph file validated at startup")
    {
        return g;
    }
    d.generate(
        cfg.scale_of(d),
        cfg.seed ^ (d as u64 + 1).wrapping_mul(0x9E3779B9),
    )
}

fn record(table: &mut GridResult, x: u64, summary: &EvalSummary) {
    table
        .profit
        .push(x, &summary.algorithm, summary.mean_profit());
    table
        .time
        .push(x, &summary.algorithm, summary.decision_time.as_secs_f64());
}

/// Table II: generate the four presets and report their statistics next to
/// the paper's numbers.
pub fn table2(cfg: &ExpConfig) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Table II — dataset details (synthetic stand-ins at scale; `--paper` for full size)"
    );
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>8} {:>10} {:>9} | {:>8} {:>8} {:>9}",
        "dataset", "n", "m", "type", "avg.deg", "paper n", "paper m", "paper deg"
    );
    for &d in cfg.datasets() {
        let g = dataset_graph(d, cfg);
        let s = GraphStats::compute(&g);
        // Table II convention: `m` is undirected-edge count for the
        // collaboration networks, arcs for the others; "Avg. deg" is 2m/n.
        let (m_reported, deg) = if d.directed() {
            (s.edges, 2.0 * s.avg_out_degree)
        } else {
            (s.edges / 2, s.avg_out_degree)
        };
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>8} {:>10} {:>9.2} | {:>8} {:>8} {:>9.2}",
            d.name(),
            GraphStats::human(s.nodes),
            GraphStats::human(m_reported),
            if d.directed() {
                "directed"
            } else {
                "undirected"
            },
            deg,
            GraphStats::human(d.paper_nodes()),
            GraphStats::human(d.paper_edges()),
            d.paper_avg_degree(),
        );
    }
    out
}

/// Shared driver for Figs. 2/3/4(a) (+ timing views 5/6): the k-sweep over
/// all algorithms under a given cost split.
pub fn profit_grid(
    cfg: &ExpConfig,
    split: CostSplit,
    datasets: &[Dataset],
) -> Vec<(Dataset, GridResult)> {
    let worlds = cfg.world_seeds();
    let mut results = Vec::new();
    for &d in datasets {
        let graph = dataset_graph(d, cfg);
        let n = graph.num_nodes();
        let batch_theta = nsg_ndg_theta(n, cfg);
        let mut grid = GridResult {
            profit: Table::new(),
            time: Table::new(),
        };
        for &k in &cfg.k_grid {
            if k >= n {
                continue;
            }
            let inst = calibrated_instance(
                graph.clone(),
                k,
                split,
                CalibrationConfig {
                    lb_theta: batch_theta.min(400_000),
                    seed: cfg.seed ^ k as u64,
                    threads: cfg.threads,
                    ..Default::default()
                },
            );
            let x = k as u64;

            let mut hatp = Hatp {
                seed: cfg.seed,
                threads: cfg.threads,
                ..Default::default()
            };
            record(&mut grid, x, &evaluate_adaptive(&inst, &mut hatp, &worlds));

            if cfg.addatp_enabled(d, k) {
                let mut addatp = Addatp {
                    seed: cfg.seed,
                    threads: cfg.threads,
                    max_theta: cfg.addatp_max_theta,
                    ..Default::default()
                };
                record(
                    &mut grid,
                    x,
                    &evaluate_adaptive(&inst, &mut addatp, &worlds),
                );
            }

            let mut hntp = Hntp::new(Hatp {
                seed: cfg.seed,
                threads: cfg.threads,
                ..Default::default()
            });
            record(
                &mut grid,
                x,
                &evaluate_nonadaptive(&inst, &mut hntp, &worlds),
            );

            let mut nsg = Nsg::new(batch_theta, cfg.seed, cfg.threads);
            record(
                &mut grid,
                x,
                &evaluate_nonadaptive(&inst, &mut nsg, &worlds),
            );

            let mut ndg = Ndg::new(batch_theta, cfg.seed, cfg.threads);
            record(
                &mut grid,
                x,
                &evaluate_nonadaptive(&inst, &mut ndg, &worlds),
            );

            let mut ars = Ars::default();
            record(&mut grid, x, &evaluate_adaptive(&inst, &mut ars, &worlds));

            record(
                &mut grid,
                x,
                &evaluate_nonadaptive(&inst, &mut Baseline, &worlds),
            );
        }
        results.push((d, grid));
    }
    results
}

/// Renders a profit grid as the paper's figure layout.
pub fn render_profit(results: &[(Dataset, GridResult)], figure: &str) -> String {
    let mut out = String::new();
    for (d, grid) in results {
        out.push_str(&grid.profit.render(
            &format!("{figure} — profit on {d} (mean over worlds)"),
            "k",
            ValueFormat::Profit,
        ));
        out.push('\n');
    }
    out
}

/// Renders the timing view (Figs. 5/6) of a grid run.
pub fn render_time(results: &[(Dataset, GridResult)], figure: &str) -> String {
    let mut out = String::new();
    for (d, grid) in results {
        out.push_str(&grid.time.render(
            &format!("{figure} — decision time on {d}"),
            "k",
            ValueFormat::Seconds,
        ));
        out.push('\n');
    }
    out
}

/// Fig. 4(b): HATP profit vs its relative-error threshold ε on Epinions.
pub fn fig4b(cfg: &ExpConfig) -> String {
    let d = Dataset::Epinions;
    let graph = dataset_graph(d, cfg);
    let k = *cfg.k_grid.iter().max().expect("nonempty grid");
    let inst = calibrated_instance(
        graph,
        k.min(graph_safe_k(d, cfg)),
        CostSplit::DegreeProportional,
        CalibrationConfig {
            lb_theta: 200_000,
            seed: cfg.seed,
            threads: cfg.threads,
            ..Default::default()
        },
    );
    let worlds = cfg.world_seeds();
    let mut t = Table::new();
    for eps_pct in [5u64, 10, 15, 20, 25] {
        let mut hatp = Hatp {
            eps_threshold: eps_pct as f64 / 100.0,
            seed: cfg.seed,
            threads: cfg.threads,
            ..Default::default()
        };
        let s = evaluate_adaptive(&inst, &mut hatp, &worlds);
        t.push(eps_pct, "HATP", s.mean_profit());
    }
    t.render(
        "Fig. 4(b) — sensitivity of HATP to ε on Epinions (x = ε·100)",
        "eps%",
        ValueFormat::Profit,
    )
}

fn graph_safe_k(d: Dataset, cfg: &ExpConfig) -> usize {
    // keep k well below n for tiny scales
    ((d.paper_nodes() as f64 * cfg.scale_of(d)) as usize / 4).max(2)
}

/// Maps the paper's λ values to laptop-scale equivalents by *quantile
/// calibration*: on a subsampled graph the paper's absolute costs land
/// outside the spread distribution entirely (everything or nothing is
/// profitable), so instead each λ is mapped to a percentile of the singleton
/// spread distribution — λ = 200 → 99.0th, 300 → 99.5th, 400 → 99.75th,
/// 500 → 99.9th. This preserves the experiment's operative property: larger
/// λ ⟹ fewer profitable users ⟹ smaller target set.
fn lambda_quantile(g: &Graph, lambda: u64, seed: u64, threads: usize) -> f64 {
    let n = g.num_nodes();
    let batch = generate_batch(&g, (4 * n).min(400_000), seed, threads);
    let mut spreads: Vec<f64> = (0..n as u32).map(|u| batch.spread_node(u)).collect();
    spreads.sort_unstable_by(f64::total_cmp);
    let q = match lambda {
        200 => 0.990,
        300 => 0.995,
        400 => 0.9975,
        _ => 0.999,
    };
    let idx = ((n as f64 * q) as usize).min(n - 1);
    spreads[idx].max(1.0)
}

/// Figs. 7/8: predefined-cost comparison on LiveJournal. `selector` is NDG
/// for Fig. 7 and NSG for Fig. 8; both cost splits are reported.
///
/// λ values are quantile-calibrated to the stand-in graph (see
/// [`lambda_quantile`]); EXPERIMENTS.md documents the substitution.
pub fn fig78(cfg: &ExpConfig, selector: TargetSelector) -> String {
    let d = Dataset::LiveJournal;
    let graph = dataset_graph(d, cfg);
    let n = graph.num_nodes();
    let batch_theta = nsg_ndg_theta(n, cfg);
    let worlds = cfg.world_seeds();
    let (fig, rival_name) = match selector {
        TargetSelector::Ndg => ("Fig. 7", "NDG"),
        TargetSelector::Nsg => ("Fig. 8", "NSG"),
    };
    let mut out = String::new();
    for split in [CostSplit::DegreeProportional, CostSplit::Uniform] {
        let mut t = Table::new();
        for lambda in [200u64, 300, 400, 500] {
            let lambda_eff = lambda_quantile(&graph, lambda, cfg.seed ^ lambda, cfg.threads);
            let inst = predefined_instance(
                graph.clone(),
                lambda_eff,
                split,
                selector,
                batch_theta,
                cfg.seed,
                cfg.threads,
                Some(if cfg.paper { 2000 } else { 300 }),
            );
            if inst.k() == 0 {
                t.push(lambda, "HATP", 0.0);
                t.push(lambda, rival_name, 0.0);
                continue;
            }
            let mut hatp = Hatp {
                seed: cfg.seed,
                threads: cfg.threads,
                ..Default::default()
            };
            let h = evaluate_adaptive(&inst, &mut hatp, &worlds);
            t.push(lambda, "HATP", h.mean_profit());
            let rival = match selector {
                TargetSelector::Ndg => {
                    let mut p = Ndg::new(batch_theta, cfg.seed, cfg.threads);
                    evaluate_nonadaptive(&inst, &mut p, &worlds)
                }
                TargetSelector::Nsg => {
                    let mut p = Nsg::new(batch_theta, cfg.seed, cfg.threads);
                    evaluate_nonadaptive(&inst, &mut p, &worlds)
                }
            };
            t.push(lambda, rival_name, rival.mean_profit());
        }
        out.push_str(&t.render(
            &format!(
                "{fig} — HATP vs {rival_name} on LiveJournal, {} cost (λ quantile-calibrated)",
                split.label()
            ),
            "lambda",
            ValueFormat::Profit,
        ));
        out.push('\n');
    }
    out
}

/// Fig. 9: NSG/NDG under growing sample sizes on Epinions — runtime grows
/// linearly, profit plateaus.
pub fn fig9(cfg: &ExpConfig) -> String {
    let d = Dataset::Epinions;
    let graph = dataset_graph(d, cfg);
    let k = cfg.k_grid.iter().copied().max().expect("nonempty");
    let inst = calibrated_instance(
        graph,
        k,
        CostSplit::DegreeProportional,
        CalibrationConfig {
            lb_theta: 200_000,
            seed: cfg.seed,
            threads: cfg.threads,
            ..Default::default()
        },
    );
    let worlds = cfg.world_seeds();
    // Base sample size: one HATP-iteration's batch, scaled down in laptop
    // mode so the ×32 point stays affordable.
    let base = if cfg.paper {
        nsg_ndg_theta(inst.graph().num_nodes(), cfg)
    } else {
        50_000
    };
    let mut profit = Table::new();
    let mut time = Table::new();
    for factor in [1u64, 2, 4, 8, 16, 32] {
        let theta = base * factor as usize;
        let mut nsg = Nsg::new(theta, cfg.seed, cfg.threads);
        let t0 = Instant::now();
        let s = evaluate_nonadaptive(&inst, &mut nsg, &worlds);
        let nsg_time = t0.elapsed().as_secs_f64();
        profit.push(factor, "NSG", s.mean_profit());
        time.push(factor, "NSG", nsg_time);

        let mut ndg = Ndg::new(theta, cfg.seed, cfg.threads);
        let t0 = Instant::now();
        let s = evaluate_nonadaptive(&inst, &mut ndg, &worlds);
        let ndg_time = t0.elapsed().as_secs_f64();
        profit.push(factor, "NDG", s.mean_profit());
        time.push(factor, "NDG", ndg_time);
    }
    let mut out = time.render(
        &format!("Fig. 9(a) — NSG/NDG running time vs sample-size factor (base θ = {base})"),
        "factor",
        ValueFormat::Seconds,
    );
    out.push('\n');
    out.push_str(&profit.render(
        "Fig. 9(b) — NSG/NDG profit vs sample-size factor",
        "factor",
        ValueFormat::Profit,
    ));
    out
}

/// Design-choice ablations called out in DESIGN.md §4.
pub fn ablation(cfg: &ExpConfig) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let worlds: Vec<u64> = cfg.world_seeds().into_iter().take(3).collect();

    // (1) hybrid vs additive error: sampling work on a borderline node as n
    // grows (§IV-A rationale). ADDATP runs *uncapped* here so the n² trend is
    // visible; the borderline node lives on an empty graph, so its RR sets
    // are singletons and even 10⁸ of them stay affordable.
    let _ = writeln!(
        out,
        "## Ablation 1 — hybrid vs additive error (RR sets per borderline decision)"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>14} {:>14} {:>8}",
        "n", "ADDATP", "HATP", "ratio"
    );
    for &n in &[250usize, 1000, 2500] {
        let b = atpm_graph::GraphBuilder::new(n);
        let inst = TpmInstance::new(b.build(), vec![0], &[1.0]);
        let mut hatp = Hatp {
            seed: cfg.seed,
            threads: cfg.threads,
            ..Default::default()
        };
        let h = evaluate_adaptive(&inst, &mut hatp, &[1]);
        let mut addatp = Addatp {
            seed: cfg.seed,
            threads: cfg.threads,
            max_theta: usize::MAX,
            ..Default::default()
        };
        let a = evaluate_adaptive(&inst, &mut addatp, &[1]);
        let _ = writeln!(
            out,
            "{:>8} {:>14} {:>14} {:>8.1}",
            n,
            a.sampling_work,
            h.sampling_work,
            a.sampling_work as f64 / h.sampling_work.max(1) as f64
        );
    }

    // (2) adaptive ε/ζ schedule vs fixed √2 decay.
    let graph = Dataset::NetHept.generate(cfg.scale_of(Dataset::NetHept) * 0.2, cfg.seed);
    let inst = calibrated_instance(
        graph,
        10.min(cfg.k_grid[0]),
        CostSplit::Uniform,
        CalibrationConfig {
            lb_theta: 50_000,
            seed: cfg.seed,
            threads: cfg.threads,
            ..Default::default()
        },
    );
    let mut sched = Hatp {
        seed: cfg.seed,
        threads: cfg.threads,
        ..Default::default()
    };
    let s_on = evaluate_adaptive(&inst, &mut sched, &worlds);
    let mut fixed = Hatp {
        seed: cfg.seed,
        threads: cfg.threads,
        adaptive_schedule: false,
        ..Default::default()
    };
    let s_off = evaluate_adaptive(&inst, &mut fixed, &worlds);
    let _ = writeln!(
        out,
        "\n## Ablation 2 — HATP error schedule (lines 19–23) vs fixed /√2 decay"
    );
    let _ = writeln!(
        out,
        "adaptive schedule: profit {:.1}, RR sets {}",
        s_on.mean_profit(),
        s_on.sampling_work
    );
    let _ = writeln!(
        out,
        "fixed decay:       profit {:.1}, RR sets {}",
        s_off.mean_profit(),
        s_off.sampling_work
    );

    // (3) serial vs parallel RR generation throughput.
    let g = dataset_graph(Dataset::Epinions, cfg);
    let count = 200_000;
    let t0 = Instant::now();
    let c1 = atpm_ris::sampler::generate_batch(&&g, count, cfg.seed, 1);
    let serial = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let c2 = atpm_ris::sampler::generate_batch(&&g, count, cfg.seed, cfg.threads);
    let parallel = t0.elapsed().as_secs_f64();
    let _ = writeln!(
        out,
        "\n## Ablation 3 — RR batch generation ({count} sets on Epinions)"
    );
    let _ = writeln!(
        out,
        "serial:   {serial:.2}s ({} members)",
        c1.total_members()
    );
    let _ = writeln!(
        out,
        "{} threads: {parallel:.2}s ({} members), speedup {:.1}x",
        cfg.threads,
        c2.total_members(),
        serial / parallel.max(1e-9)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExpConfig {
        ExpConfig {
            scale_mult: 0.02,
            worlds: 2,
            k_grid: vec![3, 5],
            threads: 2,
            with_addatp: true,
            addatp_max_theta: 1 << 14,
            ..Default::default()
        }
    }

    #[test]
    fn table2_mentions_all_datasets() {
        let out = table2(&tiny_cfg());
        for d in Dataset::ALL {
            assert!(out.contains(d.name()), "missing {d}");
        }
    }

    #[test]
    fn profit_grid_covers_all_algorithms() {
        let cfg = tiny_cfg();
        let res = profit_grid(&cfg, CostSplit::Uniform, &[Dataset::NetHept]);
        assert_eq!(res.len(), 1);
        let names = res[0].1.profit.series_names();
        for expected in ["HATP", "HNTP", "NSG", "NDG", "ARS", "Baseline"] {
            assert!(names.contains(&expected.to_string()), "missing {expected}");
        }
        let rendered = render_profit(&res, "Fig. 2");
        assert!(rendered.contains("NetHEPT"));
        let timing = render_time(&res, "Fig. 5");
        assert!(timing.contains("decision time"));
    }

    #[test]
    fn nsg_theta_is_monotone_in_n_and_capped() {
        let cfg = ExpConfig::default();
        assert!(nsg_ndg_theta(10_000, &cfg) <= nsg_ndg_theta(100_000, &cfg));
        assert!(nsg_ndg_theta(10_000_000, &cfg) <= 2_000_000);
    }
}
