//! # atpm-bench
//!
//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation (§VI). The `experiments` binary exposes one subcommand per
//! artifact:
//!
//! | subcommand | paper artifact |
//! |------------|----------------|
//! | `table2`   | Table II — dataset details |
//! | `fig2`     | Fig. 2 — profit, degree-proportional cost (also emits Fig. 5 timings) |
//! | `fig3`     | Fig. 3 — profit, uniform cost (also emits Fig. 6 timings) |
//! | `fig4a`    | Fig. 4(a) — profit under random cost (Epinions) |
//! | `fig4b`    | Fig. 4(b) — ε-sensitivity of HATP (Epinions) |
//! | `fig5` / `fig6` | running-time views of the fig2/fig3 runs |
//! | `fig7`     | Fig. 7 — HATP vs NDG, predefined cost (LiveJournal) |
//! | `fig8`     | Fig. 8 — HATP vs NSG, predefined cost (LiveJournal) |
//! | `fig9`     | Fig. 9 — NSG/NDG sample-size sweep (Epinions) |
//! | `ablation` | design-choice ablations called out in DESIGN.md |
//! | `all`      | everything above |
//!
//! The default configuration is laptop-sized (reduced scales, 5 worlds,
//! trimmed k-grid); `--paper` lifts every knob to the paper's settings.
//! EXPERIMENTS.md records paper-vs-measured per artifact.

pub mod config;
pub mod loadgen;
pub mod report;
pub mod runs;

pub use config::ExpConfig;
