//! Load generator for the `atpm-serve` HTTP service.
//!
//! Two modes, both extending the committed perf trajectory in
//! `BENCH_serve.json` (same spirit as `BENCH_ris.json` for the in-process
//! engine):
//!
//! * **Closed-loop** (default): `level` concurrent connections each drive
//!   full adaptive sessions (create → next/observe loop → ledger → delete)
//!   back to back; reports throughput plus p50/p95/p99 per-request latency
//!   per level. Measures the service at its own pace.
//! * **Open-loop** (`--rate R`): sessions *arrive* at a fixed R per
//!   second whether or not the server keeps up, the textbook way to see
//!   behavior under overload — per-session sojourn (scheduled arrival →
//!   completion, queueing included) and goodput (completed sessions/s) are
//!   reported alongside request latency.
//!
//! By default the generator boots its own server on an ephemeral loopback
//! port (one process, zero setup — what the CI `serve-smoke` job runs);
//! `--backend {epoll,pool}` picks the self-booted server's transport
//! (epoll boots a fixed 4 workers however high the level — the whole point
//! of the reactor; pool sizes its accept pool to the biggest level, since
//! it physically cannot serve more connections than workers). `--addr`
//! points at an externally started server instead.
//!
//! The client half of the overload/durability contract lives here too:
//! every request runs through [`RetryClient`], which backs off and retries
//! on `503 Service Unavailable` (the server shedding load) and on
//! transport failures (a server restart mid-session). Retries and sheds
//! are counted per level, and the server's `recovered_sessions` healthz
//! counter is sampled after each level, so `BENCH_serve.json` records how
//! rough the run was, not just how fast.
//!
//! After each level the generator also scrapes `GET /metrics` and folds
//! the server-side `atpm_http_request_seconds` histogram into the report
//! (`srv_requests`, `srv_p50/95/99_us`) — so `BENCH_serve.json` carries
//! both halves of every latency: what the client saw (network included)
//! and what the server spent handling. The scrape is load-bearing: an
//! unreachable endpoint, an exposition that fails the format lint, or a
//! request counter that goes backwards fails the run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use atpm_core::AdaptiveSession;
use atpm_obs::{Histogram, Scrape};
use atpm_serve::client::{HttpClient, ProtocolClient};
use atpm_serve::json::Json;
use atpm_serve::protocol::{
    ApiError, CreateSessionReq, Ledger, ObserveBatchReq, ObserveReq, PolicySpec, SnapshotReq,
    SnapshotSource,
};
use atpm_serve::server::{AppState, Backend, ServeConfig, Server};
use atpm_serve::snapshot::Snapshot;

/// Loadgen knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Address of a running server; `None` boots one in-process.
    pub addr: Option<String>,
    /// Transport backend for the self-booted server.
    pub backend: Backend,
    /// Worker threads for the self-booted server; `None` = 4 for epoll,
    /// `max(levels)+1` for pool (which needs a thread per connection).
    pub boot_workers: Option<usize>,
    /// Concurrent-session levels to sweep (one measurement each).
    pub levels: Vec<usize>,
    /// Full sessions to run per level (split across the connections).
    pub sessions_per_level: usize,
    /// Open-loop arrival rate, sessions/second (`None` = closed-loop only).
    pub rate: Option<f64>,
    /// Open-loop total arrivals.
    pub open_sessions: usize,
    /// Open-loop client threads (the service capacity being tested is the
    /// server's; this just has to be enough to express the arrival rate).
    pub open_workers: usize,
    /// Snapshot preset scale (NetHEPT stand-in).
    pub scale: f64,
    /// Snapshot target-set size.
    pub k: usize,
    /// Snapshot pre-frozen RR index size.
    pub rr_theta: usize,
    /// Base RNG seed (snapshot build, per-session worlds).
    pub seed: u64,
    /// Session mix as `(policy, weight)`; sessions cycle through the
    /// weighted expansion deterministically.
    pub mix: Vec<(String, usize)>,
    /// Fraction of sessions driven in *report mode*: the client owns the
    /// possible world (a local `AdaptiveSession` twin over the same
    /// snapshot) and posts `observe {activated: [...]}` instead of asking
    /// the server to simulate — the protocol shape of a real deployment
    /// feeding field observations back. 0.0 (default) keeps every session
    /// on the server-simulated path.
    pub report_frac: f64,
    /// Seeds requested per protocol round trip (`--batch-size a,b,...`).
    /// Each entry is measured separately per closed-loop level, so a
    /// sweep like `1,4` records the round-trip amortization directly.
    /// Sizes above 1 drive the batched verbs (`next_batch`/
    /// `observe_batch`); size 1 keeps the classic single-seed protocol.
    pub batch_sizes: Vec<usize>,
    /// Crash-restart drill: kill -9 a journaling `atpm-served` child
    /// process every N completed sessions and hard-fail unless every
    /// session (including the ones in flight across each kill) finishes
    /// with a ledger bit-equal to an uninterrupted in-process reference
    /// run. `None` (default) skips the drill.
    pub crash_every: Option<usize>,
    /// Where to write the JSON report (`None` = don't write).
    pub json_path: Option<String>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: None,
            backend: Backend::Epoll,
            boot_workers: None,
            levels: vec![1, 2, 4],
            sessions_per_level: 16,
            rate: None,
            open_sessions: 48,
            open_workers: 16,
            scale: 0.02,
            k: 6,
            rr_theta: 10_000,
            seed: 20200420,
            mix: vec![
                ("hatp".into(), 1),
                ("ars".into(), 2),
                ("deploy_all".into(), 3),
            ],
            report_frac: 0.0,
            batch_sizes: vec![1],
            crash_every: None,
            json_path: Some("BENCH_serve.json".into()),
        }
    }
}

impl LoadgenConfig {
    /// `--quick`: the CI smoke configuration (seconds, not minutes, on one
    /// vCPU).
    pub fn quick() -> Self {
        LoadgenConfig {
            levels: vec![1, 2],
            sessions_per_level: 6,
            scale: 0.01,
            k: 4,
            rr_theta: 4_000,
            ..Default::default()
        }
    }

    /// Parses CLI flags.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut cfg = LoadgenConfig::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value_of = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("flag {name} needs a value"))
            };
            match arg.as_str() {
                "--quick" => {
                    let keep = (
                        cfg.json_path.clone(),
                        cfg.addr.clone(),
                        cfg.backend,
                        cfg.rate,
                        cfg.batch_sizes.clone(),
                        cfg.crash_every,
                    );
                    cfg = LoadgenConfig::quick();
                    (
                        cfg.json_path,
                        cfg.addr,
                        cfg.backend,
                        cfg.rate,
                        cfg.batch_sizes,
                        cfg.crash_every,
                    ) = keep;
                }
                "--addr" => cfg.addr = Some(value_of("--addr")?),
                "--backend" => {
                    let v = value_of("--backend")?;
                    cfg.backend = Backend::parse(&v)
                        .ok_or_else(|| format!("bad --backend '{v}' (expected epoll | pool)"))?;
                }
                "--boot-workers" => {
                    cfg.boot_workers = Some(
                        value_of("--boot-workers")?
                            .parse()
                            .map_err(|e| format!("bad --boot-workers: {e}"))?,
                    );
                }
                "--rate" => {
                    let r: f64 = value_of("--rate")?
                        .parse()
                        .map_err(|e| format!("bad --rate: {e}"))?;
                    if r <= 0.0 || !r.is_finite() {
                        return Err("--rate must be positive".into());
                    }
                    cfg.rate = Some(r);
                }
                "--open-sessions" => {
                    cfg.open_sessions = value_of("--open-sessions")?
                        .parse()
                        .map_err(|e| format!("bad --open-sessions: {e}"))?;
                }
                "--open-workers" => {
                    cfg.open_workers = value_of("--open-workers")?
                        .parse()
                        .map_err(|e| format!("bad --open-workers: {e}"))?;
                }
                "--levels" => {
                    cfg.levels = value_of("--levels")?
                        .split(',')
                        .map(|t| t.parse().map_err(|e| format!("bad --levels: {e}")))
                        .collect::<Result<_, _>>()?;
                }
                "--sessions" => {
                    cfg.sessions_per_level = value_of("--sessions")?
                        .parse()
                        .map_err(|e| format!("bad --sessions: {e}"))?;
                }
                "--scale" => {
                    cfg.scale = value_of("--scale")?
                        .parse()
                        .map_err(|e| format!("bad --scale: {e}"))?;
                }
                "--k" => {
                    cfg.k = value_of("--k")?
                        .parse()
                        .map_err(|e| format!("bad --k: {e}"))?;
                }
                "--rr-theta" => {
                    cfg.rr_theta = value_of("--rr-theta")?
                        .parse()
                        .map_err(|e| format!("bad --rr-theta: {e}"))?;
                }
                "--seed" => {
                    cfg.seed = value_of("--seed")?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?;
                }
                "--mix" => {
                    cfg.mix = value_of("--mix")?
                        .split(',')
                        .map(|part| {
                            let (name, w) = part
                                .split_once('=')
                                .ok_or_else(|| format!("bad --mix part '{part}'"))?;
                            let w: usize =
                                w.parse().map_err(|e| format!("bad --mix weight: {e}"))?;
                            Ok((name.to_string(), w))
                        })
                        .collect::<Result<_, String>>()?;
                }
                "--report-frac" => {
                    let f: f64 = value_of("--report-frac")?
                        .parse()
                        .map_err(|e| format!("bad --report-frac: {e}"))?;
                    if !(0.0..=1.0).contains(&f) {
                        return Err("--report-frac must be in [0, 1]".into());
                    }
                    cfg.report_frac = f;
                }
                "--batch-size" => {
                    cfg.batch_sizes = value_of("--batch-size")?
                        .split(',')
                        .map(|t| t.parse().map_err(|e| format!("bad --batch-size: {e}")))
                        .collect::<Result<_, _>>()?;
                }
                "--crash-every" => {
                    let n: usize = value_of("--crash-every")?
                        .parse()
                        .map_err(|e| format!("bad --crash-every: {e}"))?;
                    if n == 0 {
                        return Err("--crash-every must be positive".into());
                    }
                    cfg.crash_every = Some(n);
                }
                "--json" => cfg.json_path = Some(value_of("--json")?),
                "--no-json" => cfg.json_path = None,
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        if cfg.levels.is_empty() || cfg.levels.contains(&0) {
            return Err("need at least one nonzero concurrency level".into());
        }
        if cfg.sessions_per_level == 0 {
            return Err("need at least one session per level".into());
        }
        if cfg.rate.is_some() && (cfg.open_sessions == 0 || cfg.open_workers == 0) {
            return Err("open-loop mode needs nonzero --open-sessions and --open-workers".into());
        }
        if cfg.batch_sizes.is_empty() || cfg.batch_sizes.contains(&0) {
            return Err("need at least one nonzero --batch-size".into());
        }
        if cfg.mix.is_empty() || cfg.mix.iter().all(|(_, w)| *w == 0) {
            return Err("mix needs at least one positive weight".into());
        }
        for (name, _) in &cfg.mix {
            policy_spec(name, 0).ok_or_else(|| {
                format!(
                    "unknown policy '{name}' in mix \
                     (expected hatp | ars | deploy_all | threshold_batch)"
                )
            })?;
        }
        Ok(cfg)
    }

    /// The deterministic session → policy assignment: the weighted mix
    /// expanded and cycled.
    pub fn mix_schedule(&self) -> Vec<String> {
        self.mix
            .iter()
            .flat_map(|(name, w)| std::iter::repeat_n(name.clone(), *w))
            .collect()
    }

    /// Whether session `i` runs in report mode — the floor-increment
    /// assignment realizes exactly `report_frac` of any prefix (±1) and is
    /// deterministic, so runs are reproducible.
    pub fn is_report_session(&self, i: usize) -> bool {
        ((i as f64 + 1.0) * self.report_frac) as u64 > (i as f64 * self.report_frac) as u64
    }
}

/// Drives one session with a *client-owned* world: a local
/// [`AdaptiveSession`] twin over the same snapshot simulates each cascade
/// and reports the activations, exactly the inverted protocol a live
/// deployment uses (`tests/e2e_equivalence.rs` pins its byte-identity).
fn run_report_session<C: ProtocolClient>(
    client: &mut C,
    req: &CreateSessionReq,
    snapshot: &Snapshot,
) -> Result<Ledger, ApiError> {
    let token = client.create_session(req)?;
    let mut world = AdaptiveSession::new(&snapshot.instance, req.world_seed);
    while let Some(seeds) = client.next(&token)? {
        for seed in seeds {
            let activated = world.select(seed);
            client.observe(&token, &ObserveReq::Report { seed, activated })?;
        }
    }
    let ledger = client.ledger(&token)?;
    client.delete_session(&token)?;
    Ok(ledger)
}

/// [`run_report_session`] over the batched verbs: the client asks for up
/// to `k` seeds per round, simulates the joint cascade in its own world,
/// and posts one `observe_batch {activated}` back — one round trip per
/// batch round instead of one per seed.
fn run_report_session_batched<C: ProtocolClient>(
    client: &mut C,
    req: &CreateSessionReq,
    snapshot: &Snapshot,
    k: usize,
) -> Result<Ledger, ApiError> {
    let token = client.create_session(req)?;
    let mut world = AdaptiveSession::new(&snapshot.instance, req.world_seed);
    while let Some(seeds) = client.next_batch(&token, k)? {
        let activated = world.select_batch(&seeds);
        client.observe_batch(&token, &ObserveBatchReq::Report { seeds, activated })?;
    }
    let ledger = client.ledger(&token)?;
    client.delete_session(&token)?;
    Ok(ledger)
}

/// Drives one full session: report-mode vs server-simulated per
/// `report_snapshot`, batched verbs when `batch > 1`, the classic
/// single-seed protocol when `batch == 1`. Returns the ledger plus
/// whether the report path was taken (for the per-thread counters).
fn drive_session<C: ProtocolClient>(
    client: &mut C,
    req: &CreateSessionReq,
    batch: usize,
    report_snapshot: Option<&Snapshot>,
) -> Result<(Ledger, bool), ApiError> {
    match report_snapshot {
        Some(snap) if batch > 1 => {
            run_report_session_batched(client, req, snap, batch).map(|l| (l, true))
        }
        Some(snap) => run_report_session(client, req, snap).map(|l| (l, true)),
        None if batch > 1 => client.run_session_batched(req, batch).map(|l| (l, false)),
        None => client.run_session(req).map(|l| (l, false)),
    }
}

/// Builds the policy spec a mix entry names. Sampling knobs are deliberately
/// modest: loadgen measures the *service*, not HATP's asymptotics.
fn policy_spec(name: &str, session_seed: u64) -> Option<PolicySpec> {
    match name {
        "hatp" => Some(PolicySpec::Hatp {
            eps_threshold: Some(0.2),
            max_theta: Some(1 << 14),
            seed: session_seed,
            threads: 1,
        }),
        "ars" => Some(PolicySpec::Ars {
            prob: 0.5,
            seed: session_seed,
        }),
        "deploy_all" => Some(PolicySpec::DeployAll),
        "threshold_batch" => Some(PolicySpec::ThresholdBatch {
            theta: 2_000,
            eps: 0.1,
            batch: 4,
            seed: session_seed,
            threads: 1,
        }),
        _ => None,
    }
}

/// One measurement: a closed-loop concurrency level or an open-loop rate
/// run.
#[derive(Debug, Clone)]
pub struct LevelReport {
    /// `"closed"` or `"open"`.
    pub mode: &'static str,
    /// Closed: concurrent connections driving sessions back-to-back.
    /// Open: client threads available to absorb arrivals.
    pub level: usize,
    /// Open-loop target arrival rate, sessions/second (0 for closed).
    pub rate: f64,
    /// Seeds requested per protocol round trip for this measurement
    /// (1 = classic single-seed verbs, >1 = `next_batch`/`observe_batch`).
    pub batch_size: usize,
    /// Completed sessions.
    pub sessions: usize,
    /// Total HTTP requests issued.
    pub requests: usize,
    /// Total seeds committed across sessions.
    pub seeds: usize,
    /// Sessions driven through the report (client-reported observation)
    /// path, per `--report-frac`.
    pub report_sessions: usize,
    /// Wall-clock for the whole level, seconds.
    pub wall_s: f64,
    /// Requests per second.
    pub rps: f64,
    /// Completed sessions per second — under open-loop overload this is
    /// the service's goodput, decoupled from the offered rate.
    pub goodput_sps: f64,
    /// Latency percentiles over all requests, microseconds.
    pub p50_us: f64,
    /// 95th percentile, microseconds.
    pub p95_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
    /// Open-loop: 95th-percentile session sojourn (scheduled arrival →
    /// completion, queueing included), milliseconds. 0 for closed-loop.
    pub sojourn_p95_ms: f64,
    /// Requests re-issued after a 503 or a transport failure.
    pub retries: usize,
    /// `503 Service Unavailable` responses absorbed (server shedding).
    pub shed_503: usize,
    /// Server-reported `recovered_sessions` (journal replays) at the end
    /// of the level — nonzero means the server restarted mid-run.
    pub recovered_sessions: u64,
    /// Server-side request count (`atpm_http_request_seconds_count` from
    /// the end-of-level `/metrics` scrape) — cumulative since server boot,
    /// so it only grows across levels.
    pub srv_requests: u64,
    /// Server-side handling-time p50, microseconds, from the scraped
    /// `atpm_http_request_seconds` histogram. Excludes network and client
    /// time, so `srv_p50_us <= p50_us` structurally.
    pub srv_p50_us: f64,
    /// Server-side p95, microseconds.
    pub srv_p95_us: f64,
    /// Server-side p99, microseconds.
    pub srv_p99_us: f64,
}

impl LevelReport {
    /// JSON form (one element of `BENCH_serve.json`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("mode", Json::Str(self.mode.to_string())),
            ("level", Json::Num(self.level as f64)),
            ("rate", Json::Num(self.rate)),
            ("batch_size", Json::Num(self.batch_size as f64)),
            ("sessions", Json::Num(self.sessions as f64)),
            ("requests", Json::Num(self.requests as f64)),
            ("seeds", Json::Num(self.seeds as f64)),
            ("report_sessions", Json::Num(self.report_sessions as f64)),
            ("wall_s", Json::Num(self.wall_s)),
            ("rps", Json::Num(self.rps)),
            ("goodput_sps", Json::Num(self.goodput_sps)),
            ("p50_us", Json::Num(self.p50_us)),
            ("p95_us", Json::Num(self.p95_us)),
            ("p99_us", Json::Num(self.p99_us)),
            ("sojourn_p95_ms", Json::Num(self.sojourn_p95_ms)),
            ("retries", Json::Num(self.retries as f64)),
            ("shed_503", Json::Num(self.shed_503 as f64)),
            (
                "recovered_sessions",
                Json::Num(self.recovered_sessions as f64),
            ),
            ("srv_requests", Json::Num(self.srv_requests as f64)),
            ("srv_p50_us", Json::Num(self.srv_p50_us)),
            ("srv_p95_us", Json::Num(self.srv_p95_us)),
            ("srv_p99_us", Json::Num(self.srv_p99_us)),
        ])
    }
}

/// Per-thread measurement accumulator.
#[derive(Default)]
struct ThreadStats {
    /// Per-request latency, the same `atpm_obs::Histogram` the server
    /// exports — thread histograms merge element-wise, so aggregation is
    /// O(buckets) instead of collect-and-sort over every request.
    latencies: Histogram,
    sessions: usize,
    seeds: usize,
    /// Of which: sessions driven through the report (client-world) path.
    report_sessions: usize,
    /// Requests re-issued after a 503 or transport failure.
    retries: usize,
    /// 503 responses absorbed.
    shed_503: usize,
}

/// Attempts per request before the error is surfaced: five backoffs of
/// `5ms << attempt` (plus jitter) span roughly 300 ms — enough to ride out
/// a shedding burst or a server restart without stalling a dead run.
const MAX_ATTEMPTS: u32 = 6;

/// An `HttpClient` wrapper that records per-request latency and implements
/// the client half of the overload/durability contract:
///
/// * `503 Service Unavailable` — the server shed the request before any
///   work happened; safe to retry unconditionally. Shed replies close the
///   connection, so the client reconnects.
/// * transport failures (connect refused, reset, short read) — the server
///   restarted or the connection died. `create` and `next` are idempotent
///   server-side (a replayed `next` re-serves the pending seed), so they
///   retry on a fresh connection. A replayed `observe` (or
///   `observe_batch`) that answers 409 means the original *was* applied
///   before the reply was lost; after at least one retry that counts as
///   success.
///
/// Backoff is exponential with deterministic jitter (xorshift64*, seeded
/// per thread) so concurrent clients don't re-dogpile in lockstep.
///
/// Latency is recorded into the shared `atpm_obs::Histogram` (the same
/// log-bucketed layout the server's `/metrics` histograms use): constant
/// memory however long the run, and quantiles read from bucket midpoints
/// — 8 sub-buckets per octave bounds the relative quantile error at
/// 1/16 = 6.25% of the true value (values below 8 ns are exact, but no
/// HTTP round trip is that fast). The old sort-a-`Vec<u64>` percentiles
/// were exact; ±6.25% is far inside run-to-run noise, and client-side and
/// server-side quantiles now share one estimator, so they are directly
/// comparable.
struct RetryClient {
    addr: String,
    inner: Option<HttpClient>,
    latencies: Histogram,
    retries: usize,
    shed_503: usize,
    rng: u64,
    /// Attempts per request before surfacing the error. [`MAX_ATTEMPTS`]
    /// by default; the crash drill raises it, because a kill -9'd server
    /// takes a snapshot rebuild (seconds) to come back, not a backoff.
    max_attempts: u32,
}

impl RetryClient {
    fn connect(addr: &str, jitter_seed: u64) -> Self {
        RetryClient {
            addr: addr.to_string(),
            inner: None,
            latencies: Histogram::new(),
            retries: 0,
            shed_503: 0,
            rng: jitter_seed | 1,
            max_attempts: MAX_ATTEMPTS,
        }
    }

    fn with_max_attempts(mut self, n: u32) -> Self {
        self.max_attempts = n.max(1);
        self
    }

    /// xorshift64* in [0, 1): cheap, deterministic, per-thread.
    fn jitter(&mut self) -> f64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        (self.rng.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn backoff(&mut self, attempt: u32) {
        let base_ms = 5u64 << attempt.min(6);
        let jittered = base_ms as f64 * (0.5 + self.jitter());
        std::thread::sleep(Duration::from_micros((jittered * 1_000.0) as u64));
    }
}

impl ProtocolClient for RetryClient {
    fn call(
        &mut self,
        method: &str,
        path: &str,
        body: &Json,
    ) -> Result<Json, atpm_serve::protocol::ApiError> {
        let mut attempt = 0u32;
        loop {
            let result = match &mut self.inner {
                Some(client) => {
                    let t0 = Instant::now();
                    let out = client.call(method, path, body);
                    self.latencies.record_duration(t0.elapsed());
                    out
                }
                None => match HttpClient::connect(&self.addr) {
                    Ok(client) => {
                        self.inner = Some(client);
                        continue; // no request issued yet — not a retry
                    }
                    Err(e) => Err(atpm_serve::protocol::ApiError::new(
                        500,
                        format!("transport: connect: {e}"),
                    )),
                },
            };
            let err = match result {
                Ok(v) => return Ok(v),
                Err(e) => e,
            };
            let shed = err.status == 503;
            let transport = err.status == 500 && err.message.starts_with("transport:");
            if shed {
                self.shed_503 += 1;
            }
            if shed || transport {
                // Shed replies carry `Connection: close`; after a transport
                // error the stream state is unknowable. Reconnect either way.
                self.inner = None;
            }
            // A replayed observe answering "nothing pending" means the lost
            // original landed: the observation is durably applied.
            if err.status == 409
                && attempt > 0
                && method == "POST"
                && (path.ends_with("/observe") || path.ends_with("/observe_batch"))
            {
                return Ok(Json::obj([]));
            }
            if !(shed || transport) || attempt + 1 >= self.max_attempts {
                return Err(err);
            }
            self.retries += 1;
            self.backoff(attempt);
            attempt += 1;
        }
    }
}

/// Exact sort-based percentile in µs — still used for open-loop *sojourns*
/// (few values, and the tail is the measurement); request latencies go
/// through [`Histogram`] quantiles instead (see [`RetryClient`]).
fn percentile(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * q).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// Server-side numbers folded into a [`LevelReport`] from an end-of-level
/// `/metrics` scrape.
struct ServerSide {
    requests: u64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

/// Scrapes `GET /metrics` and extracts the request-histogram family.
///
/// Hard-fails (propagating `Err` out of the run) when the endpoint is
/// unreachable or non-200, the body is empty or fails the exposition lint,
/// the family is missing, or the request counter regressed since the
/// previous scrape — any of those means the server-side half of
/// `BENCH_serve.json` would be fiction, which is worse than no run.
fn scrape_server_side(addr: &str, prev_requests: &mut u64) -> Result<ServerSide, String> {
    let mut client =
        HttpClient::connect(addr).map_err(|e| format!("metrics scrape: connect {addr}: {e}"))?;
    let (status, text) = client
        .get_text("/metrics")
        .map_err(|e| format!("metrics scrape: {e}"))?;
    if status != 200 {
        return Err(format!("metrics scrape: /metrics answered {status}"));
    }
    if text.trim().is_empty() {
        return Err("metrics scrape: empty exposition body".into());
    }
    atpm_obs::lint(&text).map_err(|e| format!("metrics scrape: exposition lint: {e}"))?;
    let scrape = Scrape::parse(&text).map_err(|e| format!("metrics scrape: parse: {e}"))?;
    let requests = scrape
        .value("atpm_http_request_seconds_count", &[])
        .ok_or("metrics scrape: atpm_http_request_seconds missing from exposition")?
        as u64;
    if requests < *prev_requests {
        return Err(format!(
            "metrics scrape: request counter went backwards ({} -> {requests})",
            *prev_requests
        ));
    }
    *prev_requests = requests;
    let q = |p: f64| {
        scrape
            .histogram_quantile("atpm_http_request_seconds", &[], p)
            .unwrap_or(0.0)
            * 1e6
    };
    Ok(ServerSide {
        requests,
        p50_us: q(0.50),
        p95_us: q(0.95),
        p99_us: q(0.99),
    })
}

/// One on-demand CPU-profile window taken *under load*: a background
/// thread hammers the CPU-heavy HATP session path while the main thread
/// asks the server for `GET /debug/profile?seconds=1`. Hard-fails when the
/// window answers non-200, comes back empty, any folded line fails to
/// parse, or no hot stack reaches the sampling core (`atpm_ris` /
/// `atpm_diffusion` frames) — an empty or rootless profile means the
/// SIGPROF profiler, the frame-pointer unwinder, or the symbolizer
/// regressed, and the bench report would be measuring a broken tool.
fn drive_profile(addr: &str, cfg: &LoadgenConfig) -> Result<(), String> {
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let driver = {
        let stop = stop.clone();
        let addr = addr.to_string();
        let seed = cfg.seed;
        std::thread::spawn(move || {
            let mut client = RetryClient::connect(&addr, seed | 1);
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let req = CreateSessionReq {
                    snapshot: "bench".into(),
                    policy: policy_spec("hatp", seed ^ i).expect("hatp is a known policy"),
                    world_seed: seed.wrapping_add(i),
                };
                // Errors here are tolerable (the server may be busy inside
                // the profile window); the window assertion below is the
                // actual check.
                let _ = client.run_session(&req);
                i += 1;
            }
        })
    };
    let result = (|| {
        let mut client =
            HttpClient::connect(addr).map_err(|e| format!("profile: connect {addr}: {e}"))?;
        let (status, folded) = client
            .get_text("/debug/profile?seconds=1")
            .map_err(|e| format!("profile: {e}"))?;
        if status != 200 {
            return Err(format!(
                "profile: /debug/profile answered {status}: {folded}"
            ));
        }
        if folded.trim().is_empty() {
            return Err("profile: empty folded output".into());
        }
        let mut hot = false;
        for line in folded.lines() {
            let (stack, count) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("profile: bad folded line {line:?}"))?;
            count
                .parse::<u64>()
                .map_err(|_| format!("profile: bad count in folded line {line:?}"))?;
            if stack.contains("atpm_ris") || stack.contains("atpm_diffusion") {
                hot = true;
            }
        }
        if !hot {
            return Err("profile: no atpm_ris/atpm_diffusion frames in any sampled stack".into());
        }
        Ok(())
    })();
    stop.store(true, Ordering::Relaxed);
    driver
        .join()
        .map_err(|_| "profile: session driver panicked".to_string())?;
    result
}

/// The snapshot every loadgen run measures against.
pub fn snapshot_req(cfg: &LoadgenConfig) -> SnapshotReq {
    SnapshotReq {
        name: "bench".into(),
        source: SnapshotSource::Preset {
            dataset: "nethept".into(),
            scale: cfg.scale,
        },
        k: cfg.k,
        rr_theta: cfg.rr_theta,
        seed: cfg.seed,
        threads: 1,
    }
}

/// Worker count for a self-booted server: the epoll backend serves any
/// number of connections from a small fixed pool (that's the point); the
/// pool backend physically needs a thread per concurrent connection.
fn boot_workers(cfg: &LoadgenConfig) -> usize {
    if let Some(w) = cfg.boot_workers {
        return w;
    }
    match cfg.backend {
        Backend::Epoll => 4,
        Backend::Pool => {
            let top_level = cfg.levels.iter().copied().max().unwrap_or(1);
            top_level.max(cfg.open_workers * usize::from(cfg.rate.is_some())) + 1
        }
    }
}

/// Runs the sweep (and the open-loop phase if `--rate` is set). Boots an
/// in-process server unless `cfg.addr` is set. Returns one report per
/// measurement; writes `cfg.json_path` if set.
pub fn run(cfg: &LoadgenConfig) -> Result<Vec<LevelReport>, String> {
    // Boot or attach.
    let mut own_server: Option<Server> = None;
    let addr = match &cfg.addr {
        Some(a) => a.clone(),
        None => {
            let server = Server::start(
                AppState::new(),
                &ServeConfig {
                    addr: "127.0.0.1:0".into(),
                    workers: boot_workers(cfg),
                    backend: cfg.backend,
                    ..ServeConfig::default()
                },
            )
            .map_err(|e| format!("cannot start server: {e}"))?;
            let addr = server.addr().to_string();
            own_server = Some(server);
            addr
        }
    };

    // Load the snapshot once (not part of the measurement).
    let mut setup = HttpClient::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    setup
        .create_snapshot(&snapshot_req(cfg))
        .map_err(|e| format!("snapshot build failed: {e}"))?;
    drop(setup);

    // Report-mode sessions need a client-side twin of the snapshot (same
    // deterministic build the server performed); built once, shared by all
    // client threads, and not part of any measurement.
    let report_snapshot: Option<Arc<Snapshot>> = if cfg.report_frac > 0.0 {
        Some(Arc::new(
            Snapshot::build(&snapshot_req(cfg)).map_err(|e| format!("local snapshot: {e}"))?,
        ))
    } else {
        None
    };

    let schedule = cfg.mix_schedule();
    let mut reports = Vec::new();
    // Monotonicity watermark for the server-side request counter across
    // the whole sweep (cumulative since boot, so it must only grow).
    let mut srv_requests_seen = 0u64;
    for &level in &cfg.levels {
        for &batch in &cfg.batch_sizes {
            let counter = Arc::new(AtomicUsize::new(0));
            let t0 = Instant::now();
            let stats: Vec<ThreadStats> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..level)
                    .map(|t| {
                        let addr = addr.clone();
                        let counter = counter.clone();
                        let schedule = &schedule;
                        let total = cfg.sessions_per_level;
                        let seed = cfg.seed;
                        let report_snapshot = report_snapshot.clone();
                        scope.spawn(move || -> Result<ThreadStats, String> {
                            let mut client = RetryClient::connect(
                                &addr,
                                seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                            );
                            let mut stats = ThreadStats::default();
                            loop {
                                let i = counter.fetch_add(1, Ordering::Relaxed);
                                if i >= total {
                                    break;
                                }
                                let name = &schedule[i % schedule.len()];
                                let spec = policy_spec(name, seed ^ (i as u64) << 17)
                                    .expect("mix validated");
                                let req = CreateSessionReq {
                                    snapshot: "bench".into(),
                                    policy: spec,
                                    world_seed: seed.wrapping_add(i as u64),
                                };
                                let report_snap = report_snapshot
                                    .as_deref()
                                    .filter(|_| cfg.is_report_session(i));
                                let (ledger, reported) =
                                    drive_session(&mut client, &req, batch, report_snap)
                                        .map_err(|e| format!("session {i} ({name}): {e}"))?;
                                stats.report_sessions += usize::from(reported);
                                stats.sessions += 1;
                                stats.seeds += ledger.selected.len();
                            }
                            stats.latencies = client.latencies;
                            stats.retries = client.retries;
                            stats.shed_503 = client.shed_503;
                            Ok(stats)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("loadgen thread panicked"))
                    .collect::<Result<Vec<_>, String>>()
            })?;
            let wall_s = t0.elapsed().as_secs_f64();

            // O(buckets) fold of the per-thread histograms (merge is
            // element-wise and associative, pinned by the obs property tests).
            let latencies = Histogram::new();
            for s in &stats {
                latencies.merge_from(&s.latencies);
            }
            let requests = latencies.count() as usize;
            let sessions: usize = stats.iter().map(|s| s.sessions).sum();
            let srv = scrape_server_side(&addr, &mut srv_requests_seen)?;
            reports.push(LevelReport {
                mode: "closed",
                level,
                rate: 0.0,
                batch_size: batch,
                sessions,
                requests,
                seeds: stats.iter().map(|s| s.seeds).sum(),
                report_sessions: stats.iter().map(|s| s.report_sessions).sum(),
                wall_s,
                rps: requests as f64 / wall_s.max(1e-9),
                goodput_sps: sessions as f64 / wall_s.max(1e-9),
                p50_us: latencies.quantile(0.50) / 1_000.0,
                p95_us: latencies.quantile(0.95) / 1_000.0,
                p99_us: latencies.quantile(0.99) / 1_000.0,
                sojourn_p95_ms: 0.0,
                retries: stats.iter().map(|s| s.retries).sum(),
                shed_503: stats.iter().map(|s| s.shed_503).sum(),
                recovered_sessions: fetch_recovered(&addr),
                srv_requests: srv.requests,
                srv_p50_us: srv.p50_us,
                srv_p95_us: srv.p95_us,
                srv_p99_us: srv.p99_us,
            });
        }
    }

    if let Some(rate) = cfg.rate {
        reports.push(run_open_loop(
            cfg,
            &addr,
            rate,
            report_snapshot.as_deref(),
            &mut srv_requests_seen,
        )?);
    }

    // Crash-restart drill: a separate journaling `atpm-served` child
    // process, kill -9'd under load; the record it emits is the durability
    // half of the bench report.
    if let Some(every) = cfg.crash_every {
        reports.push(run_crash_drill(cfg, every)?);
    }

    // One profile window under load closes every run: the hot frames must
    // land in the sampling core, or the run fails (the CI profile-smoke
    // contract; see `drive_profile`).
    drive_profile(&addr, cfg)?;

    if let Some(server) = own_server.as_mut() {
        server.shutdown();
    }

    if let Some(path) = &cfg.json_path {
        let json = Json::Arr(reports.iter().map(LevelReport::to_json).collect()).encode();
        std::fs::write(path, json + "\n").map_err(|e| format!("write {path}: {e}"))?;
    }
    Ok(reports)
}

/// Open-loop phase: `cfg.open_sessions` arrivals scheduled at exactly
/// `rate` per second from a common origin; `cfg.open_workers` client
/// threads absorb them. When the server (or the worker pool) falls behind,
/// arrivals queue and the sojourn percentiles show it — that is the
/// measurement.
fn run_open_loop(
    cfg: &LoadgenConfig,
    addr: &str,
    rate: f64,
    report_snapshot: Option<&Snapshot>,
    srv_requests_seen: &mut u64,
) -> Result<LevelReport, String> {
    struct OpenStats {
        inner: ThreadStats,
        sojourns_ns: Vec<u64>,
    }

    let schedule = cfg.mix_schedule();
    let total = cfg.open_sessions;
    // The open-loop phase is a single measurement; it drives at the first
    // configured batch size (1 unless `--batch-size` says otherwise).
    let batch = cfg.batch_sizes[0];
    let counter = Arc::new(AtomicUsize::new(0));
    let t0 = Instant::now();
    let stats: Vec<OpenStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.open_workers)
            .map(|t| {
                let counter = counter.clone();
                let schedule = &schedule;
                let seed = cfg.seed;
                scope.spawn(move || -> Result<OpenStats, String> {
                    let mut client = RetryClient::connect(
                        addr,
                        seed ^ 0xA5A5 ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let mut stats = OpenStats {
                        inner: ThreadStats::default(),
                        sojourns_ns: Vec::new(),
                    };
                    loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        // Fixed-rate arrival process: session i is *due* at
                        // t0 + i/rate, regardless of how the others fared.
                        let due = t0 + Duration::from_secs_f64(i as f64 / rate);
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let name = &schedule[i % schedule.len()];
                        let spec =
                            policy_spec(name, seed ^ (i as u64) << 17).expect("mix validated");
                        let req = CreateSessionReq {
                            snapshot: "bench".into(),
                            policy: spec,
                            world_seed: seed.wrapping_add(i as u64),
                        };
                        let report_snap = report_snapshot.filter(|_| cfg.is_report_session(i));
                        let (ledger, reported) =
                            drive_session(&mut client, &req, batch, report_snap)
                                .map_err(|e| format!("open session {i} ({name}): {e}"))?;
                        stats.inner.report_sessions += usize::from(reported);
                        stats.inner.sessions += 1;
                        stats.inner.seeds += ledger.selected.len();
                        // Sojourn from the *scheduled* arrival: overload
                        // shows up as queueing delay here.
                        stats.sojourns_ns.push(due.elapsed().as_nanos() as u64);
                    }
                    stats.inner.latencies = client.latencies;
                    stats.inner.retries = client.retries;
                    stats.inner.shed_503 = client.shed_503;
                    Ok(stats)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("open-loop thread panicked"))
            .collect::<Result<Vec<_>, String>>()
    })?;
    let wall_s = t0.elapsed().as_secs_f64();

    let latencies = Histogram::new();
    for s in &stats {
        latencies.merge_from(&s.inner.latencies);
    }
    let mut sojourns: Vec<u64> = stats
        .iter()
        .flat_map(|s| s.sojourns_ns.iter().copied())
        .collect();
    sojourns.sort_unstable();
    let requests = latencies.count() as usize;
    let sessions: usize = stats.iter().map(|s| s.inner.sessions).sum();
    let srv = scrape_server_side(addr, srv_requests_seen)?;
    Ok(LevelReport {
        mode: "open",
        level: cfg.open_workers,
        rate,
        batch_size: batch,
        sessions,
        requests,
        seeds: stats.iter().map(|s| s.inner.seeds).sum(),
        report_sessions: stats.iter().map(|s| s.inner.report_sessions).sum(),
        wall_s,
        rps: requests as f64 / wall_s.max(1e-9),
        goodput_sps: sessions as f64 / wall_s.max(1e-9),
        p50_us: latencies.quantile(0.50) / 1_000.0,
        p95_us: latencies.quantile(0.95) / 1_000.0,
        p99_us: latencies.quantile(0.99) / 1_000.0,
        sojourn_p95_ms: percentile(&sojourns, 0.95) / 1_000.0,
        retries: stats.iter().map(|s| s.inner.retries).sum(),
        shed_503: stats.iter().map(|s| s.inner.shed_503).sum(),
        recovered_sessions: fetch_recovered(addr),
        srv_requests: srv.requests,
        srv_p50_us: srv.p50_us,
        srv_p95_us: srv.p95_us,
        srv_p99_us: srv.p99_us,
    })
}

/// Handle to the `atpm-served` child under the crash drill. Kills and
/// reaps the process on drop so a failed drill doesn't leak a server.
struct ServedChild(std::process::Child);

impl Drop for ServedChild {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Locates the `atpm-served` binary next to the running executable:
/// `target/<profile>/atpm-served`, one directory up when this binary runs
/// from `target/<profile>/deps/` (as test binaries do).
fn served_binary() -> Result<std::path::PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("crash drill: current_exe: {e}"))?;
    let mut dir = exe.parent();
    for _ in 0..2 {
        let Some(d) = dir else { break };
        let cand = d.join("atpm-served");
        if cand.is_file() {
            return Ok(cand);
        }
        dir = d.parent();
    }
    Err(
        "crash drill: atpm-served not found next to this binary; build it first \
         (cargo build -p atpm-serve --bin atpm-served)"
            .into(),
    )
}

/// Spawns `atpm-served` journaling under `--fsync group:5` with the same
/// preset snapshot every loadgen run measures (see [`snapshot_req`]).
fn spawn_served(
    cfg: &LoadgenConfig,
    addr: &str,
    journal: &std::path::Path,
) -> Result<ServedChild, String> {
    let bin = served_binary()?;
    let child = std::process::Command::new(&bin)
        .arg("--addr")
        .arg(addr)
        .arg("--journal")
        .arg(journal)
        .args(["--fsync", "group:5", "--checkpoint-every", "1"])
        .args(["--preset", "nethept", "--name", "bench"])
        .arg("--scale")
        .arg(cfg.scale.to_string())
        .arg("--k")
        .arg(cfg.k.to_string())
        .arg("--rr-theta")
        .arg(cfg.rr_theta.to_string())
        .arg("--seed")
        .arg(cfg.seed.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .map_err(|e| format!("crash drill: spawn {}: {e}", bin.display()))?;
    Ok(ServedChild(child))
}

/// Polls `/healthz` until the server answers. `atpm-served` builds its boot
/// snapshot (and replays the journal) before it starts listening, so a
/// healthz answer means the store is loaded and recovery is complete.
fn wait_healthz(addr: &str, deadline: Duration) -> Result<(), String> {
    let t0 = Instant::now();
    loop {
        if let Ok(mut c) = HttpClient::connect(addr) {
            if c.call("GET", "/healthz", &Json::obj([])).is_ok() {
                return Ok(());
            }
        }
        if t0.elapsed() > deadline {
            return Err(format!(
                "crash drill: server at {addr} not healthy after {deadline:?}"
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The crash-restart drill (`--crash-every N`): the durability contract,
/// measured end to end through real processes.
///
/// Boots `atpm-served` as a child process journaling under `--fsync
/// group:5`, interleaves N+ sessions through it (so sessions are always
/// mid-flight), and SIGKILLs the process every `every` completed sessions —
/// no drain, no shutdown fsync, exactly the failure the group-commit
/// barrier exists for. After each kill the supervisor restarts the server
/// on the same journal and the client rides the transport retries through
/// the outage (a replayed `next` re-serves the pending seed; a replayed
/// `observe` answering 409 means the original landed).
///
/// Hard-fails (propagating `Err` out of the run) unless:
///
/// * every session completes and its ledger is **bit-equal**
///   (`f64::to_bits` on profit, exact on every other field) to an
///   uninterrupted in-process reference run over the same snapshot — acked
///   state must never be lost or altered by a kill;
/// * at least one kill actually happened and the restarted server reported
///   recovering journaled sessions (`recovered_sessions` on healthz).
fn run_crash_drill(cfg: &LoadgenConfig, every: usize) -> Result<LevelReport, String> {
    // Enough sessions that at least one kill lands with work in flight.
    let total = cfg.sessions_per_level.max(every + 1);
    let schedule = cfg.mix_schedule();
    let session_req = |i: usize| CreateSessionReq {
        snapshot: "bench".into(),
        policy: policy_spec(&schedule[i % schedule.len()], cfg.seed ^ (i as u64) << 17)
            .expect("mix validated"),
        world_seed: cfg.seed.wrapping_add(i as u64),
    };

    // Reference ledgers: the same sessions, uninterrupted, in process.
    let reference: Vec<Ledger> = {
        let state = AppState::new();
        state.store.insert(
            Snapshot::build(&snapshot_req(cfg))
                .map_err(|e| format!("crash drill: reference snapshot: {e}"))?,
        );
        let mut client = atpm_serve::client::LocalClient::new(state);
        (0..total)
            .map(|i| client.run_session(&session_req(i)))
            .collect::<Result<_, _>>()
            .map_err(|e| format!("crash drill: reference run: {e}"))?
    };

    // An ephemeral port the child can bind: bind :0, read, release. (The
    // server's listener sets SO_REUSEADDR, so respawns rebind immediately.)
    let addr = {
        let probe = std::net::TcpListener::bind("127.0.0.1:0")
            .map_err(|e| format!("crash drill: probe bind: {e}"))?;
        probe
            .local_addr()
            .map_err(|e| format!("crash drill: probe addr: {e}"))?
            .to_string()
    };
    let dir = std::env::temp_dir().join(format!("atpm-crash-drill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("crash drill: mkdir {dir:?}: {e}"))?;
    let journal = dir.join("journal");
    let boot_deadline = Duration::from_secs(120);
    let mut child = spawn_served(cfg, &addr, &journal)?;
    wait_healthz(&addr, boot_deadline)?;

    let mut client =
        RetryClient::connect(&addr, cfg.seed ^ 0xC4A5_C4A5).with_max_attempts(MAX_ATTEMPTS * 8);
    let t0 = Instant::now();

    // Create everything up front, then drive the sessions round-robin one
    // seed batch at a time — kills always land with sessions mid-flight.
    let mut tokens = Vec::with_capacity(total);
    for i in 0..total {
        tokens.push(
            client
                .create_session(&session_req(i))
                .map_err(|e| format!("crash drill: create session {i}: {e}"))?,
        );
    }
    let mut ledgers: Vec<Option<Ledger>> = vec![None; total];
    let mut completed = 0usize;
    let mut kills = 0usize;
    let mut recovered_total = 0u64;
    while completed < total {
        for i in 0..total {
            if ledgers[i].is_some() {
                continue;
            }
            let step = (|client: &mut RetryClient| -> Result<Option<Ledger>, ApiError> {
                match client.next(&tokens[i])? {
                    Some(seeds) => {
                        for seed in seeds {
                            client.observe(&tokens[i], &ObserveReq::Simulate { seed })?;
                        }
                        Ok(None)
                    }
                    None => {
                        let ledger = client.ledger(&tokens[i])?;
                        client.delete_session(&tokens[i])?;
                        Ok(Some(ledger))
                    }
                }
            })(&mut client)
            .map_err(|e| format!("crash drill: session {i}: {e}"))?;
            if let Some(ledger) = step {
                ledgers[i] = Some(ledger);
                completed += 1;
                if completed.is_multiple_of(every) && completed < total {
                    // SIGKILL mid-run: the remaining sessions are live on
                    // the server with acked, journaled state.
                    drop(child);
                    kills += 1;
                    child = spawn_served(cfg, &addr, &journal)?;
                    wait_healthz(&addr, boot_deadline)?;
                    recovered_total += fetch_recovered(&addr);
                }
            }
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();

    // The whole point: acked state survived every kill bit-for-bit.
    for (i, (got, want)) in ledgers.iter().zip(&reference).enumerate() {
        let got = got.as_ref().expect("completed == total");
        if got.profit.to_bits() != want.profit.to_bits()
            || got.to_json().encode() != want.to_json().encode()
        {
            return Err(format!(
                "crash drill: session {i} ledger diverged after {kills} kills: \
                 profit {} (bits {:#018x}) vs reference {} (bits {:#018x})",
                got.profit,
                got.profit.to_bits(),
                want.profit,
                want.profit.to_bits(),
            ));
        }
    }
    if kills == 0 {
        return Err("crash drill: no kill happened (too few sessions for --crash-every)".into());
    }
    if recovered_total == 0 {
        return Err(format!(
            "crash drill: {kills} kills but the restarted server never reported \
             recovered sessions — the journal replay is not happening"
        ));
    }

    // Server-side half from the (last incarnation of the) drill server.
    // Its counters reset at each kill, so the watermark is drill-local.
    let srv = scrape_server_side(&addr, &mut 0)?;
    let report = LevelReport {
        mode: "crash",
        level: 1,
        rate: 0.0,
        batch_size: 1,
        sessions: total,
        requests: client.latencies.count() as usize,
        seeds: ledgers
            .iter()
            .map(|l| l.as_ref().map_or(0, |l| l.selected.len()))
            .sum(),
        report_sessions: 0,
        wall_s,
        rps: client.latencies.count() as f64 / wall_s.max(1e-9),
        goodput_sps: total as f64 / wall_s.max(1e-9),
        p50_us: client.latencies.quantile(0.50) / 1_000.0,
        p95_us: client.latencies.quantile(0.95) / 1_000.0,
        p99_us: client.latencies.quantile(0.99) / 1_000.0,
        sojourn_p95_ms: 0.0,
        retries: client.retries,
        shed_503: client.shed_503,
        recovered_sessions: recovered_total,
        srv_requests: srv.requests,
        srv_p50_us: srv.p50_us,
        srv_p95_us: srv.p95_us,
        srv_p99_us: srv.p99_us,
    };
    drop(child);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(report)
}

/// Samples the server's `recovered_sessions` healthz counter; 0 if the
/// endpoint is unreachable or predates the field.
fn fetch_recovered(addr: &str) -> u64 {
    HttpClient::connect(addr)
        .ok()
        .and_then(|mut c| c.call("GET", "/healthz", &Json::obj([])).ok())
        .and_then(|h| h.get("recovered_sessions").and_then(Json::as_u64))
        .unwrap_or(0)
}

/// Renders the report table.
pub fn render(reports: &[LevelReport]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>6} {:>6} {:>5} {:>9} {:>9} {:>6} {:>8} {:>9} {:>8} {:>9} {:>9} {:>9} {:>10} {:>10} {:>11} {:>7} {:>6} {:>5}",
        "mode",
        "level",
        "rate",
        "batch",
        "sessions",
        "requests",
        "seeds",
        "wall_s",
        "rps",
        "good_sps",
        "p50_us",
        "p95_us",
        "p99_us",
        "srv_p50_us",
        "srv_p95_us",
        "soj_p95_ms",
        "retries",
        "shed",
        "recov"
    );
    for r in reports {
        let _ = writeln!(
            out,
            "{:>6} {:>6} {:>6.1} {:>5} {:>9} {:>9} {:>6} {:>8.2} {:>9.0} {:>8.1} {:>9.0} {:>9.0} {:>9.0} {:>10.0} {:>10.0} {:>11.1} {:>7} {:>6} {:>5}",
            r.mode,
            r.level,
            r.rate,
            r.batch_size,
            r.sessions,
            r.requests,
            r.seeds,
            r.wall_s,
            r.rps,
            r.goodput_sps,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.srv_p50_us,
            r.srv_p95_us,
            r.sojourn_p95_ms,
            r.retries,
            r.shed_503,
            r.recovered_sessions
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        let cfg = LoadgenConfig::parse(&[]).unwrap();
        assert!(cfg.levels.len() >= 2, "default sweeps >= 2 levels");
        let cfg = LoadgenConfig::parse(&s(&[
            "--levels",
            "1,8",
            "--sessions",
            "10",
            "--mix",
            "ars=1",
            "--no-json",
        ]))
        .unwrap();
        assert_eq!(cfg.levels, vec![1, 8]);
        assert_eq!(cfg.sessions_per_level, 10);
        assert!(cfg.json_path.is_none());
        assert_eq!(cfg.mix_schedule(), vec!["ars"]);
    }

    #[test]
    fn quick_keeps_json_and_addr_overrides() {
        let cfg = LoadgenConfig::parse(&s(&["--json", "out.json", "--quick"])).unwrap();
        assert_eq!(cfg.json_path.as_deref(), Some("out.json"));
        assert_eq!(cfg.levels, vec![1, 2]);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(LoadgenConfig::parse(&s(&["--levels", "0"])).is_err());
        assert!(LoadgenConfig::parse(&s(&["--sessions", "0"])).is_err());
        assert!(LoadgenConfig::parse(&s(&["--mix", "nope=1"])).is_err());
        assert!(LoadgenConfig::parse(&s(&["--mix", "hatp"])).is_err());
        assert!(LoadgenConfig::parse(&s(&["--whatever"])).is_err());
    }

    #[test]
    fn mix_schedule_expands_weights() {
        let cfg = LoadgenConfig::parse(&s(&["--mix", "hatp=1,deploy_all=2"])).unwrap();
        assert_eq!(cfg.mix_schedule(), vec!["hatp", "deploy_all", "deploy_all"]);
    }

    #[test]
    fn percentiles_are_sane() {
        let ns: Vec<u64> = (1..=100).map(|i| i * 1_000).collect();
        assert!((percentile(&ns, 0.5) - 50.0).abs() <= 1.0);
        assert!((percentile(&ns, 0.99) - 99.0).abs() <= 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn parse_backend_rate_and_open_flags() {
        let cfg = LoadgenConfig::parse(&s(&[
            "--backend",
            "pool",
            "--rate",
            "2.5",
            "--open-sessions",
            "9",
            "--open-workers",
            "3",
            "--boot-workers",
            "7",
        ]))
        .unwrap();
        assert_eq!(cfg.backend, Backend::Pool);
        assert_eq!(cfg.rate, Some(2.5));
        assert_eq!(cfg.open_sessions, 9);
        assert_eq!(cfg.open_workers, 3);
        assert_eq!(cfg.boot_workers, Some(7));
        assert!(LoadgenConfig::parse(&s(&["--backend", "nope"])).is_err());
        assert!(LoadgenConfig::parse(&s(&["--rate", "0"])).is_err());
        assert!(LoadgenConfig::parse(&s(&["--rate", "1", "--open-workers", "0"])).is_err());
        // --quick keeps an explicitly chosen backend and rate.
        let cfg =
            LoadgenConfig::parse(&s(&["--backend", "pool", "--rate", "4", "--quick"])).unwrap();
        assert_eq!(cfg.backend, Backend::Pool);
        assert_eq!(cfg.rate, Some(4.0));
    }

    #[test]
    fn boot_workers_decouple_from_levels_only_on_epoll() {
        let mut cfg = LoadgenConfig {
            levels: vec![1, 64],
            ..Default::default()
        };
        cfg.backend = Backend::Epoll;
        assert_eq!(boot_workers(&cfg), 4, "epoll: fixed small pool");
        cfg.backend = Backend::Pool;
        assert_eq!(boot_workers(&cfg), 65, "pool: a thread per connection");
        cfg.boot_workers = Some(2);
        assert_eq!(boot_workers(&cfg), 2, "explicit override wins");
    }

    #[test]
    fn smoke_run_measures_two_levels() {
        // A miniature end-to-end sweep: real server, real sockets, tiny
        // snapshot. Keeps CI honest about the whole loadgen path.
        let cfg = LoadgenConfig {
            levels: vec![1, 2],
            sessions_per_level: 2,
            scale: 0.005,
            k: 2,
            rr_theta: 500,
            mix: vec![("deploy_all".into(), 1)],
            json_path: None,
            ..Default::default()
        };
        let reports = run(&cfg).unwrap();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r.mode, "closed");
            assert_eq!(r.sessions, 2);
            assert!(r.requests > 0);
            assert!(r.rps > 0.0);
            assert!(r.p50_us <= r.p95_us && r.p95_us <= r.p99_us);
            // An unloaded smoke run never sheds, retries, or recovers —
            // and the schema still carries the counters.
            assert_eq!((r.retries, r.shed_503, r.recovered_sessions), (0, 0, 0));
            // The /metrics scrape folded in: the server handled at least
            // this level's requests, and its handling-time quantiles are
            // positive and ordered.
            assert!(r.srv_requests >= r.requests as u64);
            assert!(r.srv_p50_us > 0.0);
            assert!(r.srv_p50_us <= r.srv_p95_us && r.srv_p95_us <= r.srv_p99_us);
            let json = r.to_json();
            assert_eq!(json.get("shed_503").and_then(Json::as_u64), Some(0));
            assert_eq!(json.get("retries").and_then(Json::as_u64), Some(0));
            assert!(json.get("srv_p50_us").is_some(), "schema carries srv side");
        }
        // Cumulative server counter: later levels see at least as many.
        assert!(reports[1].srv_requests >= reports[0].srv_requests);
        assert!(render(&reports).contains("rps"));
        assert!(render(&reports).contains("shed"));
    }

    #[test]
    fn smoke_open_loop_reports_goodput_and_sojourn() {
        let cfg = LoadgenConfig {
            levels: vec![1],
            sessions_per_level: 1,
            rate: Some(50.0),
            open_sessions: 8,
            open_workers: 4,
            scale: 0.005,
            k: 2,
            rr_theta: 500,
            mix: vec![("deploy_all".into(), 1)],
            json_path: None,
            ..Default::default()
        };
        let reports = run(&cfg).unwrap();
        assert_eq!(reports.len(), 2, "closed level + open record");
        let open = &reports[1];
        assert_eq!(open.mode, "open");
        assert_eq!(open.rate, 50.0);
        assert_eq!(open.sessions, 8);
        assert!(open.goodput_sps > 0.0);
        assert!(open.sojourn_p95_ms > 0.0);
        let json = open.to_json();
        assert_eq!(
            json.get("mode").and_then(Json::as_str),
            Some("open"),
            "wire schema carries the mode tag"
        );
    }

    #[test]
    fn report_frac_parses_and_schedules_deterministically() {
        let cfg = LoadgenConfig::parse(&s(&["--report-frac", "0.5"])).unwrap();
        assert_eq!(cfg.report_frac, 0.5);
        let picked: Vec<bool> = (0..8).map(|i| cfg.is_report_session(i)).collect();
        assert_eq!(picked.iter().filter(|&&b| b).count(), 4, "{picked:?}");
        // Deterministic: same config, same assignment.
        assert_eq!(
            picked,
            (0..8).map(|i| cfg.is_report_session(i)).collect::<Vec<_>>()
        );
        // Endpoints.
        let none = LoadgenConfig::parse(&[]).unwrap();
        assert!((0..16).all(|i| !none.is_report_session(i)));
        let all = LoadgenConfig::parse(&s(&["--report-frac", "1"])).unwrap();
        assert!((0..16).all(|i| all.is_report_session(i)));
        // Out of range rejected.
        assert!(LoadgenConfig::parse(&s(&["--report-frac", "1.5"])).is_err());
        assert!(LoadgenConfig::parse(&s(&["--report-frac", "-0.1"])).is_err());
    }

    #[test]
    fn smoke_run_with_report_mix_exercises_the_report_path() {
        // Half the sessions drive the client-world report protocol; the
        // ledger totals must come back exactly like simulate-mode (the e2e
        // suite pins the byte-identity; here we pin the loadgen plumbing).
        let cfg = LoadgenConfig {
            levels: vec![2],
            sessions_per_level: 4,
            scale: 0.005,
            k: 2,
            rr_theta: 500,
            mix: vec![("deploy_all".into(), 1)],
            report_frac: 0.5,
            json_path: None,
            ..Default::default()
        };
        let reports = run(&cfg).unwrap();
        assert_eq!(reports[0].sessions, 4);
        assert_eq!(reports[0].report_sessions, 2, "half the mix reports");
        assert!(reports[0].seeds > 0);
        let json = reports[0].to_json();
        assert_eq!(
            json.get("report_sessions").and_then(Json::as_u64),
            Some(2),
            "schema carries the report count"
        );
    }

    #[test]
    fn parse_batch_size_flag() {
        assert_eq!(LoadgenConfig::parse(&[]).unwrap().batch_sizes, vec![1]);
        let cfg = LoadgenConfig::parse(&s(&["--batch-size", "1,4,8"])).unwrap();
        assert_eq!(cfg.batch_sizes, vec![1, 4, 8]);
        assert!(LoadgenConfig::parse(&s(&["--batch-size", "0"])).is_err());
        assert!(LoadgenConfig::parse(&s(&["--batch-size", "4,0"])).is_err());
        assert!(LoadgenConfig::parse(&s(&["--batch-size", "nope"])).is_err());
        // --quick keeps an explicitly chosen sweep.
        let cfg = LoadgenConfig::parse(&s(&["--batch-size", "1,4", "--quick"])).unwrap();
        assert_eq!(cfg.batch_sizes, vec![1, 4]);
        // threshold_batch is a valid mix policy.
        let cfg = LoadgenConfig::parse(&s(&["--mix", "threshold_batch=1"])).unwrap();
        assert_eq!(cfg.mix_schedule(), vec!["threshold_batch"]);
    }

    #[test]
    fn smoke_batched_sweep_amortizes_round_trips_with_identical_outcomes() {
        // One level, two batch sizes: the same sessions over the same
        // worlds must commit identical seed totals, while the K=4 leg
        // spends strictly fewer HTTP requests — the round-trip
        // amortization BENCH_serve.json exists to record. (deploy_all
        // only: its selections are observation-independent, so the seed
        // totals are k-invariant; ThresholdBatch's are legitimately not.)
        let cfg = LoadgenConfig {
            levels: vec![1],
            sessions_per_level: 3,
            scale: 0.005,
            k: 2,
            rr_theta: 500,
            mix: vec![("deploy_all".into(), 1)],
            batch_sizes: vec![1, 4],
            json_path: None,
            ..Default::default()
        };
        let reports = run(&cfg).unwrap();
        assert_eq!(reports.len(), 2, "one record per batch size");
        let (k1, k4) = (&reports[0], &reports[1]);
        assert_eq!((k1.batch_size, k4.batch_size), (1, 4));
        assert_eq!(k1.sessions, 3);
        assert_eq!(k4.sessions, 3);
        assert_eq!(
            k1.seeds, k4.seeds,
            "batching changes round trips, never the committed seeds"
        );
        assert!(
            k4.requests < k1.requests,
            "K=4 must amortize round trips ({} vs {})",
            k4.requests,
            k1.requests
        );
        assert_eq!(
            k4.to_json().get("batch_size").and_then(Json::as_u64),
            Some(4),
            "schema carries the batch size"
        );
    }

    #[test]
    fn parse_crash_every_flag() {
        let cfg = LoadgenConfig::parse(&s(&["--crash-every", "3"])).unwrap();
        assert_eq!(cfg.crash_every, Some(3));
        assert!(LoadgenConfig::parse(&s(&["--crash-every", "0"])).is_err());
        assert_eq!(LoadgenConfig::parse(&[]).unwrap().crash_every, None);
        // --quick keeps an explicitly chosen drill.
        let cfg = LoadgenConfig::parse(&s(&["--crash-every", "2", "--quick"])).unwrap();
        assert_eq!(cfg.crash_every, Some(2));
    }

    #[test]
    fn crash_drill_recovers_every_acked_session_bit_equal() {
        // The real thing, miniaturized: a journaling atpm-served child is
        // SIGKILLed twice mid-run and every session must still finish with
        // a ledger bit-equal to an uninterrupted reference run. Needs the
        // atpm-served binary, which `cargo test` builds because atpm-serve
        // has integration tests.
        let cfg = LoadgenConfig {
            sessions_per_level: 5,
            scale: 0.005,
            k: 2,
            rr_theta: 500,
            mix: vec![("deploy_all".into(), 2), ("ars".into(), 1)],
            json_path: None,
            ..Default::default()
        };
        let report = run_crash_drill(&cfg, 2).unwrap();
        assert_eq!(report.mode, "crash");
        assert_eq!(report.sessions, 5);
        assert!(report.seeds > 0);
        assert!(
            report.recovered_sessions > 0,
            "kills must force journal replays"
        );
        assert!(
            report.retries > 0,
            "the kill severs connections; the client must have ridden retries"
        );
        let json = report.to_json();
        assert_eq!(json.get("mode").and_then(Json::as_str), Some("crash"));
        assert!(json.get("recovered_sessions").and_then(Json::as_u64) > Some(0));
    }

    #[test]
    fn retry_client_surfaces_transport_errors_after_bounded_attempts() {
        // A port with nothing listening: every attempt is refused, so the
        // client must back off MAX_ATTEMPTS times and then report the
        // transport error instead of spinning forever.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let mut client = RetryClient::connect(&addr, 42);
        let err = client
            .call("POST", "/sessions", &Json::obj([]))
            .unwrap_err();
        assert_eq!(err.status, 500);
        assert!(err.message.starts_with("transport:"), "{}", err.message);
        assert_eq!(client.retries as u32, MAX_ATTEMPTS - 1);
    }

    #[test]
    fn smoke_run_against_pool_backend_oracle() {
        // The pool backend stays runnable as a differential oracle: same
        // driver, worker pool sized to the level. The mix doubles as the
        // threshold_batch wire-policy smoke.
        let cfg = LoadgenConfig {
            backend: Backend::Pool,
            levels: vec![2],
            sessions_per_level: 2,
            scale: 0.005,
            k: 2,
            rr_theta: 500,
            mix: vec![("deploy_all".into(), 1), ("threshold_batch".into(), 1)],
            json_path: None,
            ..Default::default()
        };
        let reports = run(&cfg).unwrap();
        assert_eq!(reports[0].sessions, 2);
    }
}
