//! Load generator for the `atpm-serve` HTTP service.
//!
//! Drives full adaptive sessions (create → next/observe loop → ledger →
//! delete) over loopback from `level` concurrent connections, with a
//! configurable policy mix, and reports throughput plus p50/p95/p99
//! per-request latency per concurrency level. Results extend the committed
//! perf trajectory as `BENCH_serve.json` (same spirit as `BENCH_ris.json`
//! for the in-process engine).
//!
//! By default the generator boots its own server on an ephemeral loopback
//! port (one process, zero setup — what the CI `serve-smoke` job runs);
//! `--addr` points it at an externally started server instead.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use atpm_serve::client::{HttpClient, ProtocolClient};
use atpm_serve::json::Json;
use atpm_serve::protocol::{CreateSessionReq, PolicySpec, SnapshotReq, SnapshotSource};
use atpm_serve::server::{AppState, ServeConfig, Server};

/// Loadgen knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Address of a running server; `None` boots one in-process.
    pub addr: Option<String>,
    /// Concurrent-session levels to sweep (one measurement each).
    pub levels: Vec<usize>,
    /// Full sessions to run per level (split across the connections).
    pub sessions_per_level: usize,
    /// Snapshot preset scale (NetHEPT stand-in).
    pub scale: f64,
    /// Snapshot target-set size.
    pub k: usize,
    /// Snapshot pre-frozen RR index size.
    pub rr_theta: usize,
    /// Base RNG seed (snapshot build, per-session worlds).
    pub seed: u64,
    /// Session mix as `(policy, weight)`; sessions cycle through the
    /// weighted expansion deterministically.
    pub mix: Vec<(String, usize)>,
    /// Where to write the JSON report (`None` = don't write).
    pub json_path: Option<String>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: None,
            levels: vec![1, 2, 4],
            sessions_per_level: 16,
            scale: 0.02,
            k: 6,
            rr_theta: 10_000,
            seed: 20200420,
            mix: vec![
                ("hatp".into(), 1),
                ("ars".into(), 2),
                ("deploy_all".into(), 3),
            ],
            json_path: Some("BENCH_serve.json".into()),
        }
    }
}

impl LoadgenConfig {
    /// `--quick`: the CI smoke configuration (seconds, not minutes, on one
    /// vCPU).
    pub fn quick() -> Self {
        LoadgenConfig {
            levels: vec![1, 2],
            sessions_per_level: 6,
            scale: 0.01,
            k: 4,
            rr_theta: 4_000,
            ..Default::default()
        }
    }

    /// Parses CLI flags.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut cfg = LoadgenConfig::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value_of = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("flag {name} needs a value"))
            };
            match arg.as_str() {
                "--quick" => {
                    let keep = (cfg.json_path.clone(), cfg.addr.clone());
                    cfg = LoadgenConfig::quick();
                    (cfg.json_path, cfg.addr) = keep;
                }
                "--addr" => cfg.addr = Some(value_of("--addr")?),
                "--levels" => {
                    cfg.levels = value_of("--levels")?
                        .split(',')
                        .map(|t| t.parse().map_err(|e| format!("bad --levels: {e}")))
                        .collect::<Result<_, _>>()?;
                }
                "--sessions" => {
                    cfg.sessions_per_level = value_of("--sessions")?
                        .parse()
                        .map_err(|e| format!("bad --sessions: {e}"))?;
                }
                "--scale" => {
                    cfg.scale = value_of("--scale")?
                        .parse()
                        .map_err(|e| format!("bad --scale: {e}"))?;
                }
                "--k" => {
                    cfg.k = value_of("--k")?
                        .parse()
                        .map_err(|e| format!("bad --k: {e}"))?;
                }
                "--rr-theta" => {
                    cfg.rr_theta = value_of("--rr-theta")?
                        .parse()
                        .map_err(|e| format!("bad --rr-theta: {e}"))?;
                }
                "--seed" => {
                    cfg.seed = value_of("--seed")?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?;
                }
                "--mix" => {
                    cfg.mix = value_of("--mix")?
                        .split(',')
                        .map(|part| {
                            let (name, w) = part
                                .split_once('=')
                                .ok_or_else(|| format!("bad --mix part '{part}'"))?;
                            let w: usize =
                                w.parse().map_err(|e| format!("bad --mix weight: {e}"))?;
                            Ok((name.to_string(), w))
                        })
                        .collect::<Result<_, String>>()?;
                }
                "--json" => cfg.json_path = Some(value_of("--json")?),
                "--no-json" => cfg.json_path = None,
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        if cfg.levels.is_empty() || cfg.levels.contains(&0) {
            return Err("need at least one nonzero concurrency level".into());
        }
        if cfg.sessions_per_level == 0 {
            return Err("need at least one session per level".into());
        }
        if cfg.mix.is_empty() || cfg.mix.iter().all(|(_, w)| *w == 0) {
            return Err("mix needs at least one positive weight".into());
        }
        for (name, _) in &cfg.mix {
            policy_spec(name, 0).ok_or_else(|| {
                format!("unknown policy '{name}' in mix (expected hatp | ars | deploy_all)")
            })?;
        }
        Ok(cfg)
    }

    /// The deterministic session → policy assignment: the weighted mix
    /// expanded and cycled.
    pub fn mix_schedule(&self) -> Vec<String> {
        self.mix
            .iter()
            .flat_map(|(name, w)| std::iter::repeat_n(name.clone(), *w))
            .collect()
    }
}

/// Builds the policy spec a mix entry names. Sampling knobs are deliberately
/// modest: loadgen measures the *service*, not HATP's asymptotics.
fn policy_spec(name: &str, session_seed: u64) -> Option<PolicySpec> {
    match name {
        "hatp" => Some(PolicySpec::Hatp {
            eps_threshold: Some(0.2),
            max_theta: Some(1 << 14),
            seed: session_seed,
            threads: 1,
        }),
        "ars" => Some(PolicySpec::Ars {
            prob: 0.5,
            seed: session_seed,
        }),
        "deploy_all" => Some(PolicySpec::DeployAll),
        _ => None,
    }
}

/// One level's measurement.
#[derive(Debug, Clone)]
pub struct LevelReport {
    /// Concurrent connections, each driving sessions back-to-back.
    pub level: usize,
    /// Completed sessions.
    pub sessions: usize,
    /// Total HTTP requests issued.
    pub requests: usize,
    /// Total seeds committed across sessions.
    pub seeds: usize,
    /// Wall-clock for the whole level, seconds.
    pub wall_s: f64,
    /// Requests per second.
    pub rps: f64,
    /// Latency percentiles over all requests, microseconds.
    pub p50_us: f64,
    /// 95th percentile, microseconds.
    pub p95_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
}

impl LevelReport {
    /// JSON form (one element of `BENCH_serve.json`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("level", Json::Num(self.level as f64)),
            ("sessions", Json::Num(self.sessions as f64)),
            ("requests", Json::Num(self.requests as f64)),
            ("seeds", Json::Num(self.seeds as f64)),
            ("wall_s", Json::Num(self.wall_s)),
            ("rps", Json::Num(self.rps)),
            ("p50_us", Json::Num(self.p50_us)),
            ("p95_us", Json::Num(self.p95_us)),
            ("p99_us", Json::Num(self.p99_us)),
        ])
    }
}

/// Per-thread measurement accumulator.
#[derive(Default)]
struct ThreadStats {
    latencies_ns: Vec<u64>,
    sessions: usize,
    seeds: usize,
}

/// An `HttpClient` wrapper that records per-request latency.
struct TimedClient {
    inner: HttpClient,
    latencies_ns: Vec<u64>,
}

impl ProtocolClient for TimedClient {
    fn call(
        &mut self,
        method: &str,
        path: &str,
        body: &Json,
    ) -> Result<Json, atpm_serve::protocol::ApiError> {
        let t0 = Instant::now();
        let out = self.inner.call(method, path, body);
        self.latencies_ns.push(t0.elapsed().as_nanos() as u64);
        out
    }
}

fn percentile(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() as f64 - 1.0) * q).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

/// The snapshot every loadgen run measures against.
pub fn snapshot_req(cfg: &LoadgenConfig) -> SnapshotReq {
    SnapshotReq {
        name: "bench".into(),
        source: SnapshotSource::Preset {
            dataset: "nethept".into(),
            scale: cfg.scale,
        },
        k: cfg.k,
        rr_theta: cfg.rr_theta,
        seed: cfg.seed,
        threads: 1,
    }
}

/// Runs the sweep. Boots an in-process server unless `cfg.addr` is set.
/// Returns one report per level; writes `cfg.json_path` if set.
pub fn run(cfg: &LoadgenConfig) -> Result<Vec<LevelReport>, String> {
    // Boot or attach.
    let mut own_server: Option<Server> = None;
    let addr = match &cfg.addr {
        Some(a) => a.clone(),
        None => {
            let workers = cfg.levels.iter().copied().max().unwrap_or(1) + 1;
            let server = Server::start(
                AppState::new(),
                &ServeConfig {
                    addr: "127.0.0.1:0".into(),
                    workers,
                },
            )
            .map_err(|e| format!("cannot start server: {e}"))?;
            let addr = server.addr().to_string();
            own_server = Some(server);
            addr
        }
    };

    // Load the snapshot once (not part of the measurement).
    let mut setup = HttpClient::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    setup
        .create_snapshot(&snapshot_req(cfg))
        .map_err(|e| format!("snapshot build failed: {e}"))?;
    drop(setup);

    let schedule = cfg.mix_schedule();
    let mut reports = Vec::new();
    for &level in &cfg.levels {
        let counter = Arc::new(AtomicUsize::new(0));
        let t0 = Instant::now();
        let stats: Vec<ThreadStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..level)
                .map(|_| {
                    let addr = addr.clone();
                    let counter = counter.clone();
                    let schedule = &schedule;
                    let total = cfg.sessions_per_level;
                    let seed = cfg.seed;
                    scope.spawn(move || -> Result<ThreadStats, String> {
                        let mut client = TimedClient {
                            inner: HttpClient::connect(&addr)
                                .map_err(|e| format!("connect: {e}"))?,
                            latencies_ns: Vec::new(),
                        };
                        let mut stats = ThreadStats::default();
                        loop {
                            let i = counter.fetch_add(1, Ordering::Relaxed);
                            if i >= total {
                                break;
                            }
                            let name = &schedule[i % schedule.len()];
                            let spec =
                                policy_spec(name, seed ^ (i as u64) << 17).expect("mix validated");
                            let ledger = client
                                .run_session(&CreateSessionReq {
                                    snapshot: "bench".into(),
                                    policy: spec,
                                    world_seed: seed.wrapping_add(i as u64),
                                })
                                .map_err(|e| format!("session {i} ({name}): {e}"))?;
                            stats.sessions += 1;
                            stats.seeds += ledger.selected.len();
                        }
                        stats.latencies_ns = client.latencies_ns;
                        Ok(stats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("loadgen thread panicked"))
                .collect::<Result<Vec<_>, String>>()
        })?;
        let wall_s = t0.elapsed().as_secs_f64();

        let mut latencies: Vec<u64> = stats
            .iter()
            .flat_map(|s| s.latencies_ns.iter().copied())
            .collect();
        latencies.sort_unstable();
        let requests = latencies.len();
        reports.push(LevelReport {
            level,
            sessions: stats.iter().map(|s| s.sessions).sum(),
            requests,
            seeds: stats.iter().map(|s| s.seeds).sum(),
            wall_s,
            rps: requests as f64 / wall_s.max(1e-9),
            p50_us: percentile(&latencies, 0.50),
            p95_us: percentile(&latencies, 0.95),
            p99_us: percentile(&latencies, 0.99),
        });
    }

    if let Some(server) = own_server.as_mut() {
        server.shutdown();
    }

    if let Some(path) = &cfg.json_path {
        let json = Json::Arr(reports.iter().map(LevelReport::to_json).collect()).encode();
        std::fs::write(path, json + "\n").map_err(|e| format!("write {path}: {e}"))?;
    }
    Ok(reports)
}

/// Renders the report table.
pub fn render(reports: &[LevelReport]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>9} {:>9} {:>6} {:>8} {:>9} {:>9} {:>9} {:>9}",
        "level", "sessions", "requests", "seeds", "wall_s", "rps", "p50_us", "p95_us", "p99_us"
    );
    for r in reports {
        let _ = writeln!(
            out,
            "{:>6} {:>9} {:>9} {:>6} {:>8.2} {:>9.0} {:>9.0} {:>9.0} {:>9.0}",
            r.level, r.sessions, r.requests, r.seeds, r.wall_s, r.rps, r.p50_us, r.p95_us, r.p99_us
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_flags() {
        let cfg = LoadgenConfig::parse(&[]).unwrap();
        assert!(cfg.levels.len() >= 2, "default sweeps >= 2 levels");
        let cfg = LoadgenConfig::parse(&s(&[
            "--levels",
            "1,8",
            "--sessions",
            "10",
            "--mix",
            "ars=1",
            "--no-json",
        ]))
        .unwrap();
        assert_eq!(cfg.levels, vec![1, 8]);
        assert_eq!(cfg.sessions_per_level, 10);
        assert!(cfg.json_path.is_none());
        assert_eq!(cfg.mix_schedule(), vec!["ars"]);
    }

    #[test]
    fn quick_keeps_json_and_addr_overrides() {
        let cfg = LoadgenConfig::parse(&s(&["--json", "out.json", "--quick"])).unwrap();
        assert_eq!(cfg.json_path.as_deref(), Some("out.json"));
        assert_eq!(cfg.levels, vec![1, 2]);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(LoadgenConfig::parse(&s(&["--levels", "0"])).is_err());
        assert!(LoadgenConfig::parse(&s(&["--sessions", "0"])).is_err());
        assert!(LoadgenConfig::parse(&s(&["--mix", "nope=1"])).is_err());
        assert!(LoadgenConfig::parse(&s(&["--mix", "hatp"])).is_err());
        assert!(LoadgenConfig::parse(&s(&["--whatever"])).is_err());
    }

    #[test]
    fn mix_schedule_expands_weights() {
        let cfg = LoadgenConfig::parse(&s(&["--mix", "hatp=1,deploy_all=2"])).unwrap();
        assert_eq!(cfg.mix_schedule(), vec!["hatp", "deploy_all", "deploy_all"]);
    }

    #[test]
    fn percentiles_are_sane() {
        let ns: Vec<u64> = (1..=100).map(|i| i * 1_000).collect();
        assert!((percentile(&ns, 0.5) - 50.0).abs() <= 1.0);
        assert!((percentile(&ns, 0.99) - 99.0).abs() <= 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn smoke_run_measures_two_levels() {
        // A miniature end-to-end sweep: real server, real sockets, tiny
        // snapshot. Keeps CI honest about the whole loadgen path.
        let cfg = LoadgenConfig {
            levels: vec![1, 2],
            sessions_per_level: 2,
            scale: 0.005,
            k: 2,
            rr_theta: 500,
            mix: vec![("deploy_all".into(), 1)],
            json_path: None,
            ..Default::default()
        };
        let reports = run(&cfg).unwrap();
        assert_eq!(reports.len(), 2);
        for r in &reports {
            assert_eq!(r.sessions, 2);
            assert!(r.requests > 0);
            assert!(r.rps > 0.0);
            assert!(r.p50_us <= r.p95_us && r.p95_us <= r.p99_us);
        }
        assert!(render(&reports).contains("rps"));
    }
}
