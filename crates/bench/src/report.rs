//! ASCII table/series reporters that mirror the paper's figures: one row per
//! k (or λ / ε / scale factor), one column per algorithm.

use std::collections::BTreeMap;

/// One measured cell of an experiment grid.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Row key (k, λ, ε×100, sample-size factor — whatever the x-axis is).
    pub x: u64,
    /// Column key (algorithm name).
    pub series: String,
    /// Measured value (profit or seconds).
    pub value: f64,
}

/// A rectangular experiment result: x-axis × series.
#[derive(Debug, Default, Clone)]
pub struct Table {
    cells: Vec<Cell>,
}

impl Table {
    /// An empty table.
    pub fn new() -> Self {
        Table::default()
    }

    /// Records one measurement.
    pub fn push(&mut self, x: u64, series: &str, value: f64) {
        self.cells.push(Cell {
            x,
            series: series.to_string(),
            value,
        });
    }

    /// All recorded cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Looks up one value.
    pub fn get(&self, x: u64, series: &str) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.x == x && c.series == series)
            .map(|c| c.value)
    }

    /// Series names in first-appearance order.
    pub fn series_names(&self) -> Vec<String> {
        let mut names = Vec::new();
        for c in &self.cells {
            if !names.contains(&c.series) {
                names.push(c.series.clone());
            }
        }
        names
    }

    /// Renders the table: rows sorted by x, one column per series.
    ///
    /// `x_label` names the x-axis (`k`, `lambda`, ...); `fmt` formats values
    /// (profits use one decimal, times use scientific-ish seconds).
    pub fn render(&self, title: &str, x_label: &str, fmt: ValueFormat) -> String {
        use std::fmt::Write;
        let names = self.series_names();
        let mut rows: BTreeMap<u64, BTreeMap<&str, f64>> = BTreeMap::new();
        for c in &self.cells {
            rows.entry(c.x).or_default().insert(&c.series, c.value);
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {title}");
        let _ = write!(out, "{x_label:>8}");
        for n in &names {
            let _ = write!(out, " {n:>12}");
        }
        let _ = writeln!(out);
        let _ = write!(out, "{:->8}", "");
        for _ in &names {
            let _ = write!(out, " {:->12}", "");
        }
        let _ = writeln!(out);
        for (x, by_series) in rows {
            let _ = write!(out, "{x:>8}");
            for n in &names {
                match by_series.get(n.as_str()) {
                    Some(v) => {
                        let _ = write!(out, " {:>12}", fmt.format(*v));
                    }
                    None => {
                        let _ = write!(out, " {:>12}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// How a cell value is rendered.
#[derive(Debug, Clone, Copy)]
pub enum ValueFormat {
    /// Profit values: one decimal place.
    Profit,
    /// Wall-clock seconds: three significant digits.
    Seconds,
    /// Raw counts.
    Count,
}

impl ValueFormat {
    fn format(self, v: f64) -> String {
        match self {
            ValueFormat::Profit => format!("{v:.1}"),
            ValueFormat::Seconds => {
                if v >= 100.0 {
                    format!("{v:.0}s")
                } else if v >= 1.0 {
                    format!("{v:.1}s")
                } else {
                    format!("{:.0}ms", v * 1000.0)
                }
            }
            ValueFormat::Count => format!("{v:.0}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trips_cells() {
        let mut t = Table::new();
        t.push(10, "HATP", 1.5);
        t.push(10, "NDG", 1.2);
        t.push(25, "HATP", 2.5);
        assert_eq!(t.get(10, "HATP"), Some(1.5));
        assert_eq!(t.get(25, "NDG"), None);
        assert_eq!(t.series_names(), vec!["HATP", "NDG"]);
    }

    #[test]
    fn render_is_rectangular_with_missing_cells() {
        let mut t = Table::new();
        t.push(10, "A", 1.0);
        t.push(20, "B", 2.0);
        let s = t.render("demo", "k", ValueFormat::Profit);
        assert!(s.contains("## demo"));
        assert!(s.contains("-"), "missing cells show a dash");
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5, "title, header, rule, two rows");
    }

    #[test]
    fn formats() {
        assert_eq!(ValueFormat::Profit.format(3.16), "3.2");
        assert_eq!(ValueFormat::Seconds.format(0.5), "500ms");
        assert_eq!(ValueFormat::Seconds.format(12.3), "12.3s");
        assert_eq!(ValueFormat::Seconds.format(1234.0), "1234s");
        assert_eq!(ValueFormat::Count.format(42.0), "42");
    }
}
