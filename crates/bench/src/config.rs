//! Experiment configuration and CLI parsing (no external argument-parsing
//! dependency; the grammar is tiny).

use atpm_graph::gen::Dataset;
use atpm_graph::Graph;

/// Knobs shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Multiplier on each dataset's default scale (1.0 = laptop defaults;
    /// combined with `paper`, scales become Table II sizes).
    pub scale_mult: f64,
    /// Paper-fidelity mode: full k-grid, 20 worlds, full dataset scales.
    pub paper: bool,
    /// Number of sampled realizations per configuration.
    pub worlds: usize,
    /// Seed-set sizes to sweep.
    pub k_grid: Vec<usize>,
    /// Sampler worker threads. Defaults to the machine's available
    /// parallelism (optionally capped by `ATPM_MAX_THREADS` or
    /// `--max-threads`); the old hard-wired cap of 8 is gone.
    pub threads: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Include ADDATP where the grid allows (it is orders of magnitude
    /// slower; the paper itself only completes it on NetHEPT).
    pub with_addatp: bool,
    /// Per-round RR cap applied to ADDATP (keeps its n² tail affordable).
    pub addatp_max_theta: usize,
    /// External graph file (`--graph`): when set, experiments run on this
    /// graph (text edge list or `ATPMGRF1` binary, auto-sniffed) instead of
    /// the generated preset stand-ins.
    pub graph_path: Option<String>,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale_mult: 1.0,
            paper: false,
            worlds: 5,
            k_grid: vec![10, 25, 50, 100],
            threads: atpm_ris::sampler::default_threads(),
            seed: 20200420, // ICDE'20 opening day
            with_addatp: true,
            addatp_max_theta: 1 << 20,
            graph_path: None,
        }
    }
}

impl ExpConfig {
    /// The paper's full grid (§VI-A): k ∈ {10, 25, 50, 100, 200, 500},
    /// 20 realizations, Table II dataset sizes.
    pub fn paper_mode() -> Self {
        ExpConfig {
            paper: true,
            worlds: 20,
            k_grid: vec![10, 25, 50, 100, 200, 500],
            ..Default::default()
        }
    }

    /// Parses CLI flags after the subcommand. Returns an error string on
    /// unknown or malformed flags.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut cfg = ExpConfig::default();
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let mut value_of = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("flag {name} needs a value"))
            };
            match arg.as_str() {
                "--paper" => {
                    let keep_seed = cfg.seed;
                    cfg = ExpConfig::paper_mode();
                    cfg.seed = keep_seed;
                }
                "--scale" => {
                    cfg.scale_mult = value_of("--scale")?
                        .parse()
                        .map_err(|e| format!("bad --scale: {e}"))?;
                }
                "--worlds" => {
                    cfg.worlds = value_of("--worlds")?
                        .parse()
                        .map_err(|e| format!("bad --worlds: {e}"))?;
                }
                "--threads" => {
                    cfg.threads = value_of("--threads")?
                        .parse()
                        .map_err(|e| format!("bad --threads: {e}"))?;
                }
                "--max-threads" => {
                    let cap: usize = value_of("--max-threads")?
                        .parse()
                        .map_err(|e| format!("bad --max-threads: {e}"))?;
                    cfg.threads = atpm_ris::workspace::available_threads(Some(cap));
                }
                "--seed" => {
                    cfg.seed = value_of("--seed")?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?;
                }
                "--k" => {
                    cfg.k_grid = value_of("--k")?
                        .split(',')
                        .map(|t| t.parse().map_err(|e| format!("bad --k: {e}")))
                        .collect::<Result<_, _>>()?;
                }
                "--no-addatp" => cfg.with_addatp = false,
                "--graph" => cfg.graph_path = Some(value_of("--graph")?),
                "--quick" => {
                    cfg.worlds = 3;
                    cfg.k_grid = vec![10, 25, 50];
                    cfg.scale_mult = 0.5;
                    cfg.addatp_max_theta = 1 << 17;
                }
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        if cfg.worlds == 0 || cfg.k_grid.is_empty() {
            return Err("need at least one world and one k".into());
        }
        if cfg.threads == 0 {
            return Err("need at least one worker thread".into());
        }
        Ok(cfg)
    }

    /// Effective generation scale of a dataset under this config.
    pub fn scale_of(&self, d: Dataset) -> f64 {
        let base = if self.paper { 1.0 } else { d.default_scale() };
        (base * self.scale_mult).clamp(1e-6, 1.0)
    }

    /// World seeds for the evaluation protocol.
    pub fn world_seeds(&self) -> Vec<u64> {
        (0..self.worlds as u64)
            .map(|i| self.seed.wrapping_mul(1_000_003).wrapping_add(i))
            .collect()
    }

    /// Whether ADDATP should run for this dataset/k (paper: NetHEPT only;
    /// we additionally bound k to keep the default run short).
    pub fn addatp_enabled(&self, d: Dataset, k: usize) -> bool {
        self.with_addatp && d == Dataset::NetHept && (self.paper || k <= 25)
    }

    /// Loads the `--graph` override, if one was given. The file format is
    /// sniffed: `ATPMGRF1` magic means binary, anything else is parsed as a
    /// text edge list (two-column lines get probability 0.1, the trivalency
    /// midpoint).
    ///
    /// Loads are cached process-wide by path: an `experiments all` run asks
    /// for the graph once per figure driver, and re-parsing a multi-GB file
    /// nine times would dominate the run. Cache hits hand out clones (CSR
    /// clone is a flat memcpy, orders of magnitude cheaper than parsing).
    pub fn load_graph_override(&self) -> Result<Option<Graph>, String> {
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};
        static CACHE: OnceLock<Mutex<HashMap<String, Graph>>> = OnceLock::new();
        match &self.graph_path {
            None => Ok(None),
            Some(path) => {
                let mut cache = CACHE
                    .get_or_init(Default::default)
                    .lock()
                    .expect("graph cache poisoned");
                if let Some(g) = cache.get(path) {
                    return Ok(Some(g.clone()));
                }
                let g = atpm_graph::io::load_auto(path, 0.1)
                    .map_err(|e| format!("--graph {path}: {e}"))?;
                cache.insert(path.clone(), g.clone());
                Ok(Some(g))
            }
        }
    }

    /// Datasets a grid run should cover: all four stand-ins normally, a
    /// single slot when an external `--graph` replaces generation (the
    /// external graph is the same file regardless of the dataset label, so
    /// running it four times would report duplicates).
    pub fn datasets(&self) -> &'static [Dataset] {
        if self.graph_path.is_some() {
            &[Dataset::NetHept]
        } else {
            &Dataset::ALL
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn default_roundtrip() {
        let cfg = ExpConfig::parse(&[]).unwrap();
        assert_eq!(cfg.worlds, 5);
        assert!(!cfg.paper);
    }

    #[test]
    fn paper_mode_lifts_grid() {
        let cfg = ExpConfig::parse(&s(&["--paper"])).unwrap();
        assert_eq!(cfg.worlds, 20);
        assert_eq!(cfg.k_grid, vec![10, 25, 50, 100, 200, 500]);
        assert_eq!(cfg.scale_of(Dataset::LiveJournal), 1.0);
    }

    #[test]
    fn k_list_parses() {
        let cfg = ExpConfig::parse(&s(&["--k", "5,10,20"])).unwrap();
        assert_eq!(cfg.k_grid, vec![5, 10, 20]);
    }

    #[test]
    fn scale_multiplies_defaults() {
        let cfg = ExpConfig::parse(&s(&["--scale", "0.5"])).unwrap();
        let expected = Dataset::Epinions.default_scale() * 0.5;
        assert!((cfg.scale_of(Dataset::Epinions) - expected).abs() < 1e-12);
    }

    #[test]
    fn bad_flags_are_reported() {
        assert!(ExpConfig::parse(&s(&["--nope"])).is_err());
        assert!(ExpConfig::parse(&s(&["--worlds"])).is_err());
        assert!(ExpConfig::parse(&s(&["--worlds", "x"])).is_err());
        assert!(ExpConfig::parse(&s(&["--worlds", "0"])).is_err());
        assert!(ExpConfig::parse(&s(&["--threads", "0"])).is_err());
        assert!(ExpConfig::parse(&s(&["--max-threads", "zero"])).is_err());
    }

    #[test]
    fn threads_default_uses_machine_parallelism() {
        let cfg = ExpConfig::default();
        assert!(cfg.threads >= 1);
        // No silent throttle: the default tracks available parallelism.
        assert_eq!(cfg.threads, atpm_ris::sampler::default_threads());
    }

    #[test]
    fn max_threads_caps_the_worker_count() {
        let cfg = ExpConfig::parse(&s(&["--max-threads", "2"])).unwrap();
        assert!(cfg.threads <= 2 && cfg.threads >= 1);
        // Explicit --threads still wins when given last.
        let cfg = ExpConfig::parse(&s(&["--max-threads", "2", "--threads", "5"])).unwrap();
        assert_eq!(cfg.threads, 5);
    }

    #[test]
    fn graph_override_parses_loads_and_gates_datasets() {
        let cfg = ExpConfig::parse(&[]).unwrap();
        assert!(cfg.graph_path.is_none());
        assert!(cfg.load_graph_override().unwrap().is_none());
        assert_eq!(cfg.datasets().len(), 4);

        // Write a tiny edge list and load it through the override.
        let path = std::env::temp_dir().join("atpm_expconfig_graph.txt");
        std::fs::write(&path, "0 1 0.5\n1 2\n").unwrap();
        let cfg = ExpConfig::parse(&s(&["--graph", path.to_str().unwrap()])).unwrap();
        assert_eq!(cfg.datasets().len(), 1);
        let g = cfg.load_graph_override().unwrap().unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        let _ = std::fs::remove_file(&path);

        // Missing file: an error message, not a panic.
        let cfg = ExpConfig::parse(&s(&["--graph", "/no/such/file"])).unwrap();
        assert!(cfg.load_graph_override().is_err());
        // Missing value: parse error.
        assert!(ExpConfig::parse(&s(&["--graph"])).is_err());
    }

    #[test]
    fn world_seeds_are_distinct_and_stable() {
        let cfg = ExpConfig::default();
        let a = cfg.world_seeds();
        let b = cfg.world_seeds();
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), a.len());
    }

    #[test]
    fn addatp_policy_gate() {
        let cfg = ExpConfig::default();
        assert!(cfg.addatp_enabled(Dataset::NetHept, 10));
        assert!(!cfg.addatp_enabled(Dataset::NetHept, 100));
        assert!(!cfg.addatp_enabled(Dataset::Epinions, 10));
        let paper = ExpConfig::paper_mode();
        assert!(paper.addatp_enabled(Dataset::NetHept, 500));
    }
}
